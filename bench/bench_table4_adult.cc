// Regenerates the paper's Table 4: top-5 subsets attributable to
// statistical disparity in (synthetic) Adult Census Income, support 5-15%.

#include "bench_util.h"

int main(int argc, char** argv) {
  fume::bench::PrintBanner(
      "Table 4: Top-5 attributable subsets — Adult Census Income",
      "paper Table 4 / §6.3");
  return fume::bench::RunTopKBench("adult-income", argc, argv);
}
