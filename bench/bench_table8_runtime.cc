// Regenerates the paper's Table 8 (RQ3): FUME runtime across the five
// datasets, reported against dataset dimension (|rows| x |attributes|) with
// relative factors, as the paper presents it (1x, 5.3x, ...). Absolute
// seconds differ from the paper's Python/Ryzen numbers by construction; the
// reproduction target is the relative growth.

#include <iostream>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Table 8: FUME runtime vs dataset dimension",
              "paper Table 8 / §6.4 (RQ3)");

  struct Row {
    std::string name;
    int64_t dimension;
    double seconds;
  };
  std::vector<Row> rows;
  for (const auto& dataset : synth::AllDatasets()) {
    auto pipeline = SetupPipeline(dataset, full);
    FUME_ABORT_NOT_OK(pipeline.status());
    Pipeline& p = *pipeline;
    FumeConfig config = BenchFumeConfig(p.group);
    Stopwatch watch;
    auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
    const double seconds = watch.ElapsedSeconds();
    const int64_t dimension =
        p.rows_used * static_cast<int64_t>(p.train.num_attributes());
    if (!result.ok()) {
      std::cout << dataset.name << ": " << result.status().ToString() << "\n";
    }
    rows.push_back({dataset.name, dimension, seconds});
  }

  // Paper ordering: ascending dimension (German, Adult, MEPS, SQF, ACS).
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.dimension < b.dimension; });
  const double base_dim = static_cast<double>(rows.front().dimension);
  const double base_time = rows.front().seconds;
  TablePrinter table({"Dataset", "Dimension", "Dim. factor", "Time (sec)",
                      "Time factor"});
  for (const Row& row : rows) {
    table.AddRow({row.name, std::to_string(row.dimension),
                  FormatDouble(static_cast<double>(row.dimension) / base_dim, 2) + "x",
                  FormatDouble(row.seconds, 2),
                  FormatDouble(row.seconds / std::max(base_time, 1e-9), 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nDimension = rows x attributes (rows are "
            << (full ? "paper-sized" : "scaled; run with --full for paper "
                                       "sizes")
            << "). The paper's shape: runtime grows roughly with dimension, "
               "sub-linearly at first, steeper for the largest datasets.\n";
  return 0;
}
