// Deletion throughput: the batched unlearning kernel (DeletionScratch +
// columnar NodeStats::RemoveRows + in-place route partitioning) vs the
// per-row baseline (ForestConfig::batched_unlearn_kernel = false), on the
// parametric Figure-5 substrates.
//
// Each measured deletion runs on a fresh CoW clone of the pristine model —
// the what-if evaluation shape, where DeleteRows dominates — with the
// kernel side reusing one DeletionScratch across all iterations (the
// steady-state allocation-free path). Exactness is re-checked in-bench:
// accumulated DeletionStats must agree per cell, a compounding deletion
// run must leave both forests serialized byte-identical, and a full FUME
// search at mid-size must report the same top-k with the kernel on and
// off. Artifacts: unlearn_kernel.csv (+ metrics snapshot) and
// BENCH_unlearn.json in bench_artifacts/.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "forest/deletion_scratch.h"
#include "forest/serialize.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace {

using namespace fume;
using namespace fume::bench;

struct Setup {
  int64_t rows = 0;
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest kernel_model;    // batched_unlearn_kernel = true
  DareForest baseline_model;  // = false; structurally identical
};

Setup MakeSetup(int64_t rows) {
  auto bundle = synth::MakeParametric(rows, 10, 2, 7);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());
  ForestConfig forest_config;  // the Figure 5 forest
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  forest_config.random_depth = 2;
  forest_config.seed = 31;
  forest_config.batched_unlearn_kernel = true;
  auto kernel_model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(kernel_model.status());
  forest_config.batched_unlearn_kernel = false;
  auto baseline_model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(baseline_model.status());
  return Setup{rows,
               std::move(split->train),
               std::move(split->test),
               bundle->group,
               std::move(*kernel_model),
               std::move(*baseline_model)};
}

// Disjoint deterministic batches (slices of a keyed shuffle of the live
// rows), so the same sequence can be applied compounding — every row is
// deleted at most once across a measurement.
std::vector<std::vector<RowId>> MakeBatches(int64_t num_rows, int batch_size,
                                            int num_batches) {
  std::vector<RowId> perm(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    perm[static_cast<size_t>(i)] = static_cast<RowId>(i);
  }
  Rng rng(177);
  for (int64_t i = num_rows - 1; i > 0; --i) {
    const int64_t j = rng.NextInt(0, static_cast<int>(i));
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  // Never delete more than half the training data: the tail of such a run
  // measures degenerate stumps, not unlearning.
  const int64_t max_batches = num_rows / 2 / batch_size;
  const int64_t take = std::min<int64_t>(num_batches, std::max<int64_t>(
                                                          1, max_batches));
  std::vector<std::vector<RowId>> batches;
  batches.reserve(static_cast<size_t>(take));
  for (int64_t b = 0; b < take; ++b) {
    const auto begin = perm.begin() + b * batch_size;
    std::vector<RowId> rows(begin, begin + batch_size);
    std::sort(rows.begin(), rows.end());
    batches.push_back(std::move(rows));
  }
  return batches;
}

enum class Strategy { kPerRow, kKernel, kLazy };

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kPerRow: return "per-row";
    case Strategy::kKernel: return "batched-kernel";
    case Strategy::kLazy: return "lazy-tags";
  }
  return "?";
}

// Bursts per flush for a given batch size: the delete-burst-then-query
// workload shape (a run of delete ops, then a traversal that forces every
// deferred retrain). Small batches arrive in longer bursts.
int BurstLength(int batch) { return std::max(1, std::min(8, 4096 / batch)); }

struct Throughput {
  int64_t rows_unlearned = 0;
  double seconds = 0.0;
  double rows_per_sec = 0.0;
  DeletionStats work;  // exactness cross-check between the two strategies
};

// Compounding deletions on a privately-owned copy of the model: after the
// (untimed) DeepClone every node has refcount 1, so the timed loop contains
// pure deletion work — no CoW unshares, which are identical on both
// strategies and would otherwise dilute the comparison. This is also the
// stream engine's workload shape (ops mutate one long-lived forest).
//
// The workload is burst-shaped: BurstLength(batch) delete ops, then a
// FlushAll — a no-op for the eager strategies (so their numbers keep
// measuring pure deletion), the deferred-retrain settlement for lazy. The
// flush is timed INSIDE the loop: lazy's throughput edge is real work
// avoided (one rebuild per subtree per burst instead of one per op), not
// work moved off the clock.
Throughput MeasureDelete(const DareForest& model,
                         const std::vector<std::vector<RowId>>& batches,
                         Strategy strategy) {
  const bool kernel = strategy != Strategy::kPerRow;
  const int burst = BurstLength(
      batches.empty() ? 1 : static_cast<int>(batches.front().size()));
  DeletionScratch scratch;
  {
    // Warm-up: faults in the store, sizes the scratch, seeds allocators.
    DareForest warm = model.DeepClone();
    if (strategy == Strategy::kLazy) warm.SetLazyUnlearn(true);
    FUME_ABORT_NOT_OK(warm.DeleteRows(batches.front(), nullptr,
                                      kernel ? &scratch : nullptr));
    warm.FlushAll(nullptr, &scratch);
  }
  DareForest victim = model.DeepClone();
  if (strategy == Strategy::kLazy) victim.SetLazyUnlearn(true);
  Throughput t;
  // Thread CPU time: the loop is single-threaded, and CPU time is immune
  // to scheduler preemption on a loaded machine (wall time is not).
  ThreadCpuStopwatch watch;
  int in_burst = 0;
  for (const auto& rows : batches) {
    FUME_ABORT_NOT_OK(
        victim.DeleteRows(rows, nullptr, kernel ? &scratch : nullptr));
    t.rows_unlearned += static_cast<int64_t>(rows.size());
    if (++in_burst == burst) {
      victim.FlushAll(nullptr, &scratch);
      in_burst = 0;
    }
  }
  victim.FlushAll(nullptr, &scratch);
  t.seconds = watch.ElapsedSeconds();
  t.work = victim.deletion_stats();
  t.rows_per_sec = t.seconds > 0.0
                       ? static_cast<double>(t.rows_unlearned) / t.seconds
                       : 0.0;
  return t;
}

std::string SerializeForest(const DareForest& forest) {
  std::ostringstream out;
  FUME_ABORT_NOT_OK(SaveForest(forest, out));
  return out.str();
}

// Compounding deletions (no re-clone between batches) applied through both
// strategies must leave the forests serialized byte-identical.
bool CompoundingRunsByteIdentical(const Setup& s,
                                  const std::vector<std::vector<RowId>>& all) {
  DareForest kernel = s.kernel_model.Clone();
  DareForest baseline = s.baseline_model.Clone();
  DeletionScratch scratch;
  std::vector<uint8_t> gone(
      static_cast<size_t>(s.kernel_model.store().num_rows()), 0);
  for (size_t b = 0; b < all.size() && b < 8; ++b) {
    std::vector<RowId> batch;
    for (RowId r : all[b]) {
      if (!gone[static_cast<size_t>(r)]) {
        gone[static_cast<size_t>(r)] = 1;
        batch.push_back(r);
      }
    }
    if (batch.empty()) continue;
    FUME_ABORT_NOT_OK(kernel.DeleteRows(batch, nullptr, &scratch));
    FUME_ABORT_NOT_OK(baseline.DeleteRows(batch));
  }
  return SerializeForest(kernel) == SerializeForest(baseline);
}

// The lazy invariant (DESIGN.md §6 invariant 9): a compounded run with
// deferred retrains and mid-run flushes lands on the eager kernel's exact
// serialized bytes after every flush. The work counters deliberately differ
// (lazy does fewer rebuilds), so both are zeroed before each comparison.
bool LazyFlushByteIdentical(const Setup& s,
                            const std::vector<std::vector<RowId>>& all) {
  DareForest eager = s.kernel_model.DeepClone();
  DareForest lazy = s.kernel_model.DeepClone();
  lazy.SetLazyUnlearn(true);
  DeletionScratch eager_scratch, lazy_scratch;
  const int burst = BurstLength(
      all.empty() ? 1 : static_cast<int>(all.front().size()));
  int in_burst = 0;
  for (size_t b = 0; b < all.size() && b < 16; ++b) {
    FUME_ABORT_NOT_OK(eager.DeleteRows(all[b], nullptr, &eager_scratch));
    FUME_ABORT_NOT_OK(lazy.DeleteRows(all[b], nullptr, &lazy_scratch));
    if (++in_burst == burst) {
      lazy.FlushAll(nullptr, &lazy_scratch);
      in_burst = 0;
      eager.ResetDeletionStats();
      lazy.ResetDeletionStats();
      if (SerializeForest(eager) != SerializeForest(lazy)) return false;
    }
  }
  lazy.FlushAll(nullptr, &lazy_scratch);
  eager.ResetDeletionStats();
  lazy.ResetDeletionStats();
  return SerializeForest(eager) == SerializeForest(lazy);
}

std::string TopKSignature(const FumeResult& result, const Schema& schema) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& s : result.top_k) {
    os << s.predicate.ToString(schema) << '|' << s.attribution << '|'
       << s.new_fairness << '|' << s.new_accuracy << '\n';
  }
  os << result.stats.attribution_evaluations;
  return os.str();
}

bool IsFiniteRow(const Throughput& t) {
  return t.seconds == t.seconds && t.rows_per_sec == t.rows_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  const bool full = !smoke && FullMode(argc, argv);
  PrintBanner("Unlearning kernel: batched scratch kernel vs per-row baseline",
              "docs/performance.md / Figure 5 forests");

  const std::vector<int64_t> sizes =
      smoke ? std::vector<int64_t>{2000}
            : (full ? std::vector<int64_t>{10000, 20000, 50000}
                    : std::vector<int64_t>{5000, 10000, 20000});
  const int64_t mid_size = sizes[sizes.size() / 2];
  // 1: streaming-style single-row ops; 128: the search's what-if batches
  // at typical support; 1024: Figure-5-scale support-range row sets.
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 16} : std::vector<int>{1, 16, 128, 1024};
  const int kHeadlineBatch = smoke ? 16 : 128;
  const int num_batches = smoke ? 8 : (full ? 128 : 64);
  // Each cell is measured several times with the strategies interleaved and
  // reported as the fastest repetition — deletion work is deterministic
  // (same batches on a fresh DeepClone each repetition), so the minimum
  // time is the least-noise estimate and DeletionStats are identical
  // across repetitions.
  const int kReps = smoke ? 1 : 7;

  TablePrinter table({"rows", "batch", "strategy", "rows unlearned",
                      "rows/sec", "speedup"});
  std::vector<std::vector<std::string>> artifact;
  double headline_speedup = 0.0;
  double lazy_headline_speedup = 0.0;
  bool stats_identical = true;
  bool bytes_identical = true;
  bool lazy_bytes_identical = true;
  bool all_finite = true;

  for (int64_t rows : sizes) {
    Setup s = MakeSetup(rows);
    const int64_t train_rows = s.kernel_model.num_training_rows();
    for (int batch : batch_sizes) {
      const auto batches = MakeBatches(train_rows, batch, num_batches);
      Throughput base, kern, lazy;
      for (int rep = 0; rep < kReps; ++rep) {
        const Throughput b =
            MeasureDelete(s.baseline_model, batches, Strategy::kPerRow);
        const Throughput k =
            MeasureDelete(s.kernel_model, batches, Strategy::kKernel);
        const Throughput l =
            MeasureDelete(s.kernel_model, batches, Strategy::kLazy);
        if (rep == 0 || b.rows_per_sec > base.rows_per_sec) base = b;
        if (rep == 0 || k.rows_per_sec > kern.rows_per_sec) kern = k;
        if (rep == 0 || l.rows_per_sec > lazy.rows_per_sec) lazy = l;
      }
      all_finite = all_finite && IsFiniteRow(base) && IsFiniteRow(kern) &&
                   IsFiniteRow(lazy);
      // The lazy column's DeletionStats are excluded on purpose: fewer
      // rebuilds is its whole value; exactness is pinned by the byte
      // checks below instead.
      if (!(base.work == kern.work)) stats_identical = false;
      const double speedup =
          base.rows_per_sec > 0.0 ? kern.rows_per_sec / base.rows_per_sec
                                  : 0.0;
      const double lazy_speedup =
          base.rows_per_sec > 0.0 ? lazy.rows_per_sec / base.rows_per_sec
                                  : 0.0;
      if (rows == mid_size && batch == kHeadlineBatch) {
        headline_speedup = speedup;
        lazy_headline_speedup =
            kern.rows_per_sec > 0.0 ? lazy.rows_per_sec / kern.rows_per_sec
                                    : 0.0;
      }
      const Throughput* cells[] = {&base, &kern, &lazy};
      const Strategy strategies[] = {Strategy::kPerRow, Strategy::kKernel,
                                     Strategy::kLazy};
      const double speedups[] = {1.0, speedup, lazy_speedup};
      for (int c = 0; c < 3; ++c) {
        const Throughput* t = cells[c];
        table.AddRow({std::to_string(rows), std::to_string(batch),
                      StrategyName(strategies[c]),
                      std::to_string(t->rows_unlearned),
                      FormatDouble(t->rows_per_sec, 0),
                      FormatDouble(speedups[c], 2) + "x"});
        artifact.push_back({std::to_string(rows), std::to_string(batch),
                            StrategyName(strategies[c]),
                            std::to_string(t->rows_unlearned),
                            FormatDouble(t->seconds, 4),
                            FormatDouble(t->rows_per_sec, 2),
                            FormatDouble(speedups[c], 3)});
      }
    }
    bytes_identical =
        bytes_identical &&
        CompoundingRunsByteIdentical(
            s, MakeBatches(train_rows, kHeadlineBatch, 8));
    lazy_bytes_identical =
        lazy_bytes_identical &&
        LazyFlushByteIdentical(s,
                               MakeBatches(train_rows, kHeadlineBatch, 16));
  }
  table.Print(std::cout);
  WriteArtifact("unlearn_kernel",
                {"rows", "batch_rows", "strategy", "rows_unlearned",
                 "seconds", "rows_per_sec", "speedup_vs_per_row"},
                artifact);

  // End-to-end: the search must report the same top-k with the kernel on
  // and off (every what-if deletion flows through it), and with a lazy
  // model carrying a pending delete burst — the search's first traversal
  // is the query that flushes it (no explicit FlushAll here, on purpose).
  std::cout << "\nSearch identity check (mid-size forest, " << mid_size
            << " rows)\n";
  Setup s = MakeSetup(mid_size);
  DareForest lazy_model = s.kernel_model.DeepClone();
  lazy_model.SetLazyUnlearn(true);
  // Burst-delete the TAIL of the training data from all three models (the
  // lazy one defers), then search over the tail-dropped dataset: surviving
  // train indices still equal store ids, which the search's removal method
  // relies on.
  {
    const int64_t n = s.train.num_rows();
    const int64_t burst_rows = std::min<int64_t>(256, n / 8);
    DeletionScratch scratch;
    std::vector<int64_t> tail_idx;
    for (int64_t off = 0; off < burst_rows; off += burst_rows / 4) {
      std::vector<RowId> batch;
      for (int64_t i = off; i < std::min(burst_rows, off + burst_rows / 4);
           ++i) {
        batch.push_back(static_cast<RowId>(n - burst_rows + i));
        tail_idx.push_back(n - burst_rows + i);
      }
      FUME_ABORT_NOT_OK(s.kernel_model.DeleteRows(batch, nullptr, &scratch));
      FUME_ABORT_NOT_OK(s.baseline_model.DeleteRows(batch));
      FUME_ABORT_NOT_OK(lazy_model.DeleteRows(batch, nullptr, &scratch));
    }
    s.train = s.train.DropRows(tail_idx);
  }
  FumeConfig config = BenchFumeConfig(s.group);
  std::string kernel_sig, baseline_sig, lazy_sig;
  double kernel_sec = 0.0, baseline_sec = 0.0, lazy_sec = 0.0;
  for (const Strategy strategy :
       {Strategy::kPerRow, Strategy::kKernel, Strategy::kLazy}) {
    const DareForest& model = strategy == Strategy::kPerRow
                                  ? s.baseline_model
                                  : (strategy == Strategy::kKernel
                                         ? s.kernel_model
                                         : lazy_model);
    Stopwatch watch;
    auto result = ExplainFairnessViolation(model, s.train, s.test, config);
    const double seconds = watch.ElapsedSeconds();
    FUME_ABORT_NOT_OK(result.status());
    std::string& sig = strategy == Strategy::kPerRow
                           ? baseline_sig
                           : (strategy == Strategy::kKernel ? kernel_sig
                                                            : lazy_sig);
    sig = TopKSignature(*result, s.train.schema());
    (strategy == Strategy::kPerRow
         ? baseline_sec
         : (strategy == Strategy::kKernel ? kernel_sec : lazy_sec)) = seconds;
  }
  const bool topk_identical = kernel_sig == baseline_sig;
  const bool lazy_topk_identical =
      lazy_sig == kernel_sig && !lazy_model.HasLazyTags();
  std::cout << "search sec: per-row " << FormatDouble(baseline_sec, 3)
            << ", kernel " << FormatDouble(kernel_sec, 3) << ", lazy "
            << FormatDouble(lazy_sec, 3) << '\n'
            << "top-k identical kernel on/off: "
            << (topk_identical ? "yes" : "NO — exactness violation") << '\n'
            << "top-k identical after query-flushed lazy burst: "
            << (lazy_topk_identical ? "yes" : "NO — exactness violation")
            << '\n'
            << "DeletionStats identical in every cell: "
            << (stats_identical ? "yes" : "NO") << '\n'
            << "compounded forests byte-identical: "
            << (bytes_identical ? "yes" : "NO") << '\n'
            << "lazy flush byte-identical to eager kernel: "
            << (lazy_bytes_identical ? "yes" : "NO") << '\n'
            << "kernel speedup at " << mid_size << " rows, batch "
            << kHeadlineBatch << ": " << FormatDouble(headline_speedup, 2)
            << "x\n"
            << "lazy speedup vs eager kernel at " << mid_size
            << " rows, batch " << kHeadlineBatch << ": "
            << FormatDouble(lazy_headline_speedup, 2) << "x\n";

  std::ofstream json("bench_artifacts/BENCH_unlearn.json");
  if (json) {
    json.precision(6);
    json << "{\n  \"bench\": \"unlearn_kernel\",\n"
         << "  \"forest\": \"figure5-parametric (10 trees, depth 8)\",\n"
         << "  \"mid_size_rows\": " << mid_size << ",\n"
         << "  \"headline_batch_rows\": " << kHeadlineBatch << ",\n"
         << "  \"kernel_speedup_mid\": " << headline_speedup << ",\n"
         << "  \"lazy_speedup_vs_kernel_mid\": " << lazy_headline_speedup
         << ",\n"
         << "  \"topk_identical\": " << (topk_identical ? "true" : "false")
         << ",\n"
         << "  \"lazy_topk_identical\": "
         << (lazy_topk_identical ? "true" : "false") << ",\n"
         << "  \"deletion_stats_identical\": "
         << (stats_identical ? "true" : "false") << ",\n"
         << "  \"compounded_bytes_identical\": "
         << (bytes_identical ? "true" : "false") << ",\n"
         << "  \"lazy_flush_bytes_identical\": "
         << (lazy_bytes_identical ? "true" : "false") << ",\n"
         << "  \"cells\": [\n";
    for (size_t i = 0; i < artifact.size(); ++i) {
      const auto& row = artifact[i];
      json << "    {\"rows\": " << row[0] << ", \"batch_rows\": " << row[1]
           << ", \"strategy\": \"" << row[2]
           << "\", \"rows_unlearned\": " << row[3]
           << ", \"seconds\": " << row[4] << ", \"rows_per_sec\": " << row[5]
           << ", \"speedup_vs_per_row\": " << row[6] << '}'
           << (i + 1 < artifact.size() ? "," : "") << '\n';
    }
    json << "  ]\n}\n";
    std::cout << "wrote bench_artifacts/BENCH_unlearn.json\n";
  } else {
    std::cout << "could not write bench_artifacts/BENCH_unlearn.json\n";
  }

  const bool exact = topk_identical && lazy_topk_identical &&
                     stats_identical && bytes_identical &&
                     lazy_bytes_identical;
  if (!all_finite) std::cout << "NaN detected in measurements\n";
  return exact && all_finite ? 0 : 1;
}
