// Regenerates the paper's Figure 3 (RQ1): effectiveness of DaRE unlearning
// in estimating subset attribution to bias. For random and coherent subsets
// of the German Credit training data, compare
//   estimated  = fairness of the unlearned model (clone + DeleteRows), vs
//   actual     = fairness of a model retrained from scratch with FRESH
//                randomness (a different seed — exactly the paper's setup,
//                where scratch retraining draws a new random state).
// The paper's claim is that the points hug the y = x line; we report the
// per-support-range, per-metric alignment (MAE, Pearson r) plus sample
// points, for both random and coherent subsets.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/removal_method.h"
#include "subset/lattice.h"
#include "util/rng.h"

namespace {

using namespace fume;

struct Range {
  const char* label;
  double lo, hi;
};

struct Stats {
  double mae = 0.0;
  double pearson = 0.0;
  int n = 0;
};

Stats Compare(const std::vector<double>& actual,
              const std::vector<double>& estimated) {
  Stats s;
  s.n = static_cast<int>(actual.size());
  if (s.n == 0) return s;
  double sa = 0, se = 0, saa = 0, see = 0, sae = 0, mae = 0;
  for (int i = 0; i < s.n; ++i) {
    const double a = actual[static_cast<size_t>(i)];
    const double e = estimated[static_cast<size_t>(i)];
    mae += std::fabs(a - e);
    sa += a;
    se += e;
    saa += a * a;
    see += e * e;
    sae += a * e;
  }
  s.mae = mae / s.n;
  const double cov = sae / s.n - (sa / s.n) * (se / s.n);
  const double va = saa / s.n - (sa / s.n) * (sa / s.n);
  const double ve = see / s.n - (se / s.n) * (se / s.n);
  s.pearson = (va > 1e-15 && ve > 1e-15) ? cov / std::sqrt(va * ve) : 0.0;
  return s;
}

// Renders an ASCII scatter of (actual, estimated) pairs with the y = x
// diagonal, the visual form of the paper's Figure 3 panels.
void AsciiScatter(const std::vector<double>& actual,
                  const std::vector<double>& estimated,
                  const std::string& title) {
  if (actual.empty()) return;
  double lo = actual[0], hi = actual[0];
  for (double v : actual) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : estimated) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-9) return;
  const double pad = 0.05 * (hi - lo);
  lo -= pad;
  hi += pad;
  constexpr int kW = 61;
  constexpr int kH = 21;
  std::vector<std::string> grid(kH, std::string(kW, ' '));
  auto to_col = [&](double v) {
    return std::min(kW - 1, std::max(0, static_cast<int>(
                                            (v - lo) / (hi - lo) * (kW - 1))));
  };
  auto to_row = [&](double v) {
    return kH - 1 - std::min(kH - 1,
                             std::max(0, static_cast<int>((v - lo) / (hi - lo) *
                                                          (kH - 1))));
  };
  // y = x diagonal.
  for (int c = 0; c < kW; ++c) {
    const double v = lo + (hi - lo) * c / (kW - 1);
    grid[static_cast<size_t>(to_row(v))][static_cast<size_t>(c)] = '.';
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    grid[static_cast<size_t>(to_row(estimated[i]))]
        [static_cast<size_t>(to_col(actual[i]))] = 'o';
  }
  std::cout << "\n" << title << " — x: actual fairness, y: DaRE-estimated; "
            << "'.' is y = x\n";
  for (const std::string& line : grid) std::cout << "  |" << line << "|\n";
  std::cout << "   x in [" << fume::FormatDouble(lo, 3) << ", "
            << fume::FormatDouble(hi, 3) << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Figure 3: DaRE-estimated vs actual subset attribution",
              "paper Figure 3 / §6.2 (RQ1)");

  auto dataset = synth::FindDataset("german-credit");
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;
  const int64_t n = p.train.num_rows();

  // Paper: 1,000 random + 1,000 coherent subsets; scaled default: 120 each.
  const int subsets_per_kind = full ? 1000 : 120;
  const Range ranges[] = {{"0-5%", 0.002, 0.05},
                          {"5-15%", 0.05, 0.15},
                          {">=30%", 0.30, 0.50}};
  const FairnessMetric metrics[] = {FairnessMetric::kStatisticalParity,
                                    FairnessMetric::kEqualizedOdds,
                                    FairnessMetric::kPredictiveParity};

  // Coherent candidates: lattice level-1 and level-2 predicates.
  Lattice lattice(p.train, LatticeOptions{});
  std::vector<LatticeNode> coherent = lattice.MakeLevel1();
  {
    auto level2 = lattice.MergeLevel(coherent, nullptr);
    coherent.insert(coherent.end(),
                    std::make_move_iterator(level2.begin()),
                    std::make_move_iterator(level2.end()));
  }

  ForestConfig fresh_config = p.forest_config;
  fresh_config.seed = p.forest_config.seed + 1;  // fresh randomness

  TablePrinter table({"Subsets", "Support", "Metric", "n", "MAE(est, act)",
                      "Pearson r"});
  std::vector<std::vector<std::string>> scatter;  // plottable Figure 3 data
  auto record = [&](const char* kind, const Range& range,
                    FairnessMetric metric, const std::vector<double>& actual,
                    const std::vector<double>& estimated) {
    for (size_t i = 0; i < actual.size(); ++i) {
      scatter.push_back({kind, range.label, FairnessMetricName(metric),
                         FormatDouble(actual[i], 6),
                         FormatDouble(estimated[i], 6)});
    }
  };
  Rng rng(12);
  // The panel the paper plots: coherent subsets, 5-15%, predictive parity.
  std::vector<double> panel_actual, panel_estimated;
  for (FairnessMetric metric : metrics) {
    UnlearnRemovalMethod unlearn(&p.model, &p.test, p.group, metric);
    RetrainRemovalMethod retrain(&p.train, &p.test, fresh_config, p.group,
                                 metric);
    for (const Range& range : ranges) {
      // ---- random subsets
      std::vector<double> actual, estimated;
      for (int i = 0; i < subsets_per_kind; ++i) {
        const double support =
            range.lo + rng.NextDouble() * (range.hi - range.lo);
        std::vector<RowId> rows;
        for (int64_t r = 0; r < n; ++r) {
          if (rng.NextBernoulli(support)) rows.push_back(static_cast<RowId>(r));
        }
        if (rows.empty()) continue;
        auto est = unlearn.EvaluateWithout(rows);
        auto act = retrain.EvaluateWithout(rows);
        FUME_ABORT_NOT_OK(est.status());
        FUME_ABORT_NOT_OK(act.status());
        estimated.push_back(est->fairness);
        actual.push_back(act->fairness);
      }
      Stats s = Compare(actual, estimated);
      record("random", range, metric, actual, estimated);
      table.AddRow({"random", range.label, FairnessMetricName(metric),
                    std::to_string(s.n), FormatDouble(s.mae, 4),
                    FormatDouble(s.pearson, 3)});

      // ---- coherent subsets (lattice predicates in the support range)
      actual.clear();
      estimated.clear();
      int taken = 0;
      for (const LatticeNode& node : coherent) {
        if (node.support < range.lo || node.support > range.hi) continue;
        if (taken++ >= subsets_per_kind) break;
        std::vector<int32_t> matched = node.rows.ToRows();
        std::vector<RowId> rows(matched.begin(), matched.end());
        auto est = unlearn.EvaluateWithout(rows);
        auto act = retrain.EvaluateWithout(rows);
        FUME_ABORT_NOT_OK(est.status());
        FUME_ABORT_NOT_OK(act.status());
        estimated.push_back(est->fairness);
        actual.push_back(act->fairness);
      }
      s = Compare(actual, estimated);
      record("coherent", range, metric, actual, estimated);
      if (metric == FairnessMetric::kPredictiveParity &&
          std::string(range.label) == "5-15%") {
        panel_actual = actual;
        panel_estimated = estimated;
      }
      table.AddRow({"coherent", range.label, FairnessMetricName(metric),
                    std::to_string(s.n), FormatDouble(s.mae, 4),
                    FormatDouble(s.pearson, 3)});
    }
  }
  table.Print(std::cout);
  WriteArtifact("fig3_scatter",
                {"subsets", "support_range", "metric", "actual_fairness",
                 "estimated_fairness"},
                scatter);
  AsciiScatter(panel_actual, panel_estimated,
               "Figure 3(b) panel: coherent subsets, 5-15% support, "
               "predictive parity");
  std::cout <<
      "\nReading: MAE is the mean |estimated - actual| fairness; the paper's "
      "y = x alignment corresponds to small MAE and r near 1. Estimated uses "
      "DaRE unlearning; actual retrains from scratch with a different seed, "
      "so residual MAE reflects retraining randomness, not unlearning error "
      "(with the SAME seed the two are bit-identical — see the unlearning "
      "tests).\n";

  // Control experiment: with the SAME seed the scratch retrain reproduces
  // the unlearned model exactly, so any MAE above comes purely from
  // retraining randomness, not from unlearning error.
  {
    UnlearnRemovalMethod unlearn_ctl(&p.model, &p.test, p.group,
                                     FairnessMetric::kStatisticalParity);
    RetrainRemovalMethod retrain_same(&p.train, &p.test, p.forest_config,
                                      p.group,
                                      FairnessMetric::kStatisticalParity);
    double mae = 0.0;
    int count = 0;
    Rng ctl_rng(99);
    for (int i = 0; i < 10; ++i) {
      std::vector<RowId> rows;
      for (int64_t r = 0; r < n; ++r) {
        if (ctl_rng.NextBernoulli(0.1)) rows.push_back(static_cast<RowId>(r));
      }
      auto est = unlearn_ctl.EvaluateWithout(rows);
      auto act = retrain_same.EvaluateWithout(rows);
      FUME_ABORT_NOT_OK(est.status());
      FUME_ABORT_NOT_OK(act.status());
      mae += std::fabs(est->fairness - act->fairness);
      ++count;
    }
    std::cout << "\nControl (same-seed retrain): MAE over " << count
              << " subsets = " << FormatDouble(mae / count, 10)
              << "  (exact unlearning => identically 0)\n";
  }

  // Sample scatter points for the 5-15% predictive-parity panel (the one
  // the paper plots).
  std::cout << "\nSample points (coherent, 5-15%, predictive parity): "
               "actual -> estimated\n";
  UnlearnRemovalMethod unlearn(&p.model, &p.test, p.group,
                               FairnessMetric::kPredictiveParity);
  RetrainRemovalMethod retrain(&p.train, &p.test, fresh_config, p.group,
                               FairnessMetric::kPredictiveParity);
  int shown = 0;
  for (const LatticeNode& node : coherent) {
    if (node.support < 0.05 || node.support > 0.15) continue;
    if (shown++ >= 8) break;
    std::vector<int32_t> matched = node.rows.ToRows();
    std::vector<RowId> rows(matched.begin(), matched.end());
    auto est = unlearn.EvaluateWithout(rows);
    auto act = retrain.EvaluateWithout(rows);
    FUME_ABORT_NOT_OK(est.status());
    FUME_ABORT_NOT_OK(act.status());
    std::cout << "  " << FormatDouble(act->fairness, 4) << " -> "
              << FormatDouble(est->fairness, 4) << "   ["
              << node.predicate.ToString(p.train.schema()) << "]\n";
  }
  return 0;
}
