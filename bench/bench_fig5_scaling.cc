// Regenerates the paper's Figure 5: FUME efficiency on parametric synthetic
// data. (a) runtime vs number of instances for several attribute counts at
// 2 distinct values per attribute; (b) runtime vs number of distinct values
// per attribute at fixed instances/attributes.

#include <iostream>

#include "bench_util.h"
#include "synth/datasets.h"

namespace {

using namespace fume;
using namespace fume::bench;

// Runs the full pipeline (train + FUME) on one parametric dataset and
// returns the FUME wall time.
double TimeFume(int64_t rows, int attrs, int values, uint64_t seed) {
  auto bundle = synth::MakeParametric(rows, attrs, values, seed);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());
  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  forest_config.random_depth = 2;
  forest_config.seed = 31;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());
  FumeConfig config = BenchFumeConfig(bundle->group);
  Stopwatch watch;
  auto result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  const double seconds = watch.ElapsedSeconds();
  if (!result.ok()) return seconds;  // "no violation" still measures search
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = FullMode(argc, argv);
  PrintBanner("Figure 5: FUME efficiency on parametric synthetic data",
              "paper Figure 5 / §6.4");

  // (a) runtime vs instances, d = 2 values per attribute.
  std::cout << "\n(a) runtime (sec) vs #instances, 2 values per attribute\n";
  const std::vector<int64_t> sizes =
      full ? std::vector<int64_t>{5000, 10000, 20000, 30000, 50000}
           : std::vector<int64_t>{2000, 5000, 10000, 20000};
  const std::vector<int> attr_counts = {5, 10, 15, 20};
  TablePrinter table_a([&] {
    std::vector<std::string> header = {"#instances"};
    for (int p : attr_counts) {
      header.push_back("p=" + std::to_string(p));
    }
    return header;
  }());
  std::vector<std::vector<std::string>> artifact_a;
  for (int64_t n : sizes) {
    std::vector<std::string> row = {std::to_string(n)};
    for (int p : attr_counts) {
      const double seconds = TimeFume(n, p, 2, 7);
      row.push_back(FormatDouble(seconds, 2));
      artifact_a.push_back({std::to_string(n), std::to_string(p),
                            FormatDouble(seconds, 4)});
    }
    table_a.AddRow(row);
  }
  table_a.Print(std::cout);
  WriteArtifact("fig5a_scaling", {"instances", "attributes", "seconds"},
                artifact_a);

  // (b) runtime vs distinct values per attribute (paper: 30k x 10).
  const int64_t fixed_n = full ? 30000 : 10000;
  std::cout << "\n(b) runtime (sec) vs distinct values per attribute ("
            << fixed_n << " instances, 10 attributes)\n";
  TablePrinter table_b({"values/attr", "time (sec)"});
  std::vector<std::vector<std::string>> artifact_b;
  for (int d : {2, 4, 6, 8, 12}) {
    const double seconds = TimeFume(fixed_n, 10, d, 7);
    table_b.AddRow({std::to_string(d), FormatDouble(seconds, 2)});
    artifact_b.push_back({std::to_string(d), FormatDouble(seconds, 4)});
  }
  table_b.Print(std::cout);
  WriteArtifact("fig5b_scaling", {"values_per_attr", "seconds"}, artifact_b);
  std::cout <<
      "\nPaper shape to check: (a) runtime grows quickly with instances and "
      "with attribute count; (b) no clear monotone pattern in distinct "
      "values — pruning absorbs the larger literal space, so runtime is "
      "governed by how many subsets invoke unlearning.\n";
  return 0;
}
