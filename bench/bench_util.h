// Shared setup for the benchmark harness that regenerates the paper's
// tables and figures (DESIGN.md §4). Every bench uses the same pipeline:
// generate the calibrated synthetic dataset, split 70/30, train a DaRE
// forest with per-dataset hyperparameters, run FUME.
//
// Sizes: by default the larger datasets are scaled down so the whole bench
// suite completes in minutes on a small container (the factor is printed
// with every table); set FUME_BENCH_FULL=1 or pass --full for paper-sized
// runs.

#ifndef FUME_BENCH_BENCH_UTIL_H_
#define FUME_BENCH_BENCH_UTIL_H_

#include <string>

#include "core/baseline.h"
#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "synth/registry.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fume {
namespace bench {

/// Everything a table bench needs about one dataset.
struct Pipeline {
  std::string name;
  std::string index_prefix;
  int64_t rows_used = 0;
  int64_t paper_rows = 0;
  Dataset train;
  Dataset test;
  GroupSpec group;
  ForestConfig forest_config;
  DareForest model;
  double train_seconds = 0.0;
};

/// True when --full was passed or FUME_BENCH_FULL=1 is set.
bool FullMode(int argc, char** argv);

/// True when --smoke was passed or FUME_BENCH_SMOKE=1 is set: benches that
/// support it run only their smallest substrate with a handful of
/// iterations — a crash/NaN tripwire for CI (scripts/run_bench_smoke.sh),
/// not a measurement. Takes precedence over FullMode in benches honouring
/// both.
bool SmokeMode(int argc, char** argv);

/// Rows to generate for a dataset in scaled/full mode.
int64_t BenchRows(const synth::RegisteredDataset& dataset, bool full);

/// Per-dataset forest hyperparameters (tree depth tuned so the model shows
/// a clear violation, mirroring the paper's setting of a biased classifier).
ForestConfig BenchForestConfig(const std::string& dataset_name);

/// The paper's search hyperparameters: k = 5, support 5-15%, eta = 2.
FumeConfig BenchFumeConfig(const GroupSpec& group,
                           FairnessMetric metric =
                               FairnessMetric::kStatisticalParity);

/// Generates, splits and trains for one registered dataset.
Result<Pipeline> SetupPipeline(const synth::RegisteredDataset& dataset,
                               bool full, uint64_t seed = 4);

/// Prints the standard bench banner.
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Runs FUME + baseline on one dataset and prints the paper-shaped table
/// (used by the Table 3-7 benches).
int RunTopKBench(const std::string& dataset_name, int argc, char** argv);

/// Writes bench_artifacts/<name>.csv (creating the directory on first use)
/// with plottable data for the figure benches, plus a sibling
/// bench_artifacts/<name>.metrics.json embedding a snapshot of the global
/// metrics registry — so every artifact carries the counter context
/// (pruning work, unlearning work, cache behaviour) of the run that
/// produced it. Failures are reported but non-fatal to the bench itself.
void WriteArtifact(const std::string& name,
                   const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Writes bench_artifacts/<name>.metrics.json from the global registry
/// (also called by WriteArtifact). Use after table benches that emit no
/// CSV to still persist the run's counters.
void WriteMetricsSnapshot(const std::string& name);

}  // namespace bench
}  // namespace fume

#endif  // FUME_BENCH_BENCH_UTIL_H_
