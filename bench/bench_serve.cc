// Serving throughput/latency: closed-loop clients over loopback TCP against
// an in-process fume_serve Server, comparing batch-1 whatif serving (window
// 0, max_batch 1 — every request is its own ScoreWhatIf pass) against
// grouped serving (the WhatIfBatcher coalesces concurrent requests into one
// snapshot + scratch pass, deduplicates identical predicates, and scores
// the group across the tenant's whatif threads). The acceptance bar for the
// serve subsystem is grouped throughput strictly above batch-1 at >= 8
// concurrent clients; both modes serve the same tenant state, so every
// whatif answer must be identical across modes (the whatif_identical
// attestation) — batching may never change an answer.
//
// Artifacts: bench_artifacts/serve_latency.csv (per-cell latency summary),
// bench_artifacts/serve_latency.metrics.json (counter snapshot, incl. the
// serve.batch.* grouping behaviour) and bench_artifacts/BENCH_serve.json
// (per-endpoint throughput cells with p50/p99 latency plus the
// serve.batch.size histogram, consumed by bench_check). --smoke shrinks
// the substrate and client counts to a crash tripwire and drops the
// speedup gate (shared-CI timing is noise).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "stream/engine.h"
#include "util/json.h"
#include "util/socket.h"

namespace {

using namespace fume;
using namespace fume::bench;
using serve::Server;
using serve::ServerConfig;
using serve::TenantConfig;
using util::Socket;

constexpr const char* kTenant = "credit";

/// Sends one request line, reads one response line. Aborts the bench on
/// transport failure (a dead server invalidates every measurement).
std::string Exchange(Socket& sock, const std::string& request) {
  FUME_ABORT_NOT_OK(sock.SendAll(request));
  std::string line;
  auto rr = sock.ReadLine(&line, 60000);
  FUME_ABORT_NOT_OK(rr.status());
  if (rr.ValueOrDie() != Socket::ReadResult::kLine) {
    std::cerr << "server closed mid-exchange\n";
    std::abort();
  }
  return line;
}

/// Canonical view of one whatif answer, for cross-mode identity checks.
std::string WhatIfFingerprint(const util::JsonValue& response) {
  std::string fp;
  for (const char* key : {"rows_matched", "before_fairness", "after_fairness",
                          "before_accuracy", "after_accuracy",
                          "parity_reduction"}) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g;", response.NumberOr(key, -1.0));
    fp += buf;
  }
  return fp;
}

struct LatencyStats {
  double per_sec = 0.0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t requests = 0;
};

LatencyStats Summarize(std::vector<int64_t> latencies_us, double seconds) {
  LatencyStats s;
  s.requests = static_cast<int64_t>(latencies_us.size());
  if (latencies_us.empty() || seconds <= 0.0) return s;
  std::sort(latencies_us.begin(), latencies_us.end());
  s.per_sec = static_cast<double>(s.requests) / seconds;
  s.p50_us = latencies_us[latencies_us.size() / 2];
  s.p99_us = latencies_us[(latencies_us.size() * 99) / 100];
  return s;
}

/// One closed-loop run: `clients` threads, each issuing `per_client`
/// whatif requests round-robin over `predicates`, against a fresh server
/// in the given batch mode. Returns client-observed latency stats and
/// fills `answers` (predicate index -> fingerprint) for the identity check.
LatencyStats RunWhatIfCell(const Dataset& train, const Dataset& test,
                           const TenantConfig& tenant_config, int clients,
                           int per_client,
                           const std::vector<Predicate>& predicates,
                           std::map<size_t, std::string>* answers) {
  Server server{ServerConfig{}};
  FUME_ABORT_NOT_OK(
      server.RegisterTenant(kTenant, train, test, tenant_config));
  FUME_ABORT_NOT_OK(server.Start());

  std::vector<std::vector<int64_t>> latencies(
      static_cast<size_t>(clients));
  std::atomic<bool> identical{true};
  std::mutex answers_mu;
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto sock = Socket::Connect("127.0.0.1", server.port());
      FUME_ABORT_NOT_OK(sock.status());
      for (int r = 0; r < per_client; ++r) {
        const size_t p =
            (static_cast<size_t>(c) + static_cast<size_t>(r)) %
            predicates.size();
        const std::string request = serve::EncodeWhatIfRequest(
            c * per_client + r, kTenant, predicates[p]);
        Stopwatch watch;
        const std::string response = Exchange(*sock, request);
        latencies[static_cast<size_t>(c)].push_back(
            static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
        auto parsed = util::ParseJson(response);
        FUME_ABORT_NOT_OK(parsed.status());
        if (!parsed->BoolOr("ok", false)) {
          std::cerr << "whatif failed: " << response;
          std::abort();
        }
        const std::string fp = WhatIfFingerprint(*parsed);
        std::lock_guard<std::mutex> lk(answers_mu);
        auto it = answers->find(p);
        if (it == answers->end()) {
          answers->emplace(p, fp);
        } else if (it->second != fp) {
          identical.store(false);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = wall.ElapsedSeconds();
  server.Shutdown();
  if (!identical.load()) {
    // Cross-mode (or cross-request) divergence: the attestation in the
    // artifact will be false and bench_check --smoke fails the run.
    std::cerr << "whatif answers diverged across batching modes\n";
  }
  std::vector<int64_t> merged;
  for (const auto& v : latencies) {
    merged.insert(merged.end(), v.begin(), v.end());
  }
  LatencyStats stats = Summarize(std::move(merged), seconds);
  if (!identical.load()) stats.requests = -1;  // poison for the caller
  return stats;
}

/// Single-client latency profile of one read endpoint.
LatencyStats RunReadCell(Server& server, const std::string& endpoint,
                         const Dataset& test, int requests) {
  auto sock = Socket::Connect("127.0.0.1", server.port());
  FUME_ABORT_NOT_OK(sock.status());
  // One mid-sized predict batch reused for every request.
  std::vector<std::vector<int32_t>> rows;
  for (int64_t r = 0; r < std::min<int64_t>(32, test.num_rows()); ++r) {
    std::vector<int32_t> codes;
    for (int a = 0; a < test.schema().num_attributes(); ++a) {
      codes.push_back(test.Code(r, a));
    }
    rows.push_back(std::move(codes));
  }
  std::vector<int64_t> latencies;
  Stopwatch wall;
  for (int r = 0; r < requests; ++r) {
    const std::string request =
        endpoint == "predict"
            ? serve::EncodePredictRequest(r, kTenant, rows)
            : serve::EncodeExplainRequest(r, kTenant);
    Stopwatch watch;
    const std::string response = Exchange(*sock, request);
    latencies.push_back(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
    if (response.find("\"ok\":true") == std::string::npos) {
      std::cerr << endpoint << " failed: " << response;
      std::abort();
    }
  }
  return Summarize(std::move(latencies), wall.ElapsedSeconds());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  const bool full = !smoke && FullMode(argc, argv);
  PrintBanner("Serving throughput: grouped whatif batching vs batch-1",
              "serve subsystem; see docs/serving.md");

  synth::SynthOptions opts;
  opts.num_rows = smoke ? 500 : full ? 4000 : 2000;
  opts.seed = 4;
  auto bundle = synth::MakeGermanCredit(opts);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  TenantConfig tenant;
  tenant.engine.forest = BenchForestConfig(bundle->name);
  tenant.engine.fume = BenchFumeConfig(bundle->group);
  tenant.engine.fume.max_literals = 1;
  tenant.whatif_threads = 4;

  // Distinct single-literal candidates; concurrent clients also collide on
  // them, exercising the dedup path the batcher is built around.
  std::vector<Predicate> predicates;
  for (int attr = 0; attr < 3; ++attr) {
    for (int32_t value = 0; value < 2; ++value) {
      predicates.push_back(
          Predicate::Of(Literal{attr, LiteralOp::kEq, value}));
    }
  }

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 8};
  const int per_client = smoke ? 6 : full ? 60 : 30;
  const int read_requests = smoke ? 10 : full ? 200 : 100;

  // mode name -> batch knobs. batch-1 is the same code path degenerated.
  serve::BatchConfig batch1;
  batch1.window_us = 0;
  batch1.max_batch = 1;
  serve::BatchConfig grouped;
  grouped.window_us = 500;
  grouped.max_batch = 16;

  struct Cell {
    std::string endpoint;
    std::string mode;
    int clients = 0;
    LatencyStats stats;
  };
  std::vector<Cell> cells;
  std::map<size_t, std::string> answers;  // shared across every whatif cell
  bool whatif_identical = true;

  TablePrinter table(
      {"Endpoint", "Mode", "Clients", "Req/s", "p50 (us)", "p99 (us)"});
  for (const auto& [mode_name, batch] :
       std::vector<std::pair<std::string, serve::BatchConfig>>{
           {"batch1", batch1}, {"batched", grouped}}) {
    for (const int clients : client_counts) {
      TenantConfig config = tenant;
      config.batch = batch;
      LatencyStats stats =
          RunWhatIfCell(split->train, split->test, config, clients,
                        per_client, predicates, &answers);
      if (stats.requests < 0) {
        whatif_identical = false;
        stats.requests = static_cast<int64_t>(clients) * per_client;
      }
      cells.push_back({"whatif", mode_name, clients, stats});
      table.AddRow({"whatif", mode_name, std::to_string(clients),
                    FormatDouble(stats.per_sec, 1),
                    std::to_string(stats.p50_us),
                    std::to_string(stats.p99_us)});
    }
  }

  // Read-endpoint latency profile off one long-lived server.
  {
    Server server{ServerConfig{}};
    TenantConfig config = tenant;
    config.batch = grouped;
    FUME_ABORT_NOT_OK(
        server.RegisterTenant(kTenant, split->train, split->test, config));
    FUME_ABORT_NOT_OK(server.Start());
    for (const char* endpoint : {"predict", "explain"}) {
      LatencyStats stats =
          RunReadCell(server, endpoint, split->test, read_requests);
      cells.push_back({endpoint, "single", 1, stats});
      table.AddRow({endpoint, "single", "1", FormatDouble(stats.per_sec, 1),
                    std::to_string(stats.p50_us),
                    std::to_string(stats.p99_us)});
    }
    server.Shutdown();
  }
  table.Print(std::cout);

  // The gate: grouped whatif throughput strictly above batch-1 at the
  // highest client count.
  const int max_clients = client_counts.back();
  double batch1_rate = 0.0;
  double grouped_rate = 0.0;
  for (const Cell& c : cells) {
    if (c.endpoint != "whatif" || c.clients != max_clients) continue;
    (c.mode == "batch1" ? batch1_rate : grouped_rate) = c.stats.per_sec;
  }
  std::cout << "\nwhatif @" << max_clients << " clients: batch-1 "
            << FormatDouble(batch1_rate, 1) << "/s vs grouped "
            << FormatDouble(grouped_rate, 1) << "/s ("
            << FormatDouble(batch1_rate > 0.0 ? grouped_rate / batch1_rate
                                              : 0.0,
                            2)
            << "x; target > 1x)\n";

  const auto metrics = obs::MetricsRegistry::Global().Snapshot();
  obs::HistogramSnapshot batch_size;
  for (const auto& [name, hist] : metrics.histograms) {
    if (name == "serve.batch.size") batch_size = hist;
  }
  std::cout << "serve.batch.size: " << batch_size.count << " batches, mean "
            << FormatDouble(batch_size.Mean(), 2) << ", p99 <= "
            << batch_size.QuantileUpperBound(0.99) << "\n";

  std::vector<std::vector<std::string>> csv_rows;
  for (const Cell& c : cells) {
    csv_rows.push_back({c.endpoint, c.mode, std::to_string(c.clients),
                        FormatDouble(c.stats.per_sec, 2),
                        std::to_string(c.stats.p50_us),
                        std::to_string(c.stats.p99_us)});
  }
  WriteArtifact("serve_latency",
                {"endpoint", "mode", "clients", "per_sec", "p50_us", "p99_us"},
                csv_rows);

  bool finite = true;
  for (const Cell& c : cells) {
    if (!std::isfinite(c.stats.per_sec) || c.stats.per_sec <= 0.0) {
      finite = false;
    }
  }

  std::ofstream json("bench_artifacts/BENCH_serve.json");
  if (json) {
    json.precision(6);
    json << "{\n  \"bench\": \"serve\",\n"
         << "  \"substrate\": \"" << bundle->name << " (" << opts.num_rows
         << " rows)\",\n"
         << "  \"whatif_identical\": "
         << (whatif_identical ? "true" : "false") << ",\n"
         << "  \"timings_finite\": " << (finite ? "true" : "false") << ",\n"
         << "  \"batch_size_histogram\": {\"count\": " << batch_size.count
         << ", \"mean\": " << batch_size.Mean()
         << ", \"p50_le\": " << batch_size.QuantileUpperBound(0.5)
         << ", \"p99_le\": " << batch_size.QuantileUpperBound(0.99)
         << "},\n"
         << "  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      json << "    {\"endpoint\": \"" << c.endpoint << "\", \"mode\": \""
           << c.mode << "\", \"clients\": \"" << c.clients
           << "\", \"requests\": " << c.stats.requests
           << ", \"requests_per_sec\": " << c.stats.per_sec
           << ", \"p50_us\": " << c.stats.p50_us
           << ", \"p99_us\": " << c.stats.p99_us << "}"
           << (i + 1 < cells.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::cout << "wrote bench_artifacts/BENCH_serve.json\n";
  } else {
    std::cout << "could not write bench_artifacts/BENCH_serve.json\n";
  }

  if (!whatif_identical || !finite) return 1;
  // Smoke asserts survival, identity and finiteness only; the batching
  // speedup is a perf measurement that needs real concurrency.
  if (smoke) return 0;
  return grouped_rate > batch1_rate ? 0 : 1;
}
