// Micro-benchmarks (google-benchmark) of the DaRE forest primitives that
// dominate FUME's runtime: training, cloning, batch deletion vs scratch
// retraining, prediction, and the exact-vs-sampled threshold modes. These
// back the complexity discussion in the paper's §5.1.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace {

using namespace fume;

struct Env {
  Dataset data;
  DareForest forest;
};

const Env& SharedEnv(ThresholdMode mode) {
  static Env* exact = nullptr;
  static Env* sampled = nullptr;
  Env*& slot = mode == ThresholdMode::kExact ? exact : sampled;
  if (slot == nullptr) {
    auto bundle = synth::MakeParametric(20000, 12, 4, 5);
    FUME_ABORT_NOT_OK(bundle.status());
    ForestConfig config;
    config.num_trees = 10;
    config.max_depth = 10;
    config.random_depth = 2;
    config.seed = 77;
    config.threshold_mode = mode;
    config.num_sampled_thresholds = 3;
    auto forest = DareForest::Train(bundle->data, config);
    FUME_ABORT_NOT_OK(forest.status());
    slot = new Env{std::move(bundle->data), std::move(*forest)};
  }
  return *slot;
}

std::vector<RowId> RandomRows(int64_t n, int batch, uint64_t seed) {
  Rng rng(seed);
  std::vector<RowId> all(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) all[static_cast<size_t>(r)] = static_cast<RowId>(r);
  rng.Shuffle(&all);
  all.resize(static_cast<size_t>(batch));
  return all;
}

void BM_Train(benchmark::State& state) {
  auto bundle = synth::MakeParametric(state.range(0), 12, 4, 5);
  FUME_ABORT_NOT_OK(bundle.status());
  ForestConfig config;
  config.num_trees = 10;
  config.max_depth = 10;
  config.random_depth = 2;
  for (auto _ : state) {
    auto forest = DareForest::Train(bundle->data, config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Train)->Arg(2000)->Arg(10000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_Clone(benchmark::State& state) {
  const Env& env = SharedEnv(ThresholdMode::kExact);
  for (auto _ : state) {
    DareForest clone = env.forest.Clone();
    benchmark::DoNotOptimize(clone);
  }
}
BENCHMARK(BM_Clone)->Unit(benchmark::kMillisecond);

// The FUME inner loop: clone + unlearn a batch. Compare against BM_Retrain.
void BM_UnlearnBatch(benchmark::State& state) {
  const Env& env = SharedEnv(ThresholdMode::kExact);
  const auto rows =
      RandomRows(env.data.num_rows(), static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    DareForest clone = env.forest.Clone();
    FUME_ABORT_NOT_OK(clone.DeleteRows(rows));
    benchmark::DoNotOptimize(clone);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnlearnBatch)->Arg(10)->Arg(100)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_RetrainAfterDrop(benchmark::State& state) {
  const Env& env = SharedEnv(ThresholdMode::kExact);
  const auto rows =
      RandomRows(env.data.num_rows(), static_cast<int>(state.range(0)), 3);
  std::vector<int64_t> rows64(rows.begin(), rows.end());
  ForestConfig config = env.forest.config();
  for (auto _ : state) {
    auto forest = DareForest::Train(env.data.DropRows(rows64), config);
    benchmark::DoNotOptimize(forest);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetrainAfterDrop)->Arg(10)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_PredictAll(benchmark::State& state) {
  const Env& env = SharedEnv(ThresholdMode::kExact);
  for (auto _ : state) {
    auto preds = env.forest.PredictAll(env.data);
    benchmark::DoNotOptimize(preds);
  }
  state.SetItemsProcessed(state.iterations() * env.data.num_rows());
}
BENCHMARK(BM_PredictAll)->Unit(benchmark::kMillisecond);

// Ablation: exact vs sampled thresholds (paper's k' parameter).
void BM_UnlearnThresholdMode(benchmark::State& state) {
  const ThresholdMode mode = state.range(0) == 0 ? ThresholdMode::kExact
                                                 : ThresholdMode::kSampled;
  const Env& env = SharedEnv(mode);
  const auto rows = RandomRows(env.data.num_rows(), 500, 9);
  for (auto _ : state) {
    DareForest clone = env.forest.Clone();
    FUME_ABORT_NOT_OK(clone.DeleteRows(rows));
    benchmark::DoNotOptimize(clone);
  }
}
BENCHMARK(BM_UnlearnThresholdMode)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
