// Regenerates the paper's Table 3: top-5 subsets attributable to
// statistical disparity in (synthetic) German Credit, support 5-15%,
// plus the DropUnprivUnfavor baseline comparison of §6.3.

#include "bench_util.h"

int main(int argc, char** argv) {
  fume::bench::PrintBanner(
      "Table 3: Top-5 attributable subsets — German Credit",
      "paper Table 3 / §6.3");
  return fume::bench::RunTopKBench("german-credit", argc, argv);
}
