// Ablation (ours, called out in DESIGN.md): contribution of each pruning
// rule. Runs FUME on German Credit with Rules 2, 4 and 5 toggled and
// reports evaluations, wall time and whether the top-1 subset changes.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Ablation: pruning rules on/off (German Credit)",
              "DESIGN.md ablation; complements paper Table 9");

  auto dataset = synth::FindDataset("german-credit");
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;

  struct Variant {
    const char* label;
    bool rule2, rule4, rule5;
  };
  const Variant variants[] = {
      {"all rules (paper)", true, true, true},
      {"no Rule 2 (support)", false, true, true},
      {"no Rule 4 (parent)", true, false, true},
      {"no Rule 5 (positive)", true, true, false},
      {"no pruning at all", false, false, false},
  };

  TablePrinter table({"Variant", "Evaluations", "Cache hits", "Time (sec)",
                      "Top-1 subset", "Top-1 reduction"});
  for (const Variant& variant : variants) {
    FumeConfig config = BenchFumeConfig(p.group);
    // Expand to 3 literals so Rules 4/5 (which gate lattice expansion)
    // actually have descendants to prune.
    config.max_literals = 3;
    config.rule2_support = variant.rule2;
    config.rule4_parent = variant.rule4;
    config.rule5_positive = variant.rule5;
    Stopwatch watch;
    auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
    const double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      table.AddRow({variant.label, "-", "-", FormatDouble(seconds, 2),
                    result.status().ToString(), "-"});
      continue;
    }
    std::string top = "(none)";
    std::string reduction = "-";
    if (!result->top_k.empty()) {
      top = result->top_k[0].predicate.ToString(p.train.schema());
      reduction = FormatPercent(result->top_k[0].attribution);
    }
    table.AddRow({variant.label,
                  std::to_string(result->stats.attribution_evaluations),
                  std::to_string(result->stats.cache_hits),
                  FormatDouble(seconds, 2), top, reduction});
  }
  table.Print(std::cout);
  std::cout <<
      "\nReading: the rules buy large evaluation savings; Rules 4/5 can in "
      "principle change the reported set (they prune candidates, not just "
      "expansions) — this table quantifies that trade on this dataset.\n";
  return 0;
}
