// Regenerates the paper's Figure 4 (RQ2): quality of the identified
// attributable subsets — maximum and average parity reduction of the top-5
// subsets, per dataset, per support range {0-5%, 5-15%, >30%}. Also reports
// the accuracy change, backing the paper's observation that accuracy drops
// at most a few percent in the 5-15% range.

#include <algorithm>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Figure 4: max/avg bias reduction of top-5 subsets",
              "paper Figure 4 / §6.3 (RQ2)");

  struct Range {
    const char* label;
    double lo, hi;
  };
  const Range ranges[] = {
      {"0-5%", 0.005, 0.05}, {"5-15%", 0.05, 0.15}, {">30%", 0.30, 0.60}};

  TablePrinter table({"Dataset", "Support", "Max reduction", "Avg reduction",
                      "#subsets", "Max accuracy drop"});
  std::vector<std::vector<std::string>> artifact;
  for (const auto& dataset : synth::AllDatasets()) {
    auto pipeline = SetupPipeline(dataset, full);
    FUME_ABORT_NOT_OK(pipeline.status());
    Pipeline& p = *pipeline;
    const double base_accuracy = p.model.Accuracy(p.test);

    for (const Range& range : ranges) {
      FumeConfig config = BenchFumeConfig(p.group);
      config.support_min = range.lo;
      config.support_max = range.hi;
      auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
      if (!result.ok()) {
        table.AddRow({dataset.name, range.label, "(no violation)", "-", "0",
                      "-"});
        continue;
      }
      double max_reduction = 0.0, avg = 0.0, max_acc_drop = 0.0;
      for (const auto& subset : result->top_k) {
        max_reduction = std::max(max_reduction, subset.attribution);
        avg += subset.attribution;
        max_acc_drop =
            std::max(max_acc_drop, base_accuracy - subset.new_accuracy);
      }
      if (!result->top_k.empty()) {
        avg /= static_cast<double>(result->top_k.size());
      }
      table.AddRow({dataset.name, range.label, FormatPercent(max_reduction),
                    FormatPercent(avg),
                    std::to_string(result->top_k.size()),
                    FormatPercent(max_acc_drop)});
      artifact.push_back({dataset.name, range.label,
                          FormatDouble(max_reduction, 6),
                          FormatDouble(avg, 6),
                          FormatDouble(max_acc_drop, 6)});
    }
  }
  table.Print(std::cout);
  WriteArtifact("fig4_quality",
                {"dataset", "support_range", "max_reduction", "avg_reduction",
                 "max_accuracy_drop"},
                artifact);
  std::cout <<
      "\nPaper shape to check: German reaches >90% in every range; ACS "
      "Income stays low (~12-27%) at 5-15% but recovers (~70%) at >30%; "
      "accuracy drops in the 5-15% range stay within a few percent.\n";
  return 0;
}
