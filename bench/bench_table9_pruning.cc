// Regenerates the paper's Table 9: effect of pruning on subset exploration
// for German Credit — possible vs explored subsets per lattice level and
// the pruned percentage, expanding to 4 literals as the paper does.
//
// "Possible subsets" counts what the UNPRUNED lattice would generate (the
// paper's denominator): level 1 = all literals; level l = apriori join
// pairs over the full level-(l-1) lattice, counted combinatorially for
// equality literals (no materialization needed).

#include <iostream>
#include <vector>

#include "bench_util.h"

namespace {

// For equality-only literals over attributes with cardinalities card[a],
// the unpruned lattice's level-l node count and level-(l+1) join-pair count.
//
// A level-l node is l literals on l distinct attributes (Rule 1 removes
// same-attribute duplicates when the node is formed, exactly as the paper's
// lattice does); the join at level l+1 considers every pair of level-l
// nodes sharing their first l-1 literals. Nodes sharing that prefix differ
// only in the last literal, whose attribute must rank above the prefix's
// largest attribute — so for each prefix with largest attribute a, the
// group size is S(a) = sum of cardinalities of attributes > a, and the pair
// count is C(S(a), 2), summed over prefixes via a simple DP.
// possible(1) = number of literals T;
// possible(2) = C(T, 2)                       (all level-1 pairs);
// possible(L) = sum over valid (L-2)-literal prefixes Q of C(S(max(Q)), 2)
//               for L >= 3, where S(a) = number of literals on attributes
//               ranked above a (both join partners extend Q by one such
//               literal; same-attribute partner pairs are counted here and
//               rejected by Rule 1, matching the paper's accounting).
//
// N(m, a) = number of m-literal predicates whose largest attribute is a:
//   N(1, a) = card(a);   N(m, a) = card(a) * sum_{a' < a} N(m-1, a').
std::vector<int64_t> CountUnprunedPossible(const std::vector<int64_t>& card,
                                           int max_level) {
  const int p = static_cast<int>(card.size());
  std::vector<int64_t> suffix(static_cast<size_t>(p) + 1, 0);
  for (int a = p - 1; a >= 0; --a) {
    suffix[static_cast<size_t>(a)] =
        suffix[static_cast<size_t>(a) + 1] + card[static_cast<size_t>(a)];
  }
  const int64_t total = suffix[0];

  std::vector<int64_t> possible;
  possible.push_back(total);
  if (max_level >= 2) possible.push_back(total * (total - 1) / 2);

  // dp[a] = N(m, a) for the current prefix length m.
  std::vector<int64_t> dp(static_cast<size_t>(p));
  for (int a = 0; a < p; ++a) {
    dp[static_cast<size_t>(a)] = card[static_cast<size_t>(a)];
  }
  for (int level = 3; level <= max_level; ++level) {
    // dp holds N(level - 3, .) entering this iteration for level > 3 (it
    // starts at N(1, .) for level == 3); advance it to the prefix length
    // level - 2.
    if (level > 3) {
      std::vector<int64_t> next(static_cast<size_t>(p), 0);
      int64_t running = 0;
      for (int a = 0; a < p; ++a) {
        next[static_cast<size_t>(a)] = running * card[static_cast<size_t>(a)];
        running += dp[static_cast<size_t>(a)];
      }
      dp = std::move(next);
    }
    int64_t pairs = 0;
    for (int a = 0; a < p; ++a) {
      const int64_t s = suffix[static_cast<size_t>(a) + 1];
      pairs += dp[static_cast<size_t>(a)] * (s * (s - 1) / 2);
    }
    possible.push_back(pairs);
  }
  return possible;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Table 9: Effect of pruning on subset exploration",
              "paper Table 9 / §6.4");

  auto dataset = synth::FindDataset("german-credit");
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;

  FumeConfig config = BenchFumeConfig(p.group);
  config.max_literals = 4;  // paper expands the lattice to level 4
  Stopwatch watch;
  auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
  FUME_ABORT_NOT_OK(result.status());

  // Unpruned "possible" counts: level 1 = literals, level l>=2 = join pairs
  // over the full level-(l-1) lattice.
  std::vector<int64_t> cards;
  for (int j = 0; j < p.train.num_attributes(); ++j) {
    cards.push_back(p.train.schema().attribute(j).cardinality());
  }
  const std::vector<int64_t> possible_per_level =
      CountUnprunedPossible(cards, 4);

  TablePrinter table({"Level", "Possible subsets (unpruned lattice)",
                      "Subsets explored", "Subsets pruned (%)"});
  for (const LevelStats& level : result->stats.levels) {
    const int64_t possible =
        possible_per_level[static_cast<size_t>(level.level) - 1];
    const double pruned =
        possible == 0 ? 0.0
                      : 100.0 * (1.0 - static_cast<double>(level.explored) /
                                           static_cast<double>(possible));
    table.AddRow({std::to_string(level.level), std::to_string(possible),
                  std::to_string(level.explored), FormatDouble(pruned, 2)});
  }
  table.Print(std::cout);
  std::cout << "attribution evaluations: "
            << result->stats.attribution_evaluations
            << " (cache hits: " << result->stats.cache_hits << "), time "
            << FormatDouble(watch.ElapsedSeconds(), 2) << " s\n";
  std::cout <<
      "\nPaper shape to check: level 1 prunes little (support filter only); "
      "deeper levels prune the vast majority — the paper reports >99% of "
      "possible level-3/4 subsets never being evaluated.\n";
  return 0;
}
