// Regenerates the paper's Table 5: top-5 subsets attributable to
// statistical disparity in (synthetic) Stop-Question-Frisk, support 5-15%.
// The headline shape: Sex=Female surfaces as SS1 with near-total parity
// reduction via the planted sex-race proxy correlation.

#include "bench_util.h"

int main(int argc, char** argv) {
  fume::bench::PrintBanner(
      "Table 5: Top-5 attributable subsets — Stop-Question-Frisk",
      "paper Table 5 / §6.3");
  return fume::bench::RunTopKBench("sqf", argc, argv);
}
