// Comparator study (paper §7 related work): SliceFinder-style accuracy
// slicing vs FUME's fairness attribution on German Credit. For both
// methods' top-5 subsets we report the subset's parity reduction when
// unlearned — quantifying the paper's argument that "slices where the model
// performs worse" are not the subsets that explain unfairness.

#include <iostream>

#include "bench_util.h"
#include "core/removal_method.h"
#include "core/slice_finder.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Comparator: SliceFinder-style slices vs FUME subsets",
              "paper §7 related-work discussion");

  auto dataset = synth::FindDataset("german-credit");
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;

  FumeConfig fume_config = BenchFumeConfig(p.group);
  auto fume_result =
      ExplainFairnessViolation(p.model, p.train, p.test, fume_config);
  FUME_ABORT_NOT_OK(fume_result.status());

  SliceFinderConfig slice_config;
  slice_config.top_k = 5;
  slice_config.support_min = fume_config.support_min;
  slice_config.support_max = fume_config.support_max;
  slice_config.max_literals = fume_config.max_literals;
  auto slices = FindProblematicSlices(p.model, p.train, slice_config);
  FUME_ABORT_NOT_OK(slices.status());

  UnlearnRemovalMethod removal(&p.model, &p.test, p.group,
                               fume_config.metric);
  const double original = fume_result->original_fairness;

  TablePrinter table({"Method", "#", "Subset", "Support",
                      "Error-rate gap", "Parity reduction"});
  int index = 1;
  for (const auto& subset : fume_result->top_k) {
    table.AddRow({"FUME", std::to_string(index++),
                  subset.predicate.ToString(p.train.schema()),
                  FormatPercent(subset.support), "-",
                  FormatPercent(subset.attribution)});
  }
  index = 1;
  for (const Slice& slice : *slices) {
    // Measure the slice's actual parity reduction via unlearning.
    std::vector<int32_t> matched = slice.predicate.MatchingRows(p.train);
    auto eval = removal.EvaluateWithout(
        std::vector<RowId>(matched.begin(), matched.end()));
    FUME_ABORT_NOT_OK(eval.status());
    const double reduction =
        (std::abs(original) - std::abs(eval->fairness)) / std::abs(original);
    table.AddRow({"SliceFinder", std::to_string(index++),
                  slice.predicate.ToString(p.train.schema()),
                  FormatPercent(slice.support),
                  FormatPercent(slice.effect_size),
                  FormatPercent(reduction)});
  }
  table.Print(std::cout);
  std::cout <<
      "\nReading: SliceFinder ranks by where the model is inaccurate; its "
      "slices' parity reductions are typically far below FUME's top-5 (and "
      "can be negative), showing accuracy-based slicing does not localize "
      "fairness violations — the gap the paper's related-work section "
      "highlights.\n";
  return 0;
}
