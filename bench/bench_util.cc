#include "bench_util.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "forest/tree.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/query_scope.h"

namespace fume {
namespace bench {

bool FullMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("FUME_BENCH_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  const char* env = std::getenv("FUME_BENCH_SMOKE");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

int64_t BenchRows(const synth::RegisteredDataset& dataset, bool full) {
  if (full) return dataset.paper_rows;
  // German is already small; scale the rest to container-friendly sizes.
  if (dataset.name == "german-credit") return dataset.paper_rows;
  // MEPS has 42 attributes -> by far the largest level-2 lattice; keep the
  // scaled run affordable.
  if (dataset.name == "meps") return 6000;
  return 8000;
}

ForestConfig BenchForestConfig(const std::string& dataset_name) {
  ForestConfig config;
  config.num_trees = 10;
  config.random_depth = 2;
  config.seed = 31;
  // Depth tuned per dataset so the trained model exhibits a clear group
  // disparity (the paper starts from a biased classifier).
  if (dataset_name == "adult-income") {
    config.max_depth = 10;
  } else if (dataset_name == "meps") {
    // MEPS: deeper and wider — 42 mostly-binary attributes need depth for a
    // clear violation, and more trees damp the prediction variance that
    // otherwise lets noise subsets score spuriously high reductions.
    config.max_depth = 12;
    config.num_trees = 20;
  } else {
    config.max_depth = 8;
  }
  return config;
}

FumeConfig BenchFumeConfig(const GroupSpec& group, FairnessMetric metric) {
  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.05;
  config.support_max = 0.15;
  config.max_literals = 2;
  config.metric = metric;
  config.group = group;
  return config;
}

Result<Pipeline> SetupPipeline(const synth::RegisteredDataset& dataset,
                               bool full, uint64_t seed) {
  synth::SynthOptions opts;
  opts.num_rows = BenchRows(dataset, full);
  opts.seed = seed;
  FUME_ASSIGN_OR_RETURN(synth::DatasetBundle bundle, dataset.make(opts));

  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  FUME_ASSIGN_OR_RETURN(TrainTestSplit split,
                        SplitTrainTest(bundle.data, split_opts));

  Pipeline p;
  p.name = dataset.name;
  p.index_prefix = dataset.index_prefix;
  p.rows_used = opts.num_rows;
  p.paper_rows = dataset.paper_rows;
  p.train = std::move(split.train);
  p.test = std::move(split.test);
  p.group = bundle.group;
  p.forest_config = BenchForestConfig(dataset.name);
  Stopwatch watch;
  FUME_ASSIGN_OR_RETURN(p.model, DareForest::Train(p.train, p.forest_config));
  p.train_seconds = watch.ElapsedSeconds();
  return p;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << title << "\n(reproduces " << paper_ref << ")\n"
            << "================================================================\n";
}

int RunTopKBench(const std::string& dataset_name, int argc, char** argv) {
  const bool full = FullMode(argc, argv);
  auto dataset = synth::FindDataset(dataset_name);
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;

  std::cout << "dataset: " << p.name << " (" << p.rows_used << " rows"
            << (p.rows_used == p.paper_rows
                    ? ", paper-sized"
                    : ", scaled from " + std::to_string(p.paper_rows))
            << "), train " << p.train.num_rows() << " / test "
            << p.test.num_rows() << ", forest " << p.forest_config.num_trees
            << " trees depth " << p.forest_config.max_depth << "\n\n";

  FumeConfig config = BenchFumeConfig(p.group);
  Stopwatch watch;
  obs::QueryScope scope("search");
  auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
  const obs::QueryCost cost = scope.Finish();
  if (!result.ok()) {
    std::cout << "FUME: " << result.status().ToString() << "\n";
    return 0;
  }
  const double fume_seconds = watch.ElapsedSeconds();

  PrintViolationSummary(*result, config.metric, std::cout);
  PrintTopK(*result, p.train.schema(), p.index_prefix, std::cout);
  std::cout << "\n";
  PrintExplorationStats(result->stats, std::cout);
  std::cout << "FUME wall time: " << FormatDouble(fume_seconds, 2) << " s\n"
            << "query cost: " << cost.CompactString() << "\n\n";

  auto baseline = RunDropUnprivUnfavor(p.train, p.test, p.forest_config,
                                       p.group, config.metric);
  if (baseline.ok()) {
    PrintBaseline(*baseline, std::cout);
  } else {
    std::cout << "baseline: " << baseline.status().ToString() << "\n";
  }
  WriteMetricsSnapshot("topk_" + dataset_name);
  return 0;
}

void WriteArtifact(const std::string& name,
                   const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories("bench_artifacts", ec);
  const std::string path = "bench_artifacts/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "(could not write artifact " << path << ")\n";
    return;
  }
  out << Join(header, ",") << "\n";
  for (const auto& row : rows) out << Join(row, ",") << "\n";
  std::cout << "artifact written: " << path << " (" << rows.size()
            << " rows)\n";
  WriteMetricsSnapshot(name);
}

void WriteMetricsSnapshot(const std::string& name) {
  // Sample the process-level gauges first so every snapshot carries the
  // run's peak RSS and live CoW node population.
  obs::SetProcessGauges();
  cow_debug::RefreshLiveNodesGauge();
  std::error_code ec;
  std::filesystem::create_directories("bench_artifacts", ec);
  const std::string path = "bench_artifacts/" + name + ".metrics.json";
  std::ofstream out(path);
  if (!(out << obs::MetricsRegistry::Global().Snapshot().ToJson() << "\n")) {
    std::cerr << "(could not write metrics snapshot " << path << ")\n";
    return;
  }
  std::cout << "metrics snapshot written: " << path << "\n";
}

}  // namespace bench
}  // namespace fume
