// What-if evaluation throughput: the seed deep-copy + full-rescore path vs
// CoW clones + delta-aware rescoring vs CoW + flat-arena full rescoring
// (docs/performance.md), on the parametric forests of the Figure 5
// efficiency study.
//
// An UnlearnRemovalMethod evaluation is clone + DeleteRows + rescore; the
// CoW pipeline optimizes the clone and rescore legs, while DeleteRows does
// identical work on either path. The bench therefore sweeps the deletion
// batch size: small batches isolate the optimized legs (the streaming
// engine's common case), the largest batch approximates the search's
// support-range row sets where unlearning work dominates both paths. The
// arena strategy targets the large batches, where a broad mutation makes
// the pointer diff-walk re-walk most rows anyway: changed trees are
// rescored by streaming every test row through their compiled SoA arenas.
// Reports evaluations/sec and bytes cloned per evaluation per cell, plus
// full top-k searches at 1/4/8 threads whose outputs are checked identical
// across every strategy x thread cell, plus a direct arena-vs-pointer
// byte-identity probe. Artifacts: eval_throughput.csv (+ metrics snapshot)
// and BENCH_eval.json in bench_artifacts/.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "synth/datasets.h"

namespace {

using namespace fume;
using namespace fume::bench;

struct Setup {
  int64_t rows = 0;
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest model;
};

Setup MakeSetup(int64_t rows) {
  auto bundle = synth::MakeParametric(rows, 10, 2, 7);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());
  ForestConfig forest_config;  // the Figure 5 forest
  forest_config.num_trees = 10;
  forest_config.max_depth = 8;
  forest_config.random_depth = 2;
  forest_config.seed = 31;
  auto model = DareForest::Train(split->train, forest_config);
  FUME_ABORT_NOT_OK(model.status());
  return Setup{rows, std::move(split->train), std::move(split->test),
               bundle->group, std::move(*model)};
}

// Deterministic spread-out batches of live training rows; every evaluation
// clones the pristine model, so batches never compound.
std::vector<std::vector<RowId>> MakeBatches(const Setup& s, int batch_size,
                                            int num_batches) {
  const int64_t n = s.model.num_training_rows();
  std::vector<std::vector<RowId>> batches;
  batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    std::vector<RowId> rows;
    rows.reserve(static_cast<size_t>(batch_size));
    for (int j = 0; j < batch_size; ++j) {
      const uint64_t key = static_cast<uint64_t>(b) * 131 +
                           static_cast<uint64_t>(j) * 977;
      rows.push_back(static_cast<RowId>(key % static_cast<uint64_t>(n)));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    batches.push_back(std::move(rows));
  }
  return batches;
}

// The three evaluation pipelines under comparison. deep-copy is the seed
// reference (eager clone + pointer-walk PredictAll); cow-delta pins the
// pointer diff-walk for every batch size; arena is the production default
// (diff-walk for small batches, arena full rescore from
// kArenaFullRescoreMinBatch up).
struct StrategySpec {
  const char* name;
  UnlearnRemovalMethod::Options options;
};

const StrategySpec kStrategies[] = {
    {"deep-copy", {/*cow_delta=*/false, /*arena=*/false}},
    {"cow-delta", {/*cow_delta=*/true, /*arena=*/false}},
    {"arena", {/*cow_delta=*/true, /*arena=*/true}},
};

struct Throughput {
  int64_t evaluations = 0;
  double seconds = 0.0;
  double evals_per_sec = 0.0;
  int64_t clone_bytes_per_eval = 0;
};

// Serial evaluation loop. The warm-up evaluation (which also seeds the CoW
// base prediction cache, a one-off cost amortized across a search) is
// excluded, matching how a search amortizes it.
Throughput Measure(const Setup& s,
                   const std::vector<std::vector<RowId>>& batches,
                   const UnlearnRemovalMethod::Options& options) {
  UnlearnRemovalMethod removal(&s.model, &s.test, s.group,
                               FairnessMetric::kStatisticalParity, options);
  auto warmup = removal.EvaluateWithout(batches.front());
  FUME_ABORT_NOT_OK(warmup.status());

  obs::Counter* copied = obs::GetCounter("forest.unlearn.cow_nodes_copied");
  const int64_t copied_before = copied->Value();
  Throughput t;
  Stopwatch watch;
  for (const auto& rows : batches) {
    auto eval = removal.EvaluateWithout(rows);
    FUME_ABORT_NOT_OK(eval.status());
    ++t.evaluations;
  }
  t.seconds = watch.ElapsedSeconds();
  t.evals_per_sec = t.seconds > 0.0
                        ? static_cast<double>(t.evaluations) / t.seconds
                        : 0.0;
  const int64_t forest_bytes = s.model.ApproxHeapBytes();
  if (options.cow_delta) {
    // CoW copies individual nodes; charge each the forest's mean node size.
    const int64_t nodes = s.model.num_nodes();
    const int64_t node_bytes = nodes > 0 ? forest_bytes / nodes : 0;
    t.clone_bytes_per_eval = t.evaluations > 0
                                 ? (copied->Value() - copied_before) *
                                       node_bytes / t.evaluations
                                 : 0;
  } else {
    t.clone_bytes_per_eval = forest_bytes;  // every eval copies everything
  }
  return t;
}

std::string TopKSignature(const FumeResult& result, const Schema& schema) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& s : result.top_k) {
    os << s.predicate.ToString(schema) << '|' << s.attribution << '|'
       << s.new_fairness << '|' << s.new_accuracy << '\n';
  }
  os << result.stats.attribution_evaluations;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  const bool full = !smoke && FullMode(argc, argv);
  PrintBanner(
      "What-if evaluation throughput: deep-copy vs CoW + delta vs arena",
      "docs/performance.md / Figure 5 forests");

  const std::vector<int64_t> sizes =
      smoke ? std::vector<int64_t>{2000}
            : (full ? std::vector<int64_t>{5000, 10000, 20000, 50000}
                    : std::vector<int64_t>{2000, 5000, 10000, 20000});
  const int64_t mid_size = sizes[sizes.size() / 2];
  // 1/4: streaming-style single-op what-ifs (the clone + rescore legs
  // dominate); 64/1024: toward the search's support-range subsets where
  // shared unlearning work dominates both strategies. Smoke keeps one
  // small and one large batch so the arena full-rescore leg runs in CI.
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 4, 64} : std::vector<int>{1, 4, 64, 1024};
  const int kHeadlineBatch = 4;
  const int kArenaHeadlineBatch = 64;
  const int num_batches = smoke ? 8 : (full ? 96 : 48);

  TablePrinter table({"rows", "batch", "strategy", "evals", "evals/sec",
                      "clone KiB/eval", "speedup"});
  std::vector<std::vector<std::string>> artifact;
  double mid_speedup = 0.0;
  double arena_speedup = 0.0;

  for (int64_t rows : sizes) {
    Setup s = MakeSetup(rows);
    for (int batch : batch_sizes) {
      const auto batches = MakeBatches(s, batch, num_batches);
      std::vector<Throughput> results;
      for (const StrategySpec& strategy : kStrategies) {
        results.push_back(Measure(s, batches, strategy.options));
      }
      const double deep_rate = results.front().evals_per_sec;
      const double cow_rate = results[1].evals_per_sec;
      if (rows == mid_size && batch == kHeadlineBatch && deep_rate > 0.0) {
        mid_speedup = cow_rate / deep_rate;
      }
      if (rows == mid_size && batch == kArenaHeadlineBatch && cow_rate > 0.0) {
        arena_speedup = results[2].evals_per_sec / cow_rate;
      }
      for (size_t i = 0; i < std::size(kStrategies); ++i) {
        const Throughput& t = results[i];
        const double speedup =
            i == 0 ? 1.0
                   : (deep_rate > 0.0 ? t.evals_per_sec / deep_rate : 0.0);
        table.AddRow(
            {std::to_string(rows), std::to_string(batch), kStrategies[i].name,
             std::to_string(t.evaluations),
             FormatDouble(t.evals_per_sec, 1),
             FormatDouble(
                 static_cast<double>(t.clone_bytes_per_eval) / 1024.0, 1),
             FormatDouble(speedup, 2) + "x"});
        artifact.push_back(
            {std::to_string(rows), std::to_string(batch), kStrategies[i].name,
             std::to_string(t.evaluations), FormatDouble(t.seconds, 4),
             FormatDouble(t.evals_per_sec, 2),
             std::to_string(t.clone_bytes_per_eval),
             FormatDouble(speedup, 3)});
      }
    }
  }
  table.Print(std::cout);
  WriteArtifact("eval_throughput",
                {"rows", "batch_rows", "strategy", "evaluations", "seconds",
                 "evals_per_sec", "clone_bytes_per_eval", "speedup_vs_deep"},
                artifact);

  // Full searches: every strategy x thread cell must produce the same top-k
  // (the CoW + arena pipelines' exactness claim, end to end — deep-copy
  // cells walk pointers, arena cells stream the compiled arenas, and their
  // searches must rank identical subsets with identical scores).
  std::cout << "\nSearch identity check (mid-size forest, " << mid_size
            << " rows)\n";
  Setup s = MakeSetup(mid_size);
  FumeConfig config = BenchFumeConfig(s.group);
  std::string reference;
  bool identical = true;
  TablePrinter search_table({"strategy", "threads", "search sec"});
  for (const StrategySpec& strategy : kStrategies) {
    for (const int threads : {1, 4, 8}) {
      UnlearnRemovalMethod removal(&s.model, &s.test, s.group, config.metric,
                                   strategy.options);
      config.num_threads = threads;
      Stopwatch watch;
      auto result =
          ExplainWithRemoval(s.model, s.train, s.test, config, &removal);
      const double seconds = watch.ElapsedSeconds();
      FUME_ABORT_NOT_OK(result.status());
      const std::string sig = TopKSignature(*result, s.train.schema());
      if (reference.empty()) {
        reference = sig;
      } else if (sig != reference) {
        identical = false;
      }
      search_table.AddRow({strategy.name, std::to_string(threads),
                           FormatDouble(seconds, 3)});
    }
  }
  search_table.Print(std::cout);

  // Direct arena-vs-pointer probe on the mid-size model: the compiled-arena
  // batch traversal must reproduce the per-row pointer walk byte for byte.
  const bool arena_identical =
      s.model.PredictProbAll(s.test) == s.model.PredictProbAllPointer(s.test) &&
      s.model.PredictAll(s.test) == s.model.PredictAllPointer(s.test);
  std::cout << "top-k identical across all cells: "
            << (identical ? "yes" : "NO — exactness violation") << '\n'
            << "arena vs pointer predictions byte-identical: "
            << (arena_identical ? "yes" : "NO — exactness violation") << '\n'
            << "cow-delta speedup at " << mid_size << " rows, batch "
            << kHeadlineBatch
            << ", 1 thread: " << FormatDouble(mid_speedup, 2) << "x\n"
            << "arena speedup over cow-delta at " << mid_size
            << " rows, batch " << kArenaHeadlineBatch << ", 1 thread: "
            << FormatDouble(arena_speedup, 2) << "x\n";

  std::ofstream json("bench_artifacts/BENCH_eval.json");
  if (json) {
    json.precision(6);
    json << "{\n  \"bench\": \"eval_throughput\",\n"
         << "  \"forest\": \"figure5-parametric (10 trees, depth 8)\",\n"
         << "  \"mid_size_rows\": " << mid_size << ",\n"
         << "  \"headline_batch_rows\": " << kHeadlineBatch << ",\n"
         << "  \"arena_headline_batch_rows\": " << kArenaHeadlineBatch
         << ",\n"
         << "  \"topk_identical\": " << (identical ? "true" : "false")
         << ",\n"
         << "  \"arena_pointer_identical\": "
         << (arena_identical ? "true" : "false") << ",\n"
         << "  \"cow_speedup_1thread_mid\": " << mid_speedup << ",\n"
         << "  \"arena_speedup_1thread_mid\": " << arena_speedup << ",\n"
         << "  \"cells\": [\n";
    for (size_t i = 0; i < artifact.size(); ++i) {
      const auto& row = artifact[i];
      json << "    {\"rows\": " << row[0] << ", \"batch_rows\": " << row[1]
           << ", \"strategy\": \"" << row[2]
           << "\", \"evaluations\": " << row[3] << ", \"seconds\": " << row[4]
           << ", \"evals_per_sec\": " << row[5]
           << ", \"clone_bytes_per_eval\": " << row[6]
           << ", \"speedup_vs_deep\": " << row[7] << '}'
           << (i + 1 < artifact.size() ? "," : "") << '\n';
    }
    json << "  ]\n}\n";
    std::cout << "wrote bench_artifacts/BENCH_eval.json\n";
  } else {
    std::cout << "could not write bench_artifacts/BENCH_eval.json\n";
  }
  return identical && arena_identical ? 0 : 1;
}
