// Regenerates the paper's Table 7: top-5 subsets for (synthetic) MEPS.
// Expected shape: the cancer-diagnosis flag dominates the top subsets
// (the paper finds CancerDx=True in four of five).

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  PrintBanner("Table 7: Top-5 attributable subsets — MEPS",
              "paper Table 7 / §6.3");

  const bool full = FullMode(argc, argv);
  auto dataset = synth::FindDataset("meps");
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;
  std::cout << "dataset: " << p.name << " (" << p.rows_used
            << " rows, scaled from " << p.paper_rows << "), train "
            << p.train.num_rows() << " / test " << p.test.num_rows() << "\n\n";

  FumeConfig config = BenchFumeConfig(p.group);
  Stopwatch watch;
  auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
  if (!result.ok()) {
    std::cout << "FUME: " << result.status().ToString() << "\n";
    return 0;
  }
  PrintViolationSummary(*result, config.metric, std::cout);
  PrintTopK(*result, p.train.schema(), p.index_prefix, std::cout);
  std::cout << "\n";
  PrintExplorationStats(result->stats, std::cout);
  std::cout << "FUME wall time: " << FormatDouble(watch.ElapsedSeconds(), 2)
            << " s\n";

  auto cancer = p.train.schema().FindAttribute("CancerDx");
  int mentions = 0;
  for (const auto& subset : result->top_k) {
    for (const Literal& lit : subset.predicate.literals()) {
      if (cancer.ok() && lit.attr == *cancer) {
        ++mentions;
        break;
      }
    }
  }
  std::cout << "\nCancerDx appears in " << mentions << " of the top-"
            << result->top_k.size() << " subsets (paper: 4 of 5).\n\n";

  auto baseline = RunDropUnprivUnfavor(p.train, p.test, p.forest_config,
                                       p.group, config.metric);
  if (baseline.ok()) PrintBaseline(*baseline, std::cout);
  return 0;
}
