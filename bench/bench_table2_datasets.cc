// Regenerates the paper's Table 2: dataset summary — size, feature count,
// protected-group share and per-group base rates — measured on the
// calibrated synthetic stand-ins and shown next to the paper's numbers.

#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;

  const bool full = FullMode(argc, argv);
  PrintBanner("Table 2: Summary of datasets", "paper Table 2");

  struct PaperRow {
    double protected_fraction, priv_base, prot_base;
  };
  const PaperRow paper[] = {
      {0.4110, 0.7419, 0.6399}, {0.3250, 0.3124, 0.1135},
      {0.3594, 0.3832, 0.3016}, {0.4855, 0.4353, 0.3106},
      {0.6407, 0.2549, 0.1236},
  };

  TablePrinter table({"Dataset", "#instances (paper)", "#features",
                      "Sensitive attr", "|Protected|/|Dataset|",
                      "Priv. base rate", "Prot. base rate",
                      "paper (prot%, priv_br, prot_br)"});
  int row_index = 0;
  for (const auto& dataset : synth::AllDatasets()) {
    synth::SynthOptions opts;
    opts.num_rows = BenchRows(dataset, full);
    opts.seed = 4;
    auto bundle = dataset.make(opts);
    FUME_ABORT_NOT_OK(bundle.status());
    const Dataset& data = bundle->data;
    const GroupSpec& group = bundle->group;
    const double protected_fraction =
        1.0 - data.GroupFraction(group.sensitive_attr, group.privileged_code);
    const double priv_base =
        data.BaseRate(group.sensitive_attr, group.privileged_code);
    const double prot_base =
        data.BaseRate(group.sensitive_attr, 1 - group.privileged_code);
    const PaperRow& pr = paper[row_index++];
    table.AddRow(
        {dataset.name,
         std::to_string(opts.num_rows) + " (" +
             std::to_string(dataset.paper_rows) + ")",
         std::to_string(dataset.paper_features),
         data.schema().attribute(group.sensitive_attr).name,
         FormatPercent(protected_fraction), FormatPercent(priv_base),
         FormatPercent(prot_base),
         FormatPercent(pr.protected_fraction) + ", " +
             FormatPercent(pr.priv_base) + ", " +
             FormatPercent(pr.prot_base)});
  }
  table.Print(std::cout);
  std::cout << "\nMeasured columns come from the synthetic generators; the "
               "final column repeats the paper's Table 2 targets.\n";
  return 0;
}
