// Ablation: DaRE vs the HedgeCut-style ERT forest as FUME's unlearning
// substrate (paper §5.1 discusses both). Reports unlearning latency by
// batch size, the fraction of winner flips served by maintained variants,
// model quality, and a FUME end-to-end run on each substrate.

#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "hedgecut/hedgecut.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool full = FullMode(argc, argv);
  PrintBanner("Ablation: unlearning substrates — DaRE vs HedgeCut-style ERT",
              "paper §5.1 discussion");

  auto dataset = synth::FindDataset("german-credit");
  FUME_ABORT_NOT_OK(dataset.status());
  auto pipeline = SetupPipeline(*dataset, full);
  FUME_ABORT_NOT_OK(pipeline.status());
  Pipeline& p = *pipeline;

  HedgecutConfig hc_config;
  hc_config.num_trees = p.forest_config.num_trees;
  hc_config.max_depth = p.forest_config.max_depth;
  hc_config.num_candidates = 8;
  hc_config.robustness_margin = 0.02;
  hc_config.seed = p.forest_config.seed;
  auto hc_model = HedgecutForest::Train(p.train, hc_config);
  FUME_ABORT_NOT_OK(hc_model.status());

  std::cout << "model quality: DaRE accuracy "
            << FormatPercent(p.model.Accuracy(p.test)) << ", HedgeCut-ERT "
            << FormatPercent(hc_model->Accuracy(p.test)) << " ("
            << hc_model->num_variant_nodes()
            << " maintained variant nodes)\n\n";

  // --- Deletion latency by batch size (mean over repeats).
  TablePrinter latency({"Batch", "DaRE delete (ms)", "HedgeCut delete (ms)",
                        "HedgeCut variant swaps", "HedgeCut rebuilds"});
  Rng rng(7);
  const int repeats = 20;
  for (int batch : {1, 10, 50}) {
    double dare_ms = 0.0, hc_ms = 0.0;
    int64_t swaps = 0, rebuilds = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<RowId> all(static_cast<size_t>(p.train.num_rows()));
      std::iota(all.begin(), all.end(), 0);
      rng.Shuffle(&all);
      std::vector<RowId> doomed(all.begin(), all.begin() + batch);
      {
        DareForest clone = p.model.Clone();
        Stopwatch watch;
        FUME_ABORT_NOT_OK(clone.DeleteRows(doomed));
        dare_ms += watch.ElapsedMillis();
      }
      {
        HedgecutForest clone = hc_model->Clone();
        Stopwatch watch;
        FUME_ABORT_NOT_OK(clone.DeleteRows(doomed));
        hc_ms += watch.ElapsedMillis();
        swaps += clone.deletion_stats().variant_swaps;
        rebuilds += clone.deletion_stats().subtree_rebuilds;
      }
    }
    latency.AddRow({std::to_string(batch), FormatDouble(dare_ms / repeats, 3),
                    FormatDouble(hc_ms / repeats, 3),
                    FormatDouble(static_cast<double>(swaps) / repeats, 1),
                    FormatDouble(static_cast<double>(rebuilds) / repeats, 1)});
  }
  latency.Print(std::cout);

  // --- FUME end-to-end on each substrate.
  std::cout << "\nFUME top-1 subset per substrate (statistical parity, "
               "support 5-15%):\n";
  FumeConfig config = BenchFumeConfig(p.group);
  {
    Stopwatch watch;
    auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
    if (result.ok() && !result->top_k.empty()) {
      std::cout << "  DaRE:     "
                << result->top_k[0].predicate.ToString(p.train.schema())
                << "  (" << FormatPercent(result->top_k[0].attribution)
                << ", " << FormatDouble(watch.ElapsedSeconds(), 2) << " s)\n";
    }
  }
  {
    const ModelEval original =
        EvaluateHedgecut(*hc_model, p.test, config.group, config.metric);
    HedgecutUnlearnRemovalMethod removal(&*hc_model, &p.test, config.group,
                                         config.metric);
    Stopwatch watch;
    auto result = ExplainWithRemoval(original, p.train, config, &removal);
    if (result.ok() && !result->top_k.empty()) {
      std::cout << "  HedgeCut: "
                << result->top_k[0].predicate.ToString(p.train.schema())
                << "  (" << FormatPercent(result->top_k[0].attribution)
                << ", " << FormatDouble(watch.ElapsedSeconds(), 2) << " s)\n";
    } else if (!result.ok()) {
      std::cout << "  HedgeCut: " << result.status().ToString() << "\n";
    }
  }
  std::cout <<
      "\nReading: both substrates support FUME unchanged; HedgeCut trades "
      "memory (variant subtrees) for serving winner flips without "
      "retraining, DaRE trades cached histograms for exact greedy splits.\n";
  return 0;
}
