// Regenerates the paper's Table 6: top-5 subsets for (synthetic) ACS
// Income. The expected shape is NEGATIVE: bias here is diffuse, so 5-15%
// support subsets only reach modest (roughly 12-27%) parity reductions.

#include "bench_util.h"

int main(int argc, char** argv) {
  fume::bench::PrintBanner(
      "Table 6: Top-5 attributable subsets — ACS Income",
      "paper Table 6 / §6.3");
  return fume::bench::RunTopKBench("acs-income", argc, argv);
}
