// Sharded vs monolithic unlearning: SISA ShardedForest ensembles at shard
// counts {1, 2, 4, 8} against the single DaRE forest, on a parametric
// Figure-5 substrate (10 attributes, 8 values per attribute — the d=8 cell
// of the Figure-5 (b) sweep — across Figure-5 (a) instance counts).
//
// Two deletion workloads are measured, because sharding's cost model is
// workload-shaped:
//
//  * delete-uniform — a burst of uniformly drawn rows under hash
//    placement. Every batch touches every shard, so each shard pays the
//    batched kernel's per-call node scan on a depth-saturated forest
//    nearly as large as the monolithic one. On a single core this is a
//    net LOSS; these cells are kept to keep the trade-off honest (on
//    multi-core the per-shard deletes fan out on the pool instead).
//  * delete-cohort — a burst aimed at the planted-bias cohort (the rows
//    FUME's search identifies for removal) under slice placement, which
//    concentrates that cohort into one hot shard. The burst touches only
//    the hot shard, whose forest and subtree retrains are a fraction of
//    the monolithic ones: this is the SISA win and the headline number.
//
// What-if evaluation throughput (the FUME search's inner loop) is
// measured the same two ways through the removal methods. Fidelity is
// end-to-end: a full FUME search per shard count at mid-size, reporting
// top-k Jaccard overlap with the monolithic search (the SISA vote
// trade-off).
//
// Exactness is attested in-bench and by exit code: a 1-shard ensemble
// must serialize byte-identical to the monolithic forest (and stay
// identical through a compounding delete run, with an identical top-k), a
// sharded delete must equal per-shard standalone monolithic deletes, and
// sharded results must be byte-identical across thread counts {1, 4, 8}.
// Artifacts: shard.csv (+ metrics snapshot) and BENCH_shard.json.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/sharded_removal.h"
#include "forest/deletion_scratch.h"
#include "forest/serialize.h"
#include "forest/sharded_forest.h"
#include "synth/datasets.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace fume;
using namespace fume::bench;

// The attribute/code whose rows carry the planted bias cohort targeted by
// the delete-cohort workload (and by kSlice placement).
constexpr int kSliceAttr = 1;
constexpr int32_t kSliceValue = 0;

struct Setup {
  int64_t rows = 0;
  Dataset train;
  Dataset test;
  GroupSpec group;
  ForestConfig config;
  DareForest mono;
  /// Train-row ids of the hot cohort (Code(r, kSliceAttr) == kSliceValue),
  /// ascending.
  std::vector<RowId> cohort;
};

Setup MakeSetup(int64_t rows) {
  auto bundle = synth::MakeParametric(rows, 10, 8, 7);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());
  ForestConfig config;  // the Figure 5 forest
  config.num_trees = 10;
  config.max_depth = 8;
  config.random_depth = 2;
  config.seed = 31;
  auto mono = DareForest::Train(split->train, config);
  FUME_ABORT_NOT_OK(mono.status());
  Setup s{rows,
          std::move(split->train),
          std::move(split->test),
          bundle->group,
          config,
          std::move(*mono),
          {}};
  for (int64_t r = 0; r < s.train.num_rows(); ++r) {
    if (s.train.Code(r, kSliceAttr) == kSliceValue) {
      s.cohort.push_back(static_cast<RowId>(r));
    }
  }
  return s;
}

ShardConfig HashShards(int n) {
  ShardConfig shard;
  shard.num_shards = n;
  return shard;
}

ShardConfig SliceShards(int n) {
  ShardConfig shard;
  shard.num_shards = n;
  shard.placement = ShardConfig::Placement::kSlice;
  shard.slice_attr = kSliceAttr;
  shard.slice_value = kSliceValue;
  shard.hot_shards = 1;
  return shard;
}

// Disjoint deterministic uniform batches, as in bench_unlearn_kernel:
// slices of a keyed shuffle capped at half the training data.
std::vector<std::vector<RowId>> UniformBatches(int64_t num_rows,
                                               int batch_size,
                                               int num_batches) {
  std::vector<RowId> perm(static_cast<size_t>(num_rows));
  for (int64_t i = 0; i < num_rows; ++i) {
    perm[static_cast<size_t>(i)] = static_cast<RowId>(i);
  }
  Rng rng(177);
  for (int64_t i = num_rows - 1; i > 0; --i) {
    const int64_t j = rng.NextInt(0, static_cast<int>(i));
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  const int64_t max_batches = num_rows / 2 / batch_size;
  const int64_t take =
      std::min<int64_t>(num_batches, std::max<int64_t>(1, max_batches));
  std::vector<std::vector<RowId>> batches;
  batches.reserve(static_cast<size_t>(take));
  for (int64_t b = 0; b < take; ++b) {
    const auto begin = perm.begin() + b * batch_size;
    std::vector<RowId> rows(begin, begin + batch_size);
    std::sort(rows.begin(), rows.end());
    batches.push_back(std::move(rows));
  }
  return batches;
}

// Batches drawn from the hot cohort (ascending ids), capped at half the
// cohort so the hot shard never empties.
std::vector<std::vector<RowId>> CohortBatches(const std::vector<RowId>& cohort,
                                              int batch_size) {
  std::vector<std::vector<RowId>> batches;
  const size_t limit = cohort.size() / 2;
  const size_t step = static_cast<size_t>(batch_size);
  for (size_t i = 0; i + step <= limit; i += step) {
    batches.emplace_back(cohort.begin() + static_cast<int64_t>(i),
                         cohort.begin() + static_cast<int64_t>(i + step));
  }
  if (batches.empty() && limit > 0) {
    batches.emplace_back(cohort.begin(),
                         cohort.begin() + static_cast<int64_t>(limit));
  }
  return batches;
}

std::string MonoBytes(const DareForest& forest) {
  std::ostringstream out(std::ios::binary);
  FUME_ABORT_NOT_OK(SaveForest(forest, out));
  return out.str();
}

std::string ShardBytes(const ShardedForest& forest) {
  std::ostringstream out(std::ios::binary);
  FUME_ABORT_NOT_OK(forest.Save(out));
  return out.str();
}

// A privately-owned copy of the pristine ensemble (every node refcount 1),
// so the timed loop below contains pure deletion work — the sharded
// counterpart of DareForest::DeepClone.
ShardedForest PrivateCopy(const std::string& pristine_bytes) {
  std::istringstream in(pristine_bytes, std::ios::binary);
  auto loaded = ShardedForest::Load(in);
  FUME_ABORT_NOT_OK(loaded.status());
  return std::move(*loaded);
}

struct Throughput {
  int64_t rows_processed = 0;
  double seconds = 0.0;
  double per_sec = 0.0;

  void Finish() {
    per_sec =
        seconds > 0.0 ? static_cast<double>(rows_processed) / seconds : 0.0;
  }
  bool finite() const { return seconds == seconds && per_sec == per_sec; }
};

// Compounding deletion burst on a privately-owned monolithic forest.
// Wall time, not thread CPU time: the sharded competitor may fan out on a
// pool, so wall is the comparable axis (best-of-reps absorbs scheduler
// noise).
Throughput MeasureDeleteMono(const DareForest& model,
                             const std::vector<std::vector<RowId>>& batches) {
  DeletionScratch scratch;
  {
    DareForest warm = model.DeepClone();
    FUME_ABORT_NOT_OK(warm.DeleteRows(batches.front(), nullptr, &scratch));
  }
  DareForest victim = model.DeepClone();
  Throughput t;
  Stopwatch watch;
  for (const auto& rows : batches) {
    FUME_ABORT_NOT_OK(victim.DeleteRows(rows, nullptr, &scratch));
    t.rows_processed += static_cast<int64_t>(rows.size());
  }
  t.seconds = watch.ElapsedSeconds();
  t.Finish();
  return t;
}

// Same burst through the sharded ensemble: rows route to owning shards and
// unlearn shard-locally, fanned out on `pool` when non-null.
Throughput MeasureDeleteSharded(const std::string& pristine_bytes,
                                const std::vector<std::vector<RowId>>& batches,
                                util::ThreadPool* pool) {
  std::vector<DeletionScratch> scratch;
  {
    ShardedForest warm = PrivateCopy(pristine_bytes);
    FUME_ABORT_NOT_OK(
        warm.DeleteRows(batches.front(), nullptr, pool, &scratch));
  }
  ShardedForest victim = PrivateCopy(pristine_bytes);
  Throughput t;
  Stopwatch watch;
  for (const auto& rows : batches) {
    FUME_ABORT_NOT_OK(victim.DeleteRows(rows, nullptr, pool, &scratch));
    t.rows_processed += static_cast<int64_t>(rows.size());
  }
  t.seconds = watch.ElapsedSeconds();
  t.Finish();
  return t;
}

// What-if evaluation throughput: leave-out evaluations through the removal
// method, the FUME search's inner loop. Single-threaded on both sides
// (search parallelism is across evaluations), so thread CPU time is the
// low-noise clock.
Throughput MeasureWhatIf(RemovalMethod* removal,
                         const std::vector<std::vector<RowId>>& batches,
                         int evals) {
  FUME_ABORT_NOT_OK(removal->EvaluateWithout(batches.front()).status());
  Throughput t;
  ThreadCpuStopwatch watch;
  for (int e = 0; e < evals; ++e) {
    const auto& rows = batches[static_cast<size_t>(e) % batches.size()];
    FUME_ABORT_NOT_OK(removal->EvaluateWithout(rows).status());
    t.rows_processed += static_cast<int64_t>(rows.size());
  }
  t.seconds = watch.ElapsedSeconds();
  t.Finish();
  return t;
}

std::string TopKSignature(const FumeResult& result, const Schema& schema) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& s : result.top_k) {
    os << s.predicate.ToString(schema) << '|' << s.attribution << '|'
       << s.new_fairness << '|' << s.new_accuracy << '\n';
  }
  return os.str();
}

std::set<std::string> TopKPredicates(const FumeResult& result,
                                     const Schema& schema) {
  std::set<std::string> preds;
  for (const auto& s : result.top_k) preds.insert(s.predicate.ToString(schema));
  return preds;
}

double Jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  int64_t inter = 0;
  for (const auto& x : a) inter += b.count(x) ? 1 : 0;
  const int64_t uni = static_cast<int64_t>(a.size() + b.size()) - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

// Full FUME search over the sharded ensemble (mirrors fume_cli --shards).
Result<FumeResult> ShardedSearch(const ShardedForest& model, const Setup& s,
                                 const FumeConfig& config) {
  ModelEval original;
  original.fairness = ComputeFairness(s.test, model.PredictAll(s.test),
                                      s.group, config.metric);
  original.accuracy = model.Accuracy(s.test);
  ShardedRemovalMethod removal(&model, &s.test, s.group, config.metric);
  return ExplainWithRemoval(original, s.train, config, &removal);
}

// Attestation 1: a 1-shard ensemble is the monolithic forest — identical
// bytes at rest and in lockstep through a compounding delete run.
bool Shard1ByteIdentical(const Setup& s,
                         const std::vector<std::vector<RowId>>& batches) {
  auto sharded = ShardedForest::Train(s.train, s.config, HashShards(1));
  FUME_ABORT_NOT_OK(sharded.status());
  if (MonoBytes(sharded->shard(0)) != MonoBytes(s.mono)) return false;
  DareForest mono = s.mono.Clone();
  for (size_t b = 0; b < batches.size() && b < 6; ++b) {
    FUME_ABORT_NOT_OK(sharded->DeleteRows(batches[b]));
    FUME_ABORT_NOT_OK(mono.DeleteRows(batches[b]));
  }
  return MonoBytes(sharded->shard(0)) == MonoBytes(mono);
}

// Attestation 2: an ensemble delete equals running each shard's rows
// through that shard as a standalone monolithic forest.
bool PerShardDeleteIdentical(const Setup& s, const ShardedForest& ensemble,
                             const std::vector<std::vector<RowId>>& batches) {
  const int n = ensemble.num_shards();
  // Standalone per-shard forests over exactly the member rows, with the
  // derived per-shard seeds.
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(n));
  for (RowId g = 0; g < ensemble.num_global_ids(); ++g) {
    members[static_cast<size_t>(ensemble.shard_of(g))].push_back(g);
  }
  std::vector<DareForest> reference;
  for (int sh = 0; sh < n; ++sh) {
    ForestConfig cfg = s.config;
    cfg.seed = s.config.seed +
               ShardedForest::kShardSeedStride * static_cast<uint64_t>(sh);
    auto ref = DareForest::Train(
        s.train.Select(members[static_cast<size_t>(sh)]), cfg);
    FUME_ABORT_NOT_OK(ref.status());
    reference.push_back(std::move(*ref));
  }
  ShardedForest victim = ensemble.Clone();
  for (size_t b = 0; b < batches.size() && b < 6; ++b) {
    FUME_ABORT_NOT_OK(victim.DeleteRows(batches[b]));
    std::vector<std::vector<RowId>> local(static_cast<size_t>(n));
    for (const RowId g : batches[b]) {
      local[static_cast<size_t>(victim.shard_of(g))].push_back(
          victim.local_of(g));
    }
    for (int sh = 0; sh < n; ++sh) {
      FUME_ABORT_NOT_OK(reference[static_cast<size_t>(sh)].DeleteRows(
          local[static_cast<size_t>(sh)]));
    }
  }
  for (int sh = 0; sh < n; ++sh) {
    if (MonoBytes(victim.shard(sh)) !=
        MonoBytes(reference[static_cast<size_t>(sh)])) {
      return false;
    }
  }
  return true;
}

// Attestation 3: the same delete run lands on identical bytes across
// thread counts (serial, 1, 4, 8 pool threads).
bool ThreadCountsByteIdentical(const std::string& pristine_bytes,
                               const std::vector<std::vector<RowId>>& batches) {
  std::string reference;
  for (const int threads : {0, 1, 4, 8}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    ShardedForest victim = PrivateCopy(pristine_bytes);
    std::vector<DeletionScratch> scratch;
    for (const auto& rows : batches) {
      FUME_ABORT_NOT_OK(
          victim.DeleteRows(rows, nullptr, pool.get(), &scratch));
    }
    const std::string bytes = ShardBytes(victim);
    if (reference.empty()) {
      reference = bytes;
    } else if (bytes != reference) {
      return false;
    }
  }
  return true;
}

struct Ensemble {
  std::string label;  // "hash-4" / "slice-2" / ...
  int shards = 0;
  ShardedForest forest;
  std::string pristine;  // serialized bytes for private copies
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  const bool full = !smoke && FullMode(argc, argv);
  PrintBanner("SISA sharding: sharded ensemble vs monolithic forest",
              "docs/sharding.md / Figure 5 forests (p=10, d=8)");

  const std::vector<int64_t> sizes =
      smoke ? std::vector<int64_t>{2000}
            : std::vector<int64_t>{10000, 20000, 50000};
  const int64_t mid_size = sizes[sizes.size() / 2];
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int kBatch = smoke ? 64 : 512;  // burst batch scale
  const int num_batches = smoke ? 4 : 12;
  const int whatif_evals = smoke ? 4 : 16;
  const int kReps = smoke ? 1 : (full ? 7 : 5);
  const int kHeadlineShards = 4;
  util::ThreadPool pool(8);

  TablePrinter table({"rows", "kind", "model", "rows/sec", "speedup vs mono"});
  std::vector<std::vector<std::string>> artifact;
  double delete_cohort_speedup_mid = 0.0;
  double whatif_cohort_speedup_mid = 0.0;
  bool shard1_identical = true;
  bool per_shard_identical = true;
  bool threads_identical = true;
  bool all_finite = true;
  std::vector<std::pair<std::string, double>> fidelity;  // (model, jaccard)
  bool shard1_topk_identical = true;

  for (int64_t rows : sizes) {
    Setup s = MakeSetup(rows);
    const int64_t train_rows = s.mono.num_training_rows();
    const auto uniform = UniformBatches(train_rows, kBatch, num_batches);
    const auto cohort = CohortBatches(s.cohort, kBatch);

    // Ensembles under both placements. Slice placement needs >= 2 shards
    // (at 1 shard routing is the identity and hash == slice == mono).
    std::vector<Ensemble> ensembles;
    for (const int n : shard_counts) {
      auto hash =
          ShardedForest::Train(s.train, s.config, HashShards(n), &pool);
      FUME_ABORT_NOT_OK(hash.status());
      Ensemble e{"hash-" + std::to_string(n), n, std::move(*hash), {}};
      e.pristine = ShardBytes(e.forest);
      ensembles.push_back(std::move(e));
      if (n >= 2) {
        auto slice =
            ShardedForest::Train(s.train, s.config, SliceShards(n), &pool);
        FUME_ABORT_NOT_OK(slice.status());
        Ensemble se{"slice-" + std::to_string(n), n, std::move(*slice), {}};
        se.pristine = ShardBytes(se.forest);
        ensembles.push_back(std::move(se));
      }
    }
    const auto find = [&](const std::string& label) -> const Ensemble& {
      for (const auto& e : ensembles) {
        if (e.label == label) return e;
      }
      FUME_ABORT_NOT_OK(Status::Invalid("no ensemble " + label));
      return ensembles.front();
    };

    // Deletion bursts: uniform rows route everywhere (hash ensembles);
    // cohort rows land in the slice ensembles' hot shard. The 1-shard
    // ensemble competes in both kinds (it IS the monolithic forest in a
    // sharded container — the container-overhead row).
    struct WorkloadKind {
      const char* kind;
      const std::vector<std::vector<RowId>>* batches;
      const char* prefix;  // which ensembles compete
    };
    const WorkloadKind delete_kinds[] = {
        {"delete-uniform", &uniform, "hash-"},
        {"delete-cohort", &cohort, "slice-"},
    };
    for (const WorkloadKind& dk : delete_kinds) {
      Throughput mono_del;
      for (int rep = 0; rep < kReps; ++rep) {
        const Throughput t = MeasureDeleteMono(s.mono, *dk.batches);
        if (rep == 0 || t.per_sec > mono_del.per_sec) mono_del = t;
      }
      all_finite = all_finite && mono_del.finite();
      table.AddRow({std::to_string(rows), dk.kind, "mono",
                    FormatDouble(mono_del.per_sec, 0), "1.00x"});
      artifact.push_back({std::to_string(rows), std::to_string(kBatch),
                          dk.kind, "mono",
                          std::to_string(mono_del.rows_processed),
                          FormatDouble(mono_del.seconds, 4),
                          FormatDouble(mono_del.per_sec, 2), "1.000"});
      for (const Ensemble& e : ensembles) {
        const bool competes = e.label.rfind(dk.prefix, 0) == 0 ||
                              (e.shards == 1 && std::string(dk.kind) ==
                                                    "delete-cohort");
        if (!competes) continue;
        Throughput del;
        for (int rep = 0; rep < kReps; ++rep) {
          const Throughput t =
              MeasureDeleteSharded(e.pristine, *dk.batches, &pool);
          if (rep == 0 || t.per_sec > del.per_sec) del = t;
        }
        all_finite = all_finite && del.finite();
        const double speedup =
            mono_del.per_sec > 0.0 ? del.per_sec / mono_del.per_sec : 0.0;
        if (rows == mid_size && e.shards == kHeadlineShards &&
            std::string(dk.kind) == "delete-cohort") {
          delete_cohort_speedup_mid = speedup;
        }
        table.AddRow({std::to_string(rows), dk.kind, e.label,
                      FormatDouble(del.per_sec, 0),
                      FormatDouble(speedup, 2) + "x"});
        artifact.push_back({std::to_string(rows), std::to_string(kBatch),
                            dk.kind, e.label,
                            std::to_string(del.rows_processed),
                            FormatDouble(del.seconds, 4),
                            FormatDouble(del.per_sec, 2),
                            FormatDouble(speedup, 3)});
      }
    }

    // What-if evaluation throughput, same two workload shapes.
    const WorkloadKind whatif_kinds[] = {
        {"whatif-uniform", &uniform, "hash-"},
        {"whatif-cohort", &cohort, "slice-"},
    };
    for (const WorkloadKind& wk : whatif_kinds) {
      Throughput mono_wi;
      {
        UnlearnRemovalMethod removal(&s.mono, &s.test, s.group,
                                     FairnessMetric::kStatisticalParity);
        for (int rep = 0; rep < kReps; ++rep) {
          const Throughput t =
              MeasureWhatIf(&removal, *wk.batches, whatif_evals);
          if (rep == 0 || t.per_sec > mono_wi.per_sec) mono_wi = t;
        }
      }
      all_finite = all_finite && mono_wi.finite();
      table.AddRow({std::to_string(rows), wk.kind, "mono",
                    FormatDouble(mono_wi.per_sec, 0), "1.00x"});
      artifact.push_back({std::to_string(rows), std::to_string(kBatch),
                          wk.kind, "mono",
                          std::to_string(mono_wi.rows_processed),
                          FormatDouble(mono_wi.seconds, 4),
                          FormatDouble(mono_wi.per_sec, 2), "1.000"});
      for (const Ensemble& e : ensembles) {
        const bool competes = e.label.rfind(wk.prefix, 0) == 0 ||
                              (e.shards == 1 && std::string(wk.kind) ==
                                                    "whatif-cohort");
        if (!competes) continue;
        ShardedRemovalMethod removal(&e.forest, &s.test, s.group,
                                     FairnessMetric::kStatisticalParity);
        Throughput wi;
        for (int rep = 0; rep < kReps; ++rep) {
          const Throughput t =
              MeasureWhatIf(&removal, *wk.batches, whatif_evals);
          if (rep == 0 || t.per_sec > wi.per_sec) wi = t;
        }
        all_finite = all_finite && wi.finite();
        const double speedup =
            mono_wi.per_sec > 0.0 ? wi.per_sec / mono_wi.per_sec : 0.0;
        if (rows == mid_size && e.shards == kHeadlineShards &&
            std::string(wk.kind) == "whatif-cohort") {
          whatif_cohort_speedup_mid = speedup;
        }
        table.AddRow({std::to_string(rows), wk.kind, e.label,
                      FormatDouble(wi.per_sec, 0),
                      FormatDouble(speedup, 2) + "x"});
        artifact.push_back({std::to_string(rows), std::to_string(kBatch),
                            wk.kind, e.label,
                            std::to_string(wi.rows_processed),
                            FormatDouble(wi.seconds, 4),
                            FormatDouble(wi.per_sec, 2),
                            FormatDouble(speedup, 3)});
      }
    }

    // Exactness attestations per size (cheap relative to the sweeps). The
    // per-shard and thread-count checks run on the slice ensemble — the
    // headline configuration — with the cohort burst.
    shard1_identical = shard1_identical && Shard1ByteIdentical(s, uniform);
    const std::string headline_label =
        "slice-" + std::to_string(kHeadlineShards);
    per_shard_identical =
        per_shard_identical &&
        PerShardDeleteIdentical(s, find(headline_label).forest, cohort);
    threads_identical =
        threads_identical &&
        ThreadCountsByteIdentical(find(headline_label).pristine, cohort);

    // Top-k fidelity at mid-size: full searches, Jaccard vs monolithic.
    if (rows == mid_size) {
      FumeConfig config = BenchFumeConfig(s.group);
      auto mono_result =
          ExplainFairnessViolation(s.mono, s.train, s.test, config);
      FUME_ABORT_NOT_OK(mono_result.status());
      const auto mono_preds = TopKPredicates(*mono_result, s.train.schema());
      const std::string mono_sig =
          TopKSignature(*mono_result, s.train.schema());
      for (const Ensemble& e : ensembles) {
        auto result = ShardedSearch(e.forest, s, config);
        double jaccard = 0.0;
        if (result.ok()) {
          jaccard =
              Jaccard(mono_preds, TopKPredicates(*result, s.train.schema()));
          if (e.shards == 1) {
            shard1_topk_identical =
                TopKSignature(*result, s.train.schema()) == mono_sig;
          }
        } else if (e.shards == 1) {
          shard1_topk_identical = false;
        }
        fidelity.emplace_back(e.label, jaccard);
      }
    }
  }
  table.Print(std::cout);
  WriteArtifact("shard",
                {"rows", "batch_rows", "kind", "model", "rows_processed",
                 "seconds", "rows_per_sec", "speedup_vs_mono"},
                artifact);

  std::cout << "\ntop-k fidelity vs monolithic (" << mid_size
            << " rows, Jaccard over top-k predicates)\n";
  for (const auto& [label, jaccard] : fidelity) {
    std::cout << "  " << label << ": " << FormatDouble(jaccard, 3) << '\n';
  }
  std::cout << "1-shard ensemble byte-identical to monolithic: "
            << (shard1_identical ? "yes" : "NO — exactness violation") << '\n'
            << "1-shard top-k identical to monolithic: "
            << (shard1_topk_identical ? "yes" : "NO — exactness violation")
            << '\n'
            << "sharded delete == per-shard monolithic deletes: "
            << (per_shard_identical ? "yes" : "NO — exactness violation")
            << '\n'
            << "bytes identical across thread counts {1,4,8}: "
            << (threads_identical ? "yes" : "NO — determinism violation")
            << '\n'
            << "cohort-burst delete speedup at " << mid_size << " rows, "
            << kHeadlineShards << " shards (slice placement): "
            << FormatDouble(delete_cohort_speedup_mid, 2) << "x\n"
            << "cohort what-if speedup at " << mid_size << " rows, "
            << kHeadlineShards << " shards (slice placement): "
            << FormatDouble(whatif_cohort_speedup_mid, 2) << "x\n";

  std::ofstream json("bench_artifacts/BENCH_shard.json");
  if (json) {
    json.precision(6);
    json << "{\n  \"bench\": \"shard\",\n"
         << "  \"forest\": \"figure5-parametric p=10 d=8 (10 trees, depth "
            "8)\",\n"
         << "  \"mid_size_rows\": " << mid_size << ",\n"
         << "  \"headline_shards\": " << kHeadlineShards << ",\n"
         << "  \"delete_cohort_speedup_mid\": " << delete_cohort_speedup_mid
         << ",\n"
         << "  \"whatif_cohort_speedup_mid\": " << whatif_cohort_speedup_mid
         << ",\n"
         << "  \"topk_fidelity\": [";
    for (size_t i = 0; i < fidelity.size(); ++i) {
      json << (i == 0 ? "" : ", ") << "{\"model\": \"" << fidelity[i].first
           << "\", \"topk_jaccard\": " << fidelity[i].second << '}';
    }
    json << "],\n"
         << "  \"shard1_bytes_identical\": "
         << (shard1_identical ? "true" : "false") << ",\n"
         << "  \"shard1_topk_identical\": "
         << (shard1_topk_identical ? "true" : "false") << ",\n"
         << "  \"per_shard_delete_bytes_identical\": "
         << (per_shard_identical ? "true" : "false") << ",\n"
         << "  \"thread_counts_bytes_identical\": "
         << (threads_identical ? "true" : "false") << ",\n"
         << "  \"cells\": [\n";
    for (size_t i = 0; i < artifact.size(); ++i) {
      const auto& row = artifact[i];
      json << "    {\"rows\": " << row[0] << ", \"batch_rows\": " << row[1]
           << ", \"kind\": \"" << row[2] << "\", \"model\": \"" << row[3]
           << "\", \"rows_processed\": " << row[4]
           << ", \"seconds\": " << row[5] << ", \"rows_per_sec\": " << row[6]
           << ", \"speedup_vs_mono\": " << row[7] << '}'
           << (i + 1 < artifact.size() ? "," : "") << '\n';
    }
    json << "  ]\n}\n";
    std::cout << "wrote bench_artifacts/BENCH_shard.json\n";
  } else {
    std::cout << "could not write bench_artifacts/BENCH_shard.json\n";
  }

  const bool exact = shard1_identical && shard1_topk_identical &&
                     per_shard_identical && threads_identical;
  if (!all_finite) std::cout << "NaN detected in measurements\n";
  return exact && all_finite ? 0 : 1;
}
