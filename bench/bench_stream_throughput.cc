// Streaming engine throughput: incremental StreamEngine ops versus the
// naive alternative of cold-retraining the forest and re-running the FUME
// search after every op-log entry. The acceptance bar for the streaming
// subsystem is a >= 10x total-time speedup on the same op sequence; both
// sides see identical data at every step (the cold side retrains on the
// engine's surviving rows), so the comparison is apples-to-apples and the
// engine's exactness contract makes the outputs interchangeable.
//
// Artifacts: bench_artifacts/stream_throughput.csv (per-op timings),
// bench_artifacts/stream_throughput.metrics.json (counter snapshot, incl.
// stream.predcache.* cache behaviour and stream.search.* drift decisions)
// and bench_artifacts/BENCH_incremental.json (per-mode throughput cells
// consumed by bench_check). --smoke shrinks the substrate to a crash
// tripwire and drops the speedup gate (shared-CI timing is noise).

#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/removal_method.h"
#include "stream/engine.h"
#include "stream/workload.h"

int main(int argc, char** argv) {
  using namespace fume;
  using namespace fume::bench;
  const bool smoke = SmokeMode(argc, argv);
  const bool full = !smoke && FullMode(argc, argv);
  PrintBanner("Streaming engine throughput vs cold retrain-and-search",
              "streaming extension; see docs/streaming.md");

  synth::PlantedOptions opts;
  opts.num_rows = smoke ? 4000 : full ? 20000 : 10000;
  opts.seed = 4;
  auto bundle = synth::MakePlantedBias(opts);
  FUME_ABORT_NOT_OK(bundle.status());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  FUME_ABORT_NOT_OK(split.status());

  const int64_t pool_rows = split->train.num_rows() / 3;
  std::vector<int64_t> tail, head;
  for (int64_t r = 0; r < split->train.num_rows(); ++r) {
    (r < split->train.num_rows() - pool_rows ? head : tail).push_back(r);
  }
  const Dataset initial_train = split->train.DropRows(tail);
  const Dataset pool = split->train.DropRows(head);

  stream::StreamEngineConfig config;
  config.forest = BenchForestConfig(bundle->name);
  config.fume = BenchFumeConfig(bundle->group);
  config.fume.max_literals = 1;  // keep the cold side's searches tractable
  // The drift policy is the amortization lever: small per-op metric noise
  // should NOT trigger a full re-search. These bounds re-search only on a
  // meaningful shift (>= 0.015 absolute or 20% relative), which is what a
  // deployment monitoring a violation would configure.
  config.drift.abs_threshold = 0.015;
  config.drift.rel_threshold = 0.20;

  const int num_ops = smoke ? 8 : full ? 60 : 30;
  stream::WorkloadOptions w;
  w.num_ops = num_ops;
  w.insert_batch = 2;
  w.delete_batch = 2;
  w.checkpoint_every = 0;  // data ops only (plus the mandatory final C)
  w.seed = 11;
  auto ops = stream::SynthesizeOpLog(pool, initial_train.num_rows(), w);
  FUME_ABORT_NOT_OK(ops.status());

  auto engine =
      stream::StreamEngine::Create(initial_train, split->test, config);
  FUME_ABORT_NOT_OK(engine.status());

  std::vector<std::vector<std::string>> rows;
  double engine_total = 0.0;
  double cold_total = 0.0;
  int searches = 0;
  for (const stream::StreamOp& op : *ops) {
    if (op.kind == stream::OpKind::kCheckpoint) continue;
    Stopwatch engine_watch;
    auto outcome = engine->Apply(op);
    const double engine_seconds = engine_watch.ElapsedSeconds();
    FUME_ABORT_NOT_OK(outcome.status());
    if (outcome->searched) ++searches;

    // Cold baseline on the identical surviving rows: full retrain, full
    // evaluation, full search (skipped, as the engine skips it, when the
    // model is within the fairness floor).
    Stopwatch cold_watch;
    auto cold = DareForest::Train(engine->train_data(), config.forest);
    FUME_ABORT_NOT_OK(cold.status());
    ModelEval original;
    original.fairness = ComputeFairness(*cold, split->test,
                                        config.fume.group, config.fume.metric);
    original.accuracy = cold->Accuracy(split->test);
    if (std::abs(original.fairness) >= config.fume.min_original_bias) {
      UnlearnRemovalMethod removal(&*cold, &split->test, config.fume.group,
                                   config.fume.metric);
      auto fresh = ExplainWithRemoval(original, engine->train_data(),
                                      config.fume, &removal);
      FUME_ABORT_NOT_OK(fresh.status());
    }
    const double cold_seconds = cold_watch.ElapsedSeconds();

    engine_total += engine_seconds;
    cold_total += cold_seconds;
    rows.push_back({std::to_string(op.seq), stream::OpKindName(op.kind),
                    FormatDouble(engine_seconds * 1e3, 3),
                    FormatDouble(cold_seconds * 1e3, 3),
                    FormatDouble(cold_seconds / engine_seconds, 1)});
  }

  const double speedup = cold_total / engine_total;
  const int data_ops = static_cast<int>(rows.size());
  TablePrinter table({"Mode", "Total (s)", "Mean/op (ms)", "Searches"});
  table.AddRow({"incremental engine", FormatDouble(engine_total, 2),
                FormatDouble(engine_total / data_ops * 1e3, 2),
                std::to_string(searches)});
  table.AddRow({"cold retrain+search", FormatDouble(cold_total, 2),
                FormatDouble(cold_total / data_ops * 1e3, 2),
                std::to_string(data_ops)});
  table.Print(std::cout);
  std::cout << "\n" << data_ops << " data ops, "
            << initial_train.num_rows() << " initial rows -> "
            << engine->rows_live() << " live; speedup "
            << FormatDouble(speedup, 1) << "x (target >= 10x)\n";

  WriteArtifact("stream_throughput",
                {"seq", "kind", "engine_ms", "cold_ms", "speedup"}, rows);

  const bool finite = std::isfinite(speedup) && engine_total > 0.0 &&
                      cold_total > 0.0;
  std::ofstream json("bench_artifacts/BENCH_incremental.json");
  if (json) {
    json.precision(6);
    json << "{\n  \"bench\": \"stream_throughput\",\n"
         << "  \"substrate\": \"planted-bias (" << opts.num_rows
         << " rows)\",\n"
         << "  \"data_ops\": " << data_ops << ",\n"
         << "  \"timings_finite\": " << (finite ? "true" : "false") << ",\n"
         << "  \"speedup_vs_cold\": " << speedup << ",\n"
         << "  \"cells\": [\n"
         << "    {\"mode\": \"incremental\", \"ops\": " << data_ops
         << ", \"seconds\": " << engine_total << ", \"ops_per_sec\": "
         << (engine_total > 0.0 ? data_ops / engine_total : 0.0) << "},\n"
         << "    {\"mode\": \"cold-retrain\", \"ops\": " << data_ops
         << ", \"seconds\": " << cold_total << ", \"ops_per_sec\": "
         << (cold_total > 0.0 ? data_ops / cold_total : 0.0) << "}\n"
         << "  ]\n}\n";
    std::cout << "wrote bench_artifacts/BENCH_incremental.json\n";
  } else {
    std::cout << "could not write bench_artifacts/BENCH_incremental.json\n";
  }

  // Smoke asserts survival and finiteness only; the 10x bar is a perf
  // measurement that needs the real substrate.
  if (smoke) return finite ? 0 : 1;
  return speedup >= 10.0 ? 0 : 1;
}
