#!/usr/bin/env bash
# Builds with ThreadSanitizer and runs the tests that exercise the
# lock-free observability counters and the multi-threaded FUME search, so
# every new atomic is race-checked. Usage:
#
#   scripts/run_tsan_tests.sh            # TSan (default)
#   FUME_SANITIZE=address scripts/run_tsan_tests.sh   # ASan+UBSan instead
#
# Extra args are forwarded to ctest.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${FUME_SANITIZE:-thread}"
BUILD_DIR="build-${SANITIZER}san"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFUME_SANITIZE="${SANITIZER}" \
  -DFUME_BUILD_BENCHMARKS=OFF \
  -DFUME_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j --target obs_test fume_algorithm_test \
  forest_unlearn_test unlearn_kernel_test forest_cow_test forest_arena_test \
  lazy_unlearn_test stream_test serve_test thread_pool_test query_scope_test \
  bench_check_test sharded_forest_test sharded_stream_test deletion_stats_test

cd "${BUILD_DIR}"
ctest --output-on-failure -j "$(nproc)" \
  -R '(Obs|Fume|Unlearn|Addition|Stream|Serve|OpLog|PredictionCache|DriftPolicy|Workload|Cow|WhatIfRescore|ThreadPool|Kernel|DeletionScratch|QueryScope|BenchCheck|JsonParser|Arena|Lazy|Sharded|DeletionStats)' "$@"
