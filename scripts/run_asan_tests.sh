#!/usr/bin/env bash
# AddressSanitizer (+UBSan) sweep: the same harness as run_tsan_tests.sh
# with FUME_SANITIZE=address pinned. The stream engine caches raw TreeNode
# pointers across forest mutations (src/stream/prediction_cache.h), so this
# sweep is the use-after-free tripwire for that contract. Usage:
#
#   scripts/run_asan_tests.sh            # ASan+UBSan
#
# Extra args are forwarded to ctest.
set -euo pipefail

FUME_SANITIZE=address exec "$(dirname "$0")/run_tsan_tests.sh" "$@"
