#!/usr/bin/env bash
# AddressSanitizer (+UBSan) sweep: the same harness as run_tsan_tests.sh
# with FUME_SANITIZE=address pinned. The prediction cache holds raw TreeNode
# pointers across forest mutations (src/forest/prediction_cache.h), CoW
# clones share refcounted nodes across forests, and compiled tree arenas
# keep raw TreeNode leaf pointers alive past the mutation that evicted them
# (src/forest/arena.h node_ array), so this sweep is the use-after-free
# tripwire for all three contracts. Usage:
#
#   scripts/run_asan_tests.sh            # ASan+UBSan
#
# Extra args are forwarded to ctest.
set -euo pipefail

FUME_SANITIZE=address exec "$(dirname "$0")/run_tsan_tests.sh" "$@"
