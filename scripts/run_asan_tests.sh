#!/usr/bin/env bash
# AddressSanitizer (+UBSan) sweep: the same harness as run_tsan_tests.sh
# with FUME_SANITIZE=address pinned. The prediction cache holds raw TreeNode
# pointers across forest mutations (src/forest/prediction_cache.h), and CoW
# clones share refcounted nodes across forests, so this sweep is the
# use-after-free tripwire for both contracts. Usage:
#
#   scripts/run_asan_tests.sh            # ASan+UBSan
#
# Extra args are forwarded to ctest.
set -euo pipefail

FUME_SANITIZE=address exec "$(dirname "$0")/run_tsan_tests.sh" "$@"
