#!/usr/bin/env python3
"""Plots the paper figures from the bench harness's CSV artifacts.

Run the benches first (they write bench_artifacts/*.csv), then:

    python3 scripts/plot_figures.py [artifact_dir] [output_dir]

Requires matplotlib; if it is unavailable the script prints per-figure
summaries instead so it remains useful in minimal containers.
"""

import csv
import os
import sys
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        return list(reader)


def maybe_matplotlib():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        return None


def plot_fig3(rows, plt, out_dir):
    """Scatter of estimated vs actual fairness per (subsets, range) panel."""
    panels = defaultdict(list)
    for row in rows:
        if row["metric"] != "predictive parity":
            continue
        panels[(row["subsets"], row["support_range"])].append(
            (float(row["actual_fairness"]), float(row["estimated_fairness"]))
        )
    if plt is None:
        for key, pts in sorted(panels.items()):
            mae = sum(abs(a - e) for a, e in pts) / max(1, len(pts))
            print(f"fig3 {key}: {len(pts)} points, MAE={mae:.4f}")
        return
    keys = sorted(panels)
    fig, axes = plt.subplots(1, len(keys), figsize=(4 * len(keys), 4))
    if len(keys) == 1:
        axes = [axes]
    for ax, key in zip(axes, keys):
        pts = panels[key]
        xs = [a for a, _ in pts]
        ys = [e for _, e in pts]
        lo, hi = min(xs + ys), max(xs + ys)
        ax.plot([lo, hi], [lo, hi], color="green", linewidth=1)
        ax.scatter(xs, ys, s=8, alpha=0.6)
        ax.set_title(f"{key[0]}, {key[1]}")
        ax.set_xlabel("actual fairness")
        ax.set_ylabel("estimated fairness")
    fig.suptitle("Figure 3: DaRE-estimated vs actual (predictive parity)")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig3.png"), dpi=150)
    print("wrote fig3.png")


def plot_fig4(rows, plt, out_dir):
    if plt is None:
        for row in rows:
            print(
                f"fig4 {row['dataset']} {row['support_range']}: "
                f"max={row['max_reduction']}, avg={row['avg_reduction']}"
            )
        return
    datasets = sorted({row["dataset"] for row in rows})
    ranges = ["0-5%", "5-15%", ">30%"]
    fig, ax = plt.subplots(figsize=(10, 4))
    width = 0.25
    for i, rng in enumerate(ranges):
        xs, maxs, avgs = [], [], []
        for d, dataset in enumerate(datasets):
            for row in rows:
                if row["dataset"] == dataset and row["support_range"] == rng:
                    xs.append(d + (i - 1) * width)
                    maxs.append(float(row["max_reduction"]) * 100)
                    avgs.append(float(row["avg_reduction"]) * 100)
        ax.bar(xs, maxs, width=width, alpha=0.4, label=f"max {rng}")
        ax.bar(xs, avgs, width=width * 0.6, label=f"avg {rng}")
    ax.set_xticks(range(len(datasets)))
    ax.set_xticklabels(datasets, rotation=20)
    ax.set_ylabel("bias reduction (%)")
    ax.set_title("Figure 4: quality of top-5 attributable subsets")
    ax.legend(fontsize=7, ncol=3)
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig4.png"), dpi=150)
    print("wrote fig4.png")


def plot_fig5(rows_a, rows_b, plt, out_dir):
    if plt is None:
        for row in rows_a:
            print(
                f"fig5a n={row['instances']} p={row['attributes']}: "
                f"{row['seconds']}s"
            )
        for row in rows_b:
            print(f"fig5b d={row['values_per_attr']}: {row['seconds']}s")
        return
    fig, (ax_a, ax_b) = plt.subplots(1, 2, figsize=(10, 4))
    by_p = defaultdict(list)
    for row in rows_a:
        by_p[int(row["attributes"])].append(
            (int(row["instances"]), float(row["seconds"]))
        )
    for p, pts in sorted(by_p.items()):
        pts.sort()
        ax_a.plot([n for n, _ in pts], [s for _, s in pts], marker="o",
                  label=f"p={p}")
    ax_a.set_xlabel("#instances")
    ax_a.set_ylabel("FUME runtime (s)")
    ax_a.set_title("Figure 5(a)")
    ax_a.legend()
    ax_b.plot([int(r["values_per_attr"]) for r in rows_b],
              [float(r["seconds"]) for r in rows_b], marker="s")
    ax_b.set_xlabel("distinct values per attribute")
    ax_b.set_ylabel("FUME runtime (s)")
    ax_b.set_title("Figure 5(b)")
    fig.tight_layout()
    fig.savefig(os.path.join(out_dir, "fig5.png"), dpi=150)
    print("wrote fig5.png")


def main():
    artifact_dir = sys.argv[1] if len(sys.argv) > 1 else "bench_artifacts"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else artifact_dir
    os.makedirs(out_dir, exist_ok=True)
    plt = maybe_matplotlib()
    if plt is None:
        print("(matplotlib unavailable — printing summaries instead)")

    def load(name):
        path = os.path.join(artifact_dir, name)
        return read_csv(path) if os.path.exists(path) else None

    fig3 = load("fig3_scatter.csv")
    if fig3:
        plot_fig3(fig3, plt, out_dir)
    fig4 = load("fig4_quality.csv")
    if fig4:
        plot_fig4(fig4, plt, out_dir)
    fig5a, fig5b = load("fig5a_scaling.csv"), load("fig5b_scaling.csv")
    if fig5a and fig5b:
        plot_fig5(fig5a, fig5b, plt, out_dir)
    if not any([fig3, fig4, fig5a]):
        print(f"no artifacts found in {artifact_dir}; run the benches first")


if __name__ == "__main__":
    main()
