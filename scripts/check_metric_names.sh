#!/usr/bin/env bash
# Lints the metric names used by production code (src/, tools/, bench/,
# examples/ — tests may register throwaway names) against two rules:
#
#   1. Scheme: every literal passed to obs::GetCounter / GetGauge /
#      GetHistogram matches the dotted lowercase naming scheme
#      <subsystem>.<object>.<event> (two or more dot-separated segments of
#      [a-z0-9_]).
#   2. Documentation: the name is discoverable in docs/observability.md —
#      either verbatim, or via a documented `prefix.*` wildcard row that
#      also lists the name's remaining suffix (the doc's table style, e.g.
#      the `fume.prune.*` row listing `rule4_parent`).
#
# Run from anywhere; exits non-zero listing every violation. Wired into
# scripts/run_bench_smoke.sh so CI catches undocumented or misnamed
# metrics the moment they are introduced.
set -euo pipefail

cd "$(dirname "$0")/.."

DOC="docs/observability.md"
if [ ! -f "${DOC}" ]; then
  echo "FAIL: ${DOC} not found"
  exit 1
fi

names="$(grep -rhoE 'Get(Counter|Gauge|Histogram)\("[^"]+"\)' \
           src tools bench examples \
         | sed -E 's/.*\("([^"]+)"\).*/\1/' | sort -u)"

if [ -z "${names}" ]; then
  echo "FAIL: no metric registrations found (extraction broken?)"
  exit 1
fi

status=0
count=0
for name in ${names}; do
  count=$((count + 1))

  if ! printf '%s' "${name}" | grep -qE '^[a-z0-9_]+(\.[a-z0-9_]+)+$'; then
    echo "FAIL: '${name}' violates the <subsystem>.<object>.<event> scheme"
    status=1
    continue
  fi

  # Documented verbatim?
  if grep -qF "${name}" "${DOC}"; then
    continue
  fi

  # Documented via a wildcard row? Accept any split point: the doc must
  # contain "prefix.*" and, somewhere, the remaining suffix.
  documented=0
  prefix="${name}"
  while [[ "${prefix}" == *.* ]]; do
    prefix="${prefix%.*}"
    suffix="${name#"${prefix}".}"
    if grep -qF "${prefix}.*" "${DOC}" && grep -qF "${suffix}" "${DOC}"; then
      documented=1
      break
    fi
  done
  if [ "${documented}" -eq 0 ]; then
    echo "FAIL: '${name}' is not documented in ${DOC}"
    status=1
  fi
done

if [ "${status}" -eq 0 ]; then
  echo "metric names OK (${count} names checked against ${DOC})"
fi
exit "${status}"
