#!/usr/bin/env bash
# CI smoke for the perf benches: builds bench_unlearn_kernel,
# bench_eval_throughput and bench_stream_throughput and runs each on the
# smallest substrate (--smoke), failing on crash, on an in-bench exactness
# violation (the benches exit non-zero when top-k / DeletionStats /
# serialized-bytes identity breaks or a NaN shows up in a measurement), or
# on a non-finite value leaking into the JSON artifacts. The artifacts are
# then structurally validated by `bench_check --smoke` (parse, non-empty
# cells, finite-positive throughput, exactness attestations true), and the
# metric-name lint runs over the tree. Takes ~a minute; no perf thresholds
# are asserted — throughput numbers from a shared CI box are noise,
# identity is not. (Perf regressions are caught by running the benches at
# full size and `bench_check --baseline-dir bench_artifacts` — see
# docs/observability.md.)
#
# The benches write bench_artifacts/ relative to their CWD, so this script
# runs them from a scratch directory inside the build tree — the repo's
# committed full-run artifacts are never overwritten by smoke numbers.
# Usage:
#
#   scripts/run_bench_smoke.sh           # default build dir: build-bench-smoke
#   BUILD_DIR=build scripts/run_bench_smoke.sh   # reuse an existing tree
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench-smoke}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
  -DFUME_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j --target bench_unlearn_kernel \
  bench_eval_throughput bench_stream_throughput bench_serve bench_shard \
  bench_check fume_stream_cli fume_serve_cli fume_client

REPO_DIR="$(pwd)"
BENCH_DIR="$(cd "${BUILD_DIR}" && pwd)/bench"
TOOLS_DIR="$(cd "${BUILD_DIR}" && pwd)/tools"
SCRATCH="${BUILD_DIR}/bench-smoke"
mkdir -p "${SCRATCH}"
cd "${SCRATCH}"

status=0
for bench in bench_unlearn_kernel bench_eval_throughput bench_stream_throughput \
             bench_serve bench_shard; do
  echo "=== ${bench} --smoke ==="
  if ! "${BENCH_DIR}/${bench}" --smoke; then
    echo "FAIL: ${bench} exited non-zero (crash or exactness violation)"
    status=1
  fi
done

# Belt and braces: no NaN/inf in the machine-readable artifacts.
for artifact in bench_artifacts/BENCH_unlearn.json bench_artifacts/BENCH_eval.json \
                bench_artifacts/BENCH_incremental.json bench_artifacts/BENCH_serve.json \
                bench_artifacts/BENCH_shard.json; do
  if [ ! -f "${artifact}" ]; then
    echo "FAIL: ${artifact} was not written"
    status=1
  elif grep -qiE 'nan|inf' "${artifact}"; then
    echo "FAIL: non-finite value in ${artifact}"
    status=1
  fi
done

# The eval bench must have exercised the arena strategy (and attested its
# byte-identity against the pointer walk) even at smoke size — a silently
# dropped strategy column would otherwise pass every structural check.
if [ -f bench_artifacts/BENCH_eval.json ]; then
  if ! grep -q '"strategy": *"arena"' bench_artifacts/BENCH_eval.json; then
    echo "FAIL: no arena strategy cells in BENCH_eval.json"
    status=1
  fi
  if ! grep -q '"arena_pointer_identical": *true' bench_artifacts/BENCH_eval.json; then
    echo "FAIL: arena_pointer_identical attestation missing or false in BENCH_eval.json"
    status=1
  fi
fi

# The unlearn bench must have exercised the lazy-tags strategy and attested
# both lazy exactness invariants: the flushed lazy forest is byte-identical
# to the eager kernel, and a query-flushed lazy burst leaves the top-k
# search unchanged.
if [ -f bench_artifacts/BENCH_unlearn.json ]; then
  if ! grep -q '"strategy": *"lazy-tags"' bench_artifacts/BENCH_unlearn.json; then
    echo "FAIL: no lazy-tags strategy cells in BENCH_unlearn.json"
    status=1
  fi
  for key in lazy_flush_bytes_identical lazy_topk_identical; do
    if ! grep -q "\"${key}\": *true" bench_artifacts/BENCH_unlearn.json; then
      echo "FAIL: ${key} attestation missing or false in BENCH_unlearn.json"
      status=1
    fi
  done
fi

# The shard bench must attest every SISA exactness invariant: the 1-shard
# container is byte- and top-k-identical to the monolithic forest, a
# sharded delete equals per-shard standalone deletes, and results are
# byte-identical across thread counts.
if [ -f bench_artifacts/BENCH_shard.json ]; then
  for key in shard1_bytes_identical shard1_topk_identical \
             per_shard_delete_bytes_identical thread_counts_bytes_identical; do
    if ! grep -q "\"${key}\": *true" bench_artifacts/BENCH_shard.json; then
      echo "FAIL: ${key} attestation missing or false in BENCH_shard.json"
      status=1
    fi
  done
  if ! grep -q '"kind": *"delete-cohort"' bench_artifacts/BENCH_shard.json; then
    echo "FAIL: no delete-cohort cells in BENCH_shard.json"
    status=1
  fi
fi

# Lazy stream smoke: a delete-heavy run with deferred subtree retrains must
# end with the in-binary identity attestation — the flushed model equals a
# cold retrain on the surviving rows (fume_stream exits non-zero and prints
# MISMATCH otherwise).
echo "=== fume_stream --lazy identity smoke ==="
if ! "${TOOLS_DIR}/fume_stream" --dataset german-credit --rows 500 --ops 40 \
    --delete-batch 8 --checkpoint-every 10 --lazy --lazy-budget 64 \
    > stream-lazy.log 2>&1; then
  echo "FAIL: fume_stream --lazy exited non-zero"
  tail -5 stream-lazy.log
  status=1
elif ! grep -q "lazy identity: ok" stream-lazy.log; then
  echo "FAIL: fume_stream --lazy did not print its identity attestation"
  status=1
fi

# Sharded stream replay smoke: a slice-placed 4-shard run writes its op
# log and a mid-run checkpoint; restoring the checkpoint and replaying the
# tail of the log must land on the same final metric and accuracy as the
# uninterrupted run (v2 per-shard checkpoint container + dirty-shard
# recovery).
echo "=== fume_stream --shards replay smoke ==="
rm -f shard-ops.log shard.ckpt
if ! "${TOOLS_DIR}/fume_stream" --dataset german-credit --rows 500 --ops 30 \
    --delete-batch 6 --checkpoint-every 20 --shards 4 --placement slice \
    --oplog-out shard-ops.log --checkpoint shard.ckpt \
    > stream-shard.log 2>&1; then
  echo "FAIL: sharded fume_stream exited non-zero"
  tail -5 stream-shard.log
  status=1
elif ! "${TOOLS_DIR}/fume_stream" --dataset german-credit --rows 500 \
    --shards 4 --placement slice --oplog shard-ops.log --resume shard.ckpt \
    > stream-shard-resume.log 2>&1; then
  echo "FAIL: sharded fume_stream --resume exited non-zero"
  tail -5 stream-shard-resume.log
  status=1
else
  final_run="$(grep '^final' stream-shard.log)"
  final_resumed="$(grep '^final' stream-shard-resume.log)"
  if [ -z "${final_run}" ] || [ "${final_run}" != "${final_resumed}" ]; then
    echo "FAIL: sharded replay diverged from the uninterrupted run"
    echo "  run:     ${final_run}"
    echo "  resumed: ${final_resumed}"
    status=1
  fi
fi

# End-to-end serving smoke: boot fume_serve with a sharded default tenant
# on an ephemeral port, run the canned fume_client round trips (health/
# metrics/explain/predict/whatif/stream/checkpoint — all through the SISA
# ensemble), then check SIGTERM drains to a clean exit.
echo "=== fume_serve --shards / fume_client --smoke ==="
rm -f serve.port
"${TOOLS_DIR}/fume_serve" --rows 600 --port 0 --port-file serve.port \
  --checkpoint-dir serve-state --oplog-dir serve-state --lazy \
  --shards 2 --placement slice &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s serve.port ] && break
  sleep 0.1
done
if [ ! -s serve.port ]; then
  echo "FAIL: fume_serve never wrote its port file"
  kill -9 "${SERVE_PID}" 2>/dev/null || true
  status=1
elif ! "${TOOLS_DIR}/fume_client" --port-file serve.port --smoke; then
  echo "FAIL: fume_client --smoke against fume_serve"
  kill -9 "${SERVE_PID}" 2>/dev/null || true
  status=1
else
  kill -TERM "${SERVE_PID}"
  if ! wait "${SERVE_PID}"; then
    echo "FAIL: fume_serve did not exit cleanly on SIGTERM"
    status=1
  elif [ ! -f serve-state/default.ckpt ]; then
    echo "FAIL: fume_serve wrote no shutdown checkpoint"
    status=1
  fi
fi

# Structural validation of the freshly produced artifacts.
echo "=== bench_check --smoke ==="
if ! "${TOOLS_DIR}/bench_check" --smoke --fresh-dir bench_artifacts; then
  echo "FAIL: bench_check --smoke rejected the artifacts"
  status=1
fi

# Every metric name in the tree is well-formed and documented.
echo "=== check_metric_names ==="
if ! "${REPO_DIR}/scripts/check_metric_names.sh"; then
  status=1
fi

if [ "${status}" -eq 0 ]; then
  echo "bench smoke OK"
fi
exit "${status}"
