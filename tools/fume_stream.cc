// fume_stream: drive a streaming FUME engine over an insert/delete op-log.
//
//   # synthesize a workload over the german-credit stream and watch the
//   # fairness metric + explanation evolve
//   fume_stream --dataset german-credit --ops 100 --checkpoint-every 25
//
//   # persist the op-log and engine checkpoints, then resume mid-log
//   fume_stream --dataset german-credit --oplog-out=/tmp/log.ops
//               --checkpoint=/tmp/engine.ckpt
//   fume_stream --dataset german-credit --oplog=/tmp/log.ops
//               --resume=/tmp/engine.ckpt
//
// Run with --help for the full flag list.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>

#include "core/report.h"
#include "data/split.h"
#include "fairness/metrics.h"
#include "forest/forest.h"
#include "forest/tree.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/query_scope.h"
#include "obs/trace.h"
#include "stream/engine.h"
#include "stream/workload.h"
#include "synth/registry.h"
#include "util/string_util.h"

namespace {

using namespace fume;

// SIGINT/SIGTERM request a graceful stop: finish the op in flight, write a
// final checkpoint, and let the normal exit path flush metrics/event logs.
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct CliOptions {
  // Data.
  std::string dataset = "german-credit";
  int64_t rows = 0;
  uint64_t seed = 4;
  double test_fraction = 0.3;
  // Model.
  int trees = 10;
  int depth = 8;
  int random_depth = 2;
  uint64_t model_seed = 31;
  bool lazy = false;
  int64_t lazy_budget = 0;  // 0 = ForestConfig default
  int shards = 1;
  std::string placement = "hash";
  // Search.
  FairnessMetric metric = FairnessMetric::kStatisticalParity;
  int top_k = 5;
  double support_min = 0.05;
  double support_max = 0.15;
  int literals = 2;
  int threads = 1;
  // Stream.
  std::string oplog;
  std::string oplog_out;
  int ops = 100;
  int insert_batch = 5;
  int delete_batch = 3;
  int checkpoint_every = 25;
  uint64_t workload_seed = 17;
  std::string checkpoint;
  std::string resume;
  double drift_abs = 0.01;
  double drift_rel = 0.10;
  bool no_search_on_checkpoint = false;
  // Observability.
  bool print_metrics = false;
  bool query_cost = false;
  std::string metrics_out;
  std::string trace_out;
  std::string event_log;
};

void PrintUsage() {
  std::cout << R"(fume_stream — incremental FUME over an insert/delete op-log

Data (initial training set + insert pool come from one synthetic dataset):
  --dataset NAME        built-in synthetic dataset (default german-credit)
  --rows N              override dataset size
  --seed N              data seed (default 4)
  --test-fraction F     test split fraction (default 0.3)

Model:
  --trees N             forest size (default 10)
  --depth N             max tree depth (default 8)
  --random-depth N      DaRE random upper levels (default 2)
  --model-seed N        forest seed (default 31)
  --lazy                defer subtree retrains across delete bursts
                        (DynFrs-style tags); flushed at inserts,
                        checkpoints and queries — end of run attests the
                        final model equals a cold retrain exactly
  --lazy-budget N       auto-flush once N doomed rows are pending
                        (default 4096)
  --shards N            SISA shards (default 1 = monolithic): rows
                        hash-partition across N sub-forests, deletes run
                        shard-locally, searches use the sharded removal
                        method, checkpoints re-serialize dirty shards only
  --placement P         hash | slice (default hash); slice concentrates
                        the dataset's sensitive privileged cohort — the
                        rows FUME's deletions target — into the last shard

Search:
  --metric M            statistical-parity | equalized-odds |
                        predictive-parity | equal-opportunity |
                        disparate-impact (default statistical-parity)
  --k N                 top-k subsets (default 5)
  --support-min F       Rule 2 lower bound (default 0.05)
  --support-max F       Rule 2 upper bound (default 0.15)
  --literals N          Rule 3 max literals (default 2)
  --threads N           parallel attribution workers (default 1)

Stream:
  --oplog FILE          replay ops from FILE instead of synthesizing
  --oplog-out FILE      write the synthesized op-log to FILE
  --ops N               synthesized op count (default 100)
  --insert-batch N      rows per synthesized insert (default 5)
  --delete-batch N      ids per synthesized delete (default 3)
  --checkpoint-every N  synthesized checkpoint cadence (default 25)
  --workload-seed N     synthesized workload seed (default 17)
  --checkpoint FILE     (re)write an engine checkpoint at every C op
  --resume FILE         restore the engine from FILE and replay only ops
                        with seq past the checkpoint
  --drift-abs F         re-search when |dF| >= F (default 0.01)
  --drift-rel F         ... or >= F * |F_last| (default 0.10)
  --no-search-on-checkpoint
                        serve possibly-stale top-k at checkpoints too

Observability (docs/observability.md):
  --metrics             print a metrics summary after the run
  --metrics-out FILE    write all counters/histograms as JSON
  --trace-out FILE      write Chrome trace-event JSON
  --query-cost          print a per-op cost column (QueryScope deltas)
  --event-log FILE      append one structured JSONL line per stream op
                        with its cost summary
  --help, -h            this text
)";
}

std::optional<FairnessMetric> ParseMetric(const std::string& name) {
  if (name == "statistical-parity") return FairnessMetric::kStatisticalParity;
  if (name == "equalized-odds") return FairnessMetric::kEqualizedOdds;
  if (name == "predictive-parity") return FairnessMetric::kPredictiveParity;
  if (name == "equal-opportunity") return FairnessMetric::kEqualOpportunity;
  if (name == "disparate-impact") return FairnessMetric::kDisparateImpact;
  return std::nullopt;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts, bool* want_help) {
  std::string inline_value;
  bool has_inline = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }
    auto need_value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      *want_help = true;
      return true;
    } else if (flag == "--no-search-on-checkpoint") {
      opts->no_search_on_checkpoint = true;
    } else if (flag == "--lazy") {
      opts->lazy = true;
    } else if (flag == "--metrics") {
      opts->print_metrics = true;
    } else if (flag == "--query-cost") {
      opts->query_cost = true;
    } else if (flag == "--metrics-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->metrics_out = v;
    } else if (flag == "--trace-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->trace_out = v;
    } else if (flag == "--event-log") {
      if ((v = need_value()) == nullptr) return false;
      opts->event_log = v;
    } else if (flag == "--dataset") {
      if ((v = need_value()) == nullptr) return false;
      opts->dataset = v;
    } else if (flag == "--oplog") {
      if ((v = need_value()) == nullptr) return false;
      opts->oplog = v;
    } else if (flag == "--oplog-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->oplog_out = v;
    } else if (flag == "--checkpoint") {
      if ((v = need_value()) == nullptr) return false;
      opts->checkpoint = v;
    } else if (flag == "--resume") {
      if ((v = need_value()) == nullptr) return false;
      opts->resume = v;
    } else if (flag == "--placement") {
      if ((v = need_value()) == nullptr) return false;
      opts->placement = v;
    } else if (flag == "--metric") {
      if ((v = need_value()) == nullptr) return false;
      auto metric = ParseMetric(v);
      if (!metric) {
        std::cerr << "unknown metric '" << v << "'\n";
        return false;
      }
      opts->metric = *metric;
    } else {
      static const std::set<std::string> kNumericFlags = {
          "--rows",          "--seed",          "--test-fraction",
          "--trees",         "--depth",         "--random-depth",
          "--model-seed",    "--k",             "--support-min",
          "--support-max",   "--literals",      "--threads",
          "--ops",           "--insert-batch",  "--delete-batch",
          "--checkpoint-every", "--workload-seed", "--drift-abs",
          "--drift-rel",     "--lazy-budget",   "--shards"};
      if (kNumericFlags.count(flag) == 0) {
        std::cerr << "unknown flag: " << flag << " (see --help)\n";
        return false;
      }
      if ((v = need_value()) == nullptr) return false;
      int iv = 0;
      double dv = 0.0;
      const bool is_int = ParseInt(v, &iv);
      const bool is_double = ParseDouble(v, &dv);
      if (flag == "--rows" && is_int) opts->rows = iv;
      else if (flag == "--seed" && is_int) opts->seed = static_cast<uint64_t>(iv);
      else if (flag == "--test-fraction" && is_double) opts->test_fraction = dv;
      else if (flag == "--trees" && is_int) opts->trees = iv;
      else if (flag == "--depth" && is_int) opts->depth = iv;
      else if (flag == "--random-depth" && is_int) opts->random_depth = iv;
      else if (flag == "--model-seed" && is_int) opts->model_seed = static_cast<uint64_t>(iv);
      else if (flag == "--k" && is_int) opts->top_k = iv;
      else if (flag == "--support-min" && is_double) opts->support_min = dv;
      else if (flag == "--support-max" && is_double) opts->support_max = dv;
      else if (flag == "--literals" && is_int) opts->literals = iv;
      else if (flag == "--threads" && is_int) opts->threads = iv;
      else if (flag == "--ops" && is_int) opts->ops = iv;
      else if (flag == "--insert-batch" && is_int) opts->insert_batch = iv;
      else if (flag == "--delete-batch" && is_int) opts->delete_batch = iv;
      else if (flag == "--checkpoint-every" && is_int) opts->checkpoint_every = iv;
      else if (flag == "--workload-seed" && is_int) opts->workload_seed = static_cast<uint64_t>(iv);
      else if (flag == "--drift-abs" && is_double) opts->drift_abs = dv;
      else if (flag == "--drift-rel" && is_double) opts->drift_rel = dv;
      else if (flag == "--lazy-budget" && is_int) opts->lazy_budget = iv;
      else if (flag == "--shards" && is_int) opts->shards = iv;
      else {
        std::cerr << "unknown or malformed flag: " << flag << " " << v << "\n";
        return false;
      }
    }
  }
  return true;
}

// Mirrors fume_cli's end-of-run metrics/trace dump.
struct ObsOutputs {
  const CliOptions& opts;

  explicit ObsOutputs(const CliOptions& options) : opts(options) {
    if (!opts.trace_out.empty()) obs::StartTracing();
  }

  ~ObsOutputs() {
    if (!opts.trace_out.empty()) {
      obs::StopTracing();
      if (obs::WriteTraceJsonFile(opts.trace_out)) {
        std::cout << "trace written to " << opts.trace_out << "\n";
      } else {
        std::cerr << "could not write trace to " << opts.trace_out << "\n";
      }
    }
    if (opts.print_metrics || !opts.metrics_out.empty()) {
      obs::SetProcessGauges();
      cow_debug::RefreshLiveNodesGauge();
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      if (opts.print_metrics) {
        std::cout << "\n--- metrics ---\n";
        snapshot.PrintText(std::cout);
      }
      if (!opts.metrics_out.empty()) {
        std::ofstream out(opts.metrics_out);
        if (out << snapshot.ToJson() << "\n") {
          std::cout << "metrics written to " << opts.metrics_out << "\n";
        } else {
          std::cerr << "could not write metrics to " << opts.metrics_out
                    << "\n";
        }
      }
    }
  }
};

void PrintTimelineRow(const stream::OpOutcome& outcome) {
  std::printf("%6lld  %-10s %7lld  %+8.4f  %6.1f ms %s",
              static_cast<long long>(outcome.seq),
              stream::OpKindName(outcome.kind),
              static_cast<long long>(outcome.rows_live), outcome.metric,
              outcome.apply_seconds * 1e3,
              outcome.searched
                  ? ("searched (" +
                     std::to_string(
                         static_cast<int>(outcome.search_seconds * 1e3)) +
                     " ms)")
                        .c_str()
                  : "");
  if (!outcome.searched && outcome.staleness_ops > 0) {
    std::printf(" stale x%lld", static_cast<long long>(outcome.staleness_ops));
  }
  std::printf("\n");
}

int Run(const CliOptions& opts) {
  ObsOutputs obs_outputs(opts);
  obs::EventLog event_log(opts.event_log);  // empty path = disabled sink
  if (!opts.event_log.empty() && !event_log.ok()) {
    std::cerr << "could not open event log " << opts.event_log << "\n";
    return 1;
  }

  auto registered = synth::FindDataset(opts.dataset);
  if (!registered.ok()) {
    std::cerr << registered.status().ToString() << "\n";
    return 1;
  }
  synth::SynthOptions synth_opts;
  synth_opts.num_rows = opts.rows;
  synth_opts.seed = opts.seed;
  auto bundle = registered->make(synth_opts);
  if (!bundle.ok()) {
    std::cerr << bundle.status().ToString() << "\n";
    return 1;
  }
  SplitOptions split_opts;
  split_opts.test_fraction = opts.test_fraction;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }

  // A third of the training half is held back as the insert pool; the
  // engine starts from the rest.
  const int64_t pool_rows = split->train.num_rows() / 3;
  std::vector<int64_t> tail, head;
  for (int64_t r = 0; r < split->train.num_rows(); ++r) {
    (r < split->train.num_rows() - pool_rows ? head : tail).push_back(r);
  }
  const Dataset initial_train = split->train.DropRows(tail);
  const Dataset pool = split->train.DropRows(head);

  stream::StreamEngineConfig config;
  config.forest.num_trees = opts.trees;
  config.forest.max_depth = opts.depth;
  config.forest.random_depth = opts.random_depth;
  config.forest.seed = opts.model_seed;
  config.forest.lazy_unlearn = opts.lazy;
  if (opts.lazy_budget > 0) config.forest.max_lazy_rows = opts.lazy_budget;
  config.fume.top_k = opts.top_k;
  config.fume.support_min = opts.support_min;
  config.fume.support_max = opts.support_max;
  config.fume.max_literals = opts.literals;
  config.fume.num_threads = opts.threads;
  config.fume.metric = opts.metric;
  config.fume.group = bundle->group;
  config.shard.num_shards = opts.shards;
  if (opts.shards > 1) {
    auto placement = ParsePlacement(opts.placement);
    if (!placement.ok()) {
      std::cerr << placement.status().ToString() << "\n";
      return 1;
    }
    config.shard.placement = *placement;
    if (config.shard.placement == ShardConfig::Placement::kSlice) {
      // Concentrate the privileged cohort — the rows a parity-reducing
      // deletion targets — into the trailing hot shard.
      config.shard.slice_attr = bundle->group.sensitive_attr;
      config.shard.slice_value = bundle->group.privileged_code;
      config.shard.hot_shards = 1;
    }
  }
  config.drift.abs_threshold = opts.drift_abs;
  config.drift.rel_threshold = opts.drift_rel;
  config.search_on_checkpoint = !opts.no_search_on_checkpoint;
  config.checkpoint_path = opts.checkpoint;

  // The op-log: read from file, or synthesize (and maybe persist).
  std::vector<stream::StreamOp> ops;
  if (!opts.oplog.empty()) {
    auto read = stream::ReadOpLogFile(opts.oplog);
    if (!read.ok()) {
      std::cerr << read.status().ToString() << "\n";
      return 1;
    }
    ops = std::move(*read);
  } else {
    stream::WorkloadOptions w;
    w.num_ops = opts.ops;
    w.insert_batch = opts.insert_batch;
    w.delete_batch = opts.delete_batch;
    w.checkpoint_every = opts.checkpoint_every;
    w.seed = opts.workload_seed;
    auto synthesized =
        stream::SynthesizeOpLog(pool, initial_train.num_rows(), w);
    if (!synthesized.ok()) {
      std::cerr << synthesized.status().ToString() << "\n";
      return 1;
    }
    ops = std::move(*synthesized);
    if (!opts.oplog_out.empty()) {
      Status st = stream::WriteOpLogFile(ops, opts.oplog_out);
      if (!st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
      std::cout << "op-log written to " << opts.oplog_out << "\n";
    }
  }

  // The engine: cold-start, or restore from a checkpoint and fast-forward.
  std::optional<stream::StreamEngine> engine;
  if (!opts.resume.empty()) {
    auto restored = stream::StreamEngine::RestoreFromFile(
        opts.resume, initial_train.schema(), split->test, config);
    if (!restored.ok()) {
      std::cerr << restored.status().ToString() << "\n";
      return 1;
    }
    engine.emplace(std::move(*restored));
    const size_t before = ops.size();
    std::erase_if(ops, [&](const stream::StreamOp& op) {
      return op.seq <= engine->last_seq();
    });
    std::cout << "restored from " << opts.resume << " at seq "
              << engine->last_seq() << "; skipping " << before - ops.size()
              << " already-applied ops\n";
  } else {
    auto created =
        stream::StreamEngine::Create(initial_train, split->test, config);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    engine.emplace(std::move(*created));
  }

  std::cout << "dataset: " << bundle->name << ", " << engine->rows_live()
            << " live training rows, " << split->test.num_rows()
            << " test rows\ninitial " << FairnessMetricName(opts.metric)
            << ": " << FormatDouble(engine->current_metric(), 4)
            << ", accuracy " << FormatPercent(engine->current_accuracy())
            << "\n\n   seq  kind          live    metric      apply\n";

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  bool interrupted = false;
  for (const stream::StreamOp& op : ops) {
    if (g_stop != 0) {
      interrupted = true;
      break;
    }
    obs::QueryScope scope("op");
    auto outcome = engine->Apply(op);
    const obs::QueryCost cost = scope.Finish();
    if (!outcome.ok()) {
      std::cerr << "op seq " << op.seq << ": " << outcome.status().ToString()
                << "\n";
      return 1;
    }
    PrintTimelineRow(*outcome);
    if (opts.query_cost) std::cout << "        " << cost.CompactString() << "\n";
    event_log.Event("stream_op")
        .Field("op_seq", outcome->seq)
        .Field("kind", stream::OpKindName(outcome->kind))
        .Field("rows_live", outcome->rows_live)
        .Field("metric", outcome->metric)
        .Field("searched", outcome->searched)
        .Field("cost", cost)
        .Write();
    if (outcome->kind == stream::OpKind::kCheckpoint &&
        !opts.checkpoint.empty()) {
      event_log.Event("checkpoint")
          .Field("op_seq", outcome->seq)
          .Field("path", opts.checkpoint)
          .Write();
    }
  }

  if (interrupted) {
    std::cout << "\ninterrupted at seq " << engine->last_seq()
              << "; draining\n";
    if (!opts.checkpoint.empty()) {
      Status st = engine->SaveCheckpointToFile(opts.checkpoint);
      if (st.ok()) {
        std::cout << "final checkpoint written to " << opts.checkpoint
                  << "\n";
        event_log.Event("checkpoint")
            .Field("op_seq", engine->last_seq())
            .Field("path", opts.checkpoint)
            .Field("on_signal", true)
            .Write();
      } else {
        std::cerr << st.ToString() << "\n";
      }
    }
  }

  if (opts.lazy) {
    // Retire any retrains still deferred from the tail of the stream so the
    // final metric below reflects a fully flushed model.
    engine->FlushLazy();
  }
  if (opts.lazy && !interrupted && engine->is_sharded()) {
    // Sharded lazy identity: each shard must equal a cold retrain of its
    // own surviving rows (arrival order, the shard's derived seed). A
    // whole-ensemble cold ShardedForest::Train would re-place rows under
    // fresh global ids and legitimately differ — exactness is per shard.
    const ShardedForest& live_model = engine->sharded_forest();
    const Dataset& train = engine->train_data();
    const std::vector<RowId>& ids = engine->live_ids();
    bool ok = live_model.ValidateStats();
    int64_t compared = 0;
    for (int s = 0; ok && s < live_model.num_shards(); ++s) {
      std::vector<int64_t> members;
      for (size_t r = 0; r < ids.size(); ++r) {
        if (live_model.shard_of(ids[r]) == s) {
          members.push_back(static_cast<int64_t>(r));
        }
      }
      ForestConfig cfg = config.forest;
      cfg.seed = config.forest.seed +
                 ShardedForest::kShardSeedStride * static_cast<uint64_t>(s);
      auto cold = DareForest::Train(train.Select(members), cfg);
      if (!cold.ok()) {
        std::cerr << cold.status().ToString() << "\n";
        return 1;
      }
      const std::vector<double> live_probs =
          live_model.shard(s).PredictProbAll(engine->test_data());
      ok = ok && live_probs == cold->PredictProbAll(engine->test_data());
      compared += static_cast<int64_t>(live_probs.size());
    }
    // The served metric comes from the warm per-shard cache; it must agree
    // with a fresh ensemble vote over the flushed model.
    ok = ok && engine->current_metric() ==
                   ComputeFairness(engine->test_data(),
                                   live_model.PredictAll(engine->test_data()),
                                   config.fume.group, opts.metric);
    if (!ok) {
      std::cerr << "lazy identity: MISMATCH — flushed sharded model differs "
                   "from per-shard cold retrains on the surviving rows\n";
      return 1;
    }
    std::cout << "\nlazy identity: ok (" << live_model.num_shards()
              << " flushed shards == per-shard cold retrains, " << compared
              << " test predictions compared)\n";
  } else if (opts.lazy && !interrupted) {
    // Lazy identity attestation (DESIGN.md §6 invariant 9): after the final
    // flush, the engine's model must be indistinguishable from a cold
    // retrain on the surviving rows — predictions, fairness metric, and
    // accuracy all exact. A mismatch is a correctness bug, not noise.
    auto cold = DareForest::Train(engine->train_data(), config.forest);
    if (!cold.ok()) {
      std::cerr << cold.status().ToString() << "\n";
      return 1;
    }
    const std::vector<double> live =
        engine->forest().PredictProbAll(engine->test_data());
    const std::vector<double> cold_probs =
        cold->PredictProbAll(engine->test_data());
    bool ok = engine->forest().ValidateStats();
    ok = ok && live == cold_probs;
    ok = ok && engine->current_metric() ==
                   ComputeFairness(*cold, engine->test_data(),
                                   config.fume.group, opts.metric);
    ok = ok && engine->current_accuracy() == cold->Accuracy(engine->test_data());
    if (!ok) {
      std::cerr << "lazy identity: MISMATCH — flushed lazy model differs "
                   "from a cold retrain on the surviving rows\n";
      return 1;
    }
    std::cout << "\nlazy identity: ok (flushed model == cold retrain, "
              << live.size() << " test predictions compared)\n";
  }

  std::cout << "\nfinal " << FairnessMetricName(opts.metric) << ": "
            << FormatDouble(engine->current_metric(), 4) << ", accuracy "
            << FormatPercent(engine->current_accuracy()) << ", staleness "
            << engine->staleness() << " ops\n";
  if (engine->explanation() != nullptr) {
    std::cout << "\n";
    PrintTopK(*engine->explanation(), initial_train.schema(), "S", std::cout);
  } else {
    std::cout << "no fairness violation at the last search — nothing to "
                 "explain\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &opts, &want_help)) return 2;
  if (want_help) {
    PrintUsage();
    return 0;
  }
  return Run(opts);
}
