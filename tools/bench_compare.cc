#include "bench_compare.h"

#include <cmath>
#include <unordered_map>

namespace fume {
namespace bench_check {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsSizeField(const std::string& name) {
  return name == "rows" || name == "batch_rows";
}

std::string FormatInt(double v) {
  return std::to_string(static_cast<long long>(v));
}

}  // namespace

std::string CellKey(const util::JsonValue& cell) {
  if (!cell.is_object()) return "";
  std::string key;
  for (const auto& member : cell.object) {
    const bool identifying =
        member.second.is_string() ||
        (member.second.is_number() && IsSizeField(member.first));
    if (!identifying) continue;
    if (!key.empty()) key += ',';
    key += member.first;
    key += '=';
    key += member.second.is_string() ? member.second.string_value
                                     : FormatInt(member.second.number_value);
  }
  return key;
}

std::string ThroughputField(const util::JsonValue& cell) {
  if (!cell.is_object()) return "";
  for (const auto& member : cell.object) {
    if (member.second.is_number() && EndsWith(member.first, "_per_sec")) {
      return member.first;
    }
  }
  return "";
}

void CheckArtifactStructure(const util::JsonValue& artifact,
                            const std::string& name,
                            std::vector<std::string>* problems) {
  if (!artifact.is_object()) {
    problems->push_back(name + ": top level is not a JSON object");
    return;
  }
  for (const auto& member : artifact.object) {
    if (EndsWith(member.first, "_identical")) {
      if (!member.second.is_bool() || !member.second.bool_value) {
        problems->push_back(name + ": exactness attestation \"" +
                            member.first + "\" is not true");
      }
    }
  }
  const util::JsonValue* cells = artifact.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    problems->push_back(name + ": missing \"cells\" array");
    return;
  }
  if (cells->array.empty()) {
    problems->push_back(name + ": \"cells\" is empty");
    return;
  }
  for (size_t i = 0; i < cells->array.size(); ++i) {
    const util::JsonValue& cell = cells->array[i];
    const std::string key = CellKey(cell);
    const std::string label =
        name + " cell " + std::to_string(i) + (key.empty() ? "" : " (" + key + ")");
    if (key.empty()) {
      problems->push_back(label + ": no identifying fields");
      continue;
    }
    const std::string field = ThroughputField(cell);
    if (field.empty()) {
      problems->push_back(label + ": no *_per_sec throughput field");
      continue;
    }
    const double value = cell.NumberOr(field, 0.0);
    if (!std::isfinite(value) || value <= 0.0) {
      problems->push_back(label + ": " + field + " is not finite-positive");
    }
  }
}

Result<ArtifactComparison> CompareArtifacts(const std::string& name,
                                            const util::JsonValue& baseline,
                                            const util::JsonValue& fresh,
                                            const CompareOptions& options) {
  std::vector<std::string> problems;
  CheckArtifactStructure(baseline, name + " (baseline)", &problems);
  CheckArtifactStructure(fresh, name + " (fresh)", &problems);
  if (!problems.empty()) {
    std::string message = "malformed artifact(s):";
    for (const std::string& p : problems) message += "\n  " + p;
    return Status::Invalid(message);
  }

  std::unordered_map<std::string, const util::JsonValue*> fresh_cells;
  for (const util::JsonValue& cell : fresh.Find("cells")->array) {
    fresh_cells.emplace(CellKey(cell), &cell);  // first wins on dup keys
  }

  ArtifactComparison result;
  result.name = name;
  std::unordered_map<std::string, bool> baseline_keys;
  for (const util::JsonValue& cell : baseline.Find("cells")->array) {
    CellComparison c;
    c.key = CellKey(cell);
    c.field = ThroughputField(cell);
    c.baseline = cell.NumberOr(c.field, 0.0);
    baseline_keys.emplace(c.key, true);
    const auto it = fresh_cells.find(c.key);
    if (it == fresh_cells.end()) {
      c.missing_in_fresh = true;
      c.regression = true;
    } else {
      c.fresh = it->second->NumberOr(c.field, 0.0);
      c.regression = c.fresh < c.baseline * (1.0 - options.tolerance);
    }
    if (c.regression) ++result.regressions;
    result.cells.push_back(std::move(c));
  }
  // Fresh-only cells extend the baseline (e.g. a bench grew a strategy
  // column); surface them in fresh-artifact order so the caller can report
  // them, but never fail on them.
  for (const util::JsonValue& cell : fresh.Find("cells")->array) {
    const std::string key = CellKey(cell);
    if (baseline_keys.count(key) != 0) continue;
    baseline_keys.emplace(key, false);  // report each new key once
    CellComparison c;
    c.key = key;
    c.field = ThroughputField(cell);
    c.fresh = cell.NumberOr(c.field, 0.0);
    result.baseline_extending.push_back(std::move(c));
  }
  return result;
}

}  // namespace bench_check
}  // namespace fume
