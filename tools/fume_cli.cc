// fume_cli: command-line fairness audit tool.
//
//   # audit a built-in synthetic dataset
//   fume_cli --dataset german-credit --metric statistical-parity
//
//   # audit your own CSV (numeric columns are quantile-binned)
//   fume_cli --csv data.csv --label outcome --sensitive gender \
//            --privileged male --support-min 0.05 --support-max 0.15
//
// Run with --help for the full flag list.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>

#include "core/baseline.h"
#include "core/fume.h"
#include "core/report.h"
#include "core/sharded_removal.h"
#include "core/slice_finder.h"
#include "data/csv.h"
#include "data/discretizer.h"
#include "data/split.h"
#include "forest/serialize.h"
#include "forest/sharded_forest.h"
#include "forest/tree.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/query_scope.h"
#include "obs/trace.h"
#include "synth/registry.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace fume;

struct CliOptions {
  // Data source (exactly one of dataset / csv).
  std::string dataset;
  std::string csv;
  std::string label = "label";
  std::string sensitive;
  std::string privileged;
  int64_t rows = 0;
  uint64_t seed = 4;
  int bins = 4;
  // Model.
  int trees = 10;
  int depth = 8;
  int random_depth = 2;
  uint64_t model_seed = 31;
  std::string save_model;
  int shards = 1;
  std::string placement = "hash";
  // Search.
  FairnessMetric metric = FairnessMetric::kStatisticalParity;
  int top_k = 5;
  double support_min = 0.05;
  double support_max = 0.15;
  int literals = 2;
  int threads = 1;
  double overlap = 1.0;
  bool exclude_sensitive = false;
  bool run_baseline = false;
  bool run_slicefinder = false;
  double test_fraction = 0.3;
  // Observability.
  bool print_metrics = false;
  bool query_cost = false;
  std::string metrics_out;
  std::string trace_out;
  std::string event_log;
};

void PrintUsage() {
  std::cout << R"(fume_cli — explain a group-fairness violation of a random forest

Data source (pick one):
  --dataset NAME        built-in synthetic dataset: german-credit,
                        adult-income, sqf, acs-income, meps
  --csv FILE            load a CSV (numeric columns quantile-binned)
      --label COL       binary label column (default: label)
      --sensitive COL   sensitive attribute column (required with --csv)
      --privileged VAL  category treated as the privileged group (required)
      --bins N          bins per numeric column (default 4)
  --rows N              override dataset size (synthetic only)
  --seed N              data seed (default 4)

Model:
  --trees N             forest size (default 10)
  --depth N             max tree depth (default 8)
  --random-depth N      DaRE random upper levels (default 2)
  --model-seed N        forest seed (default 31)
  --save-model FILE     save the trained forest (binary, reloadable)
  --shards N            audit a SISA sharded ensemble instead of one
                        forest (default 1): rows partition across N
                        sub-forests and every what-if unlearns only the
                        shards it touches
  --placement P         hash | slice (default hash); slice concentrates
                        the sensitive privileged cohort into the last
                        shard so bias-targeted deletions stay shard-local

Search:
  --metric M            statistical-parity | equalized-odds |
                        predictive-parity | equal-opportunity |
                        disparate-impact (default statistical-parity)
  --k N                 top-k subsets (default 5)
  --support-min F       Rule 2 lower bound (default 0.05)
  --support-max F       Rule 2 upper bound (default 0.15)
  --literals N          Rule 3 max literals (default 2)
  --threads N           parallel attribution workers (default 1)
  --overlap F           max Jaccard overlap between reported subsets
                        (default 1.0 = no filter)
  --exclude-sensitive   do not phrase subsets in terms of the sensitive attr
  --baseline            also run the DropUnprivUnfavor baseline
  --slicefinder         also run the SliceFinder-style comparator
  --test-fraction F     test split fraction (default 0.3)

Observability (docs/observability.md; --flag=value also accepted):
  --metrics             print a metrics summary after the run
  --metrics-out FILE    write all counters/histograms as JSON
  --trace-out FILE      record trace spans and write Chrome trace-event
                        JSON (open in chrome://tracing or Perfetto)
  --query-cost          print the search's per-query cost report (metric
                        deltas + wall/CPU time attributed by QueryScope)
  --event-log FILE      append one structured JSONL line per operation
                        (train, search) with its cost summary
  --help, -h            this text
)";
}

std::optional<FairnessMetric> ParseMetric(const std::string& name) {
  if (name == "statistical-parity") return FairnessMetric::kStatisticalParity;
  if (name == "equalized-odds") return FairnessMetric::kEqualizedOdds;
  if (name == "predictive-parity") return FairnessMetric::kPredictiveParity;
  if (name == "equal-opportunity") return FairnessMetric::kEqualOpportunity;
  if (name == "disparate-impact") return FairnessMetric::kDisparateImpact;
  return std::nullopt;
}

// Returns false (after printing an error) on malformed flags. Value flags
// accept both `--flag value` and `--flag=value`.
bool ParseArgs(int argc, char** argv, CliOptions* opts, bool* want_help) {
  std::string inline_value;
  bool has_inline = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }
    auto need_value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      *want_help = true;
      return true;
    } else if (flag == "--exclude-sensitive") {
      opts->exclude_sensitive = true;
    } else if (flag == "--baseline") {
      opts->run_baseline = true;
    } else if (flag == "--slicefinder") {
      opts->run_slicefinder = true;
    } else if (flag == "--metrics") {
      opts->print_metrics = true;
    } else if (flag == "--query-cost") {
      opts->query_cost = true;
    } else if (flag == "--metrics-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->metrics_out = v;
    } else if (flag == "--trace-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->trace_out = v;
    } else if (flag == "--event-log") {
      if ((v = need_value()) == nullptr) return false;
      opts->event_log = v;
    } else if (flag == "--dataset") {
      if ((v = need_value()) == nullptr) return false;
      opts->dataset = v;
    } else if (flag == "--csv") {
      if ((v = need_value()) == nullptr) return false;
      opts->csv = v;
    } else if (flag == "--label") {
      if ((v = need_value()) == nullptr) return false;
      opts->label = v;
    } else if (flag == "--sensitive") {
      if ((v = need_value()) == nullptr) return false;
      opts->sensitive = v;
    } else if (flag == "--privileged") {
      if ((v = need_value()) == nullptr) return false;
      opts->privileged = v;
    } else if (flag == "--save-model") {
      if ((v = need_value()) == nullptr) return false;
      opts->save_model = v;
    } else if (flag == "--placement") {
      if ((v = need_value()) == nullptr) return false;
      opts->placement = v;
    } else if (flag == "--metric") {
      if ((v = need_value()) == nullptr) return false;
      auto metric = ParseMetric(v);
      if (!metric) {
        std::cerr << "unknown metric '" << v << "'\n";
        return false;
      }
      opts->metric = *metric;
    } else {
      static const std::set<std::string> kNumericFlags = {
          "--rows",        "--seed",        "--bins",
          "--trees",       "--depth",       "--random-depth",
          "--model-seed",  "--k",           "--literals",
          "--threads",     "--support-min", "--support-max",
          "--overlap",     "--test-fraction", "--shards"};
      if (kNumericFlags.count(flag) == 0) {
        std::cerr << "unknown flag: " << flag << " (see --help)\n";
        return false;
      }
      if ((v = need_value()) == nullptr) return false;
      int iv = 0;
      double dv = 0.0;
      const bool is_int = ParseInt(v, &iv);
      const bool is_double = ParseDouble(v, &dv);
      if (flag == "--rows" && is_int) opts->rows = iv;
      else if (flag == "--seed" && is_int) opts->seed = static_cast<uint64_t>(iv);
      else if (flag == "--bins" && is_int) opts->bins = iv;
      else if (flag == "--trees" && is_int) opts->trees = iv;
      else if (flag == "--depth" && is_int) opts->depth = iv;
      else if (flag == "--random-depth" && is_int) opts->random_depth = iv;
      else if (flag == "--model-seed" && is_int) opts->model_seed = static_cast<uint64_t>(iv);
      else if (flag == "--k" && is_int) opts->top_k = iv;
      else if (flag == "--literals" && is_int) opts->literals = iv;
      else if (flag == "--threads" && is_int) opts->threads = iv;
      else if (flag == "--support-min" && is_double) opts->support_min = dv;
      else if (flag == "--support-max" && is_double) opts->support_max = dv;
      else if (flag == "--overlap" && is_double) opts->overlap = dv;
      else if (flag == "--test-fraction" && is_double) opts->test_fraction = dv;
      else if (flag == "--shards" && is_int) opts->shards = iv;
      else {
        std::cerr << "unknown or malformed flag: " << flag << " " << v << "\n";
        return false;
      }
    }
  }
  return true;
}

Result<synth::DatasetBundle> LoadData(const CliOptions& opts) {
  if (!opts.dataset.empty()) {
    FUME_ASSIGN_OR_RETURN(synth::RegisteredDataset registered,
                          synth::FindDataset(opts.dataset));
    synth::SynthOptions synth_opts;
    synth_opts.num_rows = opts.rows;
    synth_opts.seed = opts.seed;
    return registered.make(synth_opts);
  }
  if (opts.csv.empty()) {
    return Status::Invalid("pass --dataset NAME or --csv FILE (see --help)");
  }
  if (opts.sensitive.empty() || opts.privileged.empty()) {
    return Status::Invalid("--csv requires --sensitive and --privileged");
  }
  CsvReadOptions read_opts;
  read_opts.label_column = opts.label;
  FUME_ASSIGN_OR_RETURN(Dataset raw, ReadCsvFile(opts.csv, read_opts));
  DiscretizerOptions disc_opts;
  disc_opts.num_bins = opts.bins;
  FUME_ASSIGN_OR_RETURN(Discretizer disc, Discretizer::Fit(raw, disc_opts));
  FUME_ASSIGN_OR_RETURN(Dataset data, disc.Transform(raw));
  synth::DatasetBundle bundle;
  bundle.name = opts.csv;
  FUME_ASSIGN_OR_RETURN(int sensitive_attr,
                        data.schema().FindAttribute(opts.sensitive));
  const int priv_code =
      data.schema().attribute(sensitive_attr).FindCategory(opts.privileged);
  if (priv_code < 0) {
    return Status::Invalid("privileged value '" + opts.privileged +
                           "' not found in column '" + opts.sensitive + "'");
  }
  bundle.group = GroupSpec{sensitive_attr, priv_code};
  bundle.data = std::move(data);
  return bundle;
}

// Writes the requested metrics/trace outputs when Run() exits, whichever
// path it takes (including the "no violation" early return).
struct ObsOutputs {
  const CliOptions& opts;

  explicit ObsOutputs(const CliOptions& options) : opts(options) {
    if (!opts.trace_out.empty()) obs::StartTracing();
  }

  ~ObsOutputs() {
    if (!opts.trace_out.empty()) {
      obs::StopTracing();
      if (obs::WriteTraceJsonFile(opts.trace_out)) {
        std::cout << "trace written to " << opts.trace_out << " ("
                  << obs::TraceEventCount()
                  << " events; open in chrome://tracing or "
                     "https://ui.perfetto.dev)\n";
      } else {
        std::cerr << "could not write trace to " << opts.trace_out << "\n";
      }
    }
    if (opts.print_metrics || !opts.metrics_out.empty()) {
      obs::SetProcessGauges();
      cow_debug::RefreshLiveNodesGauge();
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      if (opts.print_metrics) {
        std::cout << "\n--- metrics ---\n";
        snapshot.PrintText(std::cout);
      }
      if (!opts.metrics_out.empty()) {
        std::ofstream out(opts.metrics_out);
        if (out << snapshot.ToJson() << "\n") {
          std::cout << "metrics written to " << opts.metrics_out << "\n";
        } else {
          std::cerr << "could not write metrics to " << opts.metrics_out
                    << "\n";
        }
      }
    }
  }
};

// --shards N > 1: audit a SISA sharded ensemble. The search is the same
// lattice walk; every leave-out evaluation routes through the sharded
// removal method, unlearning only the shards the candidate subset touches.
int RunSharded(const CliOptions& opts, const synth::DatasetBundle& bundle,
               const TrainTestSplit& split, const ForestConfig& forest_config,
               obs::EventLog& event_log) {
  ShardConfig shard_config;
  shard_config.num_shards = opts.shards;
  auto placement = ParsePlacement(opts.placement);
  if (!placement.ok()) {
    std::cerr << placement.status().ToString() << "\n";
    return 1;
  }
  shard_config.placement = *placement;
  if (shard_config.placement == ShardConfig::Placement::kSlice) {
    shard_config.slice_attr = bundle.group.sensitive_attr;
    shard_config.slice_value = bundle.group.privileged_code;
    shard_config.hot_shards = 1;
  }
  obs::QueryScope train_scope("train");
  auto model = ShardedForest::Train(split.train, forest_config, shard_config);
  const obs::QueryCost train_cost = train_scope.Finish();
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  event_log.Event("train")
      .Field("dataset", bundle.name)
      .Field("train_rows", split.train.num_rows())
      .Field("trees", opts.trees)
      .Field("shards", static_cast<int64_t>(opts.shards))
      .Field("cost", train_cost)
      .Write();
  std::cout << "dataset: " << bundle.name << " (" << bundle.data.num_rows()
            << " rows, " << bundle.data.num_attributes()
            << " attributes), sensitive attribute: "
            << bundle.data.schema().attribute(bundle.group.sensitive_attr).name
            << "\nmodel: " << opts.shards << " shards ("
            << PlacementName(shard_config.placement) << " placement) x "
            << opts.trees << " trees, depth " << opts.depth << ", accuracy "
            << FormatPercent(model->Accuracy(split.test)) << " on "
            << split.test.num_rows() << " test rows\n\n";

  if (!opts.save_model.empty()) {
    std::ofstream out(opts.save_model, std::ios::binary);
    Status st = out ? model->Save(out)
                    : Status::IOError("cannot open " + opts.save_model);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "sharded model saved to " << opts.save_model << "\n\n";
  }

  FumeConfig config;
  config.top_k = opts.top_k;
  config.support_min = opts.support_min;
  config.support_max = opts.support_max;
  config.max_literals = opts.literals;
  config.metric = opts.metric;
  config.group = bundle.group;
  config.num_threads = opts.threads;
  config.max_row_overlap = opts.overlap;
  if (opts.exclude_sensitive) {
    config.lattice.excluded_attrs = {bundle.group.sensitive_attr};
  }
  ModelEval original;
  original.fairness = ComputeFairness(split.test, model->PredictAll(split.test),
                                      bundle.group, config.metric);
  original.accuracy = model->Accuracy(split.test);
  ShardedRemovalMethod removal(&*model, &split.test, bundle.group,
                               config.metric);
  obs::QueryScope search_scope("search");
  auto result = ExplainWithRemoval(original, split.train, config, &removal);
  const obs::QueryCost search_cost = search_scope.Finish();
  event_log.Event("search")
      .Field("dataset", bundle.name)
      .Field("top_k", opts.top_k)
      .Field("threads", opts.threads)
      .Field("shards", static_cast<int64_t>(opts.shards))
      .Field("ok", result.ok())
      .Field("cost", search_cost)
      .Write();
  if (!result.ok()) {
    std::cout << result.status().ToString() << "\n";
    return result.status().IsInvalid() ? 0 : 1;  // "no violation" is fine
  }
  if (opts.query_cost) {
    std::cout << "\n--- query cost (QueryScope) ---\n";
    search_cost.PrintText(std::cout);
    std::cout << "\n";
  }
  PrintViolationSummary(*result, config.metric, std::cout);
  PrintTopK(*result, split.train.schema(), "S", std::cout);
  std::cout << "\n";
  PrintExplorationStats(result->stats, std::cout);
  if (opts.run_baseline || opts.run_slicefinder) {
    std::cout << "\n(--baseline / --slicefinder are monolithic comparators; "
                 "rerun without --shards to include them)\n";
  }
  return 0;
}

int Run(const CliOptions& opts) {
  ObsOutputs obs_outputs(opts);
  obs::EventLog event_log(opts.event_log);  // empty path = disabled sink
  if (!opts.event_log.empty() && !event_log.ok()) {
    std::cerr << "could not open event log " << opts.event_log << "\n";
    return 1;
  }
  auto bundle = LoadData(opts);
  if (!bundle.ok()) {
    std::cerr << bundle.status().ToString() << "\n";
    return 1;
  }

  SplitOptions split_opts;
  split_opts.test_fraction = opts.test_fraction;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }

  ForestConfig forest_config;
  forest_config.num_trees = opts.trees;
  forest_config.max_depth = opts.depth;
  forest_config.random_depth = opts.random_depth;
  forest_config.seed = opts.model_seed;
  if (opts.shards != 1) {
    if (opts.shards < 1) {
      std::cerr << "--shards must be >= 1\n";
      return 1;
    }
    return RunSharded(opts, *bundle, *split, forest_config, event_log);
  }
  obs::QueryScope train_scope("train");
  auto model = DareForest::Train(split->train, forest_config);
  const obs::QueryCost train_cost = train_scope.Finish();
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  event_log.Event("train")
      .Field("dataset", bundle->name)
      .Field("train_rows", split->train.num_rows())
      .Field("trees", opts.trees)
      .Field("cost", train_cost)
      .Write();
  std::cout << "dataset: " << bundle->name << " (" << bundle->data.num_rows()
            << " rows, " << bundle->data.num_attributes()
            << " attributes), sensitive attribute: "
            << bundle->data.schema().attribute(bundle->group.sensitive_attr).name
            << "\nmodel: " << opts.trees << " trees, depth " << opts.depth
            << ", accuracy " << FormatPercent(model->Accuracy(split->test))
            << " on " << split->test.num_rows() << " test rows\n\n";

  if (!opts.save_model.empty()) {
    Status st = SaveForestToFile(*model, opts.save_model);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "model saved to " << opts.save_model << "\n\n";
  }

  FumeConfig config;
  config.top_k = opts.top_k;
  config.support_min = opts.support_min;
  config.support_max = opts.support_max;
  config.max_literals = opts.literals;
  config.metric = opts.metric;
  config.group = bundle->group;
  config.num_threads = opts.threads;
  config.max_row_overlap = opts.overlap;
  if (opts.exclude_sensitive) {
    config.lattice.excluded_attrs = {bundle->group.sensitive_attr};
  }
  obs::QueryScope search_scope("search");
  auto result =
      ExplainFairnessViolation(*model, split->train, split->test, config);
  const obs::QueryCost search_cost = search_scope.Finish();
  event_log.Event("search")
      .Field("dataset", bundle->name)
      .Field("top_k", opts.top_k)
      .Field("threads", opts.threads)
      .Field("ok", result.ok())
      .Field("cost", search_cost)
      .Write();
  if (!result.ok()) {
    std::cout << result.status().ToString() << "\n";
    return result.status().IsInvalid() ? 0 : 1;  // "no violation" is fine
  }
  if (opts.query_cost) {
    std::cout << "\n--- query cost (QueryScope) ---\n";
    search_cost.PrintText(std::cout);
    std::cout << "\n";
  }
  PrintViolationSummary(*result, config.metric, std::cout);
  PrintTopK(*result, split->train.schema(), "S", std::cout);
  std::cout << "\n";
  PrintExplorationStats(result->stats, std::cout);

  if (opts.run_baseline) {
    std::cout << "\n";
    auto baseline = RunDropUnprivUnfavor(split->train, split->test,
                                         forest_config, bundle->group,
                                         config.metric);
    if (baseline.ok()) {
      PrintBaseline(*baseline, std::cout);
    } else {
      std::cout << baseline.status().ToString() << "\n";
    }
  }
  if (opts.run_slicefinder) {
    SliceFinderConfig slice_config;
    slice_config.top_k = opts.top_k;
    slice_config.support_min = opts.support_min;
    slice_config.support_max = opts.support_max;
    slice_config.max_literals = opts.literals;
    auto slices = FindProblematicSlices(*model, split->train, slice_config);
    if (slices.ok()) {
      std::cout << "\nSliceFinder-style worst-accuracy slices (for "
                   "contrast):\n";
      TablePrinter table({"#", "Slice", "Support", "Error-rate gap"});
      int index = 1;
      for (const Slice& slice : *slices) {
        table.AddRow({std::to_string(index++),
                      slice.predicate.ToString(split->train.schema()),
                      FormatPercent(slice.support),
                      FormatPercent(slice.effect_size)});
      }
      table.Print(std::cout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &opts, &want_help)) return 2;
  if (want_help || argc == 1) {
    PrintUsage();
    return 0;
  }
  return Run(opts);
}
