// bench_check: bench regression guard over the BENCH_*.json artifacts.
//
//   # CI smoke: structural validation of freshly produced artifacts
//   bench_check --smoke --fresh-dir build-bench-smoke/bench-smoke/bench_artifacts
//
//   # full compare: fresh full-run artifacts vs the committed baseline
//   bench_check --baseline-dir bench_artifacts --fresh-dir /tmp/bench_artifacts \
//               --tolerance 0.30
//
// Exits 0 when every artifact passes, 1 on any regression or structural
// problem, 2 on usage errors. See tools/bench_compare.h for the artifact
// model and docs/observability.md for how this slots into CI.

#include <cmath>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_compare.h"
#include "util/string_util.h"

namespace {

using namespace fume;

constexpr const char* kDefaultArtifacts[] = {
    "BENCH_eval.json",
    "BENCH_unlearn.json",
    "BENCH_incremental.json",
    "BENCH_serve.json",
    "BENCH_shard.json",
};

struct CheckOptions {
  bool smoke = false;
  double tolerance = 0.30;
  std::string baseline_dir = "bench_artifacts";
  std::string fresh_dir = "bench_artifacts";
  std::vector<std::string> artifacts;  // file names, not paths
};

void PrintUsage() {
  std::cout << R"(bench_check — compare bench artifacts against the committed baseline

  --smoke               structural validation of the fresh artifacts only:
                        parseable, non-empty cells, finite-positive
                        throughput, *_identical attestations true. No
                        baseline comparison (smoke cells don't match
                        full-run cells, and CI throughput is noise).
  --tolerance F         full mode: fail a cell when fresh throughput is
                        below baseline * (1 - F) (default 0.30)
  --baseline-dir DIR    committed artifacts (default bench_artifacts)
  --fresh-dir DIR       freshly produced artifacts (default bench_artifacts)
  ARTIFACT...           file names to check (default BENCH_eval.json
                        BENCH_unlearn.json BENCH_incremental.json
                        BENCH_serve.json BENCH_shard.json)
  --help, -h            this text
)";
}

bool ParseArgs(int argc, char** argv, CheckOptions* opts, bool* want_help) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }
    auto need_value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      *want_help = true;
      return true;
    } else if (flag == "--smoke") {
      opts->smoke = true;
    } else if (flag == "--tolerance") {
      if ((v = need_value()) == nullptr) return false;
      double dv = 0.0;
      if (!ParseDouble(v, &dv) || dv < 0.0 || dv >= 1.0) {
        std::cerr << "--tolerance needs a value in [0, 1)\n";
        return false;
      }
      opts->tolerance = dv;
    } else if (flag == "--baseline-dir") {
      if ((v = need_value()) == nullptr) return false;
      opts->baseline_dir = v;
    } else if (flag == "--fresh-dir") {
      if ((v = need_value()) == nullptr) return false;
      opts->fresh_dir = v;
    } else if (flag.rfind("--", 0) == 0) {
      std::cerr << "unknown flag: " << flag << " (see --help)\n";
      return false;
    } else {
      opts->artifacts.push_back(flag);
    }
  }
  return true;
}

int Run(const CheckOptions& opts) {
  std::vector<std::string> names = opts.artifacts;
  if (names.empty()) {
    names.assign(std::begin(kDefaultArtifacts), std::end(kDefaultArtifacts));
  }

  int status = 0;
  for (const std::string& name : names) {
    const std::string fresh_path = opts.fresh_dir + "/" + name;
    auto fresh = util::ParseJsonFile(fresh_path);
    if (!fresh.ok()) {
      std::cerr << "FAIL " << name << ": " << fresh.status().ToString()
                << "\n";
      status = 1;
      continue;
    }

    if (opts.smoke) {
      std::vector<std::string> problems;
      bench_check::CheckArtifactStructure(*fresh, name, &problems);
      if (problems.empty()) {
        // The checked path in the log line makes "which artifact passed"
        // unambiguous when CI runs several fresh dirs in one job.
        std::cout << "OK   " << fresh_path << " (structural)\n";
      } else {
        for (const std::string& p : problems) std::cerr << "FAIL " << p << "\n";
        status = 1;
      }
      continue;
    }

    const std::string baseline_path = opts.baseline_dir + "/" + name;
    auto baseline = util::ParseJsonFile(baseline_path);
    if (!baseline.ok()) {
      std::cerr << "FAIL " << name << ": " << baseline.status().ToString()
                << "\n";
      status = 1;
      continue;
    }
    bench_check::CompareOptions compare;
    compare.tolerance = opts.tolerance;
    auto result =
        bench_check::CompareArtifacts(name, *baseline, *fresh, compare);
    if (!result.ok()) {
      std::cerr << "FAIL " << name << ": " << result.status().ToString()
                << "\n";
      status = 1;
      continue;
    }
    for (const bench_check::CellComparison& cell : result->cells) {
      if (!cell.regression) continue;
      if (cell.missing_in_fresh) {
        std::cerr << "FAIL " << name << " [" << cell.key
                  << "]: cell missing from fresh artifact\n";
      } else {
        // Both throughputs plus the computed ratio, so a CI log line is
        // enough to judge how far below the floor the cell landed.
        const double ratio =
            cell.baseline > 0.0 ? cell.fresh / cell.baseline : 0.0;
        std::cerr << "FAIL " << name << " [" << cell.key << "]: "
                  << cell.field << " fresh " << FormatDouble(cell.fresh, 2)
                  << " vs baseline " << FormatDouble(cell.baseline, 2)
                  << " (ratio " << FormatDouble(ratio, 2) << " < floor "
                  << FormatDouble(1.0 - opts.tolerance, 2) << ")\n";
      }
    }
    for (const bench_check::CellComparison& cell :
         result->baseline_extending) {
      std::cout << "INFO " << name << " [" << cell.key << "]: new cell ("
                << cell.field << " " << FormatDouble(cell.fresh, 2)
                << "), extends the baseline — refresh " << opts.baseline_dir
                << "/" << name << " to start guarding it\n";
    }
    if (result->ok()) {
      std::cout << "OK   " << name << " (" << result->cells.size()
                << " cells within " << FormatDouble(opts.tolerance * 100, 0)
                << "% of baseline " << baseline_path;
      if (!result->baseline_extending.empty()) {
        std::cout << ", " << result->baseline_extending.size()
                  << " baseline-extending";
      }
      std::cout << ")\n";
    } else {
      std::cerr << "FAIL " << name << ": regressions vs baseline "
                << baseline_path << "\n";
      status = 1;
    }
  }

  if (status == 0) {
    std::cout << "bench_check: all artifacts OK\n";
  } else {
    std::cerr << "bench_check: FAILED\n";
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions opts;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &opts, &want_help)) return 2;
  if (want_help) {
    PrintUsage();
    return 0;
  }
  return Run(opts);
}
