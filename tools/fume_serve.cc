// fume_serve: long-lived multi-tenant audit server over the newline-
// delimited JSON protocol (docs/serving.md).
//
//   # serve german-credit on an ephemeral port, announce it in a file
//   fume_serve --tenant credit=german-credit --port 0 --port-file /tmp/port
//
//   # two tenants, checkpoints + op-logs under /tmp/serve
//   fume_serve --tenant credit=german-credit --tenant adult=adult-income
//              --checkpoint-dir /tmp/serve --oplog-dir /tmp/serve
//
// SIGINT/SIGTERM drain in-flight requests, write a final checkpoint per
// tenant (when a checkpoint dir is configured), and flush metrics/event
// logs before exit. Run with --help for the full flag list.

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/split.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "synth/registry.h"
#include "util/string_util.h"

namespace {

using namespace fume;

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct CliOptions {
  // Tenants: NAME=DATASET pairs.
  std::vector<std::pair<std::string, std::string>> tenants;
  int64_t rows = 0;
  uint64_t seed = 4;
  double test_fraction = 0.3;
  // Model (shared by all tenants).
  int trees = 10;
  int depth = 8;
  int random_depth = 2;
  uint64_t model_seed = 31;
  // Search.
  int top_k = 5;
  double support_min = 0.05;
  double support_max = 0.15;
  int literals = 2;
  int threads = 1;
  double drift_abs = 0.01;
  double drift_rel = 0.10;
  bool lazy = false;
  int64_t lazy_budget = 0;  // 0 = ForestConfig default
  int shards = 1;
  std::string placement = "hash";
  // Serving.
  int port = 7733;
  std::string port_file;
  int max_connections = 64;
  int64_t batch_window_us = 200;
  int max_batch = 16;
  int queue_cap = 64;
  int whatif_threads = 2;
  int64_t deadline_ms = 0;
  std::string checkpoint_dir;
  std::string oplog_dir;
  // Observability.
  bool print_metrics = false;
  std::string metrics_out;
  std::string trace_out;
  std::string event_log;
};

void PrintUsage() {
  std::cout << R"(fume_serve — concurrent multi-tenant FUME audit server

Tenants (repeatable; default is one tenant "default=german-credit"):
  --tenant NAME=DATASET register a tenant over a built-in synthetic dataset
  --rows N              override dataset size
  --seed N              data seed (default 4)
  --test-fraction F     test split fraction (default 0.3)

Model / search (applied to every tenant; same defaults as fume_stream):
  --trees N --depth N --random-depth N --model-seed N
  --k N --support-min F --support-max F --literals N --threads N
  --drift-abs F --drift-rel F
  --lazy                defer subtree retrains across delete bursts; readers
                        keep serving the last published (fully flushed)
                        snapshot until the burst flushes — a published
                        snapshot never contains pending work
  --lazy-budget N       auto-flush once N doomed rows are pending per tenant
                        (default 4096)
  --shards N            SISA shards per tenant (default 1 = monolithic):
                        each tenant serves a hash-partitioned ensemble,
                        stream deletes unlearn shard-locally and whatifs
                        rescore only the shards they touch
  --placement P         hash | slice (default hash); slice concentrates
                        each tenant's sensitive privileged cohort into the
                        last shard

Serving:
  --port N              TCP port on 127.0.0.1 (default 7733; 0 = ephemeral)
  --port-file FILE      write the bound port to FILE (for scripts)
  --max-connections N   connection admission limit (default 64)
  --batch-window-us N   whatif grouping window (default 200; 0 = batch-1)
  --max-batch N         max whatifs grouped per batch (default 16)
  --queue-cap N         per-tenant whatif queue bound (default 64)
  --whatif-threads N    per-tenant batch scoring threads (default 2)
  --deadline-ms N       default per-request deadline (default 0 = none)
  --checkpoint-dir DIR  per-tenant checkpoints DIR/NAME.ckpt (enables the
                        checkpoint endpoint and the final shutdown write)
  --oplog-dir DIR       append served stream ops to DIR/NAME.ops

Observability (docs/observability.md):
  --metrics             print a metrics summary on exit
  --metrics-out FILE    write all counters/histograms as JSON on exit
  --trace-out FILE      write Chrome trace-event JSON on exit
  --event-log FILE      append one structured JSONL line per request
  --help, -h            this text
)";
}

bool ParseArgs(int argc, char** argv, CliOptions* opts, bool* want_help) {
  std::string inline_value;
  bool has_inline = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }
    auto need_value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      *want_help = true;
      return true;
    } else if (flag == "--lazy") {
      opts->lazy = true;
    } else if (flag == "--metrics") {
      opts->print_metrics = true;
    } else if (flag == "--tenant") {
      if ((v = need_value()) == nullptr) return false;
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::cerr << "--tenant needs NAME=DATASET, got '" << spec << "'\n";
        return false;
      }
      opts->tenants.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (flag == "--placement") {
      if ((v = need_value()) == nullptr) return false;
      opts->placement = v;
    } else if (flag == "--port-file") {
      if ((v = need_value()) == nullptr) return false;
      opts->port_file = v;
    } else if (flag == "--checkpoint-dir") {
      if ((v = need_value()) == nullptr) return false;
      opts->checkpoint_dir = v;
    } else if (flag == "--oplog-dir") {
      if ((v = need_value()) == nullptr) return false;
      opts->oplog_dir = v;
    } else if (flag == "--metrics-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->metrics_out = v;
    } else if (flag == "--trace-out") {
      if ((v = need_value()) == nullptr) return false;
      opts->trace_out = v;
    } else if (flag == "--event-log") {
      if ((v = need_value()) == nullptr) return false;
      opts->event_log = v;
    } else {
      static const std::set<std::string> kNumericFlags = {
          "--rows",         "--seed",         "--test-fraction",
          "--trees",        "--depth",        "--random-depth",
          "--model-seed",   "--k",            "--support-min",
          "--support-max",  "--literals",     "--threads",
          "--drift-abs",    "--drift-rel",    "--port",
          "--max-connections", "--batch-window-us", "--max-batch",
          "--queue-cap",    "--whatif-threads", "--deadline-ms",
          "--lazy-budget",  "--shards"};
      if (kNumericFlags.count(flag) == 0) {
        std::cerr << "unknown flag: " << flag << " (see --help)\n";
        return false;
      }
      if ((v = need_value()) == nullptr) return false;
      int iv = 0;
      double dv = 0.0;
      const bool is_int = ParseInt(v, &iv);
      const bool is_double = ParseDouble(v, &dv);
      if (flag == "--rows" && is_int) opts->rows = iv;
      else if (flag == "--seed" && is_int) opts->seed = static_cast<uint64_t>(iv);
      else if (flag == "--test-fraction" && is_double) opts->test_fraction = dv;
      else if (flag == "--trees" && is_int) opts->trees = iv;
      else if (flag == "--depth" && is_int) opts->depth = iv;
      else if (flag == "--random-depth" && is_int) opts->random_depth = iv;
      else if (flag == "--model-seed" && is_int) opts->model_seed = static_cast<uint64_t>(iv);
      else if (flag == "--k" && is_int) opts->top_k = iv;
      else if (flag == "--support-min" && is_double) opts->support_min = dv;
      else if (flag == "--support-max" && is_double) opts->support_max = dv;
      else if (flag == "--literals" && is_int) opts->literals = iv;
      else if (flag == "--threads" && is_int) opts->threads = iv;
      else if (flag == "--drift-abs" && is_double) opts->drift_abs = dv;
      else if (flag == "--drift-rel" && is_double) opts->drift_rel = dv;
      else if (flag == "--port" && is_int) opts->port = iv;
      else if (flag == "--max-connections" && is_int) opts->max_connections = iv;
      else if (flag == "--batch-window-us" && is_int) opts->batch_window_us = iv;
      else if (flag == "--max-batch" && is_int) opts->max_batch = iv;
      else if (flag == "--queue-cap" && is_int) opts->queue_cap = iv;
      else if (flag == "--whatif-threads" && is_int) opts->whatif_threads = iv;
      else if (flag == "--deadline-ms" && is_int) opts->deadline_ms = iv;
      else if (flag == "--lazy-budget" && is_int) opts->lazy_budget = iv;
      else if (flag == "--shards" && is_int) opts->shards = iv;
      else {
        std::cerr << "unknown or malformed flag: " << flag << " " << v << "\n";
        return false;
      }
    }
  }
  return true;
}

struct ObsOutputs {
  const CliOptions& opts;

  explicit ObsOutputs(const CliOptions& options) : opts(options) {
    if (!opts.trace_out.empty()) obs::StartTracing();
  }

  ~ObsOutputs() {
    if (!opts.trace_out.empty()) {
      obs::StopTracing();
      if (obs::WriteTraceJsonFile(opts.trace_out)) {
        std::cout << "trace written to " << opts.trace_out << "\n";
      } else {
        std::cerr << "could not write trace to " << opts.trace_out << "\n";
      }
    }
    if (opts.print_metrics || !opts.metrics_out.empty()) {
      obs::SetProcessGauges();
      cow_debug::RefreshLiveNodesGauge();
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      if (opts.print_metrics) {
        std::cout << "\n--- metrics ---\n";
        snapshot.PrintText(std::cout);
      }
      if (!opts.metrics_out.empty()) {
        std::ofstream out(opts.metrics_out);
        if (out << snapshot.ToJson() << "\n") {
          std::cout << "metrics written to " << opts.metrics_out << "\n";
        } else {
          std::cerr << "could not write metrics to " << opts.metrics_out
                    << "\n";
        }
      }
    }
  }
};

int Run(const CliOptions& opts) {
  ObsOutputs obs_outputs(opts);
  obs::EventLog event_log(opts.event_log);
  if (!opts.event_log.empty() && !event_log.ok()) {
    std::cerr << "could not open event log " << opts.event_log << "\n";
    return 1;
  }

  serve::ServerConfig server_config;
  server_config.port = opts.port;
  server_config.max_connections = opts.max_connections;
  server_config.default_deadline_ms = opts.deadline_ms;
  server_config.event_log = event_log.ok() ? &event_log : nullptr;
  serve::Server server(server_config);

  // State directories are created up front so a first boot on a fresh host
  // does not fail (or worse, limp along stateless) for want of a mkdir.
  for (const std::string& dir : {opts.checkpoint_dir, opts.oplog_dir}) {
    if (dir.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::cerr << "cannot create state directory " << dir << ": "
                << ec.message() << "\n";
      return 1;
    }
  }

  std::vector<std::pair<std::string, std::string>> tenants = opts.tenants;
  if (tenants.empty()) tenants.emplace_back("default", "german-credit");

  for (const auto& [name, dataset] : tenants) {
    auto registered = synth::FindDataset(dataset);
    if (!registered.ok()) {
      std::cerr << registered.status().ToString() << "\n";
      return 1;
    }
    synth::SynthOptions synth_opts;
    synth_opts.num_rows = opts.rows;
    synth_opts.seed = opts.seed;
    auto bundle = registered->make(synth_opts);
    if (!bundle.ok()) {
      std::cerr << bundle.status().ToString() << "\n";
      return 1;
    }
    SplitOptions split_opts;
    split_opts.test_fraction = opts.test_fraction;
    split_opts.seed = 2;
    auto split = SplitTrainTest(bundle->data, split_opts);
    if (!split.ok()) {
      std::cerr << split.status().ToString() << "\n";
      return 1;
    }
    // Same head/tail carve-out as fume_stream, so a server fed the op-log
    // that fume_stream synthesized starts from the identical model — the
    // exactness anchor between served and offline answers.
    const int64_t pool_rows = split->train.num_rows() / 3;
    std::vector<int64_t> tail;
    for (int64_t r = split->train.num_rows() - pool_rows;
         r < split->train.num_rows(); ++r) {
      tail.push_back(r);
    }
    const Dataset initial_train = split->train.DropRows(tail);

    serve::TenantConfig config;
    config.engine.forest.num_trees = opts.trees;
    config.engine.forest.max_depth = opts.depth;
    config.engine.forest.random_depth = opts.random_depth;
    config.engine.forest.seed = opts.model_seed;
    config.engine.fume.top_k = opts.top_k;
    config.engine.fume.support_min = opts.support_min;
    config.engine.fume.support_max = opts.support_max;
    config.engine.fume.max_literals = opts.literals;
    config.engine.fume.num_threads = opts.threads;
    config.engine.fume.group = bundle->group;
    config.engine.drift.abs_threshold = opts.drift_abs;
    config.engine.drift.rel_threshold = opts.drift_rel;
    config.engine.forest.lazy_unlearn = opts.lazy;
    if (opts.lazy_budget > 0) {
      config.engine.forest.max_lazy_rows = opts.lazy_budget;
    }
    config.engine.shard.num_shards = opts.shards;
    if (opts.shards > 1) {
      auto placement = ParsePlacement(opts.placement);
      if (!placement.ok()) {
        std::cerr << placement.status().ToString() << "\n";
        return 1;
      }
      config.engine.shard.placement = *placement;
      if (config.engine.shard.placement == ShardConfig::Placement::kSlice) {
        config.engine.shard.slice_attr = bundle->group.sensitive_attr;
        config.engine.shard.slice_value = bundle->group.privileged_code;
        config.engine.shard.hot_shards = 1;
      }
    }
    if (!opts.checkpoint_dir.empty()) {
      config.engine.checkpoint_path =
          opts.checkpoint_dir + "/" + name + ".ckpt";
    }
    if (!opts.oplog_dir.empty()) {
      config.oplog_path = opts.oplog_dir + "/" + name + ".ops";
    }
    config.whatif_threads = opts.whatif_threads;
    config.batch.window_us = opts.batch_window_us;
    config.batch.max_batch = opts.max_batch;
    config.batch.queue_cap = opts.queue_cap;

    Status st = server.RegisterTenant(name, initial_train,
                                      std::move(split->test), config);
    if (!st.ok()) {
      std::cerr << "tenant " << name << ": " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "tenant " << name << ": " << dataset << ", "
              << initial_train.num_rows() << " live rows\n";
  }

  Status st = server.Start();
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (!opts.port_file.empty()) {
    std::ofstream pf(opts.port_file);
    if (!(pf << server.port() << "\n")) {
      std::cerr << "could not write port file " << opts.port_file << "\n";
      return 1;
    }
  }
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "draining and shutting down...\n";
  server.Shutdown();
  std::cout << "shutdown complete\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &opts, &want_help)) return 2;
  if (want_help) {
    PrintUsage();
    return 0;
  }
  return Run(opts);
}
