// Bench artifact comparison: the library behind tools/bench_check.cc.
//
// The perf benches emit machine-readable artifacts
// (bench_artifacts/BENCH_{eval,unlearn,incremental}.json) whose committed
// copies double as the performance baseline. This library compares a
// freshly produced artifact against that baseline cell-by-cell so CI can
// fail on a throughput regression instead of relying on someone eyeballing
// the tables.
//
// Artifact model (shared by all BENCH_*.json files):
//   - a top-level object with metadata fields and a non-empty "cells"
//     array;
//   - each cell identifies its configuration via string fields plus the
//     integer size fields "rows"/"batch_rows" (CellKey concatenates them),
//   - and reports exactly one throughput field, the first field whose
//     name ends in "_per_sec";
//   - top-level booleans named *_identical are exactness attestations and
//     must be true.
//
// Two rigor levels:
//   - CheckArtifactStructure: shape + finiteness + attestations. What
//     `bench_check --smoke` runs, because smoke-sized runs produce cells
//     and numbers that do not match the committed full-run baseline and
//     shared-CI throughput is noise.
//   - CompareArtifacts: every baseline cell must reappear in the fresh
//     artifact with throughput >= baseline * (1 - tolerance). Missing
//     cells are regressions too (a silently dropped cell would otherwise
//     hide the regression it measured). Extra fresh cells are
//     baseline-extending, not regressions: a bench that grew a new
//     strategy or size column passes, and the comparison lists those
//     cells so the caller can prompt a baseline refresh.

#ifndef FUME_TOOLS_BENCH_COMPARE_H_
#define FUME_TOOLS_BENCH_COMPARE_H_

#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace fume {
namespace bench_check {

struct CompareOptions {
  /// Fail a cell when fresh < baseline * (1 - tolerance). The default
  /// absorbs ordinary machine-to-machine variance; tighten it on a quiet
  /// dedicated box.
  double tolerance = 0.30;
};

/// Identity of one cell: every string-valued field plus the integer size
/// fields, joined in source order ("rows=2000,batch_rows=4,
/// strategy=cow-delta"). Empty when the cell is not an object.
std::string CellKey(const util::JsonValue& cell);

/// Name of the cell's throughput field (first ending in "_per_sec"), or
/// "" when the cell has none.
std::string ThroughputField(const util::JsonValue& cell);

/// One compared cell.
struct CellComparison {
  std::string key;
  std::string field;          // throughput field name
  double baseline = 0.0;
  double fresh = 0.0;         // 0 when missing_in_fresh
  bool missing_in_fresh = false;
  bool regression = false;
};

struct ArtifactComparison {
  std::string name;
  std::vector<CellComparison> cells;  // one per baseline cell
  /// Cells present only in the fresh artifact (baseline 0, fresh filled):
  /// new coverage — a grown strategy or size column — reported so the
  /// caller can prompt a baseline refresh, never counted as a regression.
  std::vector<CellComparison> baseline_extending;
  int regressions = 0;
  bool ok() const { return regressions == 0; }
};

/// Structural validation (the --smoke contract). Appends one
/// human-readable line per violation to `problems`; an untouched
/// `problems` means the artifact is well-formed.
void CheckArtifactStructure(const util::JsonValue& artifact,
                            const std::string& name,
                            std::vector<std::string>* problems);

/// Cell-by-cell throughput comparison of `fresh` against `baseline`.
/// Both artifacts must pass CheckArtifactStructure (its problems are
/// returned as an error Status); regressions are reported in the result,
/// not as a Status, so the caller can print every failing cell.
Result<ArtifactComparison> CompareArtifacts(const std::string& name,
                                            const util::JsonValue& baseline,
                                            const util::JsonValue& fresh,
                                            const CompareOptions& options);

}  // namespace bench_check
}  // namespace fume

#endif  // FUME_TOOLS_BENCH_COMPARE_H_
