// fume_client: request / replay client for fume_serve (docs/serving.md).
//
//   # one-off requests
//   fume_client --port 7733 --op health
//   fume_client --port 7733 --tenant default --whatif "0:eq:1"
//   fume_client --port 7733 --tenant default --predict "0,1,2,0,1,0,1"
//   fume_client --port 7733 --tenant default --stream "C 101"
//
//   # replay a JSONL request file (one request per line) at 50 req/s
//   fume_client --port-file /tmp/port --replay requests.jsonl --rate 50
//
//   # wrap an op-log file as stream_op requests
//   fume_client --port 7733 --tenant default --oplog /tmp/log.ops
//
//   # canned end-to-end smoke: health, metrics, explain, predict, whatif,
//   # stream checkpoint — exits non-zero unless every response is ok
//   fume_client --port-file /tmp/port --smoke
//
// Exit status: 0 when every response had "ok":true, 1 otherwise.

#include <chrono>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "stream/op_log.h"
#include "util/json.h"
#include "util/socket.h"
#include "util/string_util.h"

namespace {

using namespace fume;

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  std::string tenant = "default";
  std::string op;        // health | metrics | explain | checkpoint
  std::string predict;   // "c,c,c;c,c,c" rows
  std::string whatif;    // "attr:cmp:value,attr:cmp:value"
  std::string stream;    // raw op-log line
  std::string replay;    // JSONL request file
  std::string oplog;     // op-log file to wrap as stream_op requests
  double rate = 0.0;     // replay/oplog requests per second (0 = max)
  int64_t deadline_ms = 0;
  bool smoke = false;
  bool quiet = false;
};

void PrintUsage() {
  std::cout << R"(fume_client — request/replay client for fume_serve

Connection:
  --host H              server host (default 127.0.0.1)
  --port N              server port
  --port-file FILE      read the port from FILE (fume_serve --port-file)

Single requests (pick one):
  --op NAME             health | metrics | explain | checkpoint
  --predict ROWS        rows "c,c,..;c,c,.." through the tenant's model
  --whatif PRED         score predicate "attr:cmp:value,..." (cmp: eq ne
                        lt le ge gt)
  --stream LINE         apply one op-log line (e.g. "D 7 12 40", "C 9")

Replay:
  --replay FILE         send raw JSONL request lines from FILE
  --oplog FILE          wrap op-log lines from FILE as stream_op requests
  --rate R              pace replay at R requests/second (default: max)

Common:
  --tenant NAME         tenant for predict/whatif/stream/explain/checkpoint
                        (default "default")
  --deadline-ms N       attach a deadline to whatif requests
  --smoke               canned health/metrics/explain/predict/whatif/
                        stream-checkpoint sequence; non-zero exit on any
                        failure
  --quiet               suppress per-response output (summary only)
  --help, -h            this text
)";
}

bool ParseArgs(int argc, char** argv, CliOptions* opts, bool* want_help) {
  std::string inline_value;
  bool has_inline = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    has_inline = false;
    if (flag.rfind("--", 0) == 0) {
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {
        inline_value = flag.substr(eq + 1);
        flag.resize(eq);
        has_inline = true;
      }
    }
    auto need_value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      *want_help = true;
      return true;
    } else if (flag == "--smoke") {
      opts->smoke = true;
    } else if (flag == "--quiet") {
      opts->quiet = true;
    } else if (flag == "--host") {
      if ((v = need_value()) == nullptr) return false;
      opts->host = v;
    } else if (flag == "--port-file") {
      if ((v = need_value()) == nullptr) return false;
      opts->port_file = v;
    } else if (flag == "--tenant") {
      if ((v = need_value()) == nullptr) return false;
      opts->tenant = v;
    } else if (flag == "--op") {
      if ((v = need_value()) == nullptr) return false;
      opts->op = v;
    } else if (flag == "--predict") {
      if ((v = need_value()) == nullptr) return false;
      opts->predict = v;
    } else if (flag == "--whatif") {
      if ((v = need_value()) == nullptr) return false;
      opts->whatif = v;
    } else if (flag == "--stream") {
      if ((v = need_value()) == nullptr) return false;
      opts->stream = v;
    } else if (flag == "--replay") {
      if ((v = need_value()) == nullptr) return false;
      opts->replay = v;
    } else if (flag == "--oplog") {
      if ((v = need_value()) == nullptr) return false;
      opts->oplog = v;
    } else {
      static const std::set<std::string> kNumericFlags = {
          "--port", "--rate", "--deadline-ms"};
      if (kNumericFlags.count(flag) == 0) {
        std::cerr << "unknown flag: " << flag << " (see --help)\n";
        return false;
      }
      if ((v = need_value()) == nullptr) return false;
      int iv = 0;
      double dv = 0.0;
      const bool is_int = ParseInt(v, &iv);
      const bool is_double = ParseDouble(v, &dv);
      if (flag == "--port" && is_int) opts->port = iv;
      else if (flag == "--rate" && is_double) opts->rate = dv;
      else if (flag == "--deadline-ms" && is_int) opts->deadline_ms = iv;
      else {
        std::cerr << "unknown or malformed flag: " << flag << " " << v << "\n";
        return false;
      }
    }
  }
  return true;
}

/// Sends one request line, reads one response line, prints it. Returns
/// false on transport failure or a response without "ok":true.
bool Exchange(util::Socket& sock, const std::string& request,
              std::string* response, bool quiet) {
  if (!sock.SendAll(request).ok()) {
    std::cerr << "send failed\n";
    return false;
  }
  auto rr = sock.ReadLine(response, 30000);
  if (!rr.ok() || *rr != util::Socket::ReadResult::kLine) {
    std::cerr << "no response (connection closed or timeout)\n";
    return false;
  }
  if (!quiet) std::cout << *response << "\n";
  return response->find("\"ok\":true") != std::string::npos;
}

bool ParsePredictRows(const std::string& spec,
                      std::vector<std::vector<int32_t>>* rows) {
  std::stringstream row_stream(spec);
  std::string row;
  while (std::getline(row_stream, row, ';')) {
    std::vector<int32_t> codes;
    std::stringstream code_stream(row);
    std::string code;
    while (std::getline(code_stream, code, ',')) {
      int value = 0;
      if (!ParseInt(code.c_str(), &value)) return false;
      codes.push_back(value);
    }
    if (codes.empty()) return false;
    rows->push_back(std::move(codes));
  }
  return !rows->empty();
}

bool ParseWhatIfPredicate(const std::string& spec, Predicate* predicate) {
  std::vector<Literal> literals;
  std::stringstream lit_stream(spec);
  std::string lit;
  while (std::getline(lit_stream, lit, ',')) {
    std::stringstream part_stream(lit);
    std::string attr, cmp, value;
    if (!std::getline(part_stream, attr, ':') ||
        !std::getline(part_stream, cmp, ':') ||
        !std::getline(part_stream, value, ':')) {
      return false;
    }
    Literal l;
    int iv = 0;
    if (!ParseInt(attr.c_str(), &iv) || iv < 0) return false;
    l.attr = iv;
    auto op = serve::LiteralOpFromWireName(cmp);
    if (!op.ok()) return false;
    l.op = *op;
    if (!ParseInt(value.c_str(), &iv)) return false;
    l.value = iv;
    literals.push_back(l);
  }
  if (literals.empty()) return false;
  *predicate = Predicate(std::move(literals));
  return true;
}

/// The canned smoke sequence; exercises every read endpoint plus one
/// checkpoint stream op, deriving row width and next seq from health.
int RunSmoke(util::Socket& sock, const CliOptions& opts) {
  std::string response;
  int64_t id = 1;
  if (!Exchange(sock, serve::EncodeHealthRequest(id++), &response,
                opts.quiet)) {
    return 1;
  }
  auto health = util::ParseJson(response);
  if (!health.ok()) return 1;
  const util::JsonValue* tenants = health->Find("tenants");
  if (tenants == nullptr || !tenants->is_array() || tenants->array.empty()) {
    std::cerr << "smoke: no tenants\n";
    return 1;
  }
  // Target the requested tenant when present, else the first registered.
  const util::JsonValue* tenant = &tenants->array[0];
  for (const util::JsonValue& t : tenants->array) {
    if (t.StringOr("name", "") == opts.tenant) tenant = &t;
  }
  const std::string name = tenant->StringOr("name", "");
  const int attrs = static_cast<int>(tenant->NumberOr("attrs", 0));
  const auto seq = static_cast<int64_t>(tenant->NumberOr("seq", -1));
  if (name.empty() || attrs <= 0) {
    std::cerr << "smoke: malformed health response\n";
    return 1;
  }
  bool ok = Exchange(sock, serve::EncodeMetricsRequest(id++), &response,
                     opts.quiet);
  ok = Exchange(sock, serve::EncodeExplainRequest(id++, name), &response,
                opts.quiet) &&
       ok;
  // Code 0 is valid for every categorical attribute.
  const std::vector<std::vector<int32_t>> rows(
      1, std::vector<int32_t>(static_cast<size_t>(attrs), 0));
  ok = Exchange(sock, serve::EncodePredictRequest(id++, name, rows),
                &response, opts.quiet) &&
       ok;
  Predicate predicate({Literal{0, LiteralOp::kEq, 0}});
  ok = Exchange(sock, serve::EncodeWhatIfRequest(id++, name, predicate),
                &response, opts.quiet) &&
       ok;
  stream::StreamOp checkpoint;
  checkpoint.seq = seq + 1;
  checkpoint.kind = stream::OpKind::kCheckpoint;
  ok = Exchange(sock, serve::EncodeStreamOpRequest(id++, name, checkpoint),
                &response, opts.quiet) &&
       ok;
  std::cout << (ok ? "smoke OK" : "smoke FAILED") << "\n";
  return ok ? 0 : 1;
}

/// Replays request lines at the target rate; returns failures.
int Replay(util::Socket& sock, const std::vector<std::string>& requests,
           const CliOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  int failures = 0;
  std::string response;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (opts.rate > 0.0) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(i / opts.rate));
      std::this_thread::sleep_until(due);
    }
    if (!Exchange(sock, requests[i] + "\n", &response, opts.quiet)) {
      ++failures;
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::cout << "replayed " << requests.size() << " requests in "
            << seconds << "s (" << failures << " failed)\n";
  return failures == 0 ? 0 : 1;
}

int Run(const CliOptions& opts) {
  int port = opts.port;
  if (!opts.port_file.empty()) {
    std::ifstream pf(opts.port_file);
    if (!(pf >> port)) {
      std::cerr << "cannot read port from " << opts.port_file << "\n";
      return 1;
    }
  }
  if (port <= 0) {
    std::cerr << "need --port or --port-file\n";
    return 1;
  }
  auto connected = util::Socket::Connect(opts.host, port);
  if (!connected.ok()) {
    std::cerr << connected.status().ToString() << "\n";
    return 1;
  }
  util::Socket sock = std::move(connected).ValueOrDie();

  if (opts.smoke) return RunSmoke(sock, opts);

  if (!opts.replay.empty()) {
    std::ifstream in(opts.replay);
    if (!in) {
      std::cerr << "cannot open " << opts.replay << "\n";
      return 1;
    }
    std::vector<std::string> requests;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) requests.push_back(line);
    }
    return Replay(sock, requests, opts);
  }

  if (!opts.oplog.empty()) {
    auto ops = stream::ReadOpLogFile(opts.oplog);
    if (!ops.ok()) {
      std::cerr << ops.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> requests;
    int64_t id = 1;
    for (const stream::StreamOp& op : *ops) {
      std::string line = serve::EncodeStreamOpRequest(id++, opts.tenant, op);
      line.pop_back();  // Replay adds the newline
      requests.push_back(std::move(line));
    }
    return Replay(sock, requests, opts);
  }

  std::string request;
  if (!opts.predict.empty()) {
    std::vector<std::vector<int32_t>> rows;
    if (!ParsePredictRows(opts.predict, &rows)) {
      std::cerr << "malformed --predict rows\n";
      return 1;
    }
    request = serve::EncodePredictRequest(1, opts.tenant, rows);
  } else if (!opts.whatif.empty()) {
    Predicate predicate;
    if (!ParseWhatIfPredicate(opts.whatif, &predicate)) {
      std::cerr << "malformed --whatif predicate\n";
      return 1;
    }
    request = serve::EncodeWhatIfRequest(1, opts.tenant, predicate,
                                         opts.deadline_ms);
  } else if (!opts.stream.empty()) {
    auto op = stream::ParseOp(opts.stream);
    if (!op.ok()) {
      std::cerr << op.status().ToString() << "\n";
      return 1;
    }
    request = serve::EncodeStreamOpRequest(1, opts.tenant, *op);
  } else if (opts.op == "health") {
    request = serve::EncodeHealthRequest(1);
  } else if (opts.op == "metrics") {
    request = serve::EncodeMetricsRequest(1);
  } else if (opts.op == "explain") {
    request = serve::EncodeExplainRequest(1, opts.tenant);
  } else if (opts.op == "checkpoint") {
    request = serve::EncodeCheckpointRequest(1, opts.tenant);
  } else {
    std::cerr << "nothing to do (see --help)\n";
    return 2;
  }
  std::string response;
  return Exchange(sock, request, &response, opts.quiet) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  bool want_help = false;
  if (!ParseArgs(argc, argv, &opts, &want_help)) return 2;
  if (want_help) {
    PrintUsage();
    return 0;
  }
  return Run(opts);
}
