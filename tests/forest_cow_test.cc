// Copy-on-write forest semantics: clones share nodes until mutated, a
// mutated clone never perturbs the forest it came from (or sibling
// clones), delta-aware what-if rescoring is byte-identical to full
// prediction, and the whole CoW evaluation pipeline reproduces the
// deep-copy reference path exactly — serially and across thread counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/fume.h"
#include "core/removal_method.h"
#include "forest/forest.h"
#include "forest/prediction_cache.h"
#include "synth/datasets.h"

namespace fume {
namespace {

struct Fixture {
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest model;
};

ForestConfig CowForestConfig() {
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 6;
  config.random_depth = 2;
  config.seed = 23;
  return config;
}

Fixture MakeFixture(uint64_t seed = 1, int64_t rows = 1200) {
  synth::PlantedOptions opts;
  opts.num_rows = rows;
  opts.seed = seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, DareForest()};
  auto model = DareForest::Train(f.train, CowForestConfig());
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  return f;
}

Fixture MakeGermanFixture() {
  synth::SynthOptions opts;
  opts.seed = 5;
  auto bundle = synth::MakeGermanCredit(opts);
  EXPECT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, DareForest()};
  auto model = DareForest::Train(f.train, CowForestConfig());
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  return f;
}

// A spread-out batch of live row ids, keyed so different callers get
// different batches.
std::vector<RowId> PickRows(const DareForest& forest, uint64_t key,
                            int count) {
  const int64_t n = forest.num_training_rows();
  std::vector<RowId> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int64_t r =
        static_cast<int64_t>((key * 131 + static_cast<uint64_t>(i) * 977) %
                             static_cast<uint64_t>(n));
    rows.push_back(static_cast<RowId>(r));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

TEST(CowCloneTest, CloneSharesNodesDeepCloneDoesNot) {
  Fixture f = MakeFixture();
  const DareForest cow = f.model.Clone();
  const DareForest deep = f.model.DeepClone();
  for (int t = 0; t < f.model.num_trees(); ++t) {
    EXPECT_EQ(f.model.tree(t).root(), cow.tree(t).root());
    EXPECT_NE(f.model.tree(t).root(), deep.tree(t).root());
  }
  EXPECT_TRUE(f.model.StructurallyEquals(cow));
  EXPECT_TRUE(f.model.StructurallyEquals(deep));
  EXPECT_GT(f.model.ApproxHeapBytes(), 0);
}

TEST(CowCloneTest, MutatingCloneNeverPerturbsBase) {
  Fixture f = MakeFixture();
  const DareForest snapshot = f.model.DeepClone();
  const std::vector<double> base_probs = f.model.PredictProbAll(f.test);

  DareForest clone = f.model.Clone();
  ASSERT_TRUE(clone.DeleteRows(PickRows(f.model, 3, 40)).ok());

  // The base forest is untouched: same structure, same statistics, same
  // predictions, and its node objects validate.
  EXPECT_TRUE(f.model.StructurallyEquals(snapshot));
  EXPECT_TRUE(f.model.ValidateStats());
  EXPECT_EQ(f.model.PredictProbAll(f.test), base_probs);

  // The clone matches the deep-copy reference path exactly.
  DareForest reference = snapshot.DeepClone();
  ASSERT_TRUE(reference.DeleteRows(PickRows(f.model, 3, 40)).ok());
  EXPECT_TRUE(clone.StructurallyEquals(reference));
  EXPECT_TRUE(clone.ValidateStats());
  EXPECT_EQ(clone.PredictProbAll(f.test), reference.PredictProbAll(f.test));
}

TEST(CowCloneTest, SiblingClonesAreIsolated) {
  Fixture f = MakeFixture(2);
  const DareForest snapshot = f.model.DeepClone();
  DareForest a = f.model.Clone();
  DareForest b = f.model.Clone();
  ASSERT_TRUE(a.DeleteRows(PickRows(f.model, 11, 30)).ok());
  ASSERT_TRUE(b.DeleteRows(PickRows(f.model, 47, 55)).ok());

  DareForest ref_a = snapshot.DeepClone();
  DareForest ref_b = snapshot.DeepClone();
  ASSERT_TRUE(ref_a.DeleteRows(PickRows(f.model, 11, 30)).ok());
  ASSERT_TRUE(ref_b.DeleteRows(PickRows(f.model, 47, 55)).ok());

  EXPECT_TRUE(a.StructurallyEquals(ref_a));
  EXPECT_TRUE(b.StructurallyEquals(ref_b));
  EXPECT_TRUE(f.model.StructurallyEquals(snapshot));
}

TEST(CowCloneTest, CloneOfMutatedCloneKeepsUnlearningExact) {
  Fixture f = MakeFixture(3);
  DareForest first = f.model.Clone();
  ASSERT_TRUE(first.DeleteRows(PickRows(f.model, 5, 25)).ok());
  DareForest second = first.Clone();
  ASSERT_TRUE(second.DeleteRows(PickRows(f.model, 63, 25)).ok());

  DareForest reference = f.model.DeepClone();
  ASSERT_TRUE(reference.DeleteRows(PickRows(f.model, 5, 25)).ok());
  DareForest ref_second = reference.DeepClone();
  ASSERT_TRUE(ref_second.DeleteRows(PickRows(f.model, 63, 25)).ok());

  EXPECT_TRUE(first.StructurallyEquals(reference));
  EXPECT_TRUE(second.StructurallyEquals(ref_second));
  EXPECT_TRUE(second.ValidateStats());
}

// The TSan anchor: clones created and mutated on many threads while the
// base forest serves predictions. Row batches overlap across threads, so
// distinct clones unshare the same base nodes concurrently.
TEST(CowAliasingTest, InterleavedCloneDeletePredictAcrossThreads) {
  Fixture f = MakeFixture(4, 800);
  constexpr int kThreads = 8;
  constexpr int kIters = 4;

  // Reference evaluations computed serially via the deep-copy path.
  std::vector<std::vector<double>> want(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    DareForest reference = f.model.DeepClone();
    ASSERT_TRUE(
        reference.DeleteRows(PickRows(f.model, static_cast<uint64_t>(t), 20))
            .ok());
    want[static_cast<size_t>(t)] = reference.PredictProbAll(f.test);
  }
  const std::vector<double> base_want = f.model.PredictProbAll(f.test);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        DareForest clone = f.model.Clone();
        if (!clone
                 .DeleteRows(PickRows(f.model, static_cast<uint64_t>(t), 20))
                 .ok() ||
            clone.PredictProbAll(f.test) != want[static_cast<size_t>(t)] ||
            f.model.PredictProbAll(f.test) != base_want) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(f.model.ValidateStats());
}

#ifndef NDEBUG
TEST(CowDebugTest, LiveNodeTallyReturnsToBaseline) {
  const int64_t baseline = cow_debug::LiveTreeNodes();
  {
    Fixture f = MakeFixture(6, 600);
    EXPECT_GT(cow_debug::LiveTreeNodes(), baseline);
    DareForest a = f.model.Clone();
    DareForest b = f.model.Clone();
    ASSERT_TRUE(a.DeleteRows(PickRows(f.model, 9, 30)).ok());
    ASSERT_TRUE(b.DeleteRows(PickRows(f.model, 21, 30)).ok());
    // ~DareForest additionally runs DebugCheckCowConsistency here.
  }
  EXPECT_EQ(cow_debug::LiveTreeNodes(), baseline);
}
#endif

TEST(WhatIfRescoreTest, ScoreWhatIfMatchesFullPredictAll) {
  Fixture f = MakeFixture(7);
  TestPredictionCache cache;
  cache.Rebuild(f.model, f.test);
  EXPECT_EQ(cache.predictions(), f.model.PredictAll(f.test));

  TestPredictionCache::WhatIfScratch scratch;  // reused across evaluations
  for (uint64_t key = 0; key < 12; ++key) {
    DareForest what_if = f.model.Clone();
    ASSERT_TRUE(
        what_if.DeleteRows(PickRows(f.model, key, 10 + 7 * (key % 4))).ok());
    cache.ScoreWhatIf(f.model, what_if, f.test, &scratch);
    EXPECT_EQ(scratch.preds, what_if.PredictAll(f.test)) << "key " << key;
    EXPECT_GE(scratch.trees_changed, 0);
    EXPECT_LE(scratch.rows_rescored, f.test.num_rows());
  }

  // An unmutated clone shares everything: nothing rescored, base preds.
  DareForest untouched = f.model.Clone();
  cache.ScoreWhatIf(f.model, untouched, f.test, &scratch);
  EXPECT_EQ(scratch.trees_changed, 0);
  EXPECT_EQ(scratch.rows_rescored, 0);
  EXPECT_EQ(scratch.preds, cache.predictions());
}

// Exactness anchor: the CoW + delta-rescore evaluation pipeline reproduces
// the seed deep-copy + full-PredictAll path bit for bit, per evaluation.
TEST(WhatIfRescoreTest, CowEvaluationsMatchDeepCopyReference) {
  for (const bool german : {false, true}) {
    Fixture f = german ? MakeGermanFixture() : MakeFixture(8);
    UnlearnRemovalMethod cow(&f.model, &f.test, f.group,
                             FairnessMetric::kStatisticalParity);
    UnlearnRemovalMethod reference(&f.model, &f.test, f.group,
                                   FairnessMetric::kStatisticalParity,
                                   UnlearnRemovalMethod::Options{false});
    for (uint64_t key = 0; key < 10; ++key) {
      const std::vector<RowId> rows = PickRows(f.model, key, 12 + 9 * (key % 3));
      auto a = cow.EvaluateWithout(rows);
      auto b = reference.EvaluateWithout(rows);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->fairness, b->fairness) << "german=" << german;
      EXPECT_EQ(a->accuracy, b->accuracy) << "german=" << german;
    }
    // Identical unlearning work; only the ownership regime differs — the
    // CoW path unshares nodes still referenced by the base forest, the
    // deep-copy path owns every node outright.
    DeletionStats cow_stats = cow.deletion_stats();
    DeletionStats ref_stats = reference.deletion_stats();
    EXPECT_GT(cow_stats.nodes_copied, 0);
    EXPECT_EQ(ref_stats.nodes_copied, 0);
    cow_stats.nodes_copied = 0;
    EXPECT_EQ(cow_stats, ref_stats);
  }
}

// End-to-end: the full top-k search is byte-identical between the CoW
// pipeline (at 1, 4 and 8 threads) and the deep-copy reference, on two
// datasets.
TEST(CowSearchExactnessTest, TopKByteIdenticalToSeedPathAcrossThreadCounts) {
  for (const bool german : {false, true}) {
    Fixture f = german ? MakeGermanFixture() : MakeFixture(9);
    FumeConfig config;
    config.top_k = 5;
    config.support_min = 0.02;
    config.support_max = 0.25;
    config.max_literals = 2;
    config.group = f.group;
    config.lattice.excluded_attrs = {f.group.sensitive_attr};

    ModelEval original;
    original.fairness =
        ComputeFairness(f.model, f.test, config.group, config.metric);
    original.accuracy = f.model.Accuracy(f.test);

    UnlearnRemovalMethod reference(&f.model, &f.test, f.group, config.metric,
                                   UnlearnRemovalMethod::Options{false});
    auto want = ExplainWithRemoval(original, f.train, config, &reference);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    for (const int threads : {1, 4, 8}) {
      config.num_threads = threads;
      auto got = ExplainFairnessViolation(f.model, f.train, f.test, config);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->top_k.size(), want->top_k.size())
          << "german=" << german << " threads=" << threads;
      for (size_t i = 0; i < want->top_k.size(); ++i) {
        EXPECT_EQ(got->top_k[i].predicate.ToString(f.train.schema()),
                  want->top_k[i].predicate.ToString(f.train.schema()));
        EXPECT_EQ(got->top_k[i].attribution, want->top_k[i].attribution);
        EXPECT_EQ(got->top_k[i].new_fairness, want->top_k[i].new_fairness);
        EXPECT_EQ(got->top_k[i].new_accuracy, want->top_k[i].new_accuracy);
      }
      EXPECT_EQ(got->stats.attribution_evaluations,
                want->stats.attribution_evaluations);
      EXPECT_EQ(got->all_candidates.size(), want->all_candidates.size());
    }
  }
}

}  // namespace
}  // namespace fume
