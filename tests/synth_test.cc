// Tests for the synthetic dataset generators: Table 2 calibration (size,
// protected fraction, per-group base rates), determinism and the planted
// structure each generator promises.

#include <gtest/gtest.h>

#include <cmath>

#include "synth/datasets.h"
#include "synth/registry.h"

namespace fume {
namespace {

using synth::AllDatasets;
using synth::DatasetBundle;
using synth::RegisteredDataset;
using synth::SynthOptions;

struct Table2Row {
  std::string name;
  int64_t rows;
  int features;
  double protected_fraction;
  double priv_base;
  double prot_base;
};

// The paper's Table 2.
const Table2Row kTable2[] = {
    {"german-credit", 1000, 21, 0.4110, 0.7419, 0.6399},
    {"adult-income", 45222, 10, 0.3250, 0.3124, 0.1135},
    {"sqf", 72546, 16, 0.3594, 0.3832, 0.3016},
    {"acs-income", 139833, 10, 0.4855, 0.4353, 0.3106},
    {"meps", 11081, 42, 0.6407, 0.2549, 0.1236},
};

class CalibrationSweep : public testing::TestWithParam<Table2Row> {};

TEST_P(CalibrationSweep, MatchesTable2) {
  const Table2Row& row = GetParam();
  auto registered = synth::FindDataset(row.name);
  ASSERT_TRUE(registered.ok());
  EXPECT_EQ(registered->paper_rows, row.rows);
  EXPECT_EQ(registered->paper_features, row.features);

  SynthOptions opts;
  // Scale the big datasets down for test speed; rates are size-invariant.
  opts.num_rows = std::min<int64_t>(row.rows, 12000);
  auto bundle = registered->make(opts);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  const Dataset& data = bundle->data;

  EXPECT_EQ(data.num_rows(), opts.num_rows);
  EXPECT_EQ(data.num_attributes(), row.features);
  EXPECT_TRUE(data.schema().AllCategorical());
  ASSERT_TRUE(data.Validate().ok());

  const GroupSpec& group = bundle->group;
  const double protected_fraction =
      1.0 - data.GroupFraction(group.sensitive_attr, group.privileged_code);
  EXPECT_NEAR(protected_fraction, row.protected_fraction, 0.02);

  const double priv_base =
      data.BaseRate(group.sensitive_attr, group.privileged_code);
  const double prot_base =
      data.BaseRate(group.sensitive_attr, 1 - group.privileged_code);
  // Tolerance: fixed 2pp for systematic calibration error plus a 3-sigma
  // binomial sampling band for this dataset size.
  auto tolerance = [&](double p, double group_fraction) {
    const double group_n =
        static_cast<double>(opts.num_rows) * group_fraction;
    return 0.02 + 3.0 * std::sqrt(p * (1.0 - p) / group_n);
  };
  EXPECT_NEAR(priv_base, row.priv_base,
              tolerance(row.priv_base, 1.0 - row.protected_fraction));
  EXPECT_NEAR(prot_base, row.prot_base,
              tolerance(row.prot_base, row.protected_fraction));
  // The privileged group must be favored (the violation to explain).
  EXPECT_GT(priv_base, prot_base);
}

INSTANTIATE_TEST_SUITE_P(Table2, CalibrationSweep, testing::ValuesIn(kTable2),
                         [](const testing::TestParamInfo<Table2Row>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SynthTest, RegistryIsComplete) {
  EXPECT_EQ(AllDatasets().size(), 5u);
  EXPECT_TRUE(synth::FindDataset("german-credit").ok());
  EXPECT_TRUE(synth::FindDataset("nope").status().IsKeyError());
}

TEST(SynthTest, GeneratorsAreDeterministic) {
  for (const RegisteredDataset& d : AllDatasets()) {
    SynthOptions opts;
    opts.num_rows = 500;
    opts.seed = 9;
    auto a = d.make(opts);
    auto b = d.make(opts);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->data.num_rows(), b->data.num_rows());
    for (int64_t r = 0; r < a->data.num_rows(); ++r) {
      ASSERT_EQ(a->data.Label(r), b->data.Label(r)) << d.name;
      for (int j = 0; j < a->data.num_attributes(); ++j) {
        ASSERT_EQ(a->data.Code(r, j), b->data.Code(r, j)) << d.name;
      }
    }
  }
}

TEST(SynthTest, SeedsChangeTheData) {
  SynthOptions a, b;
  a.num_rows = b.num_rows = 500;
  a.seed = 1;
  b.seed = 2;
  auto da = synth::MakeGermanCredit(a);
  auto db = synth::MakeGermanCredit(b);
  ASSERT_TRUE(da.ok() && db.ok());
  bool any_diff = false;
  for (int64_t r = 0; r < 500 && !any_diff; ++r) {
    if (da->data.Label(r) != db->data.Label(r) ||
        da->data.Code(r, 0) != db->data.Code(r, 0)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthTest, SqfPlantsTheSexRaceProxy) {
  SynthOptions opts;
  opts.num_rows = 20000;
  auto bundle = synth::MakeSqf(opts);
  ASSERT_TRUE(bundle.ok());
  const Dataset& data = bundle->data;
  const int race = *data.schema().FindAttribute("Race");
  const int sex = *data.schema().FindAttribute("Sex");
  const int female = data.schema().attribute(sex).FindCategory("Female");
  const int white = data.schema().attribute(race).FindCategory("White");
  int64_t female_n = 0, female_prot = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (data.Code(r, sex) == female) {
      ++female_n;
      if (data.Code(r, race) != white) ++female_prot;
    }
  }
  // Females are rare (~6.5%) and skewed protected (correlation planted).
  const double female_fraction =
      static_cast<double>(female_n) / static_cast<double>(data.num_rows());
  EXPECT_NEAR(female_fraction, 0.065, 0.015);
  EXPECT_GT(static_cast<double>(female_prot) / static_cast<double>(female_n),
            0.55);
}

TEST(SynthTest, MepsCancerCohortIsConcentratedAndBiased) {
  SynthOptions opts;
  opts.num_rows = 11081;
  auto bundle = synth::MakeMeps(opts);
  ASSERT_TRUE(bundle.ok());
  const Dataset& data = bundle->data;
  const int cancer = *data.schema().FindAttribute("CancerDx");
  const int yes = data.schema().attribute(cancer).FindCategory("True");
  const double support = data.GroupFraction(cancer, yes);
  EXPECT_NEAR(support, 0.06, 0.02);  // paper's ME5 support 6.17%
  // Inside the cohort, privileged members fare far better.
  const int race = bundle->group.sensitive_attr;
  int64_t n[2] = {0, 0}, pos[2] = {0, 0};
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (data.Code(r, cancer) != yes) continue;
    const int g =
        data.Code(r, race) == bundle->group.privileged_code ? 1 : 0;
    ++n[g];
    pos[g] += data.Label(r);
  }
  ASSERT_GT(n[0], 0);
  ASSERT_GT(n[1], 0);
  const double prot_rate = static_cast<double>(pos[0]) / n[0];
  const double priv_rate = static_cast<double>(pos[1]) / n[1];
  EXPECT_GT(priv_rate - prot_rate, 0.3);
}

TEST(SynthTest, PlantedCohortSupportAndGap) {
  synth::PlantedOptions opts;
  opts.num_rows = 4000;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  const Dataset& data = bundle->data;
  const auto conditions = synth::PlantedCohortConditions();
  int64_t in = 0, in_prot = 0, in_prot_pos = 0, in_priv = 0, in_priv_pos = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    bool match = true;
    for (const auto& [attr, code] : conditions) {
      if (data.Code(r, attr) != code) match = false;
    }
    if (!match) continue;
    ++in;
    if (data.Code(r, bundle->group.sensitive_attr) ==
        bundle->group.privileged_code) {
      ++in_priv;
      in_priv_pos += data.Label(r);
    } else {
      ++in_prot;
      in_prot_pos += data.Label(r);
    }
  }
  EXPECT_GT(in, 100);
  ASSERT_GT(in_prot, 10);
  ASSERT_GT(in_priv, 10);
  EXPECT_GT(static_cast<double>(in_priv_pos) / in_priv -
                static_cast<double>(in_prot_pos) / in_prot,
            0.25);
}

TEST(SynthTest, ParametricShapes) {
  auto bundle = synth::MakeParametric(1000, 8, 5, 3);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->data.num_rows(), 1000);
  EXPECT_EQ(bundle->data.num_attributes(), 8);
  for (int j = 1; j < 8; ++j) {
    EXPECT_EQ(bundle->data.schema().attribute(j).cardinality(), 5);
  }
  EXPECT_EQ(bundle->data.schema().attribute(0).cardinality(), 2);
  // Bad shapes are rejected.
  EXPECT_FALSE(synth::MakeParametric(100, 1, 5, 3).ok());
  EXPECT_FALSE(synth::MakeParametric(100, 5, 1, 3).ok());
  EXPECT_FALSE(synth::MakeParametric(0, 5, 4, 3).ok());
}

TEST(SynthTest, ModelErrorsAreReported) {
  synth::SynthModel bad;
  bad.name = "bad";
  bad.sensitive_attr = "missing";
  bad.privileged_category = "x";
  synth::AttrSpec a;
  a.name = "only";
  a.categories = {"u", "v"};
  a.priv_weights = {1, 1};
  bad.attrs.push_back(a);
  EXPECT_FALSE(synth::GenerateFromModel(bad, 10, 1).ok());

  bad.sensitive_attr = "only";
  bad.privileged_category = "nope";
  EXPECT_FALSE(synth::GenerateFromModel(bad, 10, 1).ok());

  bad.privileged_category = "u";
  synth::CohortEffect c;
  c.conditions = {{"only", "zzz"}};
  bad.cohorts = {c};
  EXPECT_FALSE(synth::GenerateFromModel(bad, 10, 1).ok());
}

}  // namespace
}  // namespace fume
