// Tests for the HedgeCut-style ERT forest: exact unlearning (prediction
// equality AND active-structure equality against scratch builds), variant
// swap behaviour, and FUME integration.

#include <gtest/gtest.h>

#include <numeric>

#include "core/fume.h"
#include "hedgecut/hedgecut.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset RandomDataset(int64_t n, int p, int card, uint64_t seed) {
  Schema schema;
  for (int j = 0; j < p; ++j) {
    std::vector<std::string> cats;
    for (int v = 0; v < card; ++v) cats.push_back("v" + std::to_string(v));
    EXPECT_TRUE(schema.AddCategorical("x" + std::to_string(j), cats).ok());
  }
  Dataset data(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int32_t> row(static_cast<size_t>(p));
    for (int j = 0; j < p; ++j) {
      row[static_cast<size_t>(j)] = rng.NextInt(0, card - 1);
    }
    const double base = row[0] < card / 2 ? 0.7 : 0.3;
    EXPECT_TRUE(data.AppendRow(row, rng.NextBernoulli(base) ? 1 : 0).ok());
  }
  return data;
}

HedgecutConfig TestConfig(uint64_t seed = 11) {
  HedgecutConfig config;
  config.num_trees = 3;
  config.max_depth = 7;
  config.num_candidates = 6;
  config.robustness_margin = 0.01;
  config.seed = seed;
  return config;
}

TEST(HedgecutTest, TrainValidatesInput) {
  Dataset data = RandomDataset(50, 3, 3, 1);
  HedgecutConfig config = TestConfig();
  config.num_trees = 0;
  EXPECT_FALSE(HedgecutForest::Train(data, config).ok());
  config = TestConfig();
  config.robustness_margin = -1.0;
  EXPECT_FALSE(HedgecutForest::Train(data, config).ok());
}

TEST(HedgecutTest, TrainingIsDeterministicAndLearns) {
  Dataset train = RandomDataset(600, 5, 4, 2);
  Dataset test = RandomDataset(300, 5, 4, 3);
  auto a = HedgecutForest::Train(train, TestConfig());
  auto b = HedgecutForest::Train(train, TestConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->ActiveStructureEquals(*b));
  EXPECT_GT(a->Accuracy(test), 0.6);
}

TEST(HedgecutTest, VariantsExistForNonRobustSplits) {
  Dataset train = RandomDataset(600, 5, 4, 4);
  HedgecutConfig loose = TestConfig();
  loose.robustness_margin = 0.5;  // almost everything non-robust
  HedgecutConfig tight = TestConfig();
  tight.robustness_margin = 0.0;  // nothing non-robust
  auto with_variants = HedgecutForest::Train(train, loose);
  auto without = HedgecutForest::Train(train, tight);
  ASSERT_TRUE(with_variants.ok() && without.ok());
  EXPECT_GT(with_variants->num_variant_nodes(), 0);
  EXPECT_EQ(without->num_variant_nodes(), 0);
  // The served model is the same either way: variants are a cache.
  Dataset probe = RandomDataset(100, 5, 4, 5);
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(with_variants->PredictProb(probe, r),
                     without->PredictProb(probe, r));
  }
}

// The exactness property, with structural comparison made possible by
// building the scratch tree on the SAME store with the reduced row list.
class HedgecutExactnessSweep : public testing::TestWithParam<int> {};

TEST_P(HedgecutExactnessSweep, DeleteEqualsScratchBuild) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dataset train = RandomDataset(250, 5, 4, seed);
  HedgecutConfig config = TestConfig(seed * 13 + 5);
  // Mix robust and non-robust regimes across the sweep.
  config.robustness_margin = (seed % 3) * 0.05;

  auto store = TrainingStore::Make(train);
  std::vector<RowId> all(static_cast<size_t>(train.num_rows()));
  std::iota(all.begin(), all.end(), 0);

  Rng rng(seed + 99);
  std::vector<RowId> shuffled = all;
  rng.Shuffle(&shuffled);
  std::vector<RowId> doomed(shuffled.begin(),
                            shuffled.begin() + 30 + static_cast<int>(seed % 50));
  std::vector<RowId> remaining;
  {
    std::vector<uint8_t> dead(static_cast<size_t>(train.num_rows()), 0);
    for (RowId r : doomed) dead[static_cast<size_t>(r)] = 1;
    for (RowId r : all) {
      if (!dead[static_cast<size_t>(r)]) remaining.push_back(r);
    }
  }

  for (int tree_id = 0; tree_id < 2; ++tree_id) {
    HedgecutTree unlearned = HedgecutTree::Build(store, all, tree_id, config);
    HedgecutDeletionStats stats;
    unlearned.DeleteRows(doomed, &stats);
    HedgecutTree scratch =
        HedgecutTree::Build(store, remaining, tree_id, config);
    EXPECT_TRUE(unlearned.ActiveStructureEquals(scratch))
        << "tree " << tree_id << " seed " << seed;
    for (int64_t r = 0; r < train.num_rows(); ++r) {
      ASSERT_DOUBLE_EQ(unlearned.PredictProb(train, r),
                       scratch.PredictProb(train, r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HedgecutExactnessSweep, testing::Range(0, 10));

TEST(HedgecutTest, VariantSwapsActuallyHappen) {
  // With a generous margin most nodes carry variants; enough random
  // deletions flip some winners, which must be served by swaps.
  Dataset train = RandomDataset(800, 4, 3, 77);
  HedgecutConfig config = TestConfig(3);
  config.num_trees = 5;
  config.robustness_margin = 0.05;
  auto forest = HedgecutForest::Train(train, config);
  ASSERT_TRUE(forest.ok());
  int64_t swaps = 0;
  Rng rng(4);
  std::vector<RowId> order(800);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);
  for (int batch = 0; batch < 12; ++batch) {
    std::vector<RowId> rows(order.begin() + batch * 50,
                            order.begin() + (batch + 1) * 50);
    ASSERT_TRUE(forest->DeleteRows(rows).ok());
  }
  swaps = forest->deletion_stats().variant_swaps;
  EXPECT_GT(swaps, 0) << "no winner flip was served by a variant";
}

TEST(HedgecutTest, DeleteValidation) {
  Dataset train = RandomDataset(100, 3, 3, 8);
  auto forest = HedgecutForest::Train(train, TestConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->DeleteRows({5, 5}).IsInvalid());
  EXPECT_TRUE(forest->DeleteRows({1000}).IsIndexError());
  EXPECT_TRUE(forest->DeleteRows({}).ok());
}

TEST(HedgecutTest, CloneIsIndependent) {
  Dataset train = RandomDataset(300, 4, 4, 9);
  auto forest = HedgecutForest::Train(train, TestConfig());
  ASSERT_TRUE(forest.ok());
  HedgecutForest clone = forest->Clone();
  ASSERT_TRUE(clone.DeleteRows({0, 1, 2}).ok());
  EXPECT_FALSE(clone.ActiveStructureEquals(*forest));
  EXPECT_TRUE(forest->ActiveStructureEquals(*forest));
}

TEST(HedgecutTest, FumeExplainsAHedgecutViolation) {
  synth::PlantedOptions opts;
  opts.num_rows = 1500;
  opts.seed = 1;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  const Dataset train = bundle->data.Select(train_rows);
  const Dataset test = bundle->data.Select(test_rows);

  HedgecutConfig model_config = TestConfig(21);
  model_config.num_trees = 20;
  auto model = HedgecutForest::Train(train, model_config);
  ASSERT_TRUE(model.ok());

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};
  const ModelEval original =
      EvaluateHedgecut(*model, test, config.group, config.metric);
  if (std::abs(original.fairness) < 0.01) {
    GTEST_SKIP() << "model happens to be fair on this draw";
  }
  HedgecutUnlearnRemovalMethod removal(&*model, &test, config.group,
                                       config.metric);
  auto result = ExplainWithRemoval(original, train, config, &removal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& s : result->top_k) EXPECT_GT(s.attribution, 0.0);
}

}  // namespace
}  // namespace fume
