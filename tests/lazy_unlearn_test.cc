// Lazy subtree retraining (config.lazy_unlearn, DESIGN.md §6 invariant 9):
// a delete that would retrain a subtree parks its doomed rows under a
// LazyTag instead, and the rebuild runs at the next flush boundary — first
// query descent, FlushAll, serialization, or a staleness-budget overflow.
// The anchor property pinned here: after ANY flush the lazy forest's
// serialized model bytes equal the eager kernel's on the same op sequence
// (DeletionStats deliberately differ — lazy does less work — so both sides
// are zeroed before each byte comparison). Plus: budget-triggered flushes,
// CoW tag isolation in both directions, stream-engine deferral identity,
// and a TSan readers-vs-lazy-writer interleave over published clones.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/split.h"
#include "forest/serialize.h"
#include "stream/engine.h"
#include "stream/op_log.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

struct LazyCase {
  const char* dataset;  // "german" or "planted"
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<LazyCase>& info) {
  return std::string(info.param.dataset) + "_s" +
         std::to_string(info.param.seed);
}

Dataset CaseData(const LazyCase& c) {
  if (std::string(c.dataset) == "german") {
    synth::SynthOptions opts;
    opts.num_rows = 600;
    opts.seed = c.seed;
    auto bundle = synth::MakeGermanCredit(opts);
    EXPECT_TRUE(bundle.ok());
    return bundle->data;
  }
  synth::PlantedOptions opts;
  opts.num_rows = 800;
  opts.seed = c.seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  return bundle->data;
}

ForestConfig BaseConfig(uint64_t seed) {
  ForestConfig config;
  config.num_trees = 4;
  config.max_depth = 8;
  config.random_depth = 2;
  config.seed = seed * 13 + 1;
  return config;
}

// Model bytes with the work counters zeroed first: lazy and eager do
// different amounts of retrain work by design, so only the model itself is
// compared. lazy_unlearn is a runtime knob (not serialized), so a flushed
// lazy forest and an eager one can match byte for byte.
std::string ModelBytes(DareForest* forest) {
  forest->ResetDeletionStats();
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveForest(*forest, out).ok());
  return out.str();
}

class LazyIdentitySweep : public testing::TestWithParam<LazyCase> {};

TEST_P(LazyIdentitySweep, FlushReproducesEagerBytes) {
  const LazyCase& c = GetParam();
  const Dataset train = CaseData(c);
  ForestConfig config = BaseConfig(c.seed);

  auto eager = DareForest::Train(train, config);
  ASSERT_TRUE(eager.ok());
  config.lazy_unlearn = true;
  auto lazy = DareForest::Train(train, config);
  ASSERT_TRUE(lazy.ok());

  // Random delete/flush interleaving over the live pool. Every flush point
  // must land both forests on identical model bytes and predictions.
  Rng rng(c.seed + 71);
  std::vector<RowId> live(static_cast<size_t>(train.num_rows()));
  std::iota(live.begin(), live.end(), 0);
  rng.Shuffle(&live);
  DeletionScratch eager_scratch, lazy_scratch;
  size_t cursor = 0;
  int flushes = 0;
  while (cursor + 32 < live.size() && flushes < 6) {
    const size_t batch_size = 1 + static_cast<size_t>(rng.NextInt(0, 24));
    std::vector<RowId> batch(
        live.begin() + static_cast<int64_t>(cursor),
        live.begin() + static_cast<int64_t>(cursor + batch_size));
    cursor += batch_size;
    ASSERT_TRUE(eager->DeleteRows(batch, nullptr, &eager_scratch).ok());
    ASSERT_TRUE(lazy->DeleteRows(batch, nullptr, &lazy_scratch).ok());
    if (rng.NextInt(0, 2) == 0) {
      lazy->FlushAll(nullptr, &lazy_scratch);
      ++flushes;
      ASSERT_FALSE(lazy->HasLazyTags());
      ASSERT_TRUE(lazy->ValidateStats());
      ASSERT_EQ(ModelBytes(&*lazy), ModelBytes(&*eager))
          << "lazy flush diverged from eager after " << cursor << " deletes";
      ASSERT_EQ(lazy->PredictProbAll(train), eager->PredictProbAll(train));
    }
  }
  lazy->FlushAll();
  EXPECT_EQ(ModelBytes(&*lazy), ModelBytes(&*eager));
}

INSTANTIATE_TEST_SUITE_P(Datasets, LazyIdentitySweep,
                         testing::Values(LazyCase{"german", 1},
                                         LazyCase{"german", 2},
                                         LazyCase{"planted", 3},
                                         LazyCase{"planted", 4}),
                         CaseName);

TEST(LazyUnlearnTest, QueryDescentFlushesTags) {
  const Dataset train = CaseData({"german", 5});
  ForestConfig config = BaseConfig(5);
  auto eager = DareForest::Train(train, config);
  ASSERT_TRUE(eager.ok());
  config.lazy_unlearn = true;
  auto lazy = DareForest::Train(train, config);
  ASSERT_TRUE(lazy.ok());

  std::vector<RowId> doomed;
  for (RowId r = 0; r < 120; r += 2) doomed.push_back(r);
  ASSERT_TRUE(eager->DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy->DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy->HasLazyTags());
  ASSERT_GT(lazy->lazy_rows(), 0);

  // The first traversal entry point retires every pending tag — and the
  // answers match the eager kernel exactly.
  EXPECT_EQ(lazy->PredictProbAll(train), eager->PredictProbAll(train));
  EXPECT_FALSE(lazy->HasLazyTags());
  EXPECT_EQ(lazy->lazy_rows(), 0);
  EXPECT_EQ(lazy->lazy_nodes(), 0);
  EXPECT_EQ(ModelBytes(&*lazy), ModelBytes(&*eager));
}

TEST(LazyUnlearnTest, SerializationFlushesTagsAndRoundTrips) {
  const Dataset train = CaseData({"planted", 6});
  ForestConfig config = BaseConfig(6);
  auto eager = DareForest::Train(train, config);
  ASSERT_TRUE(eager.ok());
  config.lazy_unlearn = true;
  auto lazy = DareForest::Train(train, config);
  ASSERT_TRUE(lazy.ok());

  std::vector<RowId> doomed;
  for (RowId r = 1; r < 200; r += 3) doomed.push_back(r);
  ASSERT_TRUE(eager->DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy->DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy->HasLazyTags());

  // SaveForest refuses to write a tagged graph — it flushes first, so no
  // tag ever escapes to disk. The flush retrain work lands in the lazy
  // forest's DeletionStats (serialized in the v2 format), so byte identity
  // with eager is asserted on a second save with both counters zeroed.
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(SaveForest(*lazy, first).ok());
  EXPECT_FALSE(lazy->HasLazyTags());
  const std::string lazy_bytes = ModelBytes(&*lazy);
  EXPECT_EQ(lazy_bytes, ModelBytes(&*eager));

  std::istringstream in(lazy_bytes, std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->StructurallyEquals(*eager));
}

TEST(LazyUnlearnTest, StalenessBudgetTriggersFlush) {
  const Dataset train = CaseData({"german", 7});
  ForestConfig config = BaseConfig(7);
  config.lazy_unlearn = true;
  config.max_lazy_rows = 16;  // tiny budget: bursts overflow immediately
  auto lazy = DareForest::Train(train, config);
  ASSERT_TRUE(lazy.ok());
  config.lazy_unlearn = false;
  auto eager = DareForest::Train(train, config);
  ASSERT_TRUE(eager.ok());

  Rng rng(77);
  std::vector<RowId> live(static_cast<size_t>(train.num_rows()));
  std::iota(live.begin(), live.end(), 0);
  rng.Shuffle(&live);
  size_t cursor = 0;
  for (int burst = 0; burst < 8; ++burst) {
    std::vector<RowId> batch(live.begin() + static_cast<int64_t>(cursor),
                             live.begin() + static_cast<int64_t>(cursor) + 40);
    cursor += 40;
    ASSERT_TRUE(lazy->DeleteRows(batch).ok());
    ASSERT_TRUE(eager->DeleteRows(batch).ok());
    // The budget is an invariant, not a hint: pending work never exceeds it
    // past the end of a DeleteRows call.
    EXPECT_LE(lazy->lazy_rows(), config.max_lazy_rows);
    EXPECT_LE(lazy->lazy_nodes(), config.max_lazy_nodes);
  }
  lazy->FlushAll();
  EXPECT_EQ(ModelBytes(&*lazy), ModelBytes(&*eager));
}

TEST(LazyUnlearnTest, CowCloneAndParentTagsStayIsolated) {
  const Dataset train = CaseData({"planted", 8});
  ForestConfig config = BaseConfig(8);
  auto eager = DareForest::Train(train, config);
  ASSERT_TRUE(eager.ok());
  config.lazy_unlearn = true;
  auto lazy = DareForest::Train(train, config);
  ASSERT_TRUE(lazy.ok());

  std::vector<RowId> first;
  for (RowId r = 0; r < 150; r += 2) first.push_back(r);
  ASSERT_TRUE(lazy->DeleteRows(first).ok());
  ASSERT_TRUE(eager->DeleteRows(first).ok());
  ASSERT_TRUE(lazy->HasLazyTags());

  // Direction 1: a clone of a tagged parent owes the same flush, and each
  // side pays it independently — flushing the parent must not disturb the
  // clone's pending tags (deep-copied on unshare, never aliased).
  DareForest clone = lazy->Clone();
  ASSERT_TRUE(clone.HasLazyTags());
  EXPECT_EQ(clone.lazy_rows(), lazy->lazy_rows());
  lazy->FlushAll();
  ASSERT_FALSE(lazy->HasLazyTags());
  ASSERT_TRUE(clone.HasLazyTags());
  clone.FlushAll();
  const std::string eager_bytes = ModelBytes(&*eager);
  EXPECT_EQ(ModelBytes(&*lazy), eager_bytes);
  EXPECT_EQ(ModelBytes(&clone), eager_bytes);

  // Direction 2: new tags on one side never leak into the other. Delete
  // more from the clone only; the parent's model must not move.
  std::vector<RowId> second;
  for (RowId r = 1; r < 151; r += 2) second.push_back(r);
  ASSERT_TRUE(clone.DeleteRows(second).ok());
  clone.FlushAll();
  EXPECT_EQ(ModelBytes(&*lazy), eager_bytes);
  ASSERT_TRUE(eager->DeleteRows(second).ok());
  EXPECT_EQ(ModelBytes(&clone), ModelBytes(&*eager));
}

TEST(LazyUnlearnTest, ConcurrentReadersOverPublishedClones) {
  // The thread-confinement contract in action: the writer lazily deletes
  // and flushes on its private forest, publishing a flushed CoW clone
  // after each burst; readers only ever traverse published clones. TSan
  // (scripts/run_tsan_tests.sh) checks the unshare/refcount machinery,
  // ASan the freed-subtree hazards.
  const Dataset train = CaseData({"german", 9});
  ForestConfig config = BaseConfig(9);
  config.lazy_unlearn = true;
  auto writer_forest = DareForest::Train(train, config);
  ASSERT_TRUE(writer_forest.ok());

  std::mutex mu;
  auto published =
      std::make_shared<const DareForest>(writer_forest->Clone());
  auto snapshot = [&] {
    std::lock_guard<std::mutex> lk(mu);
    return published;
  };

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const DareForest> snap = snapshot();
        const std::vector<double> probs = snap->PredictProbAll(train);
        EXPECT_EQ(probs.size(), static_cast<size_t>(train.num_rows()));
      }
    });
  }

  Rng rng(99);
  std::vector<RowId> live(static_cast<size_t>(train.num_rows()));
  std::iota(live.begin(), live.end(), 0);
  rng.Shuffle(&live);
  size_t cursor = 0;
  for (int burst = 0; burst < 10; ++burst) {
    for (int b = 0; b < 3; ++b) {
      std::vector<RowId> batch(
          live.begin() + static_cast<int64_t>(cursor),
          live.begin() + static_cast<int64_t>(cursor) + 8);
      cursor += 8;
      ASSERT_TRUE(writer_forest->DeleteRows(batch).ok());
    }
    writer_forest->FlushAll();
    auto next = std::make_shared<const DareForest>(writer_forest->Clone());
    std::lock_guard<std::mutex> lk(mu);
    published = std::move(next);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  config.lazy_unlearn = false;
  auto eager = DareForest::Train(train, config);
  ASSERT_TRUE(eager.ok());
  std::vector<RowId> deleted(live.begin(),
                             live.begin() + static_cast<int64_t>(cursor));
  ASSERT_TRUE(eager->DeleteRows(deleted).ok());
  EXPECT_EQ(ModelBytes(&*writer_forest), ModelBytes(&*eager));
}

// ---------------------------------------------------------------- stream

TEST(LazyUnlearnStreamTest, DeferredBurstsMatchEagerReplay) {
  // The engine-level contract: a lazy engine defers across delete bursts
  // (stale metric, suspended drift gating) but lands on the eager engine's
  // exact state at every flush boundary — inserts and checkpoint ops here.
  synth::SynthOptions opts;
  opts.num_rows = 500;
  opts.seed = 11;
  auto bundle = synth::MakeGermanCredit(opts);
  ASSERT_TRUE(bundle.ok());

  stream::StreamEngineConfig config;
  config.forest.num_trees = 6;
  config.forest.max_depth = 6;
  config.forest.random_depth = 2;
  config.forest.seed = 31;
  config.fume.top_k = 3;
  config.fume.support_min = 0.05;
  config.fume.support_max = 0.30;
  config.fume.max_literals = 1;
  config.fume.group = bundle->group;

  // Train on the front, keep a test slice and an insert pool.
  Dataset train(bundle->data.schema());
  Dataset test(bundle->data.schema());
  Dataset pool(bundle->data.schema());
  std::vector<int32_t> codes(
      static_cast<size_t>(bundle->data.num_attributes()));
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    for (int j = 0; j < bundle->data.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = bundle->data.Code(r, j);
    }
    Dataset* dst = r < 300 ? &train : (r < 440 ? &test : &pool);
    ASSERT_TRUE(dst->AppendRow(codes, bundle->data.Label(r)).ok());
  }

  std::vector<stream::StreamOp> ops;
  int64_t seq = 0;
  Rng rng(123);
  std::vector<RowId> live(300);
  std::iota(live.begin(), live.end(), 0);
  rng.Shuffle(&live);
  size_t cursor = 0;
  int64_t pool_next = 0;
  for (int round = 0; round < 4; ++round) {
    for (int burst = 0; burst < 3; ++burst) {  // delete burst
      std::vector<RowId> batch(
          live.begin() + static_cast<int64_t>(cursor),
          live.begin() + static_cast<int64_t>(cursor) + 6);
      cursor += 6;
      ops.push_back(stream::StreamOp::Delete(seq++, batch));
    }
    if (round % 2 == 0 && pool_next + 4 <= pool.num_rows()) {
      std::vector<stream::StreamRow> rows;
      for (int i = 0; i < 4; ++i, ++pool_next) {
        stream::StreamRow row;
        for (int j = 0; j < pool.num_attributes(); ++j) {
          row.codes.push_back(pool.Code(pool_next, j));
        }
        row.label = pool.Label(pool_next);
        rows.push_back(std::move(row));
      }
      ops.push_back(stream::StreamOp::Insert(seq++, std::move(rows)));
    } else {
      ops.push_back(stream::StreamOp::Checkpoint(seq++));
    }
  }

  auto eager_engine = stream::StreamEngine::Create(train, test, config);
  ASSERT_TRUE(eager_engine.ok()) << eager_engine.status().ToString();
  config.forest.lazy_unlearn = true;
  auto lazy_engine = stream::StreamEngine::Create(train, test, config);
  ASSERT_TRUE(lazy_engine.ok()) << lazy_engine.status().ToString();

  for (const stream::StreamOp& op : ops) {
    auto eager_out = eager_engine->Apply(op);
    ASSERT_TRUE(eager_out.ok()) << eager_out.status().ToString();
    auto lazy_out = lazy_engine->Apply(op);
    ASSERT_TRUE(lazy_out.ok()) << lazy_out.status().ToString();
    if (op.kind == stream::OpKind::kDelete) {
      EXPECT_TRUE(lazy_engine->deferring());
    } else {
      // Flush boundary: metric, accuracy and model state all caught up.
      EXPECT_FALSE(lazy_engine->deferring());
      EXPECT_EQ(lazy_out->metric, eager_out->metric);
      EXPECT_EQ(lazy_out->accuracy, eager_out->accuracy);
      EXPECT_FALSE(lazy_engine->forest().HasLazyTags());
      EXPECT_EQ(lazy_engine->forest().PredictProbAll(test),
                eager_engine->forest().PredictProbAll(test));
    }
  }

  // Mid-burst: a trailing delete leaves the engine deferring; FlushLazy()
  // lands it on the eager engine's state.
  std::vector<RowId> tail(live.begin() + static_cast<int64_t>(cursor),
                          live.begin() + static_cast<int64_t>(cursor) + 6);
  ops.push_back(stream::StreamOp::Delete(seq, tail));
  ASSERT_TRUE(eager_engine->Apply(ops.back()).ok());
  ASSERT_TRUE(lazy_engine->Apply(ops.back()).ok());
  lazy_engine->FlushLazy();
  EXPECT_FALSE(lazy_engine->deferring());
  EXPECT_EQ(lazy_engine->current_metric(), eager_engine->current_metric());
  EXPECT_EQ(lazy_engine->current_accuracy(),
            eager_engine->current_accuracy());
  EXPECT_EQ(lazy_engine->forest().PredictProbAll(test),
            eager_engine->forest().PredictProbAll(test));
}

TEST(LazyUnlearnStreamTest, BudgetFlushMidBurstThenBoundaryFlush) {
  // Regression: with a tiny staleness budget, the forest self-flushes
  // *inside* DeleteRows, so by the next boundary the engine is stale
  // (metric_stale_) while the forest holds no tags — FlushAll is a no-op
  // and returns no per-tree stats. The boundary flush must still rewalk
  // the burst-dirtied trees and land on the eager engine's exact state.
  synth::SynthOptions sopts;
  sopts.num_rows = 400;
  sopts.seed = 17;
  auto bundle = synth::MakeGermanCredit(sopts);
  ASSERT_TRUE(bundle.ok());
  SplitOptions split_opts;
  split_opts.seed = 7;
  auto split = SplitTrainTest(bundle->data, split_opts);
  ASSERT_TRUE(split.ok());

  stream::StreamEngineConfig config;
  config.forest.num_trees = 5;
  config.forest.max_depth = 6;
  config.forest.random_depth = 2;
  config.forest.seed = 31;
  config.fume.top_k = 3;
  config.fume.support_min = 0.05;
  config.fume.support_max = 0.30;
  config.fume.max_literals = 1;
  config.fume.group = bundle->group;

  auto eager_engine =
      stream::StreamEngine::Create(split->train, split->test, config);
  ASSERT_TRUE(eager_engine.ok()) << eager_engine.status().ToString();
  config.forest.lazy_unlearn = true;
  config.forest.max_lazy_rows = 8;  // overflowed by every burst below
  auto lazy_engine =
      stream::StreamEngine::Create(split->train, split->test, config);
  ASSERT_TRUE(lazy_engine.ok()) << lazy_engine.status().ToString();

  Rng rng(99);
  std::vector<RowId> live(static_cast<size_t>(split->train.num_rows()));
  std::iota(live.begin(), live.end(), 0);
  rng.Shuffle(&live);
  int64_t seq = 0;
  size_t cursor = 0;
  for (int round = 0; round < 3; ++round) {
    for (int burst = 0; burst < 3; ++burst) {
      std::vector<RowId> batch(
          live.begin() + static_cast<int64_t>(cursor),
          live.begin() + static_cast<int64_t>(cursor) + 6);
      cursor += 6;
      stream::StreamOp op = stream::StreamOp::Delete(seq++, batch);
      ASSERT_TRUE(eager_engine->Apply(op).ok());
      ASSERT_TRUE(lazy_engine->Apply(op).ok());
      // The budget keeps pending rows bounded even mid-burst...
      EXPECT_LE(lazy_engine->forest().lazy_rows(), 8);
      // ...but the engine still defers the metric until the boundary.
      EXPECT_TRUE(lazy_engine->deferring());
    }
    stream::StreamOp ckpt = stream::StreamOp::Checkpoint(seq++);
    auto eager_out = eager_engine->Apply(ckpt);
    ASSERT_TRUE(eager_out.ok()) << eager_out.status().ToString();
    auto lazy_out = lazy_engine->Apply(ckpt);
    ASSERT_TRUE(lazy_out.ok()) << lazy_out.status().ToString();
    EXPECT_FALSE(lazy_engine->deferring());
    EXPECT_EQ(lazy_out->metric, eager_out->metric);
    EXPECT_EQ(lazy_out->accuracy, eager_out->accuracy);
    EXPECT_EQ(lazy_engine->forest().PredictProbAll(split->test),
              eager_engine->forest().PredictProbAll(split->test));
  }
}

}  // namespace
}  // namespace fume
