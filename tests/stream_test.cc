// Stream engine exactness suite (ISSUE: streaming explanation engine).
//
// The anchor: after any prefix of an op-log, the engine's forest
// predictions, fairness metric and (post-search) top-k must be
// byte-identical to a cold retrain on the surviving rows plus a fresh FUME
// search with the same config/seed. Also pins op-log round-tripping,
// checkpoint/restore resume equivalence, drift-policy holds and the
// prediction cache against the forest's own predictors.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/fume.h"
#include "core/removal_method.h"
#include "data/split.h"
#include "fairness/metrics.h"
#include "stream/engine.h"
#include "stream/op_log.h"
#include "stream/prediction_cache.h"
#include "stream/workload.h"
#include "synth/datasets.h"

namespace fume {
namespace stream {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture data: a small German Credit pipeline split three ways —
// initial training data, a pool of future insert rows, and a test set.

struct StreamPipeline {
  Dataset initial_train;
  Dataset pool;
  Dataset test;
  GroupSpec group;
  StreamEngineConfig config;
};

StreamPipeline BuildPipeline(uint64_t seed) {
  synth::SynthOptions opts;
  opts.num_rows = 700;
  opts.seed = seed;
  auto bundle = synth::MakeGermanCredit(opts);
  EXPECT_TRUE(bundle.ok());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  EXPECT_TRUE(split.ok());
  // Carve the insert pool off the back of the training half.
  const int64_t pool_rows = split->train.num_rows() / 3;
  std::vector<int64_t> tail;
  for (int64_t r = split->train.num_rows() - pool_rows;
       r < split->train.num_rows(); ++r) {
    tail.push_back(r);
  }
  std::vector<int64_t> head;
  for (int64_t r = 0; r < split->train.num_rows() - pool_rows; ++r) {
    head.push_back(r);
  }
  StreamPipeline p;
  p.initial_train = split->train.DropRows(tail);
  p.pool = split->train.DropRows(head);
  p.test = std::move(split->test);
  p.group = bundle->group;
  p.config.forest.num_trees = 10;
  p.config.forest.max_depth = 6;
  p.config.forest.random_depth = 2;
  p.config.forest.seed = 31;
  p.config.fume.top_k = 3;
  p.config.fume.support_min = 0.05;
  p.config.fume.support_max = 0.30;
  p.config.fume.max_literals = 1;
  p.config.fume.group = p.group;
  return p;
}

// Fresh FUME search against a cold model, mirroring what the engine does.
Result<FumeResult> ColdSearch(const DareForest& model, const Dataset& train,
                              const Dataset& test,
                              const StreamEngineConfig& config) {
  ModelEval original;
  original.fairness =
      ComputeFairness(model, test, config.fume.group, config.fume.metric);
  original.accuracy = model.Accuracy(test);
  UnlearnRemovalMethod removal(&model, &test, config.fume.group,
                               config.fume.metric);
  return ExplainWithRemoval(original, train, config.fume, &removal);
}

void ExpectSubsetsIdentical(const AttributableSubset& a,
                            const AttributableSubset& b) {
  EXPECT_TRUE(a.predicate == b.predicate);
  EXPECT_EQ(a.support, b.support);
  EXPECT_EQ(a.num_rows, b.num_rows);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.attribution, b.attribution);
  EXPECT_EQ(a.new_fairness, b.new_fairness);
  EXPECT_EQ(a.new_accuracy, b.new_accuracy);
}

void ExpectEngineMatchesCold(const StreamEngine& engine,
                             const StreamPipeline& p, bool compare_topk) {
  auto cold = DareForest::Train(engine.train_data(), p.config.forest);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Predictions byte-identical (exact doubles, not approx).
  const std::vector<double> engine_probs =
      engine.forest().PredictProbAll(p.test);
  const std::vector<double> cold_probs = cold->PredictProbAll(p.test);
  ASSERT_EQ(engine_probs.size(), cold_probs.size());
  for (size_t r = 0; r < cold_probs.size(); ++r) {
    ASSERT_EQ(engine_probs[r], cold_probs[r]) << "test row " << r;
  }

  // Engine-served metric/accuracy match a cold evaluation exactly.
  EXPECT_EQ(engine.current_metric(),
            ComputeFairness(*cold, p.test, p.group, p.config.fume.metric));
  EXPECT_EQ(engine.current_accuracy(), cold->Accuracy(p.test));

  if (!compare_topk) return;
  auto fresh = ColdSearch(*cold, engine.train_data(), p.test, p.config);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  const FumeResult* served = engine.explanation();
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->original_fairness, fresh->original_fairness);
  ASSERT_EQ(served->top_k.size(), fresh->top_k.size());
  for (size_t i = 0; i < fresh->top_k.size(); ++i) {
    ExpectSubsetsIdentical(served->top_k[i], fresh->top_k[i]);
  }
}

// ---------------------------------------------------------------------------
// Op-log format.

TEST(OpLogTest, FormatParseRoundTrip) {
  StreamOp insert = StreamOp::Insert(
      7, {StreamRow{{1, 0, 3}, 1}, StreamRow{{2, 2, 0}, 0}});
  StreamOp del = StreamOp::Delete(8, {4, 19, 23});
  StreamOp ckpt = StreamOp::Checkpoint(9);
  for (const StreamOp& op : {insert, del, ckpt}) {
    auto parsed = ParseOp(FormatOp(op));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(*parsed == op);
  }
}

TEST(OpLogTest, StreamRoundTripAndResumeFilter) {
  std::vector<StreamOp> ops = {
      StreamOp::Insert(1, {StreamRow{{0, 1}, 0}}),
      StreamOp::Delete(3, {0}),
      StreamOp::Checkpoint(4),
      StreamOp::Insert(9, {StreamRow{{1, 1}, 1}}),
  };
  std::stringstream buf;
  ASSERT_TRUE(WriteOpLog(ops, buf).ok());

  auto all = ReadOpLog(buf);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) EXPECT_TRUE((*all)[i] == ops[i]);

  // Resume-from-checkpoint: skip everything at or below seq 4.
  buf.clear();
  buf.seekg(0);
  auto tail = ReadOpLog(buf, /*after_seq=*/4);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ((*tail)[0].seq, 9);
}

TEST(OpLogTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseOp("X 1").ok());                // unknown kind
  EXPECT_FALSE(ParseOp("I 1").ok());                // insert with no rows
  EXPECT_FALSE(ParseOp("I 1 7:0,1").ok());          // label out of range
  EXPECT_FALSE(ParseOp("I 1 1:0,-2").ok());         // negative code
  EXPECT_FALSE(ParseOp("I 1 1:0,1 0:4").ok());      // ragged widths
  EXPECT_FALSE(ParseOp("D 2").ok());                // delete with no ids
  EXPECT_FALSE(ParseOp("C x").ok());                // non-numeric seq
  EXPECT_TRUE(ParseOp("C 5").ok());

  std::stringstream decreasing("# fume-oplog v1\nC 5\nC 3\n");
  EXPECT_FALSE(ReadOpLog(decreasing).ok());
}

TEST(WorkloadTest, DeterministicAndWellFormed) {
  StreamPipeline p = BuildPipeline(4);
  WorkloadOptions w;
  w.num_ops = 60;
  w.checkpoint_every = 20;
  w.seed = 5;
  auto a = SynthesizeOpLog(p.pool, p.initial_train.num_rows(), w);
  auto b = SynthesizeOpLog(p.pool, p.initial_train.num_rows(), w);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  int checkpoints = 0;
  int64_t prev_seq = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i] == (*b)[i]);
    EXPECT_GT((*a)[i].seq, prev_seq);
    prev_seq = (*a)[i].seq;
    if ((*a)[i].kind == OpKind::kCheckpoint) ++checkpoints;
  }
  EXPECT_GE(checkpoints, 3);
  EXPECT_EQ(a->back().kind, OpKind::kCheckpoint);
}

// ---------------------------------------------------------------------------
// Prediction cache: byte-identical to the forest's own predictors.

TEST(PredictionCacheTest, MatchesForestThroughMixedOps) {
  StreamPipeline p = BuildPipeline(4);
  auto forest = DareForest::Train(p.initial_train, p.config.forest);
  ASSERT_TRUE(forest.ok());

  TestPredictionCache cache;
  cache.Rebuild(*forest, p.test);
  EXPECT_EQ(cache.probs(), forest->PredictProbAll(p.test));
  EXPECT_EQ(cache.predictions(), forest->PredictAll(p.test));

  // Delete a spread of rows, then add some back; after each op the cache
  // must still agree exactly with a full re-prediction.
  std::vector<DeletionStats> per_tree;
  std::vector<RowId> doomed;
  for (RowId id = 3; id < 120; id += 7) doomed.push_back(id);
  ASSERT_TRUE(forest->DeleteRows(doomed, &per_tree).ok());
  std::vector<bool> dirty(per_tree.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] = per_tree[t].subtrees_retrained > 0;
  }
  cache.Update(*forest, p.test, dirty);
  EXPECT_EQ(cache.probs(), forest->PredictProbAll(p.test));
  EXPECT_EQ(cache.predictions(), forest->PredictAll(p.test));

  std::vector<int64_t> keep;
  for (int64_t r = 40; r < 60; ++r) keep.push_back(r);
  Dataset batch = p.pool;
  std::vector<int64_t> drop;
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    if (r >= 20) drop.push_back(r);
  }
  batch = batch.DropRows(drop);
  auto added = forest->AddData(batch, &per_tree);
  ASSERT_TRUE(added.ok());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    dirty[t] = per_tree[t].subtrees_retrained > 0;
  }
  cache.Update(*forest, p.test, dirty);
  EXPECT_EQ(cache.probs(), forest->PredictProbAll(p.test));
  EXPECT_EQ(cache.predictions(), forest->PredictAll(p.test));
}

// ---------------------------------------------------------------------------
// The exactness anchor: >= 200 interleaved ops, multiple checkpoints,
// engine state byte-identical to cold retrain + fresh search at every one.

void RunExactness(uint64_t data_seed, uint64_t workload_seed) {
  StreamPipeline p = BuildPipeline(data_seed);
  auto engine = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  WorkloadOptions w;
  w.num_ops = 200;
  w.insert_batch = 4;
  w.delete_batch = 3;
  w.checkpoint_every = 40;  // 5 interior checkpoints + the final one
  w.seed = workload_seed;
  auto ops = SynthesizeOpLog(p.pool, p.initial_train.num_rows(), w);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_GE(ops->size(), 200u);

  int checkpoints_verified = 0;
  for (const StreamOp& op : *ops) {
    auto outcome = engine->Apply(op);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (op.kind != OpKind::kCheckpoint) continue;
    // Checkpoint ops refresh the explanation whenever stale, so the
    // served top-k must equal a fresh cold search here.
    EXPECT_EQ(engine->staleness(), 0);
    ExpectEngineMatchesCold(*engine, p, /*compare_topk=*/true);
    ++checkpoints_verified;
  }
  EXPECT_GE(checkpoints_verified, 3);
  EXPECT_EQ(engine->rows_live(), engine->train_data().num_rows());
  EXPECT_EQ(engine->live_ids().size(),
            static_cast<size_t>(engine->rows_live()));
}

TEST(StreamExactnessTest, TwoHundredOpsSeedA) { RunExactness(4, 11); }
TEST(StreamExactnessTest, TwoHundredOpsSeedB) { RunExactness(9, 23); }

// ---------------------------------------------------------------------------
// Checkpoint / restore: killing the engine mid-log and resuming replays to
// exactly the state the uninterrupted engine reaches.

TEST(StreamCheckpointTest, RestoreMidLogMatchesUninterrupted) {
  StreamPipeline p = BuildPipeline(4);
  WorkloadOptions w;
  w.num_ops = 80;
  w.checkpoint_every = 20;
  w.seed = 7;
  auto ops = SynthesizeOpLog(p.pool, p.initial_train.num_rows(), w);
  ASSERT_TRUE(ops.ok());

  auto uninterrupted = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(uninterrupted.ok());
  auto shard = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(shard.ok());

  // Drive both to the second checkpoint; snapshot the shard there.
  size_t cut = 0;
  int seen = 0;
  for (size_t i = 0; i < ops->size(); ++i) {
    ASSERT_TRUE(uninterrupted->Apply((*ops)[i]).ok());
    ASSERT_TRUE(shard->Apply((*ops)[i]).ok());
    if ((*ops)[i].kind == OpKind::kCheckpoint && ++seen == 2) {
      cut = i;
      break;
    }
  }
  ASSERT_EQ(seen, 2);
  std::stringstream blob;
  ASSERT_TRUE(shard->SaveCheckpoint(blob).ok());

  auto restored = StreamEngine::Restore(blob, p.initial_train.schema(),
                                        p.test, p.config);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->last_seq(), shard->last_seq());
  EXPECT_EQ(restored->current_metric(), shard->current_metric());
  EXPECT_TRUE(restored->live_ids() == shard->live_ids());

  // Resume: replay the remaining ops into both engines.
  for (size_t i = cut + 1; i < ops->size(); ++i) {
    ASSERT_TRUE(uninterrupted->Apply((*ops)[i]).ok());
    ASSERT_TRUE(restored->Apply((*ops)[i]).ok());
  }
  EXPECT_EQ(restored->last_seq(), uninterrupted->last_seq());
  EXPECT_EQ(restored->current_metric(), uninterrupted->current_metric());
  EXPECT_EQ(restored->current_accuracy(), uninterrupted->current_accuracy());
  EXPECT_EQ(restored->forest().PredictProbAll(p.test),
            uninterrupted->forest().PredictProbAll(p.test));
  const FumeResult* a = restored->explanation();
  const FumeResult* b = uninterrupted->explanation();
  ASSERT_EQ(a != nullptr, b != nullptr);
  if (a != nullptr) {
    ASSERT_EQ(a->top_k.size(), b->top_k.size());
    for (size_t i = 0; i < a->top_k.size(); ++i) {
      ExpectSubsetsIdentical(a->top_k[i], b->top_k[i]);
    }
  }
}

TEST(StreamCheckpointTest, RestoreRejectsGarbageAndWrongSchema) {
  StreamPipeline p = BuildPipeline(4);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_FALSE(
      StreamEngine::Restore(garbage, p.initial_train.schema(), p.test,
                            p.config)
          .ok());

  auto engine = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(engine.ok());
  std::stringstream blob;
  ASSERT_TRUE(engine->SaveCheckpoint(blob).ok());
  Schema wrong;
  wrong.AddCategorical("only", {"a", "b"});
  EXPECT_FALSE(
      StreamEngine::Restore(blob, wrong, p.test, p.config).ok());
}

// ---------------------------------------------------------------------------
// Drift policy and serving semantics.

TEST(DriftPolicyTest, ThresholdEdges) {
  DriftPolicy policy;
  policy.abs_threshold = 0.05;
  policy.rel_threshold = 0.5;
  EXPECT_FALSE(policy.ShouldSearch(0.20, 0.21));  // small drift
  EXPECT_TRUE(policy.ShouldSearch(0.20, 0.26));   // abs bound crossed
  EXPECT_TRUE(policy.ShouldSearch(0.04, 0.08));   // rel bound crossed
  EXPECT_FALSE(policy.ShouldSearch(0.0, 0.04));   // rel ignored at F_last=0
  EXPECT_TRUE(policy.ShouldSearch(0.0, 0.05));    // ...but abs still applies
  EXPECT_TRUE(policy.ShouldSearch(0.03, -0.03));  // sign flip counts as drift
}

TEST(StreamEngineTest, DriftHoldServesStaleExplanation) {
  StreamPipeline p = BuildPipeline(4);
  p.config.drift.abs_threshold = 1e9;  // never re-search on data ops
  p.config.drift.rel_threshold = 1e9;
  p.config.search_on_checkpoint = false;
  auto engine = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(engine.ok());
  const FumeResult* initial = engine->explanation();
  ASSERT_NE(initial, nullptr);
  const double frozen_reference = engine->metric_at_last_search();

  WorkloadOptions w;
  w.num_ops = 30;
  w.checkpoint_every = 10;
  w.seed = 3;
  auto ops = SynthesizeOpLog(p.pool, p.initial_train.num_rows(), w);
  ASSERT_TRUE(ops.ok());
  int64_t data_ops = 0;
  for (const StreamOp& op : *ops) {
    auto outcome = engine->Apply(op);
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->searched);
    if (op.kind != OpKind::kCheckpoint) ++data_ops;
    EXPECT_EQ(outcome->staleness_ops, data_ops);
  }
  // Cached top-k still served, staleness annotated, reference untouched.
  EXPECT_EQ(engine->explanation(), initial);
  EXPECT_EQ(engine->staleness(), data_ops);
  EXPECT_EQ(engine->metric_at_last_search(), frozen_reference);
}

TEST(StreamEngineTest, RejectsStaleSeqAndUnknownIds) {
  StreamPipeline p = BuildPipeline(4);
  auto engine = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Apply(StreamOp::Checkpoint(5)).ok());
  EXPECT_FALSE(engine->Apply(StreamOp::Checkpoint(5)).ok());
  EXPECT_FALSE(engine->Apply(StreamOp::Checkpoint(4)).ok());

  // Deleting a never-issued id fails cleanly and changes nothing.
  const double before = engine->current_metric();
  EXPECT_FALSE(engine->Apply(StreamOp::Delete(6, {999999})).ok());
  EXPECT_EQ(engine->current_metric(), before);

  // Double-delete: the second op must fail (id no longer live).
  ASSERT_TRUE(engine->Apply(StreamOp::Delete(7, {0})).ok());
  EXPECT_FALSE(engine->Apply(StreamOp::Delete(8, {0})).ok());
}

}  // namespace
}  // namespace stream
}  // namespace fume
