// Tests for src/forest/split_stats: Gini scoring, keyed candidate choices,
// histogram maintenance and the split-decision function.

#include <gtest/gtest.h>

#include <set>

#include "forest/split_stats.h"
#include "forest/training_store.h"

namespace fume {
namespace {

Dataset TinyDataset() {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("x", {"0", "1", "2", "3"}).ok());
  EXPECT_TRUE(schema.AddCategorical("y", {"a", "b"}).ok());
  Dataset data(schema);
  // x <= 1 -> label 1, x >= 2 -> label 0; y is noise.
  EXPECT_TRUE(data.AppendRow({0, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({1, 1}, 1).ok());
  EXPECT_TRUE(data.AppendRow({0, 1}, 1).ok());
  EXPECT_TRUE(data.AppendRow({2, 0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({3, 1}, 0).ok());
  EXPECT_TRUE(data.AppendRow({2, 1}, 0).ok());
  return data;
}

TEST(GiniTest, PureSplitsScoreZero) {
  EXPECT_DOUBLE_EQ(WeightedGini(3, 3, 3, 0), 0.0);
  EXPECT_DOUBLE_EQ(WeightedGini(5, 0, 5, 5), 0.0);
}

TEST(GiniTest, WorstCaseIsHalf) {
  EXPECT_DOUBLE_EQ(WeightedGini(4, 2, 4, 2), 0.5);
}

TEST(GiniTest, EmptySidesAreHandled) {
  EXPECT_DOUBLE_EQ(WeightedGini(0, 0, 4, 2), 0.5);
  EXPECT_DOUBLE_EQ(WeightedGini(0, 0, 0, 0), 0.0);
}

TEST(GiniTest, BetterSplitScoresLower) {
  // (3,3 | 3,0) is pure; (3,2 | 3,1) is not.
  EXPECT_LT(WeightedGini(3, 3, 3, 0), WeightedGini(3, 2, 3, 1));
}

TEST(CandidateAttrsTest, DeterministicAndDistinct) {
  ForestConfig config;
  config.num_candidate_attrs = 3;
  config.random_depth = 0;
  auto a = ChooseCandidateAttrs(12345, 10, 2, config);
  auto b = ChooseCandidateAttrs(12345, 10, 2, config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  std::set<int> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
}

TEST(CandidateAttrsTest, DifferentKeysDiffer) {
  ForestConfig config;
  config.num_candidate_attrs = 3;
  bool any_different = false;
  auto base = ChooseCandidateAttrs(1, 20, 5, config);
  for (uint64_t key = 2; key < 12; ++key) {
    if (ChooseCandidateAttrs(key, 20, 5, config) != base) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(CandidateAttrsTest, RandomDepthIncludesRandomAttr) {
  ForestConfig config;
  config.num_candidate_attrs = 2;
  config.random_depth = 3;
  // At depth < random_depth, the hash-chosen random attribute must be
  // tracked. Size is 2 or 3 depending on overlap; never less than 2.
  auto attrs = ChooseCandidateAttrs(777, 15, 1, config);
  EXPECT_GE(attrs.size(), 2u);
  EXPECT_LE(attrs.size(), 3u);
}

TEST(CandidateAttrsTest, DefaultIsSqrtP) {
  ForestConfig config;
  config.num_candidate_attrs = 0;
  config.random_depth = 0;
  EXPECT_EQ(ChooseCandidateAttrs(9, 16, 3, config).size(), 4u);
  EXPECT_EQ(ChooseCandidateAttrs(9, 10, 3, config).size(), 4u);  // ceil
}

TEST(CandidateThresholdsTest, ExactModeEnumeratesAll) {
  ForestConfig config;
  config.threshold_mode = ThresholdMode::kExact;
  auto t = CandidateThresholds(5, 0, 6, config);
  EXPECT_EQ(t, (std::vector<int32_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(CandidateThresholds(5, 0, 1, config).empty());
}

TEST(CandidateThresholdsTest, SampledModeIsKeyedSubset) {
  ForestConfig config;
  config.threshold_mode = ThresholdMode::kSampled;
  config.num_sampled_thresholds = 3;
  auto a = CandidateThresholds(42, 1, 20, config);
  auto b = CandidateThresholds(42, 1, 20, config);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  for (int32_t t : a) EXPECT_LT(t, 19);
  // Falls back to exhaustive when k' >= cardinality-1.
  auto all = CandidateThresholds(42, 1, 3, config);
  EXPECT_EQ(all.size(), 2u);
}

TEST(NodeStatsTest, ComputeAndRemoveAgree) {
  Dataset data = TinyDataset();
  auto store = TrainingStore::Make(data);
  std::vector<RowId> all = {0, 1, 2, 3, 4, 5};
  NodeStats full;
  full.ComputeFromRows(*store, all, {0, 1});
  EXPECT_EQ(full.count, 6);
  EXPECT_EQ(full.pos, 3);
  EXPECT_EQ(full.HistCount(0, 0), 2);  // x == 0 twice
  EXPECT_EQ(full.HistPos(0, 0), 2);

  // Remove rows 0 and 3; must equal recompute on {1,2,4,5}.
  NodeStats removed = full;
  removed.RemoveRow(*store, 0);
  removed.RemoveRow(*store, 3);
  NodeStats expect;
  expect.ComputeFromRows(*store, {1, 2, 4, 5}, {0, 1});
  EXPECT_TRUE(removed.Equals(expect));
}

TEST(NodeStatsTest, CandIndex) {
  NodeStats stats;
  stats.cand_attrs = {1, 4, 9};
  EXPECT_EQ(stats.CandIndex(4), 1);
  EXPECT_EQ(stats.CandIndex(2), -1);
  EXPECT_EQ(stats.CandIndex(9), 2);
}

TEST(DecideSplitTest, FindsThePerfectSplit) {
  Dataset data = TinyDataset();
  auto store = TrainingStore::Make(data);
  ForestConfig config;
  config.random_depth = 0;  // greedy everywhere
  config.num_candidate_attrs = 2;  // both attrs
  NodeStats stats;
  stats.ComputeFromRows(*store, {0, 1, 2, 3, 4, 5},
                        ChooseCandidateAttrs(100, 2, 1, config));
  SplitDecision d = DecideSplit(stats, *store, 1, 100, config);
  ASSERT_FALSE(d.is_leaf);
  EXPECT_EQ(d.attr, 0);
  EXPECT_EQ(d.threshold, 1);  // x <= 1 separates perfectly
  EXPECT_FALSE(d.is_random);
}

TEST(DecideSplitTest, LeafConditions) {
  Dataset data = TinyDataset();
  auto store = TrainingStore::Make(data);
  ForestConfig config;
  config.random_depth = 0;
  config.num_candidate_attrs = 2;
  NodeStats stats;
  stats.ComputeFromRows(*store, {0, 1, 2}, {0, 1});  // pure positive
  EXPECT_TRUE(DecideSplit(stats, *store, 1, 100, config).is_leaf);

  NodeStats all;
  all.ComputeFromRows(*store, {0, 1, 2, 3, 4, 5}, {0, 1});
  // Depth at max -> leaf.
  EXPECT_TRUE(DecideSplit(all, *store, config.max_depth, 100, config).is_leaf);
  // min_samples_split.
  ForestConfig strict = config;
  strict.min_samples_split = 10;
  EXPECT_TRUE(DecideSplit(all, *store, 1, 100, strict).is_leaf);
}

TEST(DecideSplitTest, RandomNodeIsKeyedAndMarked) {
  Dataset data = TinyDataset();
  auto store = TrainingStore::Make(data);
  ForestConfig config;
  config.random_depth = 2;
  config.num_candidate_attrs = 2;
  NodeStats stats;
  stats.ComputeFromRows(*store, {0, 1, 2, 3, 4, 5},
                        ChooseCandidateAttrs(55, 2, 0, config));
  SplitDecision a = DecideSplit(stats, *store, 0, 55, config);
  SplitDecision b = DecideSplit(stats, *store, 0, 55, config);
  EXPECT_TRUE(a.SameSplit(b));
  if (!a.is_leaf && a.is_random) {
    EXPECT_GE(a.attr, 0);
    EXPECT_LT(a.attr, 2);
  }
}

TEST(DecideSplitTest, NoValidCandidateBecomesLeaf) {
  // Constant attributes -> no split can separate anything.
  Schema schema;
  ASSERT_TRUE(schema.AddCategorical("k", {"only"}).ok());
  Dataset data(schema);
  ASSERT_TRUE(data.AppendRow({0}, 0).ok());
  ASSERT_TRUE(data.AppendRow({0}, 1).ok());
  ASSERT_TRUE(data.AppendRow({0}, 1).ok());
  auto store = TrainingStore::Make(data);
  ForestConfig config;
  config.random_depth = 0;
  config.num_candidate_attrs = 1;
  NodeStats stats;
  stats.ComputeFromRows(*store, {0, 1, 2}, {0});
  EXPECT_TRUE(DecideSplit(stats, *store, 1, 3, config).is_leaf);
}

TEST(PathKeyTest, ChildrenAndRootsDiffer) {
  const uint64_t root = RootPathKey(1, 0);
  EXPECT_NE(root, RootPathKey(1, 1));
  EXPECT_NE(root, RootPathKey(2, 0));
  EXPECT_NE(ChildPathKey(root, 0), ChildPathKey(root, 1));
  EXPECT_NE(ChildPathKey(root, 0), root);
}

}  // namespace
}  // namespace fume
