// Tests for src/subset: bitmaps, literals, predicates and the posting index.

#include <gtest/gtest.h>

#include "subset/bitmap.h"
#include "subset/literal.h"
#include "subset/posting_index.h"
#include "subset/predicate.h"

namespace fume {
namespace {

Schema TestSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("age", {"young", "mid", "old"}).ok());
  EXPECT_TRUE(schema.AddCategorical("sex", {"F", "M"}).ok());
  EXPECT_TRUE(
      schema.AddCategorical("job", {"none", "low", "high", "exec"}).ok());
  return schema;
}

Dataset TestData() {
  Dataset data(TestSchema());
  EXPECT_TRUE(data.AppendRow({0, 0, 1}, 1).ok());
  EXPECT_TRUE(data.AppendRow({1, 1, 2}, 0).ok());
  EXPECT_TRUE(data.AppendRow({2, 0, 3}, 1).ok());
  EXPECT_TRUE(data.AppendRow({0, 1, 0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({1, 0, 1}, 1).ok());
  EXPECT_TRUE(data.AppendRow({2, 1, 2}, 0).ok());
  return data;
}

// --------------------------------------------------------------- Bitmap

TEST(BitmapTest, SetGetCount) {
  Bitmap b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Get(64));
  EXPECT_FALSE(b.Get(63));
  EXPECT_EQ(b.Count(), 3);
  EXPECT_EQ(b.ToRows(), (std::vector<int32_t>{0, 64, 129}));
}

TEST(BitmapTest, IntersectAndUnion) {
  Bitmap a(100), b(100);
  a.Set(1);
  a.Set(50);
  a.Set(99);
  b.Set(50);
  b.Set(99);
  b.Set(3);
  Bitmap inter = Bitmap::Intersect(a, b);
  EXPECT_EQ(inter.ToRows(), (std::vector<int32_t>{50, 99}));
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 4);
}

TEST(BitmapTest, CountingOpsMatchMaterializedEquivalents) {
  Bitmap a(200), b(200);
  for (int i = 0; i < 200; i += 3) a.Set(i);
  for (int i = 0; i < 200; i += 5) b.Set(i);
  EXPECT_EQ(Bitmap::IntersectCount(a, b), Bitmap::Intersect(a, b).Count());
  EXPECT_EQ(Bitmap::AndNotCount(a, b),
            a.Count() - Bitmap::Intersect(a, b).Count());
  Bitmap fused;
  const int64_t c = fused.AssignIntersect(a, b);
  EXPECT_EQ(c, fused.Count());
  EXPECT_EQ(fused.ToRows(), Bitmap::Intersect(a, b).ToRows());
  // AssignIntersect must fully overwrite previous contents.
  Bitmap reused(200);
  reused.Set(1);
  EXPECT_EQ(reused.AssignIntersect(a, b), c);
  EXPECT_EQ(reused.ToRows(), fused.ToRows());
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap b(0);
  EXPECT_EQ(b.Count(), 0);
  EXPECT_TRUE(b.ToRows().empty());
}

// --------------------------------------------------------------- Literal

TEST(LiteralTest, AllOperatorsMatch) {
  EXPECT_TRUE((Literal{0, LiteralOp::kEq, 2}).Matches(2));
  EXPECT_FALSE((Literal{0, LiteralOp::kEq, 2}).Matches(1));
  EXPECT_TRUE((Literal{0, LiteralOp::kNe, 2}).Matches(1));
  EXPECT_TRUE((Literal{0, LiteralOp::kLt, 2}).Matches(1));
  EXPECT_FALSE((Literal{0, LiteralOp::kLt, 2}).Matches(2));
  EXPECT_TRUE((Literal{0, LiteralOp::kLe, 2}).Matches(2));
  EXPECT_TRUE((Literal{0, LiteralOp::kGe, 2}).Matches(2));
  EXPECT_FALSE((Literal{0, LiteralOp::kGt, 2}).Matches(2));
}

TEST(LiteralTest, AllowedMask) {
  EXPECT_EQ((Literal{0, LiteralOp::kEq, 1}).AllowedMask(3), 0b010u);
  EXPECT_EQ((Literal{0, LiteralOp::kNe, 1}).AllowedMask(3), 0b101u);
  EXPECT_EQ((Literal{0, LiteralOp::kLe, 1}).AllowedMask(4), 0b0011u);
  EXPECT_EQ((Literal{0, LiteralOp::kGt, 1}).AllowedMask(4), 0b1100u);
}

TEST(LiteralTest, ToStringUsesNames) {
  Schema schema = TestSchema();
  EXPECT_EQ((Literal{1, LiteralOp::kEq, 0}).ToString(schema), "sex = F");
  EXPECT_EQ((Literal{0, LiteralOp::kGe, 1}).ToString(schema), "age >= mid");
}

TEST(LiteralTest, CanonicalOrder) {
  Literal a{0, LiteralOp::kEq, 1};
  Literal b{0, LiteralOp::kEq, 2};
  Literal c{1, LiteralOp::kEq, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_TRUE(a == a);
}

// --------------------------------------------------------------- Predicate

TEST(PredicateTest, SortsAndDeduplicates) {
  Literal l1{1, LiteralOp::kEq, 0};
  Literal l2{0, LiteralOp::kEq, 2};
  Predicate p({l1, l2, l1});
  EXPECT_EQ(p.num_literals(), 2);
  EXPECT_EQ(p.literals()[0].attr, 0);
}

TEST(PredicateTest, MatchAndSupport) {
  Dataset data = TestData();
  Predicate p = Predicate::Of(Literal{1, LiteralOp::kEq, 0});  // sex = F
  EXPECT_EQ(p.MatchingRows(data), (std::vector<int32_t>{0, 2, 4}));
  EXPECT_DOUBLE_EQ(p.Support(data), 0.5);

  Predicate both = p.With(Literal{0, LiteralOp::kEq, 2});  // AND age = old
  EXPECT_EQ(both.MatchingRows(data), (std::vector<int32_t>{2}));
  Bitmap m = both.Match(data);
  EXPECT_EQ(m.Count(), 1);
  EXPECT_TRUE(m.Get(2));
}

TEST(PredicateTest, EmptyPredicateMatchesAll) {
  Dataset data = TestData();
  Predicate p;
  EXPECT_DOUBLE_EQ(p.Support(data), 1.0);
  EXPECT_EQ(p.ToString(data.schema()), "(true)");
}

TEST(PredicateTest, SatisfiabilityRule1) {
  Schema schema = TestSchema();
  // age = young AND age = old: contradiction.
  Predicate contra({Literal{0, LiteralOp::kEq, 0}, Literal{0, LiteralOp::kEq, 2}});
  EXPECT_FALSE(contra.IsSatisfiable(schema));
  // age >= mid AND age <= mid: satisfiable (exactly mid).
  Predicate tight({Literal{0, LiteralOp::kGe, 1}, Literal{0, LiteralOp::kLe, 1}});
  EXPECT_TRUE(tight.IsSatisfiable(schema));
  // job > high AND job < low: empty range.
  Predicate empty({Literal{2, LiteralOp::kGt, 2}, Literal{2, LiteralOp::kLt, 1}});
  EXPECT_FALSE(empty.IsSatisfiable(schema));
  // Literals on different attributes never contradict.
  Predicate mixed({Literal{0, LiteralOp::kEq, 0}, Literal{1, LiteralOp::kEq, 1}});
  EXPECT_TRUE(mixed.IsSatisfiable(schema));
}

TEST(PredicateTest, SubsetRelation) {
  Literal a{0, LiteralOp::kEq, 0};
  Literal b{1, LiteralOp::kEq, 1};
  Predicate small({a});
  Predicate big({a, b});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
}

TEST(PredicateTest, ToStringFormat) {
  Schema schema = TestSchema();
  Predicate p({Literal{1, LiteralOp::kEq, 1}, Literal{0, LiteralOp::kEq, 0}});
  EXPECT_EQ(p.ToString(schema), "(age = young) AND (sex = M)");
}

// --------------------------------------------------------------- PostingIndex

TEST(PostingIndexTest, EqualityBitmapsMatchScan) {
  Dataset data = TestData();
  PostingIndex index = PostingIndex::Build(data);
  for (int attr = 0; attr < data.num_attributes(); ++attr) {
    const int32_t card = data.schema().attribute(attr).cardinality();
    for (int32_t v = 0; v < card; ++v) {
      Predicate p = Predicate::Of(Literal{attr, LiteralOp::kEq, v});
      EXPECT_EQ(index.EqualityBitmap(attr, v).ToRows(), p.MatchingRows(data));
    }
  }
}

TEST(PostingIndexTest, ArbitraryLiteralsAndPredicates) {
  Dataset data = TestData();
  PostingIndex index = PostingIndex::Build(data);
  Literal ge{0, LiteralOp::kGe, 1};  // age >= mid
  EXPECT_EQ(index.Match(ge).ToRows(),
            Predicate::Of(ge).MatchingRows(data));
  Predicate conj({ge, Literal{1, LiteralOp::kEq, 1}});
  EXPECT_EQ(index.Match(conj).ToRows(), conj.MatchingRows(data));
  EXPECT_DOUBLE_EQ(index.Support(conj), conj.Support(data));
}

TEST(PostingIndexTest, EmptyPredicateMatchesEverything) {
  Dataset data = TestData();
  PostingIndex index = PostingIndex::Build(data);
  EXPECT_EQ(index.Match(Predicate()).Count(), data.num_rows());
}

TEST(PostingIndexTest, LiteralBitmapIsCachedAndStable) {
  Dataset data = TestData();
  PostingIndex index = PostingIndex::Build(data);
  const Literal ge{0, LiteralOp::kGe, 1};
  const Bitmap& first = index.LiteralBitmap(ge);
  EXPECT_EQ(first.ToRows(), Predicate::Of(ge).MatchingRows(data));
  // Populating other cache entries must not invalidate the reference.
  for (int32_t v = 0; v < 3; ++v) {
    index.LiteralBitmap(Literal{0, LiteralOp::kNe, v});
    index.LiteralBitmap(Literal{2, LiteralOp::kLe, v});
  }
  const Bitmap& again = index.LiteralBitmap(ge);
  EXPECT_EQ(&first, &again);  // same cache node, not a recompute
  EXPECT_EQ(again.ToRows(), Predicate::Of(ge).MatchingRows(data));
  // kEq literals come straight from the posting lists.
  const Literal eq{1, LiteralOp::kEq, 0};
  EXPECT_EQ(&index.LiteralBitmap(eq), &index.EqualityBitmap(1, 0));
}

TEST(PostingIndexTest, SupportIsAllocationFreeCountAtEveryWidth) {
  Dataset data = TestData();
  PostingIndex index = PostingIndex::Build(data);
  const Literal l0{0, LiteralOp::kGe, 1};
  const Literal l1{1, LiteralOp::kEq, 0};
  const Literal l2{2, LiteralOp::kLe, 2};
  const std::vector<Predicate> widths = {
      Predicate(), Predicate::Of(l0), Predicate({l0, l1}),
      Predicate({l0, l1, l2})};
  for (const Predicate& p : widths) {
    EXPECT_DOUBLE_EQ(index.Support(p), p.Support(data))
        << p.ToString(data.schema());
  }
}

}  // namespace
}  // namespace fume
