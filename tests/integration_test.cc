// End-to-end integration: the full paper pipeline on the synthetic German
// Credit dataset — generate, split, train a DaRE forest, detect the
// violation, run FUME, sanity-check the explanation against independently
// retrained models, and compare with the baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline.h"
#include "data/csv.h"
#include "core/fume.h"
#include "core/report.h"
#include "data/split.h"
#include "fairness/importance.h"
#include "synth/registry.h"

namespace fume {
namespace {

struct Pipeline {
  Dataset train;
  Dataset test;
  GroupSpec group;
  ForestConfig forest_config;
  DareForest model;
};

Pipeline BuildGermanPipeline() {
  synth::SynthOptions opts;
  opts.seed = 4;
  auto bundle = synth::MakeGermanCredit(opts);
  EXPECT_TRUE(bundle.ok());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  EXPECT_TRUE(split.ok());

  Pipeline p{std::move(split->train), std::move(split->test), bundle->group,
             ForestConfig{}, DareForest()};
  p.forest_config.num_trees = 10;
  p.forest_config.max_depth = 7;
  p.forest_config.random_depth = 2;
  p.forest_config.seed = 31;
  auto model = DareForest::Train(p.train, p.forest_config);
  EXPECT_TRUE(model.ok());
  p.model = std::move(*model);
  return p;
}

TEST(IntegrationTest, GermanEndToEnd) {
  Pipeline p = BuildGermanPipeline();

  // The model must learn something and be biased against the protected
  // (Young) group.
  EXPECT_GT(p.model.Accuracy(p.test), 0.6);
  const double original = ComputeFairness(
      p.model, p.test, p.group, FairnessMetric::kStatisticalParity);
  ASSERT_LT(original, -0.02);

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.03;
  config.support_max = 0.15;
  config.max_literals = 2;
  config.group = p.group;
  auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->top_k.size(), 3u);

  // The top subset removes a substantial share of the bias.
  EXPECT_GT(result->top_k[0].attribution, 0.4);

  // Cross-check the #1 subset against an actual scratch retrain.
  const AttributableSubset& best = result->top_k[0];
  std::vector<int32_t> matched = best.predicate.MatchingRows(p.train);
  std::vector<int64_t> rows64(matched.begin(), matched.end());
  auto retrained =
      DareForest::Train(p.train.DropRows(rows64), p.forest_config);
  ASSERT_TRUE(retrained.ok());
  const double actual = ComputeFairness(
      *retrained, p.test, p.group, FairnessMetric::kStatisticalParity);
  EXPECT_DOUBLE_EQ(actual, best.new_fairness);  // exact unlearning

  // Deleting the top subset must not crater accuracy (paper: <= ~4% drop in
  // the 5-15% support range).
  EXPECT_GT(best.new_accuracy, p.model.Accuracy(p.test) - 0.08);
}

TEST(IntegrationTest, FeatureImportanceShiftsAfterSubsetRemoval) {
  Pipeline p = BuildGermanPipeline();
  FumeConfig config;
  config.group = p.group;
  config.support_min = 0.03;
  config.support_max = 0.15;
  auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->top_k.empty());

  ImportanceOptions iopts;
  iopts.num_repeats = 3;
  auto before = PermutationImportance(p.model, p.test, iopts);

  DareForest what_if = p.model.Clone();
  std::vector<int32_t> matched =
      result->top_k[0].predicate.MatchingRows(p.train);
  ASSERT_TRUE(
      what_if.DeleteRows(std::vector<RowId>(matched.begin(), matched.end()))
          .ok());
  auto after = PermutationImportance(what_if, p.test, iopts);
  ASSERT_EQ(before.size(), after.size());
  // The ranking is a valid permutation of all attributes either way.
  EXPECT_EQ(before.size(), static_cast<size_t>(p.train.num_attributes()));
}

TEST(IntegrationTest, BaselineComparisonRuns) {
  Pipeline p = BuildGermanPipeline();
  auto baseline =
      RunDropUnprivUnfavor(p.train, p.test, p.forest_config, p.group,
                           FairnessMetric::kStatisticalParity);
  ASSERT_TRUE(baseline.ok());
  // The baseline removes far more data than any FUME subset (paper §6.3:
  // 14.75% on German vs <= 15%-support subsets of 2 literals).
  EXPECT_GT(baseline->removed_fraction, 0.10);
  EXPECT_GT(baseline->parity_reduction, 0.0);
}

TEST(IntegrationTest, CsvRoundTripFeedsThePipeline) {
  // Users bring CSVs; verify the whole path CSV -> dataset -> FUME works.
  Pipeline p = BuildGermanPipeline();
  std::ostringstream csv;
  ASSERT_TRUE(WriteCsv(p.train, csv).ok());
  std::istringstream in(csv.str());
  CsvReadOptions read_opts;
  read_opts.label_column = p.train.schema().label_name();
  auto loaded = ReadCsv(in, read_opts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), p.train.num_rows());

  // Category dictionaries are rebuilt in first-appearance order, so codes
  // may differ; labels and cell strings must survive.
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(loaded->Label(r), p.train.Label(r));
    EXPECT_EQ(loaded->CellToString(r, 0), p.train.CellToString(r, 0));
  }
}

TEST(IntegrationTest, EqualizedOddsPipeline) {
  Pipeline p = BuildGermanPipeline();
  FumeConfig config;
  config.group = p.group;
  config.metric = FairnessMetric::kEqualizedOdds;
  config.support_min = 0.03;
  config.support_max = 0.20;
  auto result = ExplainFairnessViolation(p.model, p.train, p.test, config);
  if (result.ok()) {
    for (const auto& s : result->top_k) {
      EXPECT_GT(s.attribution, 0.0);
      EXPECT_LT(std::fabs(s.new_fairness), std::fabs(result->original_fairness));
    }
  } else {
    EXPECT_TRUE(result.status().IsInvalid());
  }
}

}  // namespace
}  // namespace fume
