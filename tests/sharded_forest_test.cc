// Exactness suite for the SISA sharded ensemble (forest/sharded_forest.h).
//
// Pins the determinism contract from docs/sharding.md: placement is a pure
// function of the global id, a 1-shard ensemble is byte-identical to the
// monolithic forest, a sharded delete equals running each shard's rows
// through that shard as a standalone monolithic forest, every observable
// result is identical across thread counts, and the per-shard incremental
// serialization path (SaveWithCache) emits the same bytes as a full Save.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_removal.h"
#include "fairness/metrics.h"
#include "forest/serialize.h"
#include "forest/sharded_forest.h"
#include "synth/datasets.h"
#include "util/thread_pool.h"

namespace fume {
namespace {

synth::DatasetBundle Bundle(int64_t rows, uint64_t seed) {
  auto bundle = synth::MakeParametric(rows, 8, 4, seed);
  EXPECT_TRUE(bundle.ok());
  return std::move(*bundle);
}

ForestConfig Config(uint64_t seed) {
  ForestConfig config;
  config.num_trees = 6;
  config.max_depth = 6;
  config.random_depth = 2;
  config.seed = seed;
  return config;
}

ShardConfig Shards(int n) {
  ShardConfig shard;
  shard.num_shards = n;
  return shard;
}

std::string Bytes(const ShardedForest& forest) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(forest.Save(out).ok());
  return out.str();
}

std::string Bytes(const DareForest& forest) {
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(SaveForest(forest, out).ok());
  return out.str();
}

// The rows each shard owns, as indices into the training dataset (global
// ids == dense train indices for a one-shot Train).
std::vector<std::vector<int64_t>> MembersPerShard(const ShardedForest& f) {
  std::vector<std::vector<int64_t>> members(
      static_cast<size_t>(f.num_shards()));
  for (RowId g = 0; g < f.num_global_ids(); ++g) {
    members[static_cast<size_t>(f.shard_of(g))].push_back(g);
  }
  return members;
}

TEST(ShardedForestTest, ParsePlacementRoundTrips) {
  auto hash = ParsePlacement("hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(*hash, ShardConfig::Placement::kHash);
  auto slice = ParsePlacement("slice");
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(*slice, ShardConfig::Placement::kSlice);
  EXPECT_FALSE(ParsePlacement("round-robin").ok());
  EXPECT_STREQ(PlacementName(ShardConfig::Placement::kHash), "hash");
  EXPECT_STREQ(PlacementName(ShardConfig::Placement::kSlice), "slice");
}

TEST(ShardedForestTest, RejectsBadConfigs) {
  auto bundle = Bundle(200, 1);
  EXPECT_FALSE(
      ShardedForest::Train(bundle.data, Config(9), Shards(0)).ok());
  EXPECT_FALSE(
      ShardedForest::Train(bundle.data, Config(9), Shards(65)).ok());
  ShardConfig slice = Shards(4);
  slice.placement = ShardConfig::Placement::kSlice;
  slice.slice_attr = -1;  // slice mode needs a slice attribute
  EXPECT_FALSE(ShardedForest::Train(bundle.data, Config(9), slice).ok());
  slice.slice_attr = 0;
  slice.hot_shards = 4;  // must leave at least one cold shard
  EXPECT_FALSE(ShardedForest::Train(bundle.data, Config(9), slice).ok());
}

TEST(ShardedForestTest, OneShardIsByteIdenticalToMonolithic) {
  auto bundle = Bundle(400, 2);
  const ForestConfig config = Config(11);
  auto mono = DareForest::Train(bundle.data, config);
  ASSERT_TRUE(mono.ok());
  auto sharded = ShardedForest::Train(bundle.data, config, Shards(1));
  ASSERT_TRUE(sharded.ok());

  EXPECT_TRUE(sharded->shard(0).StructurallyEquals(*mono));
  EXPECT_EQ(Bytes(sharded->shard(0)), Bytes(*mono));

  // Soft vote over one shard divides by 1.0: bit-identical probabilities.
  const auto mono_probs = mono->PredictProbAll(bundle.data);
  const auto shard_probs = sharded->PredictProbAll(bundle.data);
  ASSERT_EQ(mono_probs.size(), shard_probs.size());
  for (size_t r = 0; r < mono_probs.size(); ++r) {
    ASSERT_EQ(mono_probs[r], shard_probs[r]) << "row " << r;
  }
  EXPECT_EQ(mono->PredictAll(bundle.data), sharded->PredictAll(bundle.data));

  // And the equivalence survives unlearning.
  const std::vector<RowId> doomed = {3, 17, 90, 222, 391};
  ASSERT_TRUE(mono->DeleteRows(doomed).ok());
  ASSERT_TRUE(sharded->DeleteRows(doomed).ok());
  EXPECT_TRUE(sharded->shard(0).StructurallyEquals(*mono));
  EXPECT_EQ(Bytes(sharded->shard(0)), Bytes(*mono));
}

TEST(ShardedForestTest, HashPlacementIsAPureFunctionOfTheId) {
  auto bundle = Bundle(300, 3);
  auto forest = ShardedForest::Train(bundle.data, Config(5), Shards(4));
  ASSERT_TRUE(forest.ok());
  for (RowId g = 0; g < forest->num_global_ids(); ++g) {
    const int expect =
        static_cast<int>(ShardedForest::HashGlobalId(g) % 4);
    EXPECT_EQ(forest->shard_of(g), expect) << "global id " << g;
    EXPECT_EQ(forest->PlaceRow(g, /*slice_code=*/0), expect);
  }
  // Placement maps address the original cells by global id.
  for (RowId g = 0; g < forest->num_global_ids(); ++g) {
    EXPECT_EQ(forest->Label(g), bundle.data.Label(g));
    for (int a = 0; a < bundle.data.num_attributes(); ++a) {
      ASSERT_EQ(forest->Code(g, a), bundle.data.Code(g, a));
    }
  }
}

TEST(ShardedForestTest, SlicePlacementConcentratesTheHotCohort) {
  auto bundle = Bundle(400, 4);
  ShardConfig shard = Shards(4);
  shard.placement = ShardConfig::Placement::kSlice;
  shard.slice_attr = 0;
  shard.slice_value = bundle.data.Code(0, 0);  // a code that exists
  shard.hot_shards = 1;
  auto forest = ShardedForest::Train(bundle.data, Config(5), shard);
  ASSERT_TRUE(forest.ok());
  for (RowId g = 0; g < forest->num_global_ids(); ++g) {
    if (bundle.data.Code(g, 0) == shard.slice_value) {
      EXPECT_EQ(forest->shard_of(g), 3) << "hot row " << g;
    } else {
      EXPECT_LT(forest->shard_of(g), 3) << "cold row " << g;
    }
  }
}

TEST(ShardedForestTest, ShardedDeleteEqualsPerShardMonolithicDelete) {
  auto bundle = Bundle(500, 6);
  const ForestConfig config = Config(21);
  auto forest = ShardedForest::Train(bundle.data, config, Shards(4));
  ASSERT_TRUE(forest.ok());

  // Reference: each shard as a standalone monolithic forest over exactly
  // its member rows, trained with the derived per-shard seed.
  const auto members = MembersPerShard(*forest);
  std::vector<DareForest> reference;
  for (int s = 0; s < 4; ++s) {
    ForestConfig cfg = config;
    cfg.seed = config.seed +
               ShardedForest::kShardSeedStride * static_cast<uint64_t>(s);
    const Dataset select = bundle.data.Select(members[static_cast<size_t>(s)]);
    auto ref = DareForest::Train(select, cfg);
    ASSERT_TRUE(ref.ok());
    reference.push_back(std::move(*ref));
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(Bytes(forest->shard(s)), Bytes(reference[static_cast<size_t>(s)]))
        << "shard " << s << " after train";
  }

  // Delete a global batch; route the same rows by hand into the refs.
  std::vector<RowId> doomed;
  for (RowId g = 0; g < forest->num_global_ids(); g += 7) doomed.push_back(g);
  std::vector<std::vector<RowId>> local(4);
  for (const RowId g : doomed) {
    local[static_cast<size_t>(forest->shard_of(g))].push_back(
        forest->local_of(g));
  }
  std::vector<std::vector<DeletionStats>> report;
  ASSERT_TRUE(forest->DeleteRows(doomed, &report).ok());
  ASSERT_EQ(report.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(
        reference[static_cast<size_t>(s)].DeleteRows(local[static_cast<size_t>(s)]).ok());
    EXPECT_TRUE(forest->shard(s).StructurallyEquals(
        reference[static_cast<size_t>(s)]))
        << "shard " << s;
    EXPECT_EQ(Bytes(forest->shard(s)), Bytes(reference[static_cast<size_t>(s)]))
        << "shard " << s << " after delete";
    // The per-call report covers exactly the touched shards.
    EXPECT_EQ(report[static_cast<size_t>(s)].empty(),
              local[static_cast<size_t>(s)].empty());
  }
  EXPECT_TRUE(forest->ValidateStats());
}

TEST(ShardedForestTest, ResultsAreIdenticalAcrossThreadCounts) {
  auto bundle = Bundle(400, 7);
  const ForestConfig config = Config(33);
  std::vector<RowId> doomed;
  for (RowId g = 1; g < 400; g += 5) doomed.push_back(g);

  std::string serial_bytes;
  std::vector<double> serial_probs;
  std::vector<std::vector<DeletionStats>> serial_report;
  for (const int threads : {0, 1, 4, 8}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    auto forest =
        ShardedForest::Train(bundle.data, config, Shards(4), pool.get());
    ASSERT_TRUE(forest.ok());
    std::vector<std::vector<DeletionStats>> report;
    std::vector<DeletionScratch> scratch;
    ASSERT_TRUE(forest->DeleteRows(doomed, &report, pool.get(), &scratch).ok());
    const std::string bytes = Bytes(*forest);
    const auto probs = forest->PredictProbAll(bundle.data);
    if (threads == 0) {
      serial_bytes = bytes;
      serial_probs = probs;
      serial_report = report;
    } else {
      EXPECT_EQ(bytes, serial_bytes) << threads << " threads";
      EXPECT_EQ(probs, serial_probs) << threads << " threads";
      // The merged per-shard reports are schedule-independent too.
      ASSERT_EQ(report.size(), serial_report.size());
      for (size_t s = 0; s < report.size(); ++s) {
        EXPECT_EQ(report[s], serial_report[s]) << "shard " << s;
      }
    }
  }
}

TEST(ShardedForestTest, AddDataRoutesAndAssignsSequentialIds) {
  auto bundle = Bundle(300, 8);
  auto extra = synth::MakeParametric(40, 8, 4, 99);
  ASSERT_TRUE(extra.ok());
  auto forest = ShardedForest::Train(bundle.data, Config(13), Shards(3));
  ASSERT_TRUE(forest.ok());
  const int64_t before = forest->num_global_ids();
  auto ids = forest->AddData(extra->data);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 40u);
  for (size_t i = 0; i < ids->size(); ++i) {
    const RowId g = (*ids)[i];
    EXPECT_EQ(g, before + static_cast<int64_t>(i));  // arrival order
    EXPECT_EQ(forest->shard_of(g),
              forest->PlaceRow(g, extra->data.Code(static_cast<int64_t>(i),
                                                   0)));
    EXPECT_EQ(forest->Label(g), extra->data.Label(static_cast<int64_t>(i)));
  }
  EXPECT_EQ(forest->num_training_rows(), 340);
  EXPECT_TRUE(forest->ValidateStats());
}

TEST(ShardedForestTest, CloneSharesPlacementUntilAddData) {
  auto bundle = Bundle(300, 9);
  auto forest = ShardedForest::Train(bundle.data, Config(13), Shards(3));
  ASSERT_TRUE(forest.ok());
  ShardedForest clone = forest->Clone();
  EXPECT_TRUE(clone.StructurallyEquals(*forest));
  // Mutating the clone never disturbs the base (CoW maps + CoW nodes).
  auto extra = synth::MakeParametric(10, 8, 4, 55);
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(clone.AddData(extra->data).ok());
  ASSERT_TRUE(clone.DeleteRows({1, 2, 3}).ok());
  EXPECT_EQ(forest->num_global_ids(), 300);
  EXPECT_EQ(clone.num_global_ids(), 310);
  EXPECT_FALSE(clone.StructurallyEquals(*forest));
}

TEST(ShardedForestTest, SaveLoadRoundTrip) {
  auto bundle = Bundle(350, 10);
  auto forest = ShardedForest::Train(bundle.data, Config(17), Shards(4));
  ASSERT_TRUE(forest.ok());
  ASSERT_TRUE(forest->DeleteRows({2, 40, 41, 200, 349}).ok());
  const std::string bytes = Bytes(*forest);
  std::istringstream in(bytes, std::ios::binary);
  auto loaded = ShardedForest::Load(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->StructurallyEquals(*forest));
  EXPECT_EQ(loaded->num_global_ids(), forest->num_global_ids());
  for (RowId g = 0; g < forest->num_global_ids(); ++g) {
    ASSERT_EQ(loaded->shard_of(g), forest->shard_of(g));
    ASSERT_EQ(loaded->local_of(g), forest->local_of(g));
  }
  EXPECT_EQ(Bytes(*loaded), bytes);  // save(load(x)) == x

  // Continued unlearning stays in lockstep.
  ASSERT_TRUE(forest->DeleteRows({7, 8, 9}).ok());
  ASSERT_TRUE(loaded->DeleteRows({7, 8, 9}).ok());
  EXPECT_EQ(Bytes(*loaded), Bytes(*forest));

  // Corrupt input fails cleanly.
  for (size_t cut : {size_t{4}, size_t{60}, bytes.size() / 2}) {
    std::istringstream trunc(bytes.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(ShardedForest::Load(trunc).ok()) << "cut at " << cut;
  }
}

TEST(ShardedForestTest, SaveWithCacheReusesCleanShardsVerbatim) {
  auto bundle = Bundle(400, 11);
  auto forest = ShardedForest::Train(bundle.data, Config(19), Shards(4));
  ASSERT_TRUE(forest.ok());
  const std::string full = Bytes(*forest);

  // Cold cache: everything serializes, bytes match Save().
  std::vector<std::string> blobs;
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(
      forest->SaveWithCache(first, &blobs, std::vector<bool>(4, true)).ok());
  EXPECT_EQ(first.str(), full);
  ASSERT_EQ(blobs.size(), 4u);

  // All-clean: every shard reuses its cached blob; bytes still match.
  std::ostringstream clean(std::ios::binary);
  ASSERT_TRUE(
      forest->SaveWithCache(clean, &blobs, std::vector<bool>(4, false)).ok());
  EXPECT_EQ(clean.str(), full);

  // Dirty exactly the shards a delete touched; output equals a full Save.
  std::vector<RowId> doomed;
  for (RowId g = 0; g < forest->num_global_ids(); ++g) {
    if (forest->shard_of(g) == 2 && doomed.size() < 12) doomed.push_back(g);
  }
  std::vector<std::vector<DeletionStats>> report;
  ASSERT_TRUE(forest->DeleteRows(doomed, &report).ok());
  std::vector<bool> dirty(4, false);
  for (size_t s = 0; s < report.size(); ++s) dirty[s] = !report[s].empty();
  EXPECT_EQ(dirty, (std::vector<bool>{false, false, true, false}));
  std::ostringstream incremental(std::ios::binary);
  ASSERT_TRUE(forest->SaveWithCache(incremental, &blobs, dirty).ok());
  EXPECT_EQ(incremental.str(), Bytes(*forest));
}

TEST(ShardedForestTest, VotesAreDeterministicAndMajorityMatchesManual) {
  auto bundle = Bundle(300, 12);
  ShardConfig majority = Shards(3);
  majority.vote = ShardConfig::Vote::kMajority;
  auto forest = ShardedForest::Train(bundle.data, Config(23), majority);
  ASSERT_TRUE(forest.ok());
  std::vector<double> probs;
  std::vector<int> preds;
  forest->Predict(bundle.data, &probs, &preds);
  // Recompute the vote from the per-shard means through the shared helper.
  std::vector<std::vector<double>> shard_probs;
  for (int s = 0; s < 3; ++s) {
    shard_probs.push_back(forest->shard(s).PredictProbAll(bundle.data));
  }
  std::vector<const std::vector<double>*> ptrs;
  for (const auto& p : shard_probs) ptrs.push_back(&p);
  std::vector<double> mean;
  std::vector<int> manual;
  VoteFromShardProbs(ptrs, ShardConfig::Vote::kMajority, &mean, &manual);
  EXPECT_EQ(probs, mean);
  EXPECT_EQ(preds, manual);
  for (int64_t r = 0; r < bundle.data.num_rows(); ++r) {
    int votes = 0;
    for (int s = 0; s < 3; ++s) {
      if (shard_probs[static_cast<size_t>(s)][static_cast<size_t>(r)] >= 0.5) {
        ++votes;
      }
    }
    const int expect = 2 * votes > 3 ? 1 : (2 * votes < 3 ? 0 : (mean[static_cast<size_t>(r)] >= 0.5 ? 1 : 0));
    ASSERT_EQ(preds[static_cast<size_t>(r)], expect) << "row " << r;
  }
}

TEST(ShardedForestTest, LazyFlushMatchesEagerBytes) {
  auto bundle = Bundle(400, 13);
  ForestConfig eager_cfg = Config(27);
  ForestConfig lazy_cfg = eager_cfg;
  lazy_cfg.lazy_unlearn = true;
  auto eager = ShardedForest::Train(bundle.data, eager_cfg, Shards(4));
  auto lazy = ShardedForest::Train(bundle.data, lazy_cfg, Shards(4));
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  std::vector<RowId> doomed;
  for (RowId g = 0; g < 200; g += 2) doomed.push_back(g);
  ASSERT_TRUE(eager->DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy->DeleteRows(doomed).ok());
  std::vector<std::vector<DeletionStats>> flush_report;
  lazy->FlushAll(&flush_report);
  EXPECT_FALSE(lazy->HasLazyTags());
  // Work counters legitimately differ (lazy does less); zero both before
  // the byte comparison, as in serialize_test's monolithic twin.
  eager->ResetDeletionStats();
  lazy->ResetDeletionStats();
  EXPECT_EQ(Bytes(*lazy), Bytes(*eager));
}

TEST(ShardedCachePredictionTest, CacheMatchesForestThroughUpdates) {
  auto bundle = Bundle(400, 14);
  std::vector<int64_t> head, tail;
  for (int64_t r = 0; r < 300; ++r) head.push_back(r);
  for (int64_t r = 300; r < 400; ++r) tail.push_back(r);
  const Dataset train = bundle.data.Select(head);
  const Dataset test = bundle.data.Select(tail);
  auto forest = ShardedForest::Train(train, Config(29), Shards(4));
  ASSERT_TRUE(forest.ok());

  ShardedPredictionCache cache;
  cache.Rebuild(*forest, test);
  EXPECT_EQ(cache.probs(), forest->PredictProbAll(test));
  EXPECT_EQ(cache.predictions(), forest->PredictAll(test));

  // Mutate two shards, refresh with per-shard tree-dirty flags.
  std::vector<RowId> doomed;
  for (RowId g = 0; g < forest->num_global_ids() && doomed.size() < 30; ++g) {
    if (forest->shard_of(g) <= 1) doomed.push_back(g);
  }
  std::vector<std::vector<DeletionStats>> report;
  ASSERT_TRUE(forest->DeleteRows(doomed, &report).ok());
  std::vector<std::vector<bool>> dirty(4);
  for (size_t s = 0; s < report.size(); ++s) {
    if (!report[s].empty()) {
      dirty[s].assign(report[s].size(), true);
    }
  }
  cache.Update(*forest, test, dirty);
  EXPECT_EQ(cache.probs(), forest->PredictProbAll(test));
  EXPECT_EQ(cache.predictions(), forest->PredictAll(test));

  // What-if against a clone: voted preds equal the clone's own PredictAll,
  // and only the touched shards are counted as changed.
  ShardedForest clone = forest->Clone();
  std::vector<RowId> what_if;
  for (RowId g = 0; g < forest->num_global_ids() && what_if.size() < 10; ++g) {
    if (forest->shard_of(g) == 3 && forest->Label(g) == 1) what_if.push_back(g);
  }
  ASSERT_FALSE(what_if.empty());
  ASSERT_TRUE(clone.DeleteRows(what_if).ok());
  ShardedPredictionCache::WhatIfScratch scratch;
  cache.ScoreWhatIf(*forest, clone, test, &scratch);
  EXPECT_EQ(scratch.preds, clone.PredictAll(test));
  EXPECT_EQ(scratch.shards_changed, 1);
}

TEST(ShardedRemovalMethodTest, MatchesManualCloneDeletePredict) {
  auto bundle = Bundle(500, 15);
  std::vector<int64_t> head, tail;
  for (int64_t r = 0; r < 350; ++r) head.push_back(r);
  for (int64_t r = 350; r < 500; ++r) tail.push_back(r);
  const Dataset train = bundle.data.Select(head);
  const Dataset test = bundle.data.Select(tail);
  auto forest = ShardedForest::Train(train, Config(37), Shards(4));
  ASSERT_TRUE(forest.ok());

  ShardedRemovalMethod removal(&*forest, &test, bundle.group,
                               FairnessMetric::kStatisticalParity);
  const std::vector<RowId> rows = {1, 5, 44, 120, 121, 300, 349};
  auto eval = removal.EvaluateWithout(rows);
  ASSERT_TRUE(eval.ok());

  ShardedForest clone = forest->Clone();
  ASSERT_TRUE(clone.DeleteRows(rows).ok());
  const ModelEval manual = {
      ComputeFairness(test, clone.PredictAll(test), bundle.group,
                      FairnessMetric::kStatisticalParity),
      clone.Accuracy(test)};
  EXPECT_EQ(eval->fairness, manual.fairness);
  EXPECT_EQ(eval->accuracy, manual.accuracy);

  // Deterministic pure function of the row set, including under the
  // parallel bracket with per-worker scratch slots.
  auto again = removal.EvaluateWithout(rows);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->fairness, eval->fairness);
  removal.BeginParallel(4);
  auto on3 = removal.EvaluateWithoutOn(3, rows);
  removal.EndParallel();
  ASSERT_TRUE(on3.ok());
  EXPECT_EQ(on3->fairness, eval->fairness);
  EXPECT_EQ(on3->accuracy, eval->accuracy);
}

TEST(ShardedRemovalMethodTest, OneShardMatchesMonolithicRemoval) {
  auto bundle = Bundle(400, 16);
  std::vector<int64_t> head, tail;
  for (int64_t r = 0; r < 280; ++r) head.push_back(r);
  for (int64_t r = 280; r < 400; ++r) tail.push_back(r);
  const Dataset train = bundle.data.Select(head);
  const Dataset test = bundle.data.Select(tail);
  const ForestConfig config = Config(41);
  auto mono = DareForest::Train(train, config);
  auto sharded = ShardedForest::Train(train, config, Shards(1));
  ASSERT_TRUE(mono.ok());
  ASSERT_TRUE(sharded.ok());

  UnlearnRemovalMethod mono_removal(&*mono, &test, bundle.group,
                                    FairnessMetric::kStatisticalParity);
  ShardedRemovalMethod shard_removal(&*sharded, &test, bundle.group,
                                     FairnessMetric::kStatisticalParity);
  for (const auto& rows : std::vector<std::vector<RowId>>{
           {0}, {5, 6, 7}, {10, 50, 90, 130, 170, 210, 250, 279}}) {
    auto a = mono_removal.EvaluateWithout(rows);
    auto b = shard_removal.EvaluateWithout(rows);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->fairness, b->fairness) << rows.size() << " rows";
    EXPECT_EQ(a->accuracy, b->accuracy) << rows.size() << " rows";
  }
}

}  // namespace
}  // namespace fume
