// The batched unlearning kernel (DeletionScratch + columnar
// NodeStats::RemoveRows + in-place route partitioning) must be
// *byte-identical* to the per-row baseline it replaced: same serialized
// forest, same DeletionStats, same end-to-end FUME top-k. Swept over
// datasets, seeds and deletion patterns, with the baseline selected via
// ForestConfig::batched_unlearn_kernel = false.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/fume.h"
#include "forest/deletion_scratch.h"
#include "forest/forest.h"
#include "forest/serialize.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

ForestConfig KernelForestConfig(bool kernel, uint64_t seed) {
  ForestConfig config;
  config.num_trees = 6;
  config.max_depth = 7;
  config.random_depth = 2;
  config.seed = seed;
  config.batched_unlearn_kernel = kernel;
  return config;
}

std::string Serialize(const DareForest& forest) {
  std::ostringstream out;
  EXPECT_TRUE(SaveForest(forest, out).ok());
  return out.str();
}

// Draws `k` distinct row ids from [0, n) (partial Fisher-Yates).
std::vector<RowId> DrawRows(Rng* rng, int64_t n, int64_t k) {
  std::vector<RowId> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] =
      static_cast<RowId>(i);
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = rng->NextInt(static_cast<int32_t>(i),
                                   static_cast<int32_t>(n - 1));
    std::swap(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
  }
  ids.resize(static_cast<size_t>(k));
  return ids;
}

struct KernelIdentityCase {
  const char* dataset;  // "german" or "planted"
  uint64_t seed;
};

class KernelIdentityTest : public testing::TestWithParam<KernelIdentityCase> {
};

Dataset MakeData(const KernelIdentityCase& c) {
  if (std::string(c.dataset) == "german") {
    synth::SynthOptions opts;
    opts.num_rows = 600;
    opts.seed = c.seed;
    auto bundle = synth::MakeGermanCredit(opts);
    EXPECT_TRUE(bundle.ok());
    return bundle->data;
  }
  synth::PlantedOptions opts;
  opts.num_rows = 1200;
  opts.seed = c.seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  return bundle->data;
}

// Random deletion batches applied to two forests that differ only in the
// kernel flag must keep them byte-identical at every step. The kernel-on
// forest additionally reuses one caller-owned scratch across all batches
// (the steady-state allocation-free path).
TEST_P(KernelIdentityTest, BatchedKernelMatchesPerRowBaselineByteForByte) {
  const KernelIdentityCase c = GetParam();
  const Dataset data = MakeData(c);

  auto kernel_forest =
      DareForest::Train(data, KernelForestConfig(true, c.seed + 11));
  auto baseline_forest =
      DareForest::Train(data, KernelForestConfig(false, c.seed + 11));
  ASSERT_TRUE(kernel_forest.ok());
  ASSERT_TRUE(baseline_forest.ok());
  // The flag must not influence training (it only selects the deletion
  // execution strategy), so the starting points are identical.
  ASSERT_EQ(Serialize(*kernel_forest), Serialize(*baseline_forest));

  Rng rng(c.seed * 97 + 3);
  DeletionScratch scratch;
  int64_t live = data.num_rows();
  std::vector<uint8_t> deleted(static_cast<size_t>(data.num_rows()), 0);
  const int64_t batch_sizes[] = {1, 7, 40, 150};
  for (int64_t want : batch_sizes) {
    // Draw `want` rows not yet deleted.
    std::vector<RowId> batch;
    while (static_cast<int64_t>(batch.size()) < want && live > 0) {
      const RowId r = static_cast<RowId>(
          rng.NextInt(0, static_cast<int32_t>(data.num_rows() - 1)));
      if (deleted[static_cast<size_t>(r)]) continue;
      deleted[static_cast<size_t>(r)] = 1;
      batch.push_back(r);
      --live;
    }
    if (batch.empty()) break;

    std::vector<DeletionStats> kernel_per_tree, baseline_per_tree;
    ASSERT_TRUE(
        kernel_forest->DeleteRows(batch, &kernel_per_tree, &scratch).ok());
    ASSERT_TRUE(baseline_forest->DeleteRows(batch, &baseline_per_tree).ok());

    ASSERT_EQ(kernel_per_tree.size(), baseline_per_tree.size());
    for (size_t t = 0; t < kernel_per_tree.size(); ++t) {
      EXPECT_EQ(kernel_per_tree[t], baseline_per_tree[t])
          << "per-tree DeletionStats diverged at tree " << t;
    }
    EXPECT_EQ(kernel_forest->deletion_stats(),
              baseline_forest->deletion_stats());
    EXPECT_TRUE(kernel_forest->StructurallyEquals(*baseline_forest));
    ASSERT_EQ(Serialize(*kernel_forest), Serialize(*baseline_forest))
        << "serialized forests diverged after a batch of " << batch.size();
  }
  EXPECT_TRUE(kernel_forest->ValidateStats());
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndSeeds, KernelIdentityTest,
    testing::Values(KernelIdentityCase{"german", 5},
                    KernelIdentityCase{"german", 91},
                    KernelIdentityCase{"planted", 5},
                    KernelIdentityCase{"planted", 91}));

// AddData through the kernel (batched NodeStats::AddRows + stable span
// partitioning) must also match the baseline byte-for-byte.
TEST(UnlearnKernelTest, AddDataMatchesBaselineByteForByte) {
  synth::PlantedOptions opts;
  opts.num_rows = 1400;
  opts.seed = 13;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  std::vector<int64_t> base_rows, extra_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r < 1000 ? base_rows : extra_rows).push_back(r);
  }
  const Dataset base = bundle->data.Select(base_rows);
  const Dataset extra = bundle->data.Select(extra_rows);

  auto kernel_forest = DareForest::Train(base, KernelForestConfig(true, 31));
  auto baseline_forest =
      DareForest::Train(base, KernelForestConfig(false, 31));
  ASSERT_TRUE(kernel_forest.ok());
  ASSERT_TRUE(baseline_forest.ok());

  DeletionScratch scratch;
  std::vector<DeletionStats> kernel_per_tree, baseline_per_tree;
  auto kernel_ids = kernel_forest->AddData(extra, &kernel_per_tree, &scratch);
  auto baseline_ids = baseline_forest->AddData(extra, &baseline_per_tree);
  ASSERT_TRUE(kernel_ids.ok());
  ASSERT_TRUE(baseline_ids.ok());
  EXPECT_EQ(*kernel_ids, *baseline_ids);
  for (size_t t = 0; t < kernel_per_tree.size(); ++t) {
    EXPECT_EQ(kernel_per_tree[t], baseline_per_tree[t]);
  }
  EXPECT_EQ(Serialize(*kernel_forest), Serialize(*baseline_forest));
  EXPECT_TRUE(kernel_forest->ValidateStats());

  // Interleave: delete some of the added rows again, with the same scratch.
  std::vector<RowId> doomed(kernel_ids->begin(), kernel_ids->begin() + 120);
  ASSERT_TRUE(kernel_forest->DeleteRows(doomed, nullptr, &scratch).ok());
  ASSERT_TRUE(baseline_forest->DeleteRows(doomed).ok());
  EXPECT_EQ(Serialize(*kernel_forest), Serialize(*baseline_forest));
}

// The end-to-end search must report the identical top-k whether what-if
// deletions run through the kernel or the baseline.
TEST(UnlearnKernelTest, EndToEndTopKIdenticalKernelOnVsOff) {
  synth::PlantedOptions opts;
  opts.num_rows = 1500;
  opts.seed = 1;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  const Dataset train = bundle->data.Select(train_rows);
  const Dataset test = bundle->data.Select(test_rows);

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};

  FumeResult results[2];
  for (int kernel = 0; kernel < 2; ++kernel) {
    auto model =
        DareForest::Train(train, KernelForestConfig(kernel == 1, 23));
    ASSERT_TRUE(model.ok());
    auto result = ExplainFairnessViolation(*model, train, test, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results[kernel] = std::move(*result);
  }

  const FumeResult& off = results[0];
  const FumeResult& on = results[1];
  EXPECT_EQ(off.original_fairness, on.original_fairness);
  ASSERT_EQ(off.top_k.size(), on.top_k.size());
  for (size_t i = 0; i < off.top_k.size(); ++i) {
    EXPECT_EQ(off.top_k[i].predicate, on.top_k[i].predicate);
    EXPECT_EQ(off.top_k[i].phi, on.top_k[i].phi);
    EXPECT_EQ(off.top_k[i].num_rows, on.top_k[i].num_rows);
    EXPECT_EQ(off.top_k[i].new_fairness, on.top_k[i].new_fairness);
  }
  EXPECT_EQ(off.stats.attribution_evaluations,
            on.stats.attribution_evaluations);
  EXPECT_EQ(off.all_candidates.size(), on.all_candidates.size());
}

// DeletionScratch unit behaviour: duplicate detection, epoch invalidation,
// warm-vs-cold BeginBatch, and out-of-range queries.
TEST(DeletionScratchTest, EpochSemantics) {
  DeletionScratch scratch;
  EXPECT_FALSE(scratch.BeginBatch(100));  // cold: array had to grow
  EXPECT_TRUE(scratch.MarkDoomed(7));
  EXPECT_FALSE(scratch.MarkDoomed(7));  // duplicate within the batch
  EXPECT_TRUE(scratch.IsDoomed(7));
  EXPECT_FALSE(scratch.IsDoomed(8));
  EXPECT_FALSE(scratch.IsDoomed(5000));  // out of range, not doomed

  EXPECT_TRUE(scratch.BeginBatch(100));  // warm: same store size
  EXPECT_FALSE(scratch.IsDoomed(7));     // previous batch invalidated in O(1)
  EXPECT_TRUE(scratch.MarkDoomed(7));    // markable again

  EXPECT_FALSE(scratch.BeginBatch(200));  // store grew: cold again
  EXPECT_TRUE(scratch.BeginBatch(150));   // smaller batch on big array: warm
}

// Deleting the same batch through a tree-level call with a caller scratch
// must equal the forest-level path (covers the DareTree overloads the
// forest threads the scratch through).
TEST(UnlearnKernelTest, TreeLevelScratchOverloadMatchesConvenienceOverload) {
  synth::SynthOptions opts;
  opts.num_rows = 400;
  opts.seed = 3;
  auto bundle = synth::MakeGermanCredit(opts);
  ASSERT_TRUE(bundle.ok());
  auto a = DareForest::Train(bundle->data, KernelForestConfig(true, 7));
  auto b = DareForest::Train(bundle->data, KernelForestConfig(true, 7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  Rng rng(99);
  const std::vector<RowId> batch = DrawRows(&rng, bundle->data.num_rows(), 37);
  ASSERT_TRUE(a->DeleteRows(batch).ok());  // forest-level, call-local scratch
  DeletionScratch scratch;
  ASSERT_TRUE(b->DeleteRows(batch, nullptr, &scratch).ok());
  EXPECT_EQ(Serialize(*a), Serialize(*b));
}

}  // namespace
}  // namespace fume
