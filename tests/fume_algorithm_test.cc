// Tests for the FUME search itself (Algorithm 1): the top-k contract, the
// pruning rules, exploration statistics, and that the planted cohort is
// recovered as the #1 explanation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/fume.h"
#include "core/report.h"
#include "synth/datasets.h"

namespace fume {
namespace {

struct Fixture {
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest model;
};

ForestConfig TestForestConfig() {
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 6;
  config.random_depth = 2;
  config.seed = 23;
  return config;
}

Fixture MakeFixture(uint64_t seed = 1, int64_t rows = 1500) {
  synth::PlantedOptions opts;
  opts.num_rows = rows;
  opts.seed = seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, DareForest()};
  auto model = DareForest::Train(f.train, TestForestConfig());
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  return f;
}

FumeConfig TestFumeConfig(const Fixture& f) {
  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.metric = FairnessMetric::kStatisticalParity;
  config.group = f.group;
  // Explanations phrased in terms of the sensitive attribute itself
  // ("Group = Protected AND ...") are trivially true and uninformative, so
  // the planted-cohort tests search over the non-sensitive attributes.
  config.lattice.excluded_attrs = {f.group.sensitive_attr};
  return config;
}

TEST(FumeTest, FindsThePlantedCohortFirst) {
  Fixture f = MakeFixture();
  auto result =
      ExplainFairnessViolation(f.model, f.train, f.test, TestFumeConfig(f));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->top_k.empty());

  // The planted cohort (A = a1 AND B = b2) must be the top subset.
  Predicate planted;
  for (const auto& [attr, code] : synth::PlantedCohortConditions()) {
    planted = planted.With(Literal{attr, LiteralOp::kEq, code});
  }
  EXPECT_EQ(result->top_k[0].predicate.ToString(f.train.schema()),
            planted.ToString(f.train.schema()));
  EXPECT_GT(result->top_k[0].attribution, 0.3);
}

TEST(FumeTest, TopKContract) {
  Fixture f = MakeFixture(2);
  FumeConfig config = TestFumeConfig(f);
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(result.ok());
  ASSERT_LE(result->top_k.size(), static_cast<size_t>(config.top_k));
  for (size_t i = 0; i < result->top_k.size(); ++i) {
    const AttributableSubset& s = result->top_k[i];
    EXPECT_GT(s.attribution, 0.0);                       // phi < 0
    EXPECT_GE(s.support, config.support_min);            // Rule 2
    EXPECT_LE(s.support, config.support_max);
    EXPECT_LE(s.predicate.num_literals(), config.max_literals);  // Rule 3
    if (i > 0) {
      EXPECT_GE(result->top_k[i - 1].attribution, s.attribution);  // sorted
    }
    EXPECT_DOUBLE_EQ(s.phi, -s.attribution);
  }
  // top_k is a prefix of all_candidates.
  ASSERT_GE(result->all_candidates.size(), result->top_k.size());
  for (size_t i = 0; i < result->top_k.size(); ++i) {
    EXPECT_EQ(result->top_k[i].predicate.ToString(f.train.schema()),
              result->all_candidates[i].predicate.ToString(f.train.schema()));
  }
}

TEST(FumeTest, RefusesWhenThereIsNoViolation) {
  Fixture f = MakeFixture(3);
  FumeConfig config = TestFumeConfig(f);
  config.min_original_bias = 10.0;  // impossible bar => treated as fair
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(FumeTest, ValidatesConfig) {
  Fixture f = MakeFixture(4);
  FumeConfig config = TestFumeConfig(f);
  config.top_k = 0;
  EXPECT_FALSE(ExplainFairnessViolation(f.model, f.train, f.test, config).ok());
  config = TestFumeConfig(f);
  config.support_min = 0.5;
  config.support_max = 0.1;
  EXPECT_FALSE(ExplainFairnessViolation(f.model, f.train, f.test, config).ok());
  config = TestFumeConfig(f);
  config.max_literals = 0;
  EXPECT_FALSE(ExplainFairnessViolation(f.model, f.train, f.test, config).ok());
}

TEST(FumeTest, LevelStatsAreConsistent) {
  Fixture f = MakeFixture(5);
  FumeConfig config = TestFumeConfig(f);
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->stats.levels.size(), 2u);  // max_literals = 2
  int64_t explored_total = 0;
  for (const LevelStats& level : result->stats.levels) {
    EXPECT_GE(level.possible, level.explored);
    EXPECT_GE(level.pruned_percent(), 0.0);
    EXPECT_LE(level.pruned_percent(), 100.0);
    explored_total += level.explored;
  }
  EXPECT_EQ(explored_total, result->stats.attribution_evaluations +
                                result->stats.cache_hits);
}

TEST(FumeTest, Rule3LimitsLiterals) {
  Fixture f = MakeFixture(6);
  FumeConfig config = TestFumeConfig(f);
  config.max_literals = 1;
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.levels.size(), 1u);
  for (const auto& s : result->all_candidates) {
    EXPECT_EQ(s.predicate.num_literals(), 1);
  }
}

TEST(FumeTest, Rule2PruningNeverEvaluatesOutOfRangeLevel1Subsets) {
  Fixture f = MakeFixture(7);
  FumeConfig config = TestFumeConfig(f);
  config.max_literals = 1;
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(result.ok());
  // Count level-1 subsets inside the support range by hand.
  Lattice lattice(f.train, config.lattice);
  int64_t in_range = 0;
  for (const auto& node : lattice.MakeLevel1()) {
    if (node.support >= config.support_min &&
        node.support <= config.support_max && node.rows.Count() > 0) {
      ++in_range;
    }
  }
  EXPECT_EQ(result->stats.levels[0].explored, in_range);
}

TEST(FumeTest, DisablingRule2EvaluatesMore) {
  Fixture f = MakeFixture(8, 800);
  FumeConfig strict = TestFumeConfig(f);
  strict.max_literals = 1;
  FumeConfig loose = strict;
  loose.rule2_support = false;
  auto a = ExplainFairnessViolation(f.model, f.train, f.test, strict);
  auto b = ExplainFairnessViolation(f.model, f.train, f.test, loose);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->stats.levels[0].explored, a->stats.levels[0].explored);
  // Output contract still honors the support range.
  for (const auto& s : b->all_candidates) {
    EXPECT_GE(s.support, loose.support_min);
    EXPECT_LE(s.support, loose.support_max);
  }
}

TEST(FumeTest, DisablingRules4And5ExploresMoreAtLevel2) {
  Fixture f = MakeFixture(9, 800);
  FumeConfig strict = TestFumeConfig(f);
  FumeConfig loose = strict;
  loose.rule4_parent = false;
  loose.rule5_positive = false;
  auto a = ExplainFairnessViolation(f.model, f.train, f.test, strict);
  auto b = ExplainFairnessViolation(f.model, f.train, f.test, loose);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(b->stats.levels.size(), 2u);
  EXPECT_GE(b->stats.levels[1].possible, a->stats.levels[1].possible);
  // Anything the pruned search reports must also surface (at least as good)
  // in the unpruned search's candidate pool.
  EXPECT_GE(b->all_candidates.size(), a->top_k.size());
}

TEST(FumeTest, CacheDeduplicatesIdenticalRowSets) {
  Fixture f = MakeFixture(10, 600);
  FumeConfig config = TestFumeConfig(f);
  auto with_cache = ExplainFairnessViolation(f.model, f.train, f.test, config);
  config.cache_by_rowset = false;
  auto without = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(with_cache.ok() && without.ok());
  // Duplicate row sets within one level are deduplicated in both modes;
  // the memo additionally spans levels, so it can only save evaluations.
  const auto explored = [](const FumeResult& r) {
    int64_t total = 0;
    for (const LevelStats& level : r.stats.levels) total += level.explored;
    return total;
  };
  EXPECT_EQ(with_cache->stats.attribution_evaluations +
                with_cache->stats.cache_hits,
            explored(*with_cache));
  EXPECT_EQ(without->stats.attribution_evaluations +
                without->stats.cache_hits,
            explored(*without));
  EXPECT_GE(without->stats.attribution_evaluations,
            with_cache->stats.attribution_evaluations);
  EXPECT_EQ(without->stats.cache_inserts, 0);
  // Same results either way.
  ASSERT_EQ(with_cache->top_k.size(), without->top_k.size());
  for (size_t i = 0; i < with_cache->top_k.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_cache->top_k[i].attribution,
                     without->top_k[i].attribution);
  }
}

// Regression: predicates over distinct attributes can still select the very
// same training rows. Such duplicates within one level must share a single
// evaluation even with the cross-level row-set memo disabled, and every
// duplicate must report identical results. A dataset with a copied column
// guarantees the collision; a counting removal observes the evaluations.
TEST(FumeTest, DuplicateRowSetsEvaluatedOnceWithoutRowsetCache) {
  class CountingRemoval : public RemovalMethod {
   public:
    Result<ModelEval> EvaluateWithout(
        const std::vector<RowId>& rows) override {
      ++counts_[rows];
      ModelEval eval;
      // Distinct per row set so duplicate predicates provably shared an
      // evaluation (attribution 0.5 - fairness > 0 keeps Rule 5 happy).
      eval.fairness = 0.1 + 1e-4 * static_cast<double>(rows.front());
      eval.accuracy = 0.9;
      return eval;
    }
    const char* name() const override { return "counting-mock"; }
    std::map<std::vector<RowId>, int> counts_;
  };

  Schema schema;
  ASSERT_TRUE(schema.AddCategorical("X", {"x0", "x1", "x2"}).ok());
  ASSERT_TRUE(schema.AddCategorical("XCopy", {"x0", "x1", "x2"}).ok());
  schema.set_label_name("Y");
  Dataset data(schema);
  for (int r = 0; r < 300; ++r) {
    ASSERT_TRUE(data.AppendRow({r % 3, r % 3}, r % 2).ok());
  }

  FumeConfig config;
  config.top_k = 6;
  config.support_min = 0.2;
  config.support_max = 0.5;
  config.max_literals = 1;
  config.cache_by_rowset = false;
  ModelEval original;
  original.fairness = 0.5;
  original.accuracy = 0.9;

  CountingRemoval removal;
  auto result = ExplainWithRemoval(original, data, config, &removal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // 6 literals (X/XCopy x 3 values) collapse onto 3 distinct row sets, each
  // evaluated exactly once.
  ASSERT_EQ(removal.counts_.size(), 3u);
  for (const auto& [rows, count] : removal.counts_) {
    EXPECT_EQ(count, 1) << "row set evaluated " << count << " times";
  }
  EXPECT_EQ(result->stats.attribution_evaluations, 3);
  EXPECT_EQ(result->stats.cache_hits, 3);
  EXPECT_EQ(result->stats.levels[0].explored, 6);

  // Every X=v / XCopy=v pair reports identical numbers.
  ASSERT_EQ(result->all_candidates.size(), 6u);
  std::map<std::string, std::vector<double>> by_value;
  for (const auto& s : result->all_candidates) {
    const std::string name = s.predicate.ToString(data.schema());
    by_value[name.substr(name.size() - 2)].push_back(s.new_fairness);
  }
  ASSERT_EQ(by_value.size(), 3u);
  for (const auto& [value, fairness] : by_value) {
    ASSERT_EQ(fairness.size(), 2u) << value;
    EXPECT_EQ(fairness[0], fairness[1]) << value;
  }
}

TEST(FumeTest, DeterministicAcrossRuns) {
  Fixture f = MakeFixture(11);
  FumeConfig config = TestFumeConfig(f);
  auto a = ExplainFairnessViolation(f.model, f.train, f.test, config);
  auto b = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->top_k.size(), b->top_k.size());
  for (size_t i = 0; i < a->top_k.size(); ++i) {
    EXPECT_EQ(a->top_k[i].predicate.ToString(f.train.schema()),
              b->top_k[i].predicate.ToString(f.train.schema()));
    EXPECT_DOUBLE_EQ(a->top_k[i].attribution, b->top_k[i].attribution);
  }
}

TEST(FumeTest, ParallelEvaluationMatchesSerial) {
  Fixture f = MakeFixture(16, 1000);
  FumeConfig serial_config = TestFumeConfig(f);
  serial_config.num_threads = 1;
  FumeConfig parallel_config = TestFumeConfig(f);
  parallel_config.num_threads = 4;
  auto serial =
      ExplainFairnessViolation(f.model, f.train, f.test, serial_config);
  auto parallel =
      ExplainFairnessViolation(f.model, f.train, f.test, parallel_config);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial->top_k.size(), parallel->top_k.size());
  for (size_t i = 0; i < serial->top_k.size(); ++i) {
    EXPECT_EQ(serial->top_k[i].predicate.ToString(f.train.schema()),
              parallel->top_k[i].predicate.ToString(f.train.schema()));
    EXPECT_DOUBLE_EQ(serial->top_k[i].attribution,
                     parallel->top_k[i].attribution);
  }
  EXPECT_EQ(serial->stats.attribution_evaluations,
            parallel->stats.attribution_evaluations);
  EXPECT_EQ(serial->stats.cache_hits, parallel->stats.cache_hits);
  EXPECT_EQ(serial->all_candidates.size(), parallel->all_candidates.size());
}

TEST(FumeTest, OverlapFilterYieldsDisjointishTopK) {
  Fixture f = MakeFixture(15);
  FumeConfig config = TestFumeConfig(f);
  config.max_row_overlap = 0.3;
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->top_k.size(), 2u);
  // Verify the pairwise Jaccard bound directly against the training data.
  std::vector<std::vector<int32_t>> rowsets;
  for (const auto& s : result->top_k) {
    rowsets.push_back(s.predicate.MatchingRows(f.train));
  }
  for (size_t i = 0; i < rowsets.size(); ++i) {
    for (size_t j = i + 1; j < rowsets.size(); ++j) {
      std::vector<int32_t> inter;
      std::set_intersection(rowsets[i].begin(), rowsets[i].end(),
                            rowsets[j].begin(), rowsets[j].end(),
                            std::back_inserter(inter));
      const double uni = static_cast<double>(rowsets[i].size()) +
                         static_cast<double>(rowsets[j].size()) -
                         static_cast<double>(inter.size());
      ASSERT_GT(uni, 0.0);
      EXPECT_LE(static_cast<double>(inter.size()) / uni, 0.3 + 1e-12);
    }
  }
  // The filtered list is a subsequence of the unfiltered ranking, with the
  // same #1.
  FumeConfig plain = TestFumeConfig(f);
  auto unfiltered = ExplainFairnessViolation(f.model, f.train, f.test, plain);
  ASSERT_TRUE(unfiltered.ok());
  ASSERT_FALSE(unfiltered->top_k.empty());
  EXPECT_EQ(result->top_k[0].predicate.ToString(f.train.schema()),
            unfiltered->top_k[0].predicate.ToString(f.train.schema()));
}

TEST(FumeTest, WorksForAllThreeMetrics) {
  Fixture f = MakeFixture(12);
  for (FairnessMetric metric :
       {FairnessMetric::kStatisticalParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kPredictiveParity}) {
    FumeConfig config = TestFumeConfig(f);
    config.metric = metric;
    auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
    if (result.ok()) {
      for (const auto& s : result->top_k) EXPECT_GT(s.attribution, 0.0);
    } else {
      // A metric can legitimately be (near) zero on this data; the only
      // acceptable failure is "no violation".
      EXPECT_TRUE(result.status().IsInvalid());
    }
  }
}

TEST(FumeTest, ReportRendersAllSections) {
  Fixture f = MakeFixture(13);
  auto result =
      ExplainFairnessViolation(f.model, f.train, f.test, TestFumeConfig(f));
  ASSERT_TRUE(result.ok());
  const std::string report =
      FormatReport(*result, f.train.schema(),
                   FairnessMetric::kStatisticalParity, "PS");
  EXPECT_NE(report.find("Violation: statistical parity"), std::string::npos);
  EXPECT_NE(report.find("PS1"), std::string::npos);
  EXPECT_NE(report.find("Parity Reduction"), std::string::npos);
  EXPECT_NE(report.find("Possible subsets"), std::string::npos);
}

TEST(FumeTest, UnlearnAndRetrainRemovalAgreeOnTopK) {
  // With the same seed, the retrain removal is the exact ground truth; FUME
  // must produce identical rankings with either estimator.
  Fixture f = MakeFixture(14, 900);
  FumeConfig config = TestFumeConfig(f);
  auto unlearned =
      ExplainFairnessViolation(f.model, f.train, f.test, config);
  RetrainRemovalMethod retrain(&f.train, &f.test, TestForestConfig(), f.group,
                               config.metric);
  auto retrained =
      ExplainWithRemoval(f.model, f.train, f.test, config, &retrain);
  ASSERT_TRUE(unlearned.ok() && retrained.ok());
  ASSERT_EQ(unlearned->top_k.size(), retrained->top_k.size());
  for (size_t i = 0; i < unlearned->top_k.size(); ++i) {
    EXPECT_EQ(
        unlearned->top_k[i].predicate.ToString(f.train.schema()),
        retrained->top_k[i].predicate.ToString(f.train.schema()));
    EXPECT_DOUBLE_EQ(unlearned->top_k[i].attribution,
                     retrained->top_k[i].attribution);
  }
}

}  // namespace
}  // namespace fume
