// Tests for the repair what-if module, including the key exactness claim:
// WhatIfRelabel (unlearn + re-add with new labels) equals retraining from
// scratch on the corrected dataset.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fume.h"
#include "repair/what_if.h"
#include "synth/datasets.h"

namespace fume {
namespace {

struct Fixture {
  Dataset train;
  Dataset test;
  GroupSpec group;
  ForestConfig config;
  DareForest model;
  Predicate planted;
};

Fixture MakeFixture(uint64_t seed = 1) {
  synth::PlantedOptions opts;
  opts.num_rows = 1500;
  opts.seed = seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, ForestConfig{}, DareForest(), Predicate()};
  f.config.num_trees = 5;
  f.config.max_depth = 6;
  f.config.random_depth = 2;
  f.config.seed = 23;
  auto model = DareForest::Train(f.train, f.config);
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  for (const auto& [attr, code] : synth::PlantedCohortConditions()) {
    f.planted = f.planted.With(Literal{attr, LiteralOp::kEq, code});
  }
  return f;
}

TEST(WhatIfTest, RemoveMatchesFumeAttribution) {
  Fixture f = MakeFixture();
  auto result = WhatIfRemove(f.model, f.train, f.test, f.group,
                             FairnessMetric::kStatisticalParity, f.planted);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows_affected, 20);
  EXPECT_GT(result->parity_reduction, 0.2);  // the planted cohort is real
  EXPECT_LT(std::fabs(result->after.fairness),
            std::fabs(result->before.fairness));
}

TEST(WhatIfTest, RelabelEqualsScratchRetrainOnCorrectedData) {
  Fixture f = MakeFixture(2);
  const RelabelPolicy policy = RelabelPolicy::kSetProtectedPositive;
  auto what_if = WhatIfRelabel(f.model, f.train, f.test, f.group,
                               FairnessMetric::kStatisticalParity, f.planted,
                               policy);
  ASSERT_TRUE(what_if.ok()) << what_if.status().ToString();

  // Reference: retrain from scratch on a dataset where the subset's rows
  // were moved to the end (the order delete+add produces) with corrected
  // labels.
  std::vector<int32_t> subset_rows = f.planted.MatchingRows(f.train);
  std::vector<uint8_t> in_subset(static_cast<size_t>(f.train.num_rows()), 0);
  for (int32_t r : subset_rows) in_subset[static_cast<size_t>(r)] = 1;
  Dataset corrected(f.train.schema());
  std::vector<int32_t> codes(static_cast<size_t>(f.train.num_attributes()));
  auto append = [&](int64_t r, int label) {
    for (int j = 0; j < f.train.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = f.train.Code(r, j);
    }
    ASSERT_TRUE(corrected.AppendRow(codes, label).ok());
  };
  for (int64_t r = 0; r < f.train.num_rows(); ++r) {
    if (!in_subset[static_cast<size_t>(r)]) append(r, f.train.Label(r));
  }
  for (int32_t r : subset_rows) {
    int label = f.train.Label(r);
    if (f.train.Code(r, f.group.sensitive_attr) != f.group.privileged_code) {
      label = 1;
    }
    append(r, label);
  }
  auto retrained = DareForest::Train(corrected, f.config);
  ASSERT_TRUE(retrained.ok());
  const double reference = ComputeFairness(
      *retrained, f.test, f.group, FairnessMetric::kStatisticalParity);
  EXPECT_DOUBLE_EQ(what_if->after.fairness, reference);
  EXPECT_DOUBLE_EQ(what_if->after.accuracy, retrained->Accuracy(f.test));
}

TEST(WhatIfTest, ProtectedPositiveRelabelReducesPlantedBias) {
  Fixture f = MakeFixture(3);
  auto result = WhatIfRelabel(f.model, f.train, f.test, f.group,
                              FairnessMetric::kStatisticalParity, f.planted,
                              RelabelPolicy::kSetProtectedPositive);
  ASSERT_TRUE(result.ok());
  // Correcting the planted cohort's protected labels removes its bias
  // contribution.
  EXPECT_GT(result->parity_reduction, 0.2);
}

TEST(WhatIfTest, SetNegativeMakesBiasWorse) {
  Fixture f = MakeFixture(4);
  // Force the WHOLE subset unfavorable: protected members were already
  // mostly unfavorable, privileged ones were not — this usually shifts more
  // privileged mass down, but the point of the test is that the API reports
  // the signed effect honestly, whichever direction it lands.
  auto result = WhatIfRelabel(f.model, f.train, f.test, f.group,
                              FairnessMetric::kStatisticalParity, f.planted,
                              RelabelPolicy::kSetNegative);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected,
            static_cast<int64_t>(f.planted.MatchingRows(f.train).size()));
  EXPECT_NE(result->after.fairness, result->before.fairness);
}

TEST(WhatIfTest, DuplicateAddsCopiesExactly) {
  Fixture f = MakeFixture(5);
  auto result = WhatIfDuplicate(f.model, f.train, f.test, f.group,
                                FairnessMetric::kStatisticalParity, f.planted,
                                /*extra_copies=*/2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->rows_affected, 0);

  // Reference: scratch retrain with the duplicated rows appended twice.
  std::vector<int32_t> subset_rows = f.planted.MatchingRows(f.train);
  Dataset augmented = f.train;
  std::vector<int32_t> codes(static_cast<size_t>(f.train.num_attributes()));
  for (int copy = 0; copy < 2; ++copy) {
    for (int32_t r : subset_rows) {
      for (int j = 0; j < f.train.num_attributes(); ++j) {
        codes[static_cast<size_t>(j)] = f.train.Code(r, j);
      }
      ASSERT_TRUE(augmented.AppendRow(codes, f.train.Label(r)).ok());
    }
  }
  auto retrained = DareForest::Train(augmented, f.config);
  ASSERT_TRUE(retrained.ok());
  EXPECT_DOUBLE_EQ(result->after.fairness,
                   ComputeFairness(*retrained, f.test, f.group,
                                   FairnessMetric::kStatisticalParity));
}

TEST(WhatIfTest, ValidatesInput) {
  Fixture f = MakeFixture(6);
  EXPECT_FALSE(WhatIfRemove(f.model, f.train, f.test, f.group,
                            FairnessMetric::kStatisticalParity, Predicate())
                   .ok());
  EXPECT_FALSE(WhatIfDuplicate(f.model, f.train, f.test, f.group,
                               FairnessMetric::kStatisticalParity, f.planted,
                               0)
                   .ok());
}

}  // namespace
}  // namespace fume
