// Tests for the bench regression guard (tools/bench_compare.h) and the
// JSON parser underneath it (util/json.h): cell identity, throughput
// field discovery, structural validation (the --smoke contract), and the
// baseline-vs-fresh comparison — including the required case where a
// doctored artifact with a lowered throughput number fails the check.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_compare.h"
#include "util/json.h"

namespace fume {
namespace {

using bench_check::ArtifactComparison;
using bench_check::CellKey;
using bench_check::CheckArtifactStructure;
using bench_check::CompareArtifacts;
using bench_check::CompareOptions;
using bench_check::ThroughputField;
using util::JsonValue;
using util::ParseJson;

JsonValue Parse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return parsed.ok() ? std::move(*parsed) : JsonValue();
}

// A minimal well-formed artifact in the shape the benches emit.
std::string Artifact(double eval_rate, double unlearn_rate) {
  std::string json = R"({
    "bench": "synthetic",
    "topk_identical": true,
    "cells": [
      {"rows": 2000, "strategy": "cow-delta", "evals_per_sec": )";
  json += std::to_string(eval_rate);
  json += R"(},
      {"rows": 2000, "batch_rows": 4, "strategy": "dare",
       "rows_per_sec": )";
  json += std::to_string(unlearn_rate);
  json += R"(}
    ]
  })";
  return json;
}

// ----------------------------------------------------------- util/json

TEST(JsonParserTest, ParsesScalarsArraysAndObjects) {
  const JsonValue v = Parse(
      R"({"s":"a\"b","n":-1.5e2,"t":true,"f":false,"z":null,"a":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.StringOr("s", ""), "a\"b");
  EXPECT_EQ(v.NumberOr("n", 0), -150.0);
  EXPECT_TRUE(v.BoolOr("t", false));
  EXPECT_FALSE(v.BoolOr("f", true));
  ASSERT_NE(v.Find("z"), nullptr);
  EXPECT_TRUE(v.Find("z")->is_null());
  ASSERT_NE(v.Find("a"), nullptr);
  ASSERT_EQ(v.Find("a")->array.size(), 3u);
  EXPECT_EQ(v.Find("a")->array[2].number_value, 3.0);
  // Missing keys fall back.
  EXPECT_EQ(v.NumberOr("missing", 7.0), 7.0);
}

TEST(JsonParserTest, PreservesObjectSourceOrder) {
  const JsonValue v = Parse(R"({"zeta":1,"alpha":2,"mid":3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "zeta");
  EXPECT_EQ(v.object[1].first, "alpha");
  EXPECT_EQ(v.object[2].first, "mid");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("{'a':1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  // NaN/inf are not JSON — the artifacts must never contain them.
  EXPECT_FALSE(ParseJson("{\"x\":nan}").ok());
  EXPECT_FALSE(ParseJson("{\"x\":inf}").ok());
}

TEST(JsonParserTest, ParseJsonFileReportsMissingFile) {
  auto parsed = util::ParseJsonFile("/nonexistent/bench.json");
  EXPECT_FALSE(parsed.ok());
}

// ---------------------------------------------------------- cell model

TEST(BenchCheckTest, CellKeyJoinsIdentityFieldsInSourceOrder) {
  const JsonValue cell = Parse(
      R"({"rows": 2000, "strategy": "cow-delta", "batch_rows": 4,
          "evals_per_sec": 123.4, "seconds": 1.5})");
  // Strings and the integer size fields participate; measurements do not.
  EXPECT_EQ(CellKey(cell), "rows=2000,strategy=cow-delta,batch_rows=4");
  EXPECT_EQ(ThroughputField(cell), "evals_per_sec");

  const JsonValue bare = Parse(R"({"mode": "incremental"})");
  EXPECT_EQ(CellKey(bare), "mode=incremental");
  EXPECT_EQ(ThroughputField(bare), "");
}

// --------------------------------------------------- structural checks

TEST(BenchCheckTest, WellFormedArtifactPassesStructureCheck) {
  const JsonValue artifact = Parse(Artifact(100.0, 200.0));
  std::vector<std::string> problems;
  CheckArtifactStructure(artifact, "BENCH_test.json", &problems);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(BenchCheckTest, StructureCheckRejectsBadShapes) {
  std::vector<std::string> problems;

  // Not an object.
  CheckArtifactStructure(Parse("[1,2]"), "a", &problems);
  EXPECT_FALSE(problems.empty());

  // Empty cells array.
  problems.clear();
  CheckArtifactStructure(Parse(R"({"cells":[]})"), "a", &problems);
  EXPECT_FALSE(problems.empty());

  // False exactness attestation: a bench that detected an identity break
  // must not pass the smoke gate.
  problems.clear();
  CheckArtifactStructure(
      Parse(R"({"topk_identical": false,
                "cells":[{"mode":"x","ops_per_sec":1.0}]})"),
      "a", &problems);
  EXPECT_FALSE(problems.empty());

  // Cell without a throughput field.
  problems.clear();
  CheckArtifactStructure(Parse(R"({"cells":[{"mode":"x","seconds":2.0}]})"),
                         "a", &problems);
  EXPECT_FALSE(problems.empty());

  // Non-positive throughput.
  problems.clear();
  CheckArtifactStructure(
      Parse(R"({"cells":[{"mode":"x","ops_per_sec":0.0}]})"), "a", &problems);
  EXPECT_FALSE(problems.empty());

  // Cell with no identity fields at all.
  problems.clear();
  CheckArtifactStructure(Parse(R"({"cells":[{"ops_per_sec":5.0}]})"), "a",
                         &problems);
  EXPECT_FALSE(problems.empty());
}

// ------------------------------------------------------- comparison

TEST(BenchCheckTest, IdenticalArtifactsCompareClean) {
  const JsonValue baseline = Parse(Artifact(100.0, 200.0));
  const JsonValue fresh = Parse(Artifact(100.0, 200.0));
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok()) << cmp.status().message();
  EXPECT_TRUE(cmp->ok());
  EXPECT_EQ(cmp->regressions, 0);
  ASSERT_EQ(cmp->cells.size(), 2u);
}

TEST(BenchCheckTest, WithinToleranceSlowdownPasses) {
  const JsonValue baseline = Parse(Artifact(100.0, 200.0));
  // 25% slower with the default 30% tolerance: still fine.
  const JsonValue fresh = Parse(Artifact(75.0, 150.0));
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->ok());
}

TEST(BenchCheckTest, DoctoredArtifactFailsBeyondTolerance) {
  const JsonValue baseline = Parse(Artifact(100.0, 200.0));
  // Doctored: the eval cell's throughput halved (beyond 30% tolerance),
  // the unlearn cell untouched.
  const JsonValue fresh = Parse(Artifact(50.0, 200.0));
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok());
  EXPECT_FALSE(cmp->ok());
  EXPECT_EQ(cmp->regressions, 1);
  int flagged = 0;
  for (const auto& cell : cmp->cells) {
    if (!cell.regression) continue;
    ++flagged;
    EXPECT_EQ(cell.field, "evals_per_sec");
    EXPECT_EQ(cell.baseline, 100.0);
    EXPECT_EQ(cell.fresh, 50.0);
    EXPECT_FALSE(cell.missing_in_fresh);
  }
  EXPECT_EQ(flagged, 1);

  // A tolerance wide enough to cover the drop un-flags it.
  CompareOptions loose;
  loose.tolerance = 0.60;
  auto loose_cmp = CompareArtifacts("BENCH_test.json", baseline, fresh, loose);
  ASSERT_TRUE(loose_cmp.ok());
  EXPECT_TRUE(loose_cmp->ok());
}

TEST(BenchCheckTest, MissingBaselineCellIsRegression) {
  const JsonValue baseline = Parse(Artifact(100.0, 200.0));
  // Fresh run silently dropped the unlearn cell.
  const JsonValue fresh = Parse(
      R"({"topk_identical": true,
          "cells":[{"rows": 2000, "strategy": "cow-delta",
                    "evals_per_sec": 100.0}]})");
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok());
  EXPECT_FALSE(cmp->ok());
  bool saw_missing = false;
  for (const auto& cell : cmp->cells) {
    if (cell.missing_in_fresh) {
      saw_missing = true;
      EXPECT_TRUE(cell.regression);
    }
  }
  EXPECT_TRUE(saw_missing);
}

TEST(BenchCheckTest, ExtraFreshCellExtendsBaselineInsteadOfRegressing) {
  const JsonValue baseline = Parse(
      R"({"cells":[{"mode":"incremental","ops_per_sec":10.0}]})");
  const JsonValue fresh = Parse(
      R"({"cells":[{"mode":"incremental","ops_per_sec":10.0},
                   {"mode":"cold-retrain","ops_per_sec":1.0}]})");
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(cmp->ok());
  EXPECT_EQ(cmp->cells.size(), 1u);  // only baseline cells are compared
  ASSERT_EQ(cmp->baseline_extending.size(), 1u);
  EXPECT_EQ(cmp->baseline_extending[0].key, "mode=cold-retrain");
  EXPECT_EQ(cmp->baseline_extending[0].field, "ops_per_sec");
  EXPECT_EQ(cmp->baseline_extending[0].fresh, 1.0);
  EXPECT_FALSE(cmp->baseline_extending[0].regression);
}

TEST(BenchCheckTest, BaselineExtendingCellsAreDistinctFromMatchedOnes) {
  // A bench that grew an "arena" strategy column: the old strategies still
  // compare cell-by-cell (and can regress), the new column only extends.
  const JsonValue baseline = Parse(
      R"({"cells":[{"rows": 2000, "strategy":"cow-delta","evals_per_sec":100.0}]})");
  const JsonValue fresh = Parse(
      R"({"cells":[{"rows": 2000, "strategy":"cow-delta","evals_per_sec":50.0},
                   {"rows": 2000, "strategy":"arena","evals_per_sec":300.0},
                   {"rows": 5000, "strategy":"arena","evals_per_sec":200.0}]})");
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->regressions, 1);  // the halved cow-delta cell still fails
  ASSERT_EQ(cmp->baseline_extending.size(), 2u);
  EXPECT_EQ(cmp->baseline_extending[0].key, "rows=2000,strategy=arena");
  EXPECT_EQ(cmp->baseline_extending[1].key, "rows=5000,strategy=arena");
}

TEST(BenchCheckTest, DuplicateFreshOnlyKeysReportedOnce) {
  const JsonValue baseline = Parse(
      R"({"cells":[{"mode":"incremental","ops_per_sec":10.0}]})");
  const JsonValue fresh = Parse(
      R"({"cells":[{"mode":"incremental","ops_per_sec":10.0},
                   {"mode":"arena","ops_per_sec":5.0},
                   {"mode":"arena","ops_per_sec":6.0}]})");
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  ASSERT_TRUE(cmp.ok());
  ASSERT_EQ(cmp->baseline_extending.size(), 1u);
  EXPECT_EQ(cmp->baseline_extending[0].fresh, 5.0);  // first wins, like lookup
}

TEST(BenchCheckTest, MalformedArtifactIsAStatusErrorNotARegression) {
  const JsonValue baseline = Parse(Artifact(100.0, 200.0));
  const JsonValue fresh = Parse(R"({"cells":[]})");
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCheckTest, EmptyBaselineCellsIsAStatusErrorNotARegression) {
  // A truncated committed baseline must surface as a structural error, not
  // as "no cells regressed" — either side with an empty cells array fails.
  const JsonValue baseline = Parse(R"({"cells":[]})");
  const JsonValue fresh = Parse(Artifact(100.0, 200.0));
  auto cmp = CompareArtifacts("BENCH_test.json", baseline, fresh,
                              CompareOptions());
  EXPECT_FALSE(cmp.ok());
}

}  // namespace
}  // namespace fume
