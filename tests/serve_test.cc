// Serve subsystem suite (ISSUE: fume_serve multi-tenant audit server).
//
// Three layers, matching the subsystem's own layering:
//  - protocol: request encode -> parse round trips, error reporting, and
//    the %.17g double round-trip the byte-identity anchor relies on;
//  - batcher: deterministic grouping / admission / deadline / dedup /
//    shutdown semantics driven through a gated fake executor;
//  - server: a real TCP server on an ephemeral loopback port, checked for
//    byte-identity against the offline engine on the same op-log prefix
//    (predict, explain, whatif, stream_op), batched-vs-batch-1 result
//    equality, graceful drain with restorable checkpoints, and — under
//    TSan — snapshot consistency while readers race a mutating writer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fume.h"
#include "data/split.h"
#include "fairness/metrics.h"
#include "forest/deletion_scratch.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/tenant.h"
#include "stream/engine.h"
#include "stream/op_log.h"
#include "synth/datasets.h"
#include "util/json.h"
#include "util/socket.h"

namespace fume {
namespace serve {
namespace {

using stream::OpOutcome;
using stream::StreamEngine;
using stream::StreamEngineConfig;
using stream::StreamOp;
using stream::StreamRow;
using util::JsonValue;
using util::ParseJson;
using util::Socket;

// ---------------------------------------------------------------------------
// Shared pipeline, mirroring tests/stream_test.cc and tools/fume_serve.cc:
// initial training data, an insert pool carved off the back, and a test set.

struct ServePipeline {
  Dataset initial_train;
  Dataset pool;
  Dataset test;
  GroupSpec group;
  TenantConfig tenant;
};

ServePipeline BuildPipeline(uint64_t seed) {
  synth::SynthOptions opts;
  opts.num_rows = 500;
  opts.seed = seed;
  auto bundle = synth::MakeGermanCredit(opts);
  EXPECT_TRUE(bundle.ok());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  EXPECT_TRUE(split.ok());
  const int64_t pool_rows = split->train.num_rows() / 3;
  std::vector<int64_t> tail;
  for (int64_t r = split->train.num_rows() - pool_rows;
       r < split->train.num_rows(); ++r) {
    tail.push_back(r);
  }
  std::vector<int64_t> head;
  for (int64_t r = 0; r < split->train.num_rows() - pool_rows; ++r) {
    head.push_back(r);
  }
  ServePipeline p;
  p.initial_train = split->train.DropRows(tail);
  p.pool = split->train.DropRows(head);
  p.test = std::move(split->test);
  p.group = bundle->group;
  StreamEngineConfig& e = p.tenant.engine;
  e.forest.num_trees = 8;
  e.forest.max_depth = 5;
  e.forest.random_depth = 2;
  e.forest.seed = 31;
  e.fume.top_k = 3;
  e.fume.support_min = 0.05;
  e.fume.support_max = 0.30;
  e.fume.max_literals = 1;
  e.fume.group = p.group;
  p.tenant.whatif_threads = 2;
  return p;
}

/// The first `n` pool rows as one StreamRow batch.
std::vector<StreamRow> PoolRows(const ServePipeline& p, int64_t start,
                                int64_t n) {
  std::vector<StreamRow> rows;
  for (int64_t r = start; r < start + n && r < p.pool.num_rows(); ++r) {
    StreamRow row;
    row.label = p.pool.Label(r);
    for (int a = 0; a < p.pool.schema().num_attributes(); ++a) {
      row.codes.push_back(p.pool.Code(r, a));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// A short, deterministic mixed op-log: deletes, an insert batch, and a
/// checkpoint op (which forces a search, so the served top-k is fresh).
std::vector<StreamOp> MakeOps(const ServePipeline& p) {
  std::vector<StreamOp> ops;
  ops.push_back(StreamOp::Delete(1, {3, 11, 19, 27}));
  ops.push_back(StreamOp::Insert(2, PoolRows(p, 0, 20)));
  ops.push_back(StreamOp::Delete(3, {40, 41, 42, 55, 68}));
  ops.push_back(StreamOp::Checkpoint(4));
  return ops;
}

/// One request/response exchange over an open socket.
JsonValue Exchange(Socket& sock, const std::string& request) {
  EXPECT_TRUE(sock.SendAll(request).ok());
  std::string line;
  auto rr = sock.ReadLine(&line, 30000);
  EXPECT_TRUE(rr.ok());
  EXPECT_TRUE(rr.ok() && rr.ValueOrDie() == Socket::ReadResult::kLine)
      << "no response line for: " << request;
  auto parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? parsed.ValueOrDie() : JsonValue{};
}

Socket ConnectTo(const Server& server) {
  auto sock = Socket::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(sock.ok()) << sock.status().ToString();
  return std::move(sock).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocol, PredictRoundTrip) {
  const std::vector<std::vector<int32_t>> rows = {{0, 1, 2}, {3, 4, 5}};
  auto req = ParseRequest(EncodePredictRequest(7, "bank", rows, 250));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->id, 7);
  EXPECT_EQ(req->op, RequestOp::kPredict);
  EXPECT_EQ(req->tenant, "bank");
  EXPECT_EQ(req->rows, rows);
  EXPECT_EQ(req->deadline_ms, 250);
}

TEST(ServeProtocol, WhatIfRoundTrip) {
  const Predicate pred(
      {Literal{2, LiteralOp::kEq, 1}, Literal{5, LiteralOp::kGe, 3}});
  auto req = ParseRequest(EncodeWhatIfRequest(9, "t", pred));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, RequestOp::kWhatIf);
  EXPECT_TRUE(req->predicate == pred);
  EXPECT_EQ(req->deadline_ms, 0);
}

TEST(ServeProtocol, StreamOpRoundTrip) {
  StreamOp op = StreamOp::Insert(12, {StreamRow{{1, 0, 2}, 1}});
  auto req = ParseRequest(EncodeStreamOpRequest(3, "t", op));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, RequestOp::kStreamOp);
  EXPECT_TRUE(req->stream_op == op);

  StreamOp del = StreamOp::Delete(13, {5, 9});
  auto req2 = ParseRequest(EncodeStreamOpRequest(4, "t", del));
  ASSERT_TRUE(req2.ok());
  EXPECT_TRUE(req2->stream_op == del);
}

TEST(ServeProtocol, SimpleOpsRoundTrip) {
  EXPECT_EQ(ParseRequest(EncodeHealthRequest(1))->op, RequestOp::kHealth);
  EXPECT_EQ(ParseRequest(EncodeMetricsRequest(2))->op, RequestOp::kMetrics);
  auto expl = ParseRequest(EncodeExplainRequest(3, "a"));
  ASSERT_TRUE(expl.ok());
  EXPECT_EQ(expl->op, RequestOp::kExplain);
  EXPECT_EQ(expl->tenant, "a");
  EXPECT_EQ(ParseRequest(EncodeCheckpointRequest(4, "a"))->op,
            RequestOp::kCheckpoint);
}

TEST(ServeProtocol, MalformedRequestsRejected) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("{}").ok());                       // no op
  EXPECT_FALSE(ParseRequest(R"({"id":1,"op":"nope"})").ok());  // unknown op
  // Tenant required for tenant-scoped ops.
  EXPECT_FALSE(ParseRequest(R"({"id":1,"op":"explain"})").ok());
  // predict needs rows; whatif needs a predicate; stream_op needs a line.
  EXPECT_FALSE(ParseRequest(R"({"id":1,"op":"predict","tenant":"t"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"id":1,"op":"whatif","tenant":"t"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"id":1,"op":"stream_op","tenant":"t"})").ok());
  // Bad cmp name and non-integer codes.
  EXPECT_FALSE(
      ParseRequest(
          R"({"id":1,"op":"whatif","tenant":"t","predicate":[{"attr":0,"cmp":"~","value":1}]})")
          .ok());
  EXPECT_FALSE(
      ParseRequest(R"({"id":1,"op":"predict","tenant":"t","rows":[[1.5]]})")
          .ok());
}

TEST(ServeProtocol, DoubleSerializationRoundTripsExactly) {
  const double values[] = {0.1, 1.0 / 3.0, -0.034090909090909061,
                           1e-300, 12345.678901234567};
  for (const double v : values) {
    std::string out;
    AppendJsonDouble(&out, v);
    auto parsed = ParseJson(out);
    ASSERT_TRUE(parsed.ok()) << out;
    EXPECT_EQ(parsed->number_value, v) << out;
  }
}

TEST(ServeProtocol, ErrorResponseShape) {
  auto parsed = ParseJson(ErrorResponse(5, "bad_request", "broken \"quote\""));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumberOr("id", -1), 5);
  EXPECT_FALSE(parsed->BoolOr("ok", true));
  EXPECT_EQ(parsed->StringOr("code", ""), "bad_request");
  EXPECT_EQ(parsed->StringOr("error", ""), "broken \"quote\"");
}

// ---------------------------------------------------------------------------
// Batcher (deterministic, via a gated fake executor)

/// Executor that blocks inside the batch call until released, recording
/// every batch it sees. Lets tests hold the batcher "busy" while they
/// shape the queue behind it.
struct GatedExecutor {
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::vector<std::vector<Predicate>> batches;

  WhatIfBatcher::Executor AsExecutor() {
    return [this](const std::vector<BatchJob*>& batch) {
      std::unique_lock<std::mutex> lk(mu);
      std::vector<Predicate> preds;
      for (BatchJob* job : batch) {
        preds.push_back(job->predicate);
        job->outcome.rows_matched = job->predicate.num_literals();
      }
      batches.push_back(std::move(preds));
      cv.notify_all();  // wake AwaitBatches before wedging on the gate
      cv.wait(lk, [this] { return gate_open; });
    };
  }

  void Open() {
    std::lock_guard<std::mutex> lk(mu);
    gate_open = true;
    cv.notify_all();
  }

  /// Blocks until `n` batches have entered the executor.
  void AwaitBatches(size_t n) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return batches.size() >= n; });
  }
};

Predicate PredOf(int attr, int32_t value) {
  return Predicate::Of(Literal{attr, LiteralOp::kEq, value});
}

TEST(ServeBatcher, GroupsConcurrentSubmissions) {
  BatchConfig config;
  config.window_us = 200000;  // generous: the whole group must fit
  config.max_batch = 4;
  GatedExecutor exec;
  exec.gate_open = true;  // no gating needed here
  WhatIfBatcher batcher(config, exec.AsExecutor());

  std::vector<std::thread> threads;
  std::vector<BatchJob> jobs(4);
  for (int i = 0; i < 4; ++i) {
    jobs[static_cast<size_t>(i)].predicate = PredOf(i, 0);
  }
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&batcher, &jobs, i] {
      EXPECT_EQ(batcher.Submit(&jobs[static_cast<size_t>(i)]),
                AdmitResult::kOk);
    });
  }
  for (std::thread& t : threads) t.join();
  // All four ran; the leader grouped at least two (four distinct threads
  // racing a 200ms window; a full window with max_batch=4 groups them all
  // unless the scheduler starves a thread entirely).
  size_t grouped = 0;
  for (const auto& b : exec.batches) grouped = std::max(grouped, b.size());
  EXPECT_GE(grouped, 2u);
  size_t total = 0;
  for (const auto& b : exec.batches) total += b.size();
  EXPECT_EQ(total, 4u);
  for (const BatchJob& job : jobs) {
    EXPECT_EQ(job.outcome.rows_matched, 1);
    EXPECT_GE(job.batch_size, 1);
  }
}

TEST(ServeBatcher, DedupsIdenticalPredicates) {
  BatchConfig config;
  config.window_us = 200000;
  config.max_batch = 4;
  GatedExecutor exec;
  exec.gate_open = true;
  WhatIfBatcher batcher(config, exec.AsExecutor());

  // Same predicate from several threads: the executor must see each unique
  // predicate at most once per batch, and followers get copied results.
  std::vector<BatchJob> jobs(4);
  for (auto& job : jobs) job.predicate = PredOf(1, 2);
  std::vector<std::thread> threads;
  for (auto& job : jobs) {
    threads.emplace_back(
        [&batcher, &job] { EXPECT_EQ(batcher.Submit(&job), AdmitResult::kOk); });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& batch : exec.batches) {
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t j = i + 1; j < batch.size(); ++j) {
        EXPECT_FALSE(batch[i] == batch[j]) << "duplicate reached executor";
      }
    }
  }
  int deduped = 0;
  for (const BatchJob& job : jobs) {
    EXPECT_EQ(job.outcome.rows_matched, 1);  // copied from the representative
    if (job.deduped) ++deduped;
  }
  // At least one batch had >= 2 jobs (four threads, 200ms window), so at
  // least one follower was deduplicated.
  size_t grouped = 0;
  for (const auto& b : exec.batches) grouped = std::max(grouped, b.size());
  if (grouped >= 1 && exec.batches.size() < jobs.size()) {
    EXPECT_GE(deduped, 1);
  }
}

/// Polls the serve.whatif.queue_depth gauge until it reports `depth`.
/// (The executor is wedged while this runs, so the depth only grows.)
void AwaitQueueDepth(int64_t depth) {
  obs::Gauge* gauge = obs::GetGauge("serve.whatif.queue_depth");
  while (gauge->Value() < depth) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServeBatcher, OverloadRejectsBeyondQueueCap) {
  BatchConfig config;
  config.window_us = 0;
  config.max_batch = 1;
  config.queue_cap = 2;
  GatedExecutor exec;  // gate closed: first job wedges the executor
  WhatIfBatcher batcher(config, exec.AsExecutor());

  BatchJob wedged;
  wedged.predicate = PredOf(0, 0);
  std::thread leader([&] { batcher.Submit(&wedged); });
  exec.AwaitBatches(1);  // executor now holds the leader

  // Fill the queue to cap behind the wedged leader.
  std::vector<BatchJob> queued(2);
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    queued[static_cast<size_t>(i)].predicate = PredOf(i + 1, 0);
    waiters.emplace_back([&batcher, &queued, i] {
      EXPECT_EQ(batcher.Submit(&queued[static_cast<size_t>(i)]),
                AdmitResult::kOk);
    });
  }
  // Once both waiters are provably queued the cap is reached and the next
  // submission must be rejected immediately (Submit would otherwise block
  // behind the wedged executor — a kOk here would deadlock the test).
  AwaitQueueDepth(2);
  BatchJob overflow;
  overflow.predicate = PredOf(8, 8);
  EXPECT_EQ(batcher.Submit(&overflow), AdmitResult::kOverloaded);

  exec.Open();
  leader.join();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(queued[0].outcome.rows_matched, 1);
  EXPECT_EQ(queued[1].outcome.rows_matched, 1);
}

TEST(ServeBatcher, DeadlineExpiresQueuedJobs) {
  BatchConfig config;
  config.window_us = 0;
  config.max_batch = 1;
  GatedExecutor exec;  // gate closed
  WhatIfBatcher batcher(config, exec.AsExecutor());

  BatchJob wedged;
  wedged.predicate = PredOf(0, 0);
  std::thread leader([&] { batcher.Submit(&wedged); });
  exec.AwaitBatches(1);

  // This job's deadline passes while the executor is wedged; the next
  // leader pass must expire it without executing it.
  BatchJob stale;
  stale.predicate = PredOf(1, 0);
  stale.has_deadline = true;
  stale.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  std::thread waiter([&] {
    EXPECT_EQ(batcher.Submit(&stale), AdmitResult::kTimeout);
  });
  AwaitQueueDepth(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  exec.Open();
  leader.join();
  waiter.join();
  // The stale predicate never reached the executor.
  std::lock_guard<std::mutex> lk(exec.mu);
  for (const auto& batch : exec.batches) {
    for (const Predicate& p : batch) EXPECT_FALSE(p == stale.predicate);
  }
}

TEST(ServeBatcher, ShutdownRejectsNewAndDrainsQueued) {
  BatchConfig config;
  config.window_us = 0;
  config.max_batch = 1;
  GatedExecutor exec;
  WhatIfBatcher batcher(config, exec.AsExecutor());

  BatchJob wedged;
  wedged.predicate = PredOf(0, 0);
  std::thread leader([&] { EXPECT_EQ(batcher.Submit(&wedged), AdmitResult::kOk); });
  exec.AwaitBatches(1);

  BatchJob queued;
  queued.predicate = PredOf(1, 0);
  std::thread waiter([&] {
    // Admitted before shutdown: still drains through the executor.
    EXPECT_EQ(batcher.Submit(&queued), AdmitResult::kOk);
  });
  AwaitQueueDepth(1);
  batcher.Shutdown();
  BatchJob late;
  late.predicate = PredOf(2, 0);
  EXPECT_EQ(batcher.Submit(&late), AdmitResult::kShutdown);
  exec.Open();
  leader.join();
  waiter.join();
  EXPECT_EQ(queued.outcome.rows_matched, 1);
}

// ---------------------------------------------------------------------------
// Served-vs-offline byte identity

class ServeExactnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pipeline_ = BuildPipeline(17);
    server_.emplace(ServerConfig{});
    ASSERT_TRUE(server_
                    ->RegisterTenant("credit", pipeline_.initial_train,
                                     pipeline_.test, pipeline_.tenant)
                    .ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  ServePipeline pipeline_;
  std::optional<Server> server_;
};

TEST_F(ServeExactnessTest, ServedRepliesMatchOfflineEngineAfterReplay) {
  // Offline reference: an in-process engine fed the same ops.
  auto offline = StreamEngine::Create(pipeline_.initial_train, pipeline_.test,
                                      pipeline_.tenant.engine);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();

  Socket sock = ConnectTo(*server_);
  int64_t id = 0;

  // Every stream_op response must match the offline Apply outcome exactly.
  for (const StreamOp& op : MakeOps(pipeline_)) {
    auto offline_out = offline->Apply(op);
    ASSERT_TRUE(offline_out.ok());
    JsonValue served =
        Exchange(sock, EncodeStreamOpRequest(++id, "credit", op));
    ASSERT_TRUE(served.BoolOr("ok", false)) << served.StringOr("error", "");
    EXPECT_EQ(served.NumberOr("seq", -1), offline_out->seq);
    EXPECT_EQ(served.NumberOr("metric", -2), offline_out->metric);
    EXPECT_EQ(served.NumberOr("accuracy", -2), offline_out->accuracy);
    EXPECT_EQ(served.NumberOr("rows_live", -1), offline_out->rows_live);
    EXPECT_EQ(served.BoolOr("searched", !offline_out->searched),
              offline_out->searched);
  }

  // predict: served probabilities must equal the offline forest's,
  // bit-for-bit (the %.17g round trip).
  std::vector<std::vector<int32_t>> rows;
  for (int64_t r = 0; r < std::min<int64_t>(20, pipeline_.test.num_rows());
       ++r) {
    std::vector<int32_t> codes;
    for (int a = 0; a < pipeline_.test.schema().num_attributes(); ++a) {
      codes.push_back(pipeline_.test.Code(r, a));
    }
    rows.push_back(std::move(codes));
  }
  Dataset probe(pipeline_.test.schema());
  for (const auto& codes : rows) ASSERT_TRUE(probe.AppendRow(codes, 0).ok());
  const std::vector<double> want = offline->forest().PredictProbAll(probe);
  JsonValue served = Exchange(sock, EncodePredictRequest(++id, "credit", rows));
  ASSERT_TRUE(served.BoolOr("ok", false)) << served.StringOr("error", "");
  const JsonValue* probs = served.Find("probs");
  ASSERT_NE(probs, nullptr);
  ASSERT_EQ(probs->array.size(), want.size());
  const JsonValue* preds = served.Find("predictions");
  ASSERT_NE(preds, nullptr);
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(probs->array[i].number_value, want[i]) << "row " << i;
    EXPECT_EQ(preds->array[i].number_value, want[i] >= 0.5 ? 1 : 0);
  }

  // explain: metric/accuracy/staleness and the whole top-k match.
  JsonValue expl = Exchange(sock, EncodeExplainRequest(++id, "credit"));
  ASSERT_TRUE(expl.BoolOr("ok", false)) << expl.StringOr("error", "");
  EXPECT_EQ(expl.NumberOr("seq", -1), offline->last_seq());
  EXPECT_EQ(expl.NumberOr("metric", -2), offline->current_metric());
  EXPECT_EQ(expl.NumberOr("accuracy", -2), offline->current_accuracy());
  EXPECT_EQ(expl.NumberOr("staleness", -1), offline->staleness());
  EXPECT_EQ(expl.NumberOr("rows_live", -1), offline->rows_live());
  const FumeResult* offline_expl = offline->explanation();
  EXPECT_EQ(expl.BoolOr("fair", true), offline_expl == nullptr);
  const JsonValue* top_k = expl.Find("top_k");
  ASSERT_NE(top_k, nullptr);
  if (offline_expl != nullptr) {
    ASSERT_EQ(top_k->array.size(), offline_expl->top_k.size());
    const Schema& schema = pipeline_.test.schema();
    for (size_t i = 0; i < top_k->array.size(); ++i) {
      const JsonValue& s = top_k->array[i];
      const AttributableSubset& want_s = offline_expl->top_k[i];
      EXPECT_EQ(s.StringOr("predicate", ""),
                want_s.predicate.ToString(schema));
      EXPECT_EQ(s.NumberOr("support", -1), want_s.support);
      EXPECT_EQ(s.NumberOr("rows", -1), want_s.num_rows);
      EXPECT_EQ(s.NumberOr("phi", -2), want_s.phi);
      EXPECT_EQ(s.NumberOr("attribution", -2), want_s.attribution);
      EXPECT_EQ(s.NumberOr("new_fairness", -2), want_s.new_fairness);
      EXPECT_EQ(s.NumberOr("new_accuracy", -2), want_s.new_accuracy);
    }
  }
}

TEST_F(ServeExactnessTest, ServedWhatIfMatchesOfflineComputation) {
  // Offline reference for one candidate predicate, computed exactly the
  // way repair/what_if.cc does: clone, delete matching rows, rescore.
  auto offline = StreamEngine::Create(pipeline_.initial_train, pipeline_.test,
                                      pipeline_.tenant.engine);
  ASSERT_TRUE(offline.ok());
  const Predicate pred = PredOf(0, 1);

  std::vector<RowId> matched;
  const TrainingStore& store = offline->forest().store();
  for (const RowId rid : offline->live_ids()) {
    if (pred.literals()[0].Matches(store.code(rid, 0))) matched.push_back(rid);
  }
  ASSERT_GT(matched.size(), 0u) << "pick a predicate that matches rows";
  DareForest clone = offline->forest().Clone();
  DeletionScratch scratch;
  ASSERT_TRUE(clone.DeleteRows(matched, nullptr, &scratch).ok());
  TestPredictionCache::WhatIfScratch what_if_scratch;
  offline->prediction_cache().ScoreWhatIf(
      offline->forest(), clone, pipeline_.test, &what_if_scratch,
      matched.size() >= UnlearnRemovalMethod::kArenaFullRescoreMinBatch);
  const double after_fairness =
      ComputeFairness(pipeline_.test, what_if_scratch.preds, pipeline_.group,
                      pipeline_.tenant.engine.fume.metric);

  Socket sock = ConnectTo(*server_);
  JsonValue served = Exchange(sock, EncodeWhatIfRequest(1, "credit", pred));
  ASSERT_TRUE(served.BoolOr("ok", false)) << served.StringOr("error", "");
  EXPECT_EQ(served.NumberOr("rows_matched", -1),
            static_cast<double>(matched.size()));
  EXPECT_EQ(served.NumberOr("before_fairness", -2),
            offline->current_metric());
  EXPECT_EQ(served.NumberOr("after_fairness", -2), after_fairness);
  const double original = std::fabs(offline->current_metric());
  const double want_reduction =
      original == 0.0 ? 0.0
                      : (original - std::fabs(after_fairness)) / original;
  EXPECT_EQ(served.NumberOr("parity_reduction", -2), want_reduction);
}

TEST_F(ServeExactnessTest, BatchedWhatIfEqualsSequentialWhatIf) {
  // Several distinct predicates, first sequentially (each its own batch),
  // then concurrently (grouped); the outcomes must be identical — batching
  // may never change an answer.
  std::vector<Predicate> preds;
  for (int attr = 0; attr < 4; ++attr) {
    preds.push_back(PredOf(attr, 0));
    preds.push_back(PredOf(attr, 1));
  }

  std::map<std::string, JsonValue> sequential;
  {
    Socket sock = ConnectTo(*server_);
    int64_t id = 0;
    for (const Predicate& p : preds) {
      JsonValue r = Exchange(sock, EncodeWhatIfRequest(++id, "credit", p));
      ASSERT_TRUE(r.BoolOr("ok", false));
      sequential[p.ToString(pipeline_.test.schema())] = std::move(r);
    }
  }

  std::vector<JsonValue> concurrent(preds.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < preds.size(); ++i) {
    threads.emplace_back([&, i] {
      Socket sock = ConnectTo(*server_);
      concurrent[i] = Exchange(
          sock, EncodeWhatIfRequest(static_cast<int64_t>(i), "credit",
                                    preds[i]));
    });
  }
  for (std::thread& t : threads) t.join();

  for (size_t i = 0; i < preds.size(); ++i) {
    const JsonValue& got = concurrent[i];
    ASSERT_TRUE(got.BoolOr("ok", false)) << got.StringOr("error", "");
    const JsonValue& want =
        sequential.at(preds[i].ToString(pipeline_.test.schema()));
    for (const char* key :
         {"rows_matched", "before_fairness", "before_accuracy",
          "after_fairness", "after_accuracy", "parity_reduction"}) {
      EXPECT_EQ(got.NumberOr(key, -3), want.NumberOr(key, -4))
          << preds[i].ToString(pipeline_.test.schema()) << " " << key;
    }
  }
}

TEST_F(ServeExactnessTest, WireErrorsCarryMachineCodes) {
  Socket sock = ConnectTo(*server_);
  JsonValue unknown = Exchange(sock, EncodeExplainRequest(1, "nope"));
  EXPECT_FALSE(unknown.BoolOr("ok", true));
  EXPECT_EQ(unknown.StringOr("code", ""), "unknown_tenant");

  JsonValue bad = Exchange(sock, "this is not json\n");
  EXPECT_FALSE(bad.BoolOr("ok", true));
  EXPECT_EQ(bad.StringOr("code", ""), "bad_request");

  // Out-of-range literal attr.
  const int attrs = pipeline_.test.schema().num_attributes();
  JsonValue range =
      Exchange(sock, EncodeWhatIfRequest(2, "credit", PredOf(attrs, 0)));
  EXPECT_FALSE(range.BoolOr("ok", true));
  EXPECT_EQ(range.StringOr("code", ""), "bad_request");

  // Wrong row width.
  JsonValue width = Exchange(
      sock, EncodePredictRequest(3, "credit", {{0}}));
  EXPECT_FALSE(width.BoolOr("ok", true));
  EXPECT_EQ(width.StringOr("code", ""), "bad_request");

  // Stale sequence number is rejected by the engine.
  JsonValue stale = Exchange(
      sock, EncodeStreamOpRequest(4, "credit", StreamOp::Delete(-5, {0})));
  EXPECT_FALSE(stale.BoolOr("ok", true));
  EXPECT_EQ(stale.StringOr("code", ""), "bad_request");
}

// ---------------------------------------------------------------------------
// Shutdown, checkpoint, op-log

TEST(ServeLifecycle, ShutdownWritesRestorableCheckpointAndOpLog) {
  ServePipeline p = BuildPipeline(23);
  const std::string ckpt_path = ::testing::TempDir() + "/serve_test.ckpt";
  const std::string oplog_path = ::testing::TempDir() + "/serve_test.ops";
  std::remove(ckpt_path.c_str());
  std::remove(oplog_path.c_str());
  p.tenant.engine.checkpoint_path = ckpt_path;
  p.tenant.oplog_path = oplog_path;

  const std::vector<StreamOp> ops = MakeOps(p);
  double final_metric = 0.0;
  int64_t final_seq = 0;
  {
    Server server{ServerConfig{}};
    ASSERT_TRUE(
        server.RegisterTenant("credit", p.initial_train, p.test, p.tenant)
            .ok());
    ASSERT_TRUE(server.Start().ok());
    Socket sock = ConnectTo(server);
    int64_t id = 0;
    for (const StreamOp& op : ops) {
      JsonValue r = Exchange(sock, EncodeStreamOpRequest(++id, "credit", op));
      ASSERT_TRUE(r.BoolOr("ok", false)) << r.StringOr("error", "");
      final_metric = r.NumberOr("metric", -2);
      final_seq = static_cast<int64_t>(r.NumberOr("seq", -1));
    }
    server.Shutdown();  // drains and writes the final checkpoint
  }

  // The op-log replays: every applied op survived, in order.
  auto logged = stream::ReadOpLogFile(oplog_path);
  ASSERT_TRUE(logged.ok()) << logged.status().ToString();
  ASSERT_EQ(logged->size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_TRUE((*logged)[i] == ops[i]) << "op " << i;
  }

  // The final checkpoint restores to the served state.
  auto restored = StreamEngine::RestoreFromFile(
      ckpt_path, p.initial_train.schema(), p.test, p.tenant.engine);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->last_seq(), final_seq);
  EXPECT_EQ(restored->current_metric(), final_metric);
  std::remove(ckpt_path.c_str());
  std::remove(oplog_path.c_str());
}

TEST(ServeLifecycle, HealthMetricsAndDoubleShutdown) {
  ServePipeline p = BuildPipeline(29);
  Server server{ServerConfig{}};
  ASSERT_TRUE(
      server.RegisterTenant("credit", p.initial_train, p.test, p.tenant).ok());
  ASSERT_TRUE(server.Start().ok());
  {
    Socket sock = ConnectTo(server);
    JsonValue health = Exchange(sock, EncodeHealthRequest(1));
    ASSERT_TRUE(health.BoolOr("ok", false));
    EXPECT_EQ(health.StringOr("status", ""), "serving");
    const JsonValue* tenants = health.Find("tenants");
    ASSERT_NE(tenants, nullptr);
    ASSERT_EQ(tenants->array.size(), 1u);
    EXPECT_EQ(tenants->array[0].StringOr("name", ""), "credit");
    EXPECT_EQ(tenants->array[0].NumberOr("attrs", -1),
              p.test.schema().num_attributes());

    JsonValue metrics = Exchange(sock, EncodeMetricsRequest(2));
    ASSERT_TRUE(metrics.BoolOr("ok", false));
    const JsonValue* m = metrics.Find("metrics");
    ASSERT_NE(m, nullptr);
    EXPECT_NE(m->Find("counters"), nullptr);
  }
  server.Shutdown();
  server.Shutdown();  // idempotent
}

// ---------------------------------------------------------------------------
// Concurrency: readers race a mutating writer (the TSan test)

TEST(ServeConcurrency, SnapshotsStayConsistentUnderConcurrentMutation) {
  ServePipeline p = BuildPipeline(41);
  p.tenant.whatif_threads = 2;
  Server server{ServerConfig{}};
  ASSERT_TRUE(
      server.RegisterTenant("credit", p.initial_train, p.test, p.tenant).ok());
  ASSERT_TRUE(server.Start().ok());
  Tenant* tenant = server.FindTenant("credit");
  ASSERT_NE(tenant, nullptr);

  // Authoritative seq -> (metric, rows_live) history, built as the writer
  // publishes. seq -1 is the initial snapshot.
  std::mutex history_mu;
  std::map<int64_t, std::pair<double, int64_t>> history;
  {
    const auto snap = tenant->snapshot();
    history[snap->seq] = {snap->metric, snap->rows_live};
  }

  // Writer: interleaves deletes and inserts through the server socket.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    Socket sock = ConnectTo(server);
    int64_t seq = 0;
    int64_t id = 0;
    // Delete scattered singletons, insert small batches in between.
    for (int round = 0; round < 10; ++round) {
      StreamOp op =
          (round % 3 == 2)
              ? StreamOp::Insert(++seq, PoolRows(p, round * 4, 4))
              : StreamOp::Delete(++seq, {static_cast<RowId>(round * 7),
                                         static_cast<RowId>(round * 7 + 3)});
      JsonValue r = Exchange(sock, EncodeStreamOpRequest(++id, "credit", op));
      ASSERT_TRUE(r.BoolOr("ok", false)) << r.StringOr("error", "");
      std::lock_guard<std::mutex> lk(history_mu);
      history[static_cast<int64_t>(r.NumberOr("seq", -9))] = {
          r.NumberOr("metric", -9), static_cast<int64_t>(r.NumberOr(
                                        "rows_live", -9))};
    }
    writer_done.store(true);
  });

  // Readers: whatif + predict + explain against whatever snapshot is
  // published. Every response must be internally consistent with SOME
  // published snapshot — (seq, before_fairness/metric) must appear in the
  // authoritative history once the writer has recorded that seq.
  std::vector<std::thread> readers;
  std::atomic<int> whatifs_checked{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Socket sock = ConnectTo(server);
      int64_t id = 1000 * (t + 1);
      while (!writer_done.load()) {
        JsonValue w = Exchange(
            sock, EncodeWhatIfRequest(++id, "credit", PredOf(t % 3, 1)));
        ASSERT_TRUE(w.BoolOr("ok", false)) << w.StringOr("error", "");
        const int64_t seq = static_cast<int64_t>(w.NumberOr("seq", -9));
        const double before = w.NumberOr("before_fairness", -9);
        {
          // The writer inserts into history before its stream_op response
          // is even sent, but a reader may see a snapshot published
          // between the engine apply and the history insert; retry briefly.
          bool found = false;
          for (int spin = 0; spin < 200 && !found; ++spin) {
            {
              std::lock_guard<std::mutex> lk(history_mu);
              auto it = history.find(seq);
              if (it != history.end()) {
                EXPECT_EQ(it->second.first, before) << "seq " << seq;
                found = true;
              }
            }
            if (!found) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          EXPECT_TRUE(found) << "whatif served unknown seq " << seq;
        }
        whatifs_checked.fetch_add(1);

        JsonValue e = Exchange(sock, EncodeExplainRequest(++id, "credit"));
        ASSERT_TRUE(e.BoolOr("ok", false));
        const int64_t eseq = static_cast<int64_t>(e.NumberOr("seq", -9));
        const double emetric = e.NumberOr("metric", -9);
        const int64_t erows = static_cast<int64_t>(e.NumberOr("rows_live", -9));
        bool found = false;
        for (int spin = 0; spin < 200 && !found; ++spin) {
          {
            std::lock_guard<std::mutex> lk(history_mu);
            auto it = history.find(eseq);
            if (it != history.end()) {
              EXPECT_EQ(it->second.first, emetric) << "seq " << eseq;
              EXPECT_EQ(it->second.second, erows) << "seq " << eseq;
              found = true;
            }
          }
          if (!found) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_TRUE(found) << "explain served unknown seq " << eseq;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(whatifs_checked.load(), 0);
  server.Shutdown();

  // The batcher actually formed batches during the run (whatif volume from
  // four readers makes grouping overwhelmingly likely, but don't flake on
  // scheduling: only assert the counters moved coherently).
  const auto snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.CounterValue("serve.batch.formed"), 1);
}

}  // namespace
}  // namespace serve
}  // namespace fume
