// Tests for DareTree / DareForest construction, prediction, cloning and
// cached-statistic consistency.

#include <gtest/gtest.h>

#include "data/split.h"
#include "forest/forest.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset MakeLearnable(int64_t n, uint64_t seed) {
  // Label = (x0 <= 1) XOR-ish with noise; x1..x3 weakly informative.
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("x0", {"a", "b", "c", "d"}).ok());
  EXPECT_TRUE(schema.AddCategorical("x1", {"p", "q", "r"}).ok());
  EXPECT_TRUE(schema.AddCategorical("x2", {"u", "v"}).ok());
  EXPECT_TRUE(schema.AddCategorical("x3", {"m", "n", "o"}).ok());
  Dataset data(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int32_t> row = {
        rng.NextInt(0, 3), rng.NextInt(0, 2), rng.NextInt(0, 1),
        rng.NextInt(0, 2)};
    double p = row[0] <= 1 ? 0.85 : 0.2;
    if (row[2] == 1) p += 0.05;
    int label = rng.NextBernoulli(p) ? 1 : 0;
    EXPECT_TRUE(data.AppendRow(row, label).ok());
  }
  return data;
}

ForestConfig SmallConfig() {
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 6;
  config.random_depth = 1;
  config.num_candidate_attrs = 2;
  config.seed = 11;
  return config;
}

TEST(DareForestTest, TrainRejectsBadInput) {
  Dataset data = MakeLearnable(50, 1);
  ForestConfig config = SmallConfig();
  config.num_trees = 0;
  EXPECT_FALSE(DareForest::Train(data, config).ok());
  config = SmallConfig();
  config.random_depth = 99;
  EXPECT_FALSE(DareForest::Train(data, config).ok());
  Schema with_numeric;
  ASSERT_TRUE(with_numeric.AddNumeric("n").ok());
  Dataset numeric(with_numeric);
  ASSERT_TRUE(numeric.AppendRowMixed({0}, {1.0}, 0).ok());
  EXPECT_FALSE(DareForest::Train(numeric, SmallConfig()).ok());
}

TEST(DareForestTest, TrainingIsDeterministic) {
  Dataset data = MakeLearnable(300, 2);
  auto a = DareForest::Train(data, SmallConfig());
  auto b = DareForest::Train(data, SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->StructurallyEquals(*b));
}

TEST(DareForestTest, DifferentSeedsDifferentForests) {
  Dataset data = MakeLearnable(300, 2);
  ForestConfig other = SmallConfig();
  other.seed = 999;
  auto a = DareForest::Train(data, SmallConfig());
  auto b = DareForest::Train(data, other);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(a->StructurallyEquals(*b));
}

TEST(DareForestTest, LearnsTheSignal) {
  Dataset train = MakeLearnable(800, 3);
  Dataset test = MakeLearnable(300, 4);
  auto forest = DareForest::Train(train, SmallConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_GT(forest->Accuracy(test), 0.75);
}

TEST(DareForestTest, CachedStatsValidate) {
  Dataset data = MakeLearnable(400, 5);
  auto forest = DareForest::Train(data, SmallConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->ValidateStats());
}

TEST(DareForestTest, LeafListsPartitionTrainingSet) {
  Dataset data = MakeLearnable(200, 6);
  auto forest = DareForest::Train(data, SmallConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->num_training_rows(), 200);
  for (int t = 0; t < forest->num_trees(); ++t) {
    EXPECT_EQ(forest->tree(t).num_training_rows(), 200);
  }
}

TEST(DareForestTest, PredictProbInUnitInterval) {
  Dataset train = MakeLearnable(300, 7);
  auto forest = DareForest::Train(train, SmallConfig());
  ASSERT_TRUE(forest.ok());
  auto probs = forest->PredictProbAll(train);
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(DareForestTest, CloneIsStructurallyIdenticalButIndependent) {
  Dataset train = MakeLearnable(300, 8);
  auto forest = DareForest::Train(train, SmallConfig());
  ASSERT_TRUE(forest.ok());
  DareForest clone = forest->Clone();
  EXPECT_TRUE(clone.StructurallyEquals(*forest));
  ASSERT_TRUE(clone.DeleteRows({0, 1, 2, 3, 4}).ok());
  EXPECT_FALSE(clone.StructurallyEquals(*forest));
  EXPECT_EQ(forest->num_training_rows(), 300);
  EXPECT_EQ(clone.num_training_rows(), 295);
}

TEST(DareForestTest, DeleteRejectsBadIds) {
  Dataset train = MakeLearnable(100, 9);
  auto forest = DareForest::Train(train, SmallConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_TRUE(forest->DeleteRows({5, 5}).IsInvalid());
  EXPECT_TRUE(forest->DeleteRows({1000}).IsIndexError());
  EXPECT_TRUE(forest->DeleteRows({-1}).IsIndexError());
  EXPECT_TRUE(forest->DeleteRows({}).ok());
}

TEST(DareForestTest, MaxDepthIsRespected) {
  Dataset train = MakeLearnable(500, 10);
  ForestConfig config = SmallConfig();
  config.max_depth = 3;
  auto forest = DareForest::Train(train, config);
  ASSERT_TRUE(forest.ok());
  for (int t = 0; t < forest->num_trees(); ++t) {
    EXPECT_LE(forest->tree(t).depth(), 3);
  }
}

TEST(DareForestTest, SingleRowTrainsToALeaf) {
  Dataset data = MakeLearnable(1, 11);
  auto forest = DareForest::Train(data, SmallConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->num_nodes(), forest->num_trees());
  const double p = forest->PredictProb(data, 0);
  EXPECT_EQ(p, data.Label(0) == 1 ? 1.0 : 0.0);
}

TEST(DareForestTest, DeleteAllRowsYieldsEmptyModel) {
  Dataset data = MakeLearnable(40, 12);
  auto forest = DareForest::Train(data, SmallConfig());
  ASSERT_TRUE(forest.ok());
  std::vector<RowId> all(40);
  for (int i = 0; i < 40; ++i) all[static_cast<size_t>(i)] = i;
  ASSERT_TRUE(forest->DeleteRows(all).ok());
  EXPECT_EQ(forest->num_training_rows(), 0);
  EXPECT_DOUBLE_EQ(forest->PredictProb(data, 0), 0.5);
  EXPECT_TRUE(forest->ValidateStats());
}

TEST(DareForestTest, DeletionStatsAreAccumulated) {
  Dataset data = MakeLearnable(300, 13);
  auto forest = DareForest::Train(data, SmallConfig());
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->deletion_stats().nodes_visited, 0);
  ASSERT_TRUE(forest->DeleteRows({1, 2, 3}).ok());
  EXPECT_GT(forest->deletion_stats().nodes_visited, 0);
  EXPECT_GT(forest->deletion_stats().leaves_updated +
                forest->deletion_stats().subtrees_retrained,
            0);
}

TEST(DareForestTest, SampledThresholdModeWorks) {
  Dataset train = MakeLearnable(500, 14);
  Dataset test = MakeLearnable(200, 15);
  ForestConfig config = SmallConfig();
  config.threshold_mode = ThresholdMode::kSampled;
  config.num_sampled_thresholds = 2;
  auto forest = DareForest::Train(train, config);
  ASSERT_TRUE(forest.ok());
  EXPECT_GT(forest->Accuracy(test), 0.7);
  EXPECT_TRUE(forest->ValidateStats());
}

}  // namespace
}  // namespace fume
