// Tests for src/data: schema, dataset storage/selection, CSV round trips,
// discretizer binning and train/test splitting.

#include <gtest/gtest.h>

#include <sstream>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/discretizer.h"
#include "data/schema.h"
#include "data/split.h"

namespace fume {
namespace {

Schema TwoAttrSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("color", {"red", "green", "blue"}).ok());
  EXPECT_TRUE(schema.AddCategorical("size", {"S", "L"}).ok());
  return schema;
}

// --------------------------------------------------------------- Schema

TEST(SchemaTest, AddAndFind) {
  Schema schema = TwoAttrSchema();
  EXPECT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(*schema.FindAttribute("size"), 1);
  EXPECT_TRUE(schema.FindAttribute("nope").status().IsKeyError());
  EXPECT_TRUE(schema.AllCategorical());
}

TEST(SchemaTest, RejectsDuplicatesAndEmpty) {
  Schema schema = TwoAttrSchema();
  EXPECT_TRUE(schema.AddCategorical("color", {"x"}).IsInvalid());
  EXPECT_TRUE(schema.AddCategorical("", {"x"}).IsInvalid());
  EXPECT_TRUE(schema.AddCategorical("empty", {}).IsInvalid());
}

TEST(SchemaTest, NumericBreaksAllCategorical) {
  Schema schema = TwoAttrSchema();
  ASSERT_TRUE(schema.AddNumeric("weight").ok());
  EXPECT_FALSE(schema.AllCategorical());
}

TEST(SchemaTest, FindCategory) {
  Schema schema = TwoAttrSchema();
  EXPECT_EQ(schema.attribute(0).FindCategory("green"), 1);
  EXPECT_EQ(schema.attribute(0).FindCategory("purple"), -1);
}

TEST(SchemaTest, Equals) {
  Schema a = TwoAttrSchema();
  Schema b = TwoAttrSchema();
  EXPECT_TRUE(a.Equals(b));
  b.set_label_name("other");
  EXPECT_FALSE(a.Equals(b));
}

// --------------------------------------------------------------- Dataset

Dataset SmallDataset() {
  Dataset data(TwoAttrSchema());
  // (color, size) -> label
  EXPECT_TRUE(data.AppendRow({0, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({1, 1}, 0).ok());
  EXPECT_TRUE(data.AppendRow({2, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({0, 1}, 0).ok());
  return data;
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset data = SmallDataset();
  EXPECT_EQ(data.num_rows(), 4);
  EXPECT_EQ(data.Code(2, 0), 2);
  EXPECT_EQ(data.Label(2), 1);
  EXPECT_EQ(data.CellToString(1, 0), "green");
  EXPECT_TRUE(data.Validate().ok());
}

TEST(DatasetTest, RejectsBadRows) {
  Dataset data(TwoAttrSchema());
  EXPECT_TRUE(data.AppendRow({0}, 1).IsInvalid());          // wrong width
  EXPECT_TRUE(data.AppendRow({0, 5}, 1).IsInvalid());       // code range
  EXPECT_TRUE(data.AppendRow({0, 0}, 2).IsInvalid());       // label range
  EXPECT_EQ(data.num_rows(), 0);
}

TEST(DatasetTest, PositiveAndBaseRates) {
  Dataset data = SmallDataset();
  EXPECT_DOUBLE_EQ(data.PositiveRate(), 0.5);
  // size == S rows: {0, 2}, both positive.
  EXPECT_DOUBLE_EQ(data.BaseRate(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(data.BaseRate(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(data.GroupFraction(1, 0), 0.5);
}

TEST(DatasetTest, SelectPreservesOrder) {
  Dataset data = SmallDataset();
  Dataset sel = data.Select({3, 0});
  ASSERT_EQ(sel.num_rows(), 2);
  EXPECT_EQ(sel.Code(0, 0), 0);
  EXPECT_EQ(sel.Label(0), 0);
  EXPECT_EQ(sel.Label(1), 1);
}

TEST(DatasetTest, DropRowsToleratesDuplicates) {
  Dataset data = SmallDataset();
  Dataset dropped = data.DropRows({1, 1, 3});
  ASSERT_EQ(dropped.num_rows(), 2);
  EXPECT_EQ(dropped.Label(0), 1);
  EXPECT_EQ(dropped.Label(1), 1);
}

TEST(DatasetTest, WithPermutedColumnOnlyTouchesThatColumn) {
  Dataset data = SmallDataset();
  Dataset perm = data.WithPermutedColumn(0, {3, 2, 1, 0});
  EXPECT_EQ(perm.Code(0, 0), data.Code(3, 0));
  EXPECT_EQ(perm.Code(3, 0), data.Code(0, 0));
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(perm.Code(r, 1), data.Code(r, 1));
    EXPECT_EQ(perm.Label(r), data.Label(r));
  }
}

// --------------------------------------------------------------- CSV

TEST(CsvTest, ReadTypedColumns) {
  std::istringstream in(
      "city,temp,label\n"
      "berlin,21.5,1\n"
      "paris,19.0,0\n"
      "berlin,30.5,1\n");
  CsvReadOptions opts;
  opts.label_column = "label";
  auto result = ReadCsv(in, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& data = *result;
  EXPECT_EQ(data.num_rows(), 3);
  EXPECT_EQ(data.schema().attribute(0).type, AttributeType::kCategorical);
  EXPECT_EQ(data.schema().attribute(1).type, AttributeType::kNumeric);
  EXPECT_EQ(data.Code(2, 0), 0);  // berlin == first seen
  EXPECT_DOUBLE_EQ(data.Numeric(2, 1), 30.5);
  EXPECT_EQ(data.Label(1), 0);
}

TEST(CsvTest, PositiveLabelValues) {
  std::istringstream in(
      "risk,label\n"
      "low,good\n"
      "high,bad\n");
  CsvReadOptions opts;
  opts.positive_label_values = {"good"};
  auto result = ReadCsv(in, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Label(0), 1);
  EXPECT_EQ(result->Label(1), 0);
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  std::istringstream in(
      "name,label\n"
      "\"Smith, John\",1\n"
      "\"say \"\"hi\"\"\",0\n");
  auto result = ReadCsv(in, CsvReadOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->CellToString(0, 0), "Smith, John");
  EXPECT_EQ(result->CellToString(1, 0), "say \"hi\"");
}

TEST(CsvTest, ForceCategorical) {
  std::istringstream in(
      "zip,label\n"
      "10115,1\n"
      "75001,0\n");
  CsvReadOptions opts;
  opts.force_categorical = {"zip"};
  auto result = ReadCsv(in, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().attribute(0).type, AttributeType::kCategorical);
}

TEST(CsvTest, MissingValuesBecomeACategory) {
  std::istringstream in(
      "city,income,label\n"
      "berlin,1000,1\n"
      "?,2000,0\n"
      "paris,NA,1\n"
      "berlin,1500,0\n");
  CsvReadOptions opts;
  opts.missing_values = {"?", "NA"};
  auto result = ReadCsv(in, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& data = *result;
  // city: berlin, (missing), paris. income has a missing value -> whole
  // column read as categorical with "(missing)" among the categories.
  EXPECT_EQ(data.schema().attribute(0).type, AttributeType::kCategorical);
  EXPECT_EQ(data.schema().attribute(1).type, AttributeType::kCategorical);
  EXPECT_EQ(data.CellToString(1, 0), "(missing)");
  EXPECT_EQ(data.CellToString(2, 1), "(missing)");
  EXPECT_EQ(data.CellToString(0, 1), "1000");
  // Without missing handling, "NA" is just another category string.
  std::istringstream in2(
      "city,income,label\nberlin,1000,1\nparis,NA,0\n");
  auto plain = ReadCsv(in2, CsvReadOptions{});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->CellToString(1, 1), "NA");
}

TEST(CsvTest, MissingHandlingKeepsCleanNumericColumnsNumeric) {
  std::istringstream in(
      "x,y,label\n"
      "1.5,a,1\n"
      "2.5,?,0\n");
  CsvReadOptions opts;
  opts.missing_values = {"?"};
  auto result = ReadCsv(in, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().attribute(0).type, AttributeType::kNumeric);
  EXPECT_EQ(result->schema().attribute(1).type, AttributeType::kCategorical);
}

TEST(CsvTest, ErrorsAreReported) {
  {
    std::istringstream in("");
    EXPECT_FALSE(ReadCsv(in, CsvReadOptions{}).ok());
  }
  {
    std::istringstream in("a,label\n1,1\n2\n");  // ragged row
    EXPECT_FALSE(ReadCsv(in, CsvReadOptions{}).ok());
  }
  {
    std::istringstream in("a,lab\n1,1\n");  // missing label column
    EXPECT_TRUE(ReadCsv(in, CsvReadOptions{}).status().IsKeyError());
  }
  {
    std::istringstream in("a,label\nx,2\n");  // non-binary label
    EXPECT_FALSE(ReadCsv(in, CsvReadOptions{}).ok());
  }
}

TEST(CsvTest, WriteReadRoundTrip) {
  Dataset data = SmallDataset();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(data, out).ok());
  std::istringstream in(out.str());
  auto back = ReadCsv(in, CsvReadOptions{});
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), data.num_rows());
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    EXPECT_EQ(back->CellToString(r, 0), data.CellToString(r, 0));
    EXPECT_EQ(back->Label(r), data.Label(r));
  }
}

// --------------------------------------------------------------- Discretizer

Dataset NumericDataset() {
  Schema schema;
  EXPECT_TRUE(schema.AddNumeric("x").ok());
  EXPECT_TRUE(schema.AddCategorical("c", {"u", "v"}).ok());
  Dataset data(schema);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        data.AppendRowMixed({0, i % 2}, {static_cast<double>(i), 0.0}, i % 2)
            .ok());
  }
  return data;
}

TEST(DiscretizerTest, QuantileBinsAreBalanced) {
  Dataset data = NumericDataset();
  DiscretizerOptions opts;
  opts.strategy = BinningStrategy::kQuantile;
  opts.num_bins = 4;
  auto disc = Discretizer::Fit(data, opts);
  ASSERT_TRUE(disc.ok()) << disc.status().ToString();
  auto binned = disc->Transform(data);
  ASSERT_TRUE(binned.ok());
  EXPECT_TRUE(binned->schema().AllCategorical());
  // Each quantile bin holds roughly a quarter of the rows.
  int counts[4] = {0, 0, 0, 0};
  for (int64_t r = 0; r < binned->num_rows(); ++r) {
    ASSERT_LT(binned->Code(r, 0), 4);
    ++counts[binned->Code(r, 0)];
  }
  for (int b = 0; b < 4; ++b) EXPECT_NEAR(counts[b], 25, 3);
}

TEST(DiscretizerTest, EquiWidthEdges) {
  Dataset data = NumericDataset();
  DiscretizerOptions opts;
  opts.strategy = BinningStrategy::kEquiWidth;
  opts.num_bins = 4;
  auto disc = Discretizer::Fit(data, opts);
  ASSERT_TRUE(disc.ok());
  const auto& edges = disc->edges(0);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_NEAR(edges[0], 24.75, 1e-9);
  EXPECT_NEAR(edges[1], 49.5, 1e-9);
}

TEST(DiscretizerTest, BinOrderIsMonotone) {
  Dataset data = NumericDataset();
  auto disc = Discretizer::Fit(data, DiscretizerOptions{});
  ASSERT_TRUE(disc.ok());
  auto binned = disc->Transform(data);
  ASSERT_TRUE(binned.ok());
  // Larger values never land in smaller bins.
  for (int64_t r = 1; r < data.num_rows(); ++r) {
    EXPECT_GE(binned->Code(r, 0), binned->Code(r - 1, 0));
  }
}

TEST(DiscretizerTest, CategoricalPassThrough) {
  Dataset data = NumericDataset();
  auto disc = Discretizer::Fit(data, DiscretizerOptions{});
  ASSERT_TRUE(disc.ok());
  auto binned = disc->Transform(data);
  ASSERT_TRUE(binned.ok());
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    EXPECT_EQ(binned->Code(r, 1), data.Code(r, 1));
  }
}

TEST(DiscretizerTest, ConstantColumnCollapses) {
  Schema schema;
  ASSERT_TRUE(schema.AddNumeric("flat").ok());
  Dataset data(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.AppendRowMixed({0}, {5.0}, 0).ok());
  }
  auto disc = Discretizer::Fit(data, DiscretizerOptions{});
  ASSERT_TRUE(disc.ok());
  auto binned = disc->Transform(data);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->schema().attribute(0).cardinality(), 1);
}

TEST(DiscretizerTest, RejectsSchemaMismatch) {
  Dataset data = NumericDataset();
  auto disc = Discretizer::Fit(data, DiscretizerOptions{});
  ASSERT_TRUE(disc.ok());
  Dataset other = SmallDataset();
  EXPECT_FALSE(disc->Transform(other).ok());
}

// --------------------------------------------------------------- Split

TEST(SplitTest, FractionsAndDisjointness) {
  Dataset data = NumericDataset();
  SplitOptions opts;
  opts.test_fraction = 0.3;
  auto split = SplitTrainTest(data, opts);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_rows() + split->test.num_rows(), 100);
  EXPECT_NEAR(split->test.num_rows(), 30, 2);
}

TEST(SplitTest, StratificationPreservesPositiveRate) {
  Dataset data = NumericDataset();  // 50% positive
  SplitOptions opts;
  opts.test_fraction = 0.4;
  opts.stratify_by_label = true;
  auto split = SplitTrainTest(data, opts);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(split->train.PositiveRate(), 0.5, 0.02);
  EXPECT_NEAR(split->test.PositiveRate(), 0.5, 0.02);
}

TEST(SplitTest, DeterministicBySeed) {
  Dataset data = NumericDataset();
  SplitOptions opts;
  opts.seed = 5;
  auto a = SplitTrainTest(data, opts);
  auto b = SplitTrainTest(data, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->train.num_rows(), b->train.num_rows());
  for (int64_t r = 0; r < a->train.num_rows(); ++r) {
    EXPECT_EQ(a->train.Numeric(r, 0), b->train.Numeric(r, 0));
  }
}

TEST(SplitTest, RejectsBadFraction) {
  Dataset data = NumericDataset();
  SplitOptions opts;
  opts.test_fraction = 1.5;
  EXPECT_FALSE(SplitTrainTest(data, opts).ok());
}

}  // namespace
}  // namespace fume
