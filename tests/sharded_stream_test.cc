// Sharded stream engine suite: StreamEngineConfig::shard.num_shards > 1
// runs the engine over a SISA ShardedForest. Pins the v2 checkpoint
// container (per-shard blobs, dirty-shard reuse), restore equivalence with
// an uninterrupted run, lazy-deferral flush identity, and config/version
// validation at restore time.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "data/split.h"
#include "stream/engine.h"
#include "stream/op_log.h"
#include "synth/datasets.h"

namespace fume {
namespace stream {
namespace {

struct ShardedPipeline {
  Dataset initial_train;
  Dataset pool;
  Dataset test;
  StreamEngineConfig config;
};

ShardedPipeline BuildPipeline(uint64_t seed, int num_shards) {
  synth::SynthOptions opts;
  opts.num_rows = 700;
  opts.seed = seed;
  auto bundle = synth::MakeGermanCredit(opts);
  EXPECT_TRUE(bundle.ok());
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 2;
  auto split = SplitTrainTest(bundle->data, split_opts);
  EXPECT_TRUE(split.ok());
  const int64_t pool_rows = split->train.num_rows() / 3;
  std::vector<int64_t> tail, head;
  for (int64_t r = split->train.num_rows() - pool_rows;
       r < split->train.num_rows(); ++r) {
    tail.push_back(r);
  }
  for (int64_t r = 0; r < split->train.num_rows() - pool_rows; ++r) {
    head.push_back(r);
  }
  ShardedPipeline p;
  p.initial_train = split->train.DropRows(tail);
  p.pool = split->train.DropRows(head);
  p.test = std::move(split->test);
  p.config.forest.num_trees = 8;
  p.config.forest.max_depth = 6;
  p.config.forest.random_depth = 2;
  p.config.forest.seed = 31;
  p.config.fume.top_k = 3;
  p.config.fume.support_min = 0.05;
  p.config.fume.support_max = 0.30;
  p.config.fume.max_literals = 1;
  p.config.fume.group = bundle->group;
  p.config.shard.num_shards = num_shards;
  return p;
}

// Deletes + one insert + a checkpoint op, all at fixed seqs.
std::vector<StreamOp> Ops(const ShardedPipeline& p) {
  std::vector<StreamOp> ops;
  ops.push_back(StreamOp::Delete(1, {4, 19, 23, 77}));
  ops.push_back(StreamOp::Delete(2, {101, 102, 103}));
  for (int64_t r = 0; r < 5; ++r) {
    StreamRow row;
    for (int a = 0; a < p.pool.num_attributes(); ++a) {
      row.codes.push_back(p.pool.Code(r, a));
    }
    row.label = p.pool.Label(r);
    ops.push_back(StreamOp::Insert(3 + r, {row}));
  }
  ops.push_back(StreamOp::Delete(9, {0, 1, 2, 150, 151}));
  ops.push_back(StreamOp::Checkpoint(10));
  return ops;
}

TEST(ShardedStreamTest, RestoreMidLogMatchesUninterrupted) {
  const ShardedPipeline p = BuildPipeline(5, 4);
  const std::vector<StreamOp> ops = Ops(p);

  auto uninterrupted = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status().ToString();
  auto victim = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(victim.ok());

  // Kill the victim after the 4th op; restore and replay the rest.
  std::stringstream blob(std::ios::in | std::ios::out | std::ios::binary);
  size_t cut = 4;
  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(uninterrupted->Apply(ops[i]).ok()) << "op " << i;
    if (i < cut) {
      ASSERT_TRUE(victim->Apply(ops[i]).ok());
    }
  }
  ASSERT_TRUE(victim->SaveCheckpoint(blob).ok());
  auto restored = StreamEngine::Restore(blob, p.initial_train.schema(),
                                        p.test, p.config);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored->is_sharded());
  for (size_t i = cut; i < ops.size(); ++i) {
    ASSERT_TRUE(restored->Apply(ops[i]).ok()) << "op " << i;
  }

  EXPECT_EQ(restored->current_metric(), uninterrupted->current_metric());
  EXPECT_EQ(restored->current_accuracy(), uninterrupted->current_accuracy());
  EXPECT_EQ(restored->live_ids(), uninterrupted->live_ids());
  const auto a = restored->sharded_forest().PredictProbAll(p.test);
  const auto b = uninterrupted->sharded_forest().PredictProbAll(p.test);
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) ASSERT_EQ(a[r], b[r]) << "row " << r;
  EXPECT_TRUE(restored->sharded_forest().StructurallyEquals(
      uninterrupted->sharded_forest()));
}

TEST(ShardedStreamTest, CheckpointBytesAreStableAcrossTheBlobCache) {
  const ShardedPipeline p = BuildPipeline(6, 4);
  auto engine = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(engine.ok());
  for (const StreamOp& op : Ops(p)) ASSERT_TRUE(engine->Apply(op).ok());

  // First save serializes every shard; the second reuses every cached
  // blob (nothing dirtied in between) and must emit identical bytes.
  std::ostringstream first(std::ios::binary), second(std::ios::binary);
  ASSERT_TRUE(engine->SaveCheckpoint(first).ok());
  ASSERT_TRUE(engine->SaveCheckpoint(second).ok());
  EXPECT_EQ(first.str(), second.str());

  // A restored engine re-saves to the same bytes (cold blob cache).
  std::istringstream in(first.str(), std::ios::binary);
  auto restored = StreamEngine::Restore(in, p.initial_train.schema(), p.test,
                                        p.config);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::ostringstream resaved(std::ios::binary);
  ASSERT_TRUE(restored->SaveCheckpoint(resaved).ok());
  EXPECT_EQ(resaved.str(), first.str());

  // Dirtying one shard invalidates only that blob; the incremental save
  // still matches a save from a fresh engine replayed to the same state.
  ASSERT_TRUE(engine->Apply(StreamOp::Delete(11, {30, 31})).ok());
  ASSERT_TRUE(restored->Apply(StreamOp::Delete(11, {30, 31})).ok());
  std::ostringstream inc(std::ios::binary), fresh(std::ios::binary);
  ASSERT_TRUE(engine->SaveCheckpoint(inc).ok());
  ASSERT_TRUE(restored->SaveCheckpoint(fresh).ok());
  EXPECT_EQ(inc.str(), fresh.str());
}

TEST(ShardedStreamTest, LazyDeferralFlushesToTheEagerState) {
  ShardedPipeline eager_p = BuildPipeline(7, 4);
  ShardedPipeline lazy_p = BuildPipeline(7, 4);
  lazy_p.config.forest.lazy_unlearn = true;
  auto eager = StreamEngine::Create(eager_p.initial_train, eager_p.test,
                                    eager_p.config);
  auto lazy =
      StreamEngine::Create(lazy_p.initial_train, lazy_p.test, lazy_p.config);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  for (int seq = 1; seq <= 3; ++seq) {
    const StreamOp op = StreamOp::Delete(
        seq, {seq * 10, seq * 10 + 1, seq * 10 + 2, seq * 100});
    ASSERT_TRUE(eager->Apply(op).ok());
    ASSERT_TRUE(lazy->Apply(op).ok());
  }
  lazy->FlushLazy();
  EXPECT_EQ(lazy->current_metric(), eager->current_metric());
  const auto a = lazy->sharded_forest().PredictProbAll(lazy_p.test);
  const auto b = eager->sharded_forest().PredictProbAll(eager_p.test);
  EXPECT_EQ(a, b);
}

TEST(ShardedStreamTest, RestoreValidatesVersionAndShardConfig) {
  const ShardedPipeline p = BuildPipeline(8, 2);
  auto engine = StreamEngine::Create(p.initial_train, p.test, p.config);
  ASSERT_TRUE(engine.ok());
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(engine->SaveCheckpoint(out).ok());

  // A sharded (v2) checkpoint cannot restore into a monolithic config...
  StreamEngineConfig mono = p.config;
  mono.shard.num_shards = 1;
  std::istringstream in1(out.str(), std::ios::binary);
  EXPECT_FALSE(
      StreamEngine::Restore(in1, p.initial_train.schema(), p.test, mono).ok());
  // ...nor into one with a different shard layout.
  StreamEngineConfig wrong = p.config;
  wrong.shard.num_shards = 4;
  std::istringstream in2(out.str(), std::ios::binary);
  EXPECT_FALSE(
      StreamEngine::Restore(in2, p.initial_train.schema(), p.test, wrong).ok());
  // The exact config restores fine.
  std::istringstream in3(out.str(), std::ios::binary);
  EXPECT_TRUE(
      StreamEngine::Restore(in3, p.initial_train.schema(), p.test, p.config)
          .ok());

  // And a monolithic (v1) checkpoint refuses a sharded config.
  auto mono_engine = StreamEngine::Create(p.initial_train, p.test, mono);
  ASSERT_TRUE(mono_engine.ok());
  std::ostringstream mono_out(std::ios::binary);
  ASSERT_TRUE(mono_engine->SaveCheckpoint(mono_out).ok());
  std::istringstream in4(mono_out.str(), std::ios::binary);
  EXPECT_FALSE(
      StreamEngine::Restore(in4, p.initial_train.schema(), p.test, p.config)
          .ok());
}

}  // namespace
}  // namespace stream
}  // namespace fume
