// Tests for the apriori lattice: level-1 generation, the prefix join,
// Rule 1 contradiction filtering, support anti-monotonicity and Rule 4
// parent bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "subset/lattice.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset LatticeData(int64_t n = 200) {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("a", {"a0", "a1", "a2"}).ok());
  EXPECT_TRUE(schema.AddCategorical("b", {"b0", "b1"}).ok());
  EXPECT_TRUE(schema.AddCategorical("c", {"c0", "c1", "c2", "c3"}).ok());
  Dataset data(schema);
  Rng rng(3);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(data.AppendRow({rng.NextInt(0, 2), rng.NextInt(0, 1),
                                rng.NextInt(0, 3)},
                               rng.NextInt(0, 1))
                    .ok());
  }
  return data;
}

TEST(LatticeTest, Level1HasOneNodePerLiteral) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level1 = lattice.MakeLevel1();
  EXPECT_EQ(level1.size(), 3u + 2u + 4u);
  EXPECT_EQ(lattice.NumPossibleLevel1(), 9);
  for (const auto& node : level1) {
    EXPECT_EQ(node.level, 1);
    EXPECT_EQ(node.predicate.num_literals(), 1);
    EXPECT_DOUBLE_EQ(node.support, node.predicate.Support(data));
    EXPECT_FALSE(node.attribution_known());
  }
}

TEST(LatticeTest, ExcludedAttrsAreSkipped) {
  Dataset data = LatticeData();
  LatticeOptions opts;
  opts.excluded_attrs = {1};
  Lattice lattice(data, opts);
  for (const auto& node : lattice.MakeLevel1()) {
    EXPECT_NE(node.predicate.literals()[0].attr, 1);
  }
  EXPECT_EQ(lattice.MakeLevel1().size(), 7u);
}

TEST(LatticeTest, RangeLiteralsOptIn) {
  Dataset data = LatticeData();
  LatticeOptions opts;
  opts.range_literals = true;
  Lattice lattice(data, opts);
  bool saw_range = false;
  for (const auto& node : lattice.MakeLevel1()) {
    if (node.predicate.literals()[0].op != LiteralOp::kEq) saw_range = true;
  }
  EXPECT_TRUE(saw_range);
}

TEST(LatticeTest, Level2JoinNeverRepeatsAttributes) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  int64_t pairs = 0;
  auto level2 = lattice.MergeLevel(lattice.MakeLevel1(), &pairs);
  EXPECT_EQ(pairs, 9 * 8 / 2);  // all pairs considered
  // With equality-only literals, same-attribute merges are contradictions:
  // 3*2 + 3*4 + 2*4 = 26 valid cross-attribute pairs.
  EXPECT_EQ(level2.size(), 26u);
  for (const auto& node : level2) {
    EXPECT_EQ(node.level, 2);
    ASSERT_EQ(node.predicate.num_literals(), 2);
    EXPECT_NE(node.predicate.literals()[0].attr,
              node.predicate.literals()[1].attr);
    EXPECT_TRUE(node.predicate.IsSatisfiable(data.schema()));
  }
}

TEST(LatticeTest, JoinProducesUniquePredicates) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level2 = lattice.MergeLevel(lattice.MakeLevel1(), nullptr);
  std::set<std::string> seen;
  for (const auto& node : level2) {
    EXPECT_TRUE(seen.insert(node.predicate.ToString(data.schema())).second);
  }
}

TEST(LatticeTest, ChildRowsAreParentIntersection) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level2 = lattice.MergeLevel(lattice.MakeLevel1(), nullptr);
  for (const auto& node : level2) {
    EXPECT_EQ(node.rows.ToRows(), node.predicate.MatchingRows(data));
  }
}

TEST(LatticeTest, SupportCountMatchesRowsAtEveryLevel) {
  // The fused parent∩literal derivation caches |rows| in support_count so
  // downstream consumers never re-popcount; it must agree with the bitmap
  // and the fraction-of-|D| support at every level.
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level = lattice.MakeLevel1();
  for (int depth = 1; depth <= 3 && !level.empty(); ++depth) {
    for (const auto& node : level) {
      EXPECT_EQ(node.support_count, node.rows.Count());
      EXPECT_DOUBLE_EQ(node.support,
                       static_cast<double>(node.support_count) /
                           static_cast<double>(data.num_rows()));
    }
    level = lattice.MergeLevel(level, nullptr);
  }
}

TEST(LatticeTest, SupportIsAntiMonotone) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level1 = lattice.MakeLevel1();
  auto level2 = lattice.MergeLevel(level1, nullptr);
  for (const auto& child : level2) {
    for (const auto& parent : level1) {
      if (parent.predicate.IsSubsetOf(child.predicate)) {
        EXPECT_LE(child.support, parent.support + 1e-12);
      }
    }
  }
}

TEST(LatticeTest, Level3FromLevel2) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level2 = lattice.MergeLevel(lattice.MakeLevel1(), nullptr);
  auto level3 = lattice.MergeLevel(level2, nullptr);
  // 3 attributes -> level-3 nodes constrain all three: 3*2*4 = 24.
  EXPECT_EQ(level3.size(), 24u);
  for (const auto& node : level3) {
    EXPECT_EQ(node.predicate.num_literals(), 3);
    EXPECT_EQ(node.rows.ToRows(), node.predicate.MatchingRows(data));
  }
  // Level 4 is impossible with 3 attributes.
  EXPECT_TRUE(lattice.MergeLevel(level3, nullptr).empty());
}

TEST(LatticeTest, ParentAttributionPropagatesMax) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level1 = lattice.MakeLevel1();
  // Pretend FUME estimated some attributions.
  for (size_t i = 0; i < level1.size(); ++i) {
    level1[i].attribution = 0.1 * static_cast<double>(i);
  }
  auto level2 = lattice.MergeLevel(level1, nullptr);
  for (const auto& child : level2) {
    double max_parent = -1.0;
    for (const auto& parent : level1) {
      if (parent.predicate.IsSubsetOf(child.predicate)) {
        max_parent = std::max(max_parent, parent.attribution);
      }
    }
    ASSERT_FALSE(std::isnan(child.parent_attribution));
    EXPECT_DOUBLE_EQ(child.parent_attribution, max_parent);
  }
}

TEST(LatticeTest, UnknownParentAttributionStaysNaN) {
  Dataset data = LatticeData();
  Lattice lattice(data, LatticeOptions{});
  auto level1 = lattice.MakeLevel1();  // no attributions estimated
  auto level2 = lattice.MergeLevel(level1, nullptr);
  for (const auto& child : level2) {
    EXPECT_TRUE(std::isnan(child.parent_attribution));
  }
}

}  // namespace
}  // namespace fume
