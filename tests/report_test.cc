// Tests for report rendering: top-k tables, exploration stats, violation
// summaries and baseline lines — plus the umbrella header compiling.

#include <gtest/gtest.h>

#include <sstream>

#include "fume/api.h"

namespace fume {
namespace {

Schema SimpleSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("color", {"red", "blue"}).ok());
  EXPECT_TRUE(schema.AddCategorical("size", {"S", "L"}).ok());
  return schema;
}

FumeResult FakeResult() {
  FumeResult result;
  result.original_fairness = -0.12;
  result.original_accuracy = 0.81;
  AttributableSubset s;
  s.predicate = Predicate({Literal{0, LiteralOp::kEq, 1},
                           Literal{1, LiteralOp::kEq, 0}});
  s.support = 0.071;
  s.num_rows = 71;
  s.attribution = 0.435;
  s.phi = -0.435;
  s.new_fairness = -0.0678;
  s.new_accuracy = 0.79;
  result.top_k.push_back(s);
  result.all_candidates.push_back(s);
  LevelStats level;
  level.level = 1;
  level.possible = 40;
  level.explored = 10;
  result.stats.levels.push_back(level);
  result.stats.attribution_evaluations = 10;
  result.stats.total_seconds = 0.5;
  return result;
}

TEST(ReportTest, TopKTableContents) {
  std::ostringstream os;
  PrintTopK(FakeResult(), SimpleSchema(), "ZZ", os);
  const std::string out = os.str();
  EXPECT_NE(out.find("ZZ1"), std::string::npos);
  EXPECT_NE(out.find("(color = blue) AND (size = S)"), std::string::npos);
  EXPECT_NE(out.find("7.10%"), std::string::npos);   // support
  EXPECT_NE(out.find("43.50%"), std::string::npos);  // reduction
}

TEST(ReportTest, EmptyTopKPrintsPlaceholder) {
  FumeResult result = FakeResult();
  result.top_k.clear();
  std::ostringstream os;
  PrintTopK(result, SimpleSchema(), "X", os);
  EXPECT_NE(os.str().find("no attributable subsets"), std::string::npos);
}

TEST(ReportTest, ExplorationStatsPercentages) {
  std::ostringstream os;
  PrintExplorationStats(FakeResult().stats, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("75.00"), std::string::npos);  // 1 - 10/40
  EXPECT_NE(out.find("attribution evaluations: 10"), std::string::npos);
}

TEST(ReportTest, ViolationSummaryDirection) {
  std::ostringstream os;
  PrintViolationSummary(FakeResult(), FairnessMetric::kStatisticalParity, os);
  EXPECT_NE(os.str().find("biased against the protected group"),
            std::string::npos);
  FumeResult flipped = FakeResult();
  flipped.original_fairness = 0.2;
  std::ostringstream os2;
  PrintViolationSummary(flipped, FairnessMetric::kStatisticalParity, os2);
  EXPECT_NE(os2.str().find("biased against the privileged group"),
            std::string::npos);
}

TEST(ReportTest, BaselineLine) {
  BaselineResult baseline;
  baseline.removed_fraction = 0.1475;
  baseline.removed_rows = 147;
  baseline.parity_reduction = 0.855;
  baseline.original_accuracy = 0.8;
  baseline.new_accuracy = 0.78;
  std::ostringstream os;
  PrintBaseline(baseline, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("14.75%"), std::string::npos);
  EXPECT_NE(out.find("85.50%"), std::string::npos);
  EXPECT_NE(out.find("147 rows"), std::string::npos);
}

TEST(ReportTest, FormatReportBundlesEverything) {
  const std::string report = FormatReport(
      FakeResult(), SimpleSchema(), FairnessMetric::kPredictiveParity, "Q");
  EXPECT_NE(report.find("predictive parity"), std::string::npos);
  EXPECT_NE(report.find("Q1"), std::string::npos);
  EXPECT_NE(report.find("Possible subsets"), std::string::npos);
}

}  // namespace
}  // namespace fume
