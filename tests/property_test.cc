// Cross-cutting property tests: randomized sweeps checking module
// invariants against brute-force reference implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/csv.h"
#include "fairness/metrics.h"
#include "forest/forest.h"
#include "subset/lattice.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset RandomDataset(int64_t n, int p, int max_card, uint64_t seed) {
  Schema schema;
  Rng schema_rng(seed);
  std::vector<int> cards;
  for (int j = 0; j < p; ++j) {
    const int card = schema_rng.NextInt(2, max_card);
    cards.push_back(card);
    std::vector<std::string> cats;
    for (int v = 0; v < card; ++v) {
      cats.push_back("a" + std::to_string(j) + "v" + std::to_string(v));
    }
    EXPECT_TRUE(schema.AddCategorical("attr" + std::to_string(j), cats).ok());
  }
  Dataset data(schema);
  Rng rng(seed + 1);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int32_t> row(static_cast<size_t>(p));
    for (int j = 0; j < p; ++j) {
      row[static_cast<size_t>(j)] = rng.NextInt(0, cards[static_cast<size_t>(j)] - 1);
    }
    EXPECT_TRUE(data.AppendRow(row, rng.NextInt(0, 1)).ok());
  }
  return data;
}

// ------------------------------------------------ lattice vs brute force

class LatticeBruteForceSweep : public testing::TestWithParam<int> {};

TEST_P(LatticeBruteForceSweep, Level2MatchesEnumeration) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dataset data = RandomDataset(80, 3 + static_cast<int>(seed % 3), 4, seed);
  Lattice lattice(data, LatticeOptions{});
  auto level2 = lattice.MergeLevel(lattice.MakeLevel1(), nullptr);

  // Brute force: every pair of equality literals on distinct attributes.
  std::set<std::string> expected;
  const Schema& schema = data.schema();
  for (int a = 0; a < schema.num_attributes(); ++a) {
    for (int b = a + 1; b < schema.num_attributes(); ++b) {
      for (int32_t va = 0; va < schema.attribute(a).cardinality(); ++va) {
        for (int32_t vb = 0; vb < schema.attribute(b).cardinality(); ++vb) {
          Predicate pred({Literal{a, LiteralOp::kEq, va},
                          Literal{b, LiteralOp::kEq, vb}});
          expected.insert(pred.ToString(schema));
        }
      }
    }
  }
  std::set<std::string> produced;
  for (const auto& node : level2) {
    produced.insert(node.predicate.ToString(schema));
    // Support and row bitmaps must agree with a rescan.
    EXPECT_EQ(node.rows.ToRows(), node.predicate.MatchingRows(data));
  }
  EXPECT_EQ(produced, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeBruteForceSweep, testing::Range(0, 6));

// ------------------------------------- interleaved add/delete exactness

class InterleaveSweep : public testing::TestWithParam<int> {};

TEST_P(InterleaveSweep, AddDeleteInterleavingsMatchScratch) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dataset base = RandomDataset(120, 4, 4, seed * 7 + 1);
  Dataset extra = RandomDataset(60, 4, 4, seed * 7 + 1);  // same schema seed
  ForestConfig config;
  config.num_trees = 2;
  config.max_depth = 6;
  config.random_depth = 1;
  config.seed = seed;

  auto forest = DareForest::Train(base, config);
  ASSERT_TRUE(forest.ok());

  // Random interleaving of add-batches and delete-batches, tracking the
  // expected surviving multiset as (row source, index) pairs.
  Rng rng(seed + 55);
  std::vector<std::pair<int, int64_t>> alive;  // (0=base,1=extra, idx)
  for (int64_t r = 0; r < base.num_rows(); ++r) alive.emplace_back(0, r);
  std::vector<RowId> id_of;  // store ids parallel to `alive`
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    id_of.push_back(static_cast<RowId>(r));
  }
  int64_t extra_cursor = 0;
  for (int step = 0; step < 6; ++step) {
    if (rng.NextBernoulli(0.5) && extra_cursor + 10 <= extra.num_rows()) {
      // Add a batch of 10 new rows.
      std::vector<int64_t> take;
      for (int64_t i = 0; i < 10; ++i) take.push_back(extra_cursor + i);
      auto ids = forest->AddData(extra.Select(take));
      ASSERT_TRUE(ids.ok());
      for (int64_t i = 0; i < 10; ++i) {
        alive.emplace_back(1, extra_cursor + i);
        id_of.push_back((*ids)[static_cast<size_t>(i)]);
      }
      extra_cursor += 10;
    } else if (alive.size() > 20) {
      // Delete 8 random surviving rows.
      std::vector<size_t> order(alive.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(&order);
      std::vector<size_t> victims(order.begin(), order.begin() + 8);
      std::sort(victims.rbegin(), victims.rend());
      std::vector<RowId> doomed;
      for (size_t v : victims) doomed.push_back(id_of[v]);
      ASSERT_TRUE(forest->DeleteRows(doomed).ok());
      for (size_t v : victims) {
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(v));
        id_of.erase(id_of.begin() + static_cast<std::ptrdiff_t>(v));
      }
    }
  }
  ASSERT_TRUE(forest->ValidateStats());

  // Scratch model trained on the surviving rows in store order (base rows
  // first, added rows after — the ids are monotone in insertion order, so
  // sorting by id reproduces it).
  std::vector<size_t> order(alive.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return id_of[x] < id_of[y]; });
  Dataset survivors(base.schema());
  std::vector<int32_t> codes(static_cast<size_t>(base.num_attributes()));
  for (size_t i : order) {
    const Dataset& src = alive[i].first == 0 ? base : extra;
    const int64_t r = alive[i].second;
    for (int j = 0; j < base.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = src.Code(r, j);
    }
    ASSERT_TRUE(survivors.AppendRow(codes, src.Label(r)).ok());
  }
  auto scratch = DareForest::Train(survivors, config);
  ASSERT_TRUE(scratch.ok());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    ASSERT_DOUBLE_EQ(forest->PredictProb(base, r),
                     scratch->PredictProb(base, r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleaveSweep, testing::Range(0, 8));

// ------------------------------------------------ fairness invariances

TEST(FairnessPropertyTest, RowPermutationInvariance) {
  Dataset data = RandomDataset(300, 3, 3, 9);
  GroupSpec group{0, 0};
  Rng rng(10);
  std::vector<int> preds(static_cast<size_t>(data.num_rows()));
  for (auto& p : preds) p = rng.NextInt(0, 1);

  std::vector<int64_t> perm(static_cast<size_t>(data.num_rows()));
  for (int64_t i = 0; i < data.num_rows(); ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(&perm);
  Dataset shuffled = data.Select(perm);
  std::vector<int> shuffled_preds(preds.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    shuffled_preds[i] = preds[static_cast<size_t>(perm[i])];
  }
  for (FairnessMetric metric :
       {FairnessMetric::kStatisticalParity, FairnessMetric::kEqualizedOdds,
        FairnessMetric::kPredictiveParity, FairnessMetric::kEqualOpportunity,
        FairnessMetric::kDisparateImpact}) {
    EXPECT_DOUBLE_EQ(ComputeFairness(data, preds, group, metric),
                     ComputeFairness(shuffled, shuffled_preds, group, metric));
  }
}

TEST(FairnessPropertyTest, SwappingPrivilegedCodeFlipsDifferenceMetrics) {
  Dataset data = RandomDataset(300, 3, 2, 11);
  Rng rng(12);
  std::vector<int> preds(static_cast<size_t>(data.num_rows()));
  for (auto& p : preds) p = rng.NextInt(0, 1);
  GroupSpec g0{0, 0};
  GroupSpec g1{0, 1};
  for (FairnessMetric metric :
       {FairnessMetric::kStatisticalParity,
        FairnessMetric::kEqualOpportunity}) {
    EXPECT_NEAR(ComputeFairness(data, preds, g0, metric),
                -ComputeFairness(data, preds, g1, metric), 1e-12);
  }
}

// ------------------------------------------------ CSV fuzz round trips

class CsvFuzzSweep : public testing::TestWithParam<int> {};

TEST_P(CsvFuzzSweep, RandomDatasetsRoundTrip) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dataset data = RandomDataset(40 + static_cast<int64_t>(seed * 17), 2 + static_cast<int>(seed % 4),
                               5, seed);
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(data, out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadCsv(in, CsvReadOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), data.num_rows());
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    EXPECT_EQ(loaded->Label(r), data.Label(r));
    for (int j = 0; j < data.num_attributes(); ++j) {
      EXPECT_EQ(loaded->CellToString(r, j), data.CellToString(r, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzSweep, testing::Range(0, 6));

}  // namespace
}  // namespace fume
