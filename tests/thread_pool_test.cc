// Tests for util::ThreadPool, in particular the generation-tagged ticket
// that keeps stragglers from one ParallelFor batch from claiming or
// completing indices of the next one.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace fume {
namespace util {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{64}, size_t{999}}) {
    std::vector<std::atomic<int>> hits(n);
    std::atomic<int> max_worker{0};
    pool.ParallelFor(n, [&](int worker, size_t i) {
      int prev = max_worker.load(std::memory_order_relaxed);
      while (prev < worker && !max_worker.compare_exchange_weak(prev, worker)) {
      }
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
    EXPECT_LT(max_worker.load(), pool.num_threads());
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(17, 0);
  pool.ParallelFor(hits.size(), [&](int worker, size_t i) {
    EXPECT_EQ(worker, 0);
    ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  pool.ParallelFor(0, [&](int, size_t) { FAIL() << "n = 0 must not run fn"; });
}

TEST(ThreadPoolTest, WritesAreVisibleAfterReturn) {
  ThreadPool pool(4);
  std::vector<int64_t> out(513, -1);
  pool.ParallelFor(out.size(), [&](int, size_t i) {
    out[i] = static_cast<int64_t>(i) * 2 + 1;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int64_t>(i) * 2 + 1);
  }
}

// Regression for a straggler race across batch generations: a worker
// delayed between claiming an index and checking the batch bound could
// observe the NEXT batch's job instead — duplicating an index that the
// fresh claim counter hands out again, double-counting completion, and
// letting ParallelFor return while a job still ran against stack-scoped
// captures. Tight back-to-back batches of varying tiny sizes maximize
// generation turnover; each batch's stack-local tally must come out
// exactly one hit per index (ASan/TSan additionally catch a late write).
TEST(ThreadPoolTest, BackToBackBatchesDoNotLeakAcrossGenerations) {
  ThreadPool pool(8);
  for (int round = 0; round < 3000; ++round) {
    const size_t n = 2 + static_cast<size_t>(round % 6);
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, [&](int, size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1)
          << "round " << round << " index " << i << " of " << n;
    }
  }
}

}  // namespace
}  // namespace util
}  // namespace fume
