// Tests for query-scoped cost attribution (obs/query_scope.h): delta
// isolation between scopes, nesting containment, attribution of work done
// by ThreadPool workers back to the enqueuing scope (exercised at several
// pool widths — the TSan sweep runs this file), reconciliation of a FUME
// search's scope report against the global registry, and the contract
// that scoping never changes search results.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/fume.h"
#include "obs/metrics.h"
#include "obs/query_scope.h"
#include "synth/datasets.h"
#include "util/thread_pool.h"

namespace fume {
namespace {

// --------------------------------------------------- basic delta capture

TEST(QueryScopeTest, SequentialScopesIsolateDeltas) {
  obs::Counter* a = obs::GetCounter("test.qscope.a");
  obs::Counter* b = obs::GetCounter("test.qscope.b");
  const int64_t a_before = a->Value();
  const int64_t b_before = b->Value();

  obs::QueryScope first("first", {"test.qscope.a", "test.qscope.b"});
  a->Inc(5);
  b->Inc(2);
  const obs::QueryCost first_cost = first.Finish();
  EXPECT_EQ(first_cost.CounterDelta("test.qscope.a"), 5);
  EXPECT_EQ(first_cost.CounterDelta("test.qscope.b"), 2);

  // A later scope starts from zero — it does not inherit earlier deltas.
  obs::QueryScope second("second", {"test.qscope.a", "test.qscope.b"});
  a->Inc(7);
  const obs::QueryCost second_cost = second.Finish();
  EXPECT_EQ(second_cost.CounterDelta("test.qscope.a"), 7);
  EXPECT_EQ(second_cost.CounterDelta("test.qscope.b"), 0);

  // The cumulative registry kept counting through both scopes.
  EXPECT_EQ(a->Value() - a_before, 12);
  EXPECT_EQ(b->Value() - b_before, 2);
}

TEST(QueryScopeTest, UntrackedCounterFallsThroughToRegistryOnly) {
  obs::Counter* tracked = obs::GetCounter("test.qscope.tracked");
  obs::Counter* untracked = obs::GetCounter("test.qscope.untracked");
  const int64_t untracked_before = untracked->Value();

  obs::QueryScope scope("scope", {"test.qscope.tracked"});
  tracked->Inc();
  untracked->Inc(3);
  const obs::QueryCost cost = scope.Finish();
  EXPECT_EQ(cost.CounterDelta("test.qscope.tracked"), 1);
  EXPECT_EQ(cost.CounterDelta("test.qscope.untracked"), 0);
  EXPECT_EQ(untracked->Value() - untracked_before, 3);
}

TEST(QueryScopeTest, NestedScopeDeltasFlowIntoOuterScope) {
  obs::Counter* c = obs::GetCounter("test.qscope.nested");
  obs::QueryScope outer("outer", {"test.qscope.nested"});
  c->Inc(1);
  {
    obs::QueryScope inner("inner", {"test.qscope.nested"});
    c->Inc(10);
    const obs::QueryCost inner_cost = inner.Finish();
    EXPECT_EQ(inner_cost.CounterDelta("test.qscope.nested"), 10);
  }
  c->Inc(100);
  const obs::QueryCost outer_cost = outer.Finish();
  // Outer includes its own increments and everything the inner scope saw.
  EXPECT_EQ(outer_cost.CounterDelta("test.qscope.nested"), 111);
}

TEST(QueryScopeTest, HistogramDeltasCaptureCountAndSum) {
  obs::Histogram* h = obs::GetHistogram("test.qscope.hist");
  obs::QueryScope scope("scope", {}, {"test.qscope.hist"});
  h->Record(4);
  h->Record(6);
  const obs::QueryCost cost = scope.Finish();
  ASSERT_EQ(cost.histograms.size(), 1u);
  EXPECT_EQ(cost.histograms[0].name, "test.qscope.hist");
  EXPECT_EQ(cost.histograms[0].count, 2);
  EXPECT_EQ(cost.histograms[0].sum, 10);
}

TEST(QueryScopeTest, WallAndCpuTimesAreSane) {
  obs::QueryScope scope("timing", {});
  // Burn a little CPU so thread-CPU time is measurably nonzero.
  volatile int64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  const obs::QueryCost cost = scope.Finish();
  EXPECT_GT(cost.wall_seconds, 0.0);
  EXPECT_GE(cost.cpu_seconds, 0.0);
  // Repeated Finish returns the same (memoized) report.
  const obs::QueryCost again = scope.Finish();
  EXPECT_EQ(again.wall_seconds, cost.wall_seconds);
  EXPECT_EQ(again.cpu_seconds, cost.cpu_seconds);
}

TEST(QueryScopeTest, ReportFormatsElideZeroDeltas) {
  obs::Counter* hot = obs::GetCounter("test.qscope.fmt_hot");
  obs::QueryScope scope("fmt", {"test.qscope.fmt_hot", "test.qscope.fmt_cold"});
  hot->Inc(9);
  const obs::QueryCost cost = scope.Finish();

  const std::string json = cost.ToJson();
  EXPECT_NE(json.find("\"label\":\"fmt\""), std::string::npos);
  EXPECT_NE(json.find("\"test.qscope.fmt_hot\":9"), std::string::npos);
  EXPECT_EQ(json.find("fmt_cold"), std::string::npos);

  const std::string compact = cost.CompactString();
  EXPECT_NE(compact.find("wall "), std::string::npos);
  EXPECT_NE(compact.find("test.qscope.fmt_hot=9"), std::string::npos);
  EXPECT_EQ(compact.find("fmt_cold"), std::string::npos);
}

// ------------------------------------------- cross-thread attribution

TEST(QueryScopeTest, PoolWorkersAttributeToEnqueuingScope) {
  obs::Counter* c = obs::GetCounter("test.qscope.pool");
  for (int num_threads : {1, 4, 8}) {
    util::ThreadPool pool(num_threads);
    const int64_t before = c->Value();
    constexpr size_t kJobs = 5000;

    obs::QueryScope scope("pool", {"test.qscope.pool"});
    pool.ParallelFor(kJobs, [&](int /*worker*/, size_t /*index*/) {
      c->Inc();
    });
    const obs::QueryCost cost = scope.Finish();

    // Every increment lands on the enqueuing scope, no matter which worker
    // thread ran it — and exactly once.
    EXPECT_EQ(cost.CounterDelta("test.qscope.pool"),
              static_cast<int64_t>(kJobs))
        << "num_threads=" << num_threads;
    EXPECT_EQ(c->Value() - before, static_cast<int64_t>(kJobs));
  }
}

TEST(QueryScopeTest, PoolAttributionReachesOuterScopeToo) {
  obs::Counter* c = obs::GetCounter("test.qscope.pool_nested");
  util::ThreadPool pool(4);
  obs::QueryScope outer("outer", {"test.qscope.pool_nested"});
  {
    obs::QueryScope inner("inner", {"test.qscope.pool_nested"});
    pool.ParallelFor(1000, [&](int, size_t) { c->Inc(); });
    EXPECT_EQ(inner.Finish().CounterDelta("test.qscope.pool_nested"), 1000);
  }
  EXPECT_EQ(outer.Finish().CounterDelta("test.qscope.pool_nested"), 1000);
}

TEST(QueryScopeTest, ConsecutiveBatchesOnOnePoolStayScoped) {
  // Reusing one pool across scopes must not leak a stale scope pointer into
  // a later batch.
  obs::Counter* c = obs::GetCounter("test.qscope.pool_reuse");
  util::ThreadPool pool(4);
  {
    obs::QueryScope scope("first", {"test.qscope.pool_reuse"});
    pool.ParallelFor(300, [&](int, size_t) { c->Inc(); });
    EXPECT_EQ(scope.Finish().CounterDelta("test.qscope.pool_reuse"), 300);
  }
  {
    obs::QueryScope scope("second", {"test.qscope.pool_reuse"});
    pool.ParallelFor(200, [&](int, size_t) { c->Inc(); });
    EXPECT_EQ(scope.Finish().CounterDelta("test.qscope.pool_reuse"), 200);
  }
  // And a batch with no active scope attributes to nobody (must not crash
  // or revive the finished scopes).
  pool.ParallelFor(100, [&](int, size_t) { c->Inc(); });
}

TEST(QueryScopeTest, UnrelatedThreadDoesNotAttributeToScope) {
  obs::Counter* c = obs::GetCounter("test.qscope.foreign");
  const int64_t before = c->Value();
  obs::QueryScope scope("scope", {"test.qscope.foreign"});
  // A plain std::thread (not a pool worker carrying this scope) increments
  // the counter: the registry sees it, the scope does not.
  std::thread t([&]() {
    for (int i = 0; i < 100; ++i) c->Inc();
  });
  t.join();
  const obs::QueryCost cost = scope.Finish();
  EXPECT_EQ(cost.CounterDelta("test.qscope.foreign"), 0);
  EXPECT_EQ(c->Value() - before, 100);
}

// ------------------------------------------------- end-to-end with FUME

struct Fixture {
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest model;
};

Fixture MakeFixture(uint64_t seed = 1, int64_t rows = 1500) {
  synth::PlantedOptions opts;
  opts.num_rows = rows;
  opts.seed = seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, DareForest()};
  ForestConfig forest_config;
  forest_config.num_trees = 5;
  forest_config.max_depth = 6;
  forest_config.random_depth = 2;
  forest_config.seed = 23;
  auto model = DareForest::Train(f.train, forest_config);
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  return f;
}

FumeConfig TestFumeConfig(const Fixture& f) {
  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.metric = FairnessMetric::kStatisticalParity;
  config.group = f.group;
  config.lattice.excluded_attrs = {f.group.sensitive_attr};
  return config;
}

TEST(QueryScopeFumeTest, SearchCostReconcilesWithGlobalRegistry) {
  Fixture f = MakeFixture(2);
  FumeConfig config = TestFumeConfig(f);
  config.num_threads = 4;

  // With a freshly zeroed registry and exactly one scoped query, every
  // tracked delta must equal the registry's cumulative value — including
  // work done on pool worker threads.
  obs::MetricsRegistry::Global().Reset();
  obs::QueryScope scope("search");
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  const obs::QueryCost cost = scope.Finish();
  ASSERT_TRUE(result.ok());

  const obs::MetricsSnapshot m = obs::MetricsRegistry::Global().Snapshot();
  for (const obs::QueryCounterDelta& c : cost.counters) {
    EXPECT_EQ(c.delta, m.CounterValue(c.name)) << c.name;
  }
  for (const obs::QueryHistogramDelta& h : cost.histograms) {
    int64_t global_count = 0, global_sum = 0;
    for (const auto& entry : m.histograms) {
      if (entry.first == h.name) {
        global_count = entry.second.count;
        global_sum = entry.second.sum;
      }
    }
    EXPECT_EQ(h.count, global_count) << h.name;
    EXPECT_EQ(h.sum, global_sum) << h.name;
  }

  // The default tracked set actually observed the search.
  EXPECT_GT(cost.CounterDelta("fume.search.evaluations"), 0);
  EXPECT_GT(cost.CounterDelta("fume.search.explored_subsets"), 0);
  EXPECT_GT(cost.wall_seconds, 0.0);
}

TEST(QueryScopeFumeTest, ScopingDoesNotChangeResults) {
  Fixture f = MakeFixture();
  FumeConfig config = TestFumeConfig(f);
  config.num_threads = 4;

  auto plain = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(plain.ok());

  obs::QueryScope scope("search");
  auto scoped = ExplainFairnessViolation(f.model, f.train, f.test, config);
  scope.Finish();
  ASSERT_TRUE(scoped.ok());

  // Byte-identical search output: same subsets, same doubles, bit for bit.
  ASSERT_EQ(plain->top_k.size(), scoped->top_k.size());
  for (size_t i = 0; i < plain->top_k.size(); ++i) {
    EXPECT_EQ(plain->top_k[i].predicate.ToString(f.train.schema()),
              scoped->top_k[i].predicate.ToString(f.train.schema()));
    EXPECT_EQ(plain->top_k[i].attribution, scoped->top_k[i].attribution);
    EXPECT_EQ(plain->top_k[i].support, scoped->top_k[i].support);
    EXPECT_EQ(plain->top_k[i].new_fairness, scoped->top_k[i].new_fairness);
    EXPECT_EQ(plain->top_k[i].new_accuracy, scoped->top_k[i].new_accuracy);
  }
  EXPECT_EQ(plain->original_fairness, scoped->original_fairness);
  ASSERT_EQ(plain->all_candidates.size(), scoped->all_candidates.size());
}

}  // namespace
}  // namespace fume
