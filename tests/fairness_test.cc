// Tests for src/fairness: confusion counts, the three group metrics against
// hand-computed values, and permutation importance.

#include <gtest/gtest.h>

#include "fairness/confusion.h"
#include "fairness/importance.h"
#include "fairness/metrics.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset GroupedDataset() {
  // Attribute 0 = sensitive (0 protected, 1 privileged), attribute 1 = x.
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("S", {"prot", "priv"}).ok());
  EXPECT_TRUE(schema.AddCategorical("x", {"0", "1"}).ok());
  Dataset data(schema);
  // Privileged: 4 rows, labels 1,1,0,0. Protected: 4 rows, labels 1,0,0,0.
  EXPECT_TRUE(data.AppendRow({1, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({1, 1}, 1).ok());
  EXPECT_TRUE(data.AppendRow({1, 0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({1, 1}, 0).ok());
  EXPECT_TRUE(data.AppendRow({0, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({0, 1}, 0).ok());
  EXPECT_TRUE(data.AppendRow({0, 0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({0, 1}, 0).ok());
  return data;
}

const GroupSpec kGroup{/*sensitive_attr=*/0, /*privileged_code=*/1};

TEST(ConfusionTest, CountsAndRates) {
  Confusion c;
  c.Add(1, 1);  // tp
  c.Add(1, 1);  // tp
  c.Add(1, 0);  // fn
  c.Add(0, 1);  // fp
  c.Add(0, 0);  // tn
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_EQ(c.total(), 5);
  EXPECT_DOUBLE_EQ(c.PositiveRate(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(c.Tpr(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.Fpr(), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(c.Ppv(), 2.0 / 3.0);
}

TEST(ConfusionTest, EmptyGroupRatesAreZero) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.PositiveRate(), 0.0);
  EXPECT_DOUBLE_EQ(c.Tpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.Fpr(), 0.0);
  EXPECT_DOUBLE_EQ(c.Ppv(), 0.0);
}

TEST(GroupConfusionTest, SplitsByGroup) {
  Dataset data = GroupedDataset();
  // Predict 1 for privileged rows 0,1 and protected row 4; else 0.
  std::vector<int> preds = {1, 1, 0, 0, 1, 0, 0, 0};
  GroupConfusion gc = ComputeGroupConfusion(data, preds, kGroup);
  EXPECT_EQ(gc.privileged.total(), 4);
  EXPECT_EQ(gc.unprivileged.total(), 4);
  EXPECT_EQ(gc.privileged.tp, 2);
  EXPECT_EQ(gc.unprivileged.tp, 1);
}

TEST(MetricsTest, StatisticalParityHandComputed) {
  Dataset data = GroupedDataset();
  // Privileged positive-prediction rate 3/4, protected 1/4 -> F = -0.5.
  std::vector<int> preds = {1, 1, 1, 0, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ComputeFairness(data, preds, kGroup,
                                   FairnessMetric::kStatisticalParity),
                   0.25 - 0.75);
}

TEST(MetricsTest, EqualizedOddsHandComputed) {
  Dataset data = GroupedDataset();
  std::vector<int> preds = {1, 1, 1, 0, 1, 0, 0, 0};
  // Privileged: TPR = 2/2 = 1, FPR = 1/2. Protected: TPR = 1/1, FPR = 0/3.
  const double expect = 0.5 * ((1.0 - 1.0) + (0.0 - 0.5));
  EXPECT_DOUBLE_EQ(
      ComputeFairness(data, preds, kGroup, FairnessMetric::kEqualizedOdds),
      expect);
}

TEST(MetricsTest, PredictiveParityHandComputed) {
  Dataset data = GroupedDataset();
  std::vector<int> preds = {1, 1, 1, 0, 1, 1, 0, 0};
  // Privileged PPV = 2/3; protected PPV = 1/2.
  EXPECT_DOUBLE_EQ(ComputeFairness(data, preds, kGroup,
                                   FairnessMetric::kPredictiveParity),
                   0.5 - 2.0 / 3.0);
}

TEST(MetricsTest, EqualOpportunityHandComputed) {
  Dataset data = GroupedDataset();
  std::vector<int> preds = {1, 1, 1, 0, 1, 0, 0, 0};
  // Privileged TPR = 2/2; protected TPR = 1/1.
  EXPECT_DOUBLE_EQ(ComputeFairness(data, preds, kGroup,
                                   FairnessMetric::kEqualOpportunity),
                   0.0);
  std::vector<int> preds2 = {1, 0, 1, 0, 0, 0, 0, 0};
  // Privileged TPR = 1/2; protected TPR = 0/1.
  EXPECT_DOUBLE_EQ(ComputeFairness(data, preds2, kGroup,
                                   FairnessMetric::kEqualOpportunity),
                   -0.5);
}

TEST(MetricsTest, DisparateImpactHandComputed) {
  Dataset data = GroupedDataset();
  std::vector<int> preds = {1, 1, 1, 0, 1, 0, 0, 0};
  // Rates: protected 1/4, privileged 3/4 -> ratio 1/3 -> F = -2/3.
  EXPECT_NEAR(ComputeFairness(data, preds, kGroup,
                              FairnessMetric::kDisparateImpact),
              1.0 / 3.0 - 1.0, 1e-12);
  // Privileged rate zero -> defined as 0.
  std::vector<int> none = {0, 0, 0, 0, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(ComputeFairness(data, none, kGroup,
                                   FairnessMetric::kDisparateImpact),
                   0.0);
}

TEST(MetricsTest, NewMetricNamesAreStable) {
  EXPECT_STREQ(FairnessMetricName(FairnessMetric::kEqualOpportunity),
               "equal opportunity");
  EXPECT_STREQ(FairnessMetricName(FairnessMetric::kDisparateImpact),
               "disparate impact");
}

TEST(MetricsTest, PerfectParityIsZero) {
  Dataset data = GroupedDataset();
  std::vector<int> preds = {1, 0, 1, 0, 1, 0, 1, 0};  // 1/2 rate both groups
  EXPECT_DOUBLE_EQ(ComputeFairness(data, preds, kGroup,
                                   FairnessMetric::kStatisticalParity),
                   0.0);
}

TEST(MetricsTest, NamesAreStable) {
  EXPECT_STREQ(FairnessMetricName(FairnessMetric::kStatisticalParity),
               "statistical parity");
  EXPECT_STREQ(FairnessMetricName(FairnessMetric::kEqualizedOdds),
               "equalized odds");
  EXPECT_STREQ(FairnessMetricName(FairnessMetric::kPredictiveParity),
               "predictive parity");
}

// A forest trained on group-correlated data should show negative parity, and
// Summarize() must agree with the individual metric calls.
TEST(MetricsTest, SummarizeAgreesWithPieces) {
  Schema schema;
  ASSERT_TRUE(schema.AddCategorical("S", {"prot", "priv"}).ok());
  ASSERT_TRUE(schema.AddCategorical("x", {"a", "b", "c"}).ok());
  Dataset data(schema);
  Rng rng(42);
  for (int i = 0; i < 600; ++i) {
    const int s = rng.NextBernoulli(0.5) ? 1 : 0;
    const int x = rng.NextInt(0, 2);
    const double p = (s == 1 ? 0.75 : 0.35) + 0.05 * x;
    ASSERT_TRUE(data.AppendRow({s, x}, rng.NextBernoulli(p) ? 1 : 0).ok());
  }
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 4;
  config.seed = 9;
  auto forest = DareForest::Train(data, config);
  ASSERT_TRUE(forest.ok());
  FairnessSummary summary = Summarize(*forest, data, kGroup);
  EXPECT_DOUBLE_EQ(summary.statistical_parity,
                   ComputeFairness(*forest, data, kGroup,
                                   FairnessMetric::kStatisticalParity));
  EXPECT_DOUBLE_EQ(summary.accuracy, forest->Accuracy(data));
  EXPECT_LT(summary.statistical_parity, 0.0);  // biased against protected
}

TEST(ImportanceTest, InformativeFeatureRanksAboveNoise) {
  Schema schema;
  ASSERT_TRUE(schema.AddCategorical("signal", {"0", "1"}).ok());
  ASSERT_TRUE(schema.AddCategorical("noise", {"0", "1"}).ok());
  Dataset data(schema);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const int s = rng.NextInt(0, 1);
    const int nz = rng.NextInt(0, 1);
    const int label = rng.NextBernoulli(s == 1 ? 0.9 : 0.1) ? 1 : 0;
    ASSERT_TRUE(data.AppendRow({s, nz}, label).ok());
  }
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 4;
  config.num_candidate_attrs = 2;
  config.random_depth = 0;
  auto forest = DareForest::Train(data, config);
  ASSERT_TRUE(forest.ok());
  auto ranking = PermutationImportance(*forest, data, ImportanceOptions{});
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].name, "signal");
  EXPECT_GT(ranking[0].importance, ranking[1].importance);
  EXPECT_GT(ranking[0].importance, 0.2);
  EXPECT_NEAR(ranking[1].importance, 0.0, 0.05);
}

TEST(ImportanceTest, ShiftComputation) {
  std::vector<FeatureImportance> before = {{0, "a", 0.4}, {1, "b", 0.1}};
  std::vector<FeatureImportance> after = {{0, "a", 0.2}, {1, "b", 0.2}};
  EXPECT_NEAR(ImportanceShift(before, after, 0), -0.5, 1e-9);
  EXPECT_NEAR(ImportanceShift(before, after, 1), 1.0, 1e-9);
  EXPECT_NEAR(ImportanceShift(before, after, 7), 0.0, 1e-9);
}

TEST(ImportanceTest, DeterministicBySeed) {
  Dataset data = GroupedDataset();
  ForestConfig config;
  config.num_trees = 3;
  config.max_depth = 3;
  auto forest = DareForest::Train(data, config);
  ASSERT_TRUE(forest.ok());
  auto a = PermutationImportance(*forest, data, ImportanceOptions{});
  auto b = PermutationImportance(*forest, data, ImportanceOptions{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].importance, b[i].importance);
    EXPECT_EQ(a[i].attr, b[i].attr);
  }
}

}  // namespace
}  // namespace fume
