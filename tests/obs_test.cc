// Tests for the observability subsystem: lock-free metrics (exact
// concurrent sums, histogram quantile bounds, serialization), trace spans
// (valid Chrome trace-event JSON, nesting, per-thread attribution), and
// the contract that enabling observability never changes FUME's results.

#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <sstream>
#include <thread>
#include <vector>

#include "core/fume.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/datasets.h"

namespace fume {
namespace {

// ---------------------------------------------------------------- metrics

TEST(ObsMetricsTest, ConcurrentCounterIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < kIncrements; ++i) counter->Inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kIncrements);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.concurrent"),
            int64_t{kThreads} * kIncrements);
}

TEST(ObsMetricsTest, ConcurrentRegistrationYieldsOneCounter) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back(
        [&]() { registry.GetCounter("test.same_name")->Inc(); });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("test.same_name"), kThreads);
}

TEST(ObsMetricsTest, HistogramBucketsAreLogScale) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3);
  EXPECT_EQ(obs::Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(obs::Histogram::BucketIndex(1024), 11);
  for (int b = 1; b < obs::Histogram::kNumBuckets - 1; ++b) {
    // Bucket bounds tile the positive axis with no gaps or overlaps.
    EXPECT_EQ(obs::Histogram::BucketLowerBound(b + 1),
              obs::Histogram::BucketUpperBound(b) + 1);
    EXPECT_EQ(obs::Histogram::BucketIndex(obs::Histogram::BucketLowerBound(b)),
              b);
  }
}

TEST(ObsMetricsTest, HistogramQuantileBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("test.latency");
  for (int64_t v = 1; v <= 1000; ++v) hist->Record(v);
  EXPECT_EQ(hist->Count(), 1000);
  EXPECT_EQ(hist->Sum(), 1000 * 1001 / 2);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const obs::HistogramSnapshot& h = snapshot.histograms[0].second;
  EXPECT_EQ(h.count, 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);

  // A log2 bucket's upper bound is at most 2x the true quantile, and never
  // below it: the q-quantile sample lives in [upper/2, upper].
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const int64_t true_quantile =
        std::max<int64_t>(1, static_cast<int64_t>(q * 1000 + 0.5));
    const int64_t upper = h.QuantileUpperBound(q);
    EXPECT_GE(upper, true_quantile) << "q=" << q;
    EXPECT_LE(upper / 2, true_quantile) << "q=" << q;
  }
  // All mass in one bucket: the bound is exact for that bucket.
  obs::Histogram* point = registry.GetHistogram("test.point");
  for (int i = 0; i < 10; ++i) point->Record(7);
  const auto snap2 = registry.Snapshot();
  EXPECT_EQ(snap2.histograms[1].second.QuantileUpperBound(0.5), 7);
}

TEST(ObsMetricsTest, KindMismatchReturnsNull) {
  obs::MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("test.metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("test.metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("test.metric"), nullptr);
  // Same name + same kind returns the same object.
  EXPECT_EQ(registry.GetCounter("test.metric"),
            registry.GetCounter("test.metric"));
}

TEST(ObsMetricsTest, ResetZeroesButKeepsPointersValid) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.reset");
  obs::Histogram* hist = registry.GetHistogram("test.reset_hist");
  counter->Inc(42);
  hist->Record(9);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(hist->Count(), 0);
  counter->Inc();  // pointer still usable after Reset
  EXPECT_EQ(registry.Snapshot().CounterValue("test.reset"), 1);
}

TEST(ObsMetricsTest, SerializationFormats) {
  obs::MetricsRegistry registry;
  registry.GetCounter("b.counter")->Inc(3);
  registry.GetCounter("a.counter")->Inc(1);
  registry.GetGauge("c.gauge")->Set(-7);
  registry.GetHistogram("d.hist")->Record(5);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();

  // Sorted by name.
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.counter");
  EXPECT_EQ(snapshot.counters[1].first, "b.counter");

  std::ostringstream text;
  snapshot.PrintText(text);
  EXPECT_NE(text.str().find("counter a.counter 1"), std::string::npos);
  EXPECT_NE(text.str().find("gauge c.gauge -7"), std::string::npos);
  EXPECT_NE(text.str().find("histogram d.hist count=1 sum=5 p50<=7 p90<=7"),
            std::string::npos);

  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"a.counter\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"c.gauge\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"d.hist\":{\"count\":1,\"sum\":5,"
                      "\"p50\":7,\"p90\":7,\"p99\":7,\"buckets\":"
                      "[{\"le\":7,\"count\":1}]}"),
            std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; full structure
  // is pinned by the exact substring above).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ------------------------------------------------------------------ trace

struct ParsedEvent {
  std::string name;
  int tid = 0;
  double ts = 0.0;
  double dur = 0.0;
};

// Pulls every complete event out of the trace JSON (the writer emits a
// fixed field order, pinned here on purpose — it is the exported format).
std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  const std::regex event_re(
      "\\{\"ph\":\"X\",\"name\":\"([^\"]+)\",\"pid\":1,\"tid\":([0-9]+),"
      "\"ts\":([0-9.]+),\"dur\":([0-9.]+)");
  for (auto it = std::sregex_iterator(json.begin(), json.end(), event_re);
       it != std::sregex_iterator(); ++it) {
    ParsedEvent e;
    e.name = (*it)[1];
    e.tid = std::stoi((*it)[2]);
    e.ts = std::stod((*it)[3]);
    e.dur = std::stod((*it)[4]);
    events.push_back(e);
  }
  return events;
}

const ParsedEvent* FindEvent(const std::vector<ParsedEvent>& events,
                             const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(ObsTraceTest, DisabledSpansRecordNothing) {
  obs::StopTracing();
  obs::ClearTrace();
  {
    obs::TraceSpan span("should.not.appear", {{"x", 1}});
  }
  EXPECT_EQ(obs::TraceEventCount(), 0);
  EXPECT_NE(obs::TraceToJson().find("\"traceEvents\":[]"), std::string::npos);
}

TEST(ObsTraceTest, JsonOutputParsesAndNestsSpans) {
  obs::StartTracing();
  {
    obs::TraceSpan outer("outer", {{"level", 1}});
    {
      obs::TraceSpan inner("inner");
    }
  }
  std::thread worker([]() { obs::TraceSpan span("worker.span"); });
  worker.join();
  obs::StopTracing();

  const std::string json = obs::TraceToJson();
  // Envelope shape.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"level\":1}"), std::string::npos);

  const std::vector<ParsedEvent> events = ParseEvents(json);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(obs::TraceEventCount(), 3);

  const ParsedEvent* outer = FindEvent(events, "outer");
  const ParsedEvent* inner = FindEvent(events, "inner");
  const ParsedEvent* worker_span = FindEvent(events, "worker.span");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker_span, nullptr);

  // Nesting: inner lies strictly within [outer.ts, outer.ts + outer.dur],
  // on the same thread — exactly how chrome://tracing reconstructs the
  // span tree. The worker span belongs to a different tid.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_NE(worker_span->tid, outer->tid);

  obs::ClearTrace();
}

TEST(ObsTraceTest, AddArgAndArgOverflow) {
  // Arg keys are matched by pointer (the doc requires literals that outlive
  // the session), so reuse the same pointer for the overwrite.
  const char* const kKeyB = "b";
  obs::StartTracing();
  {
    obs::TraceSpan span("many.args",
                        {{"a", 1}, {kKeyB, 2}, {"c", 3}, {"d", 4}, {"e", 5}});
    span.AddArg(kKeyB, 20);  // overwrite
    span.AddArg("f", 6);     // dropped: already at kMaxArgs
  }
  obs::StopTracing();
  const std::string json = obs::TraceToJson();
  EXPECT_NE(json.find("\"args\":{\"a\":1,\"b\":20,\"c\":3,\"d\":4}"),
            std::string::npos);
  EXPECT_EQ(json.find("\"e\":"), std::string::npos);
  obs::ClearTrace();
}

// ------------------------------------------------- end-to-end with FUME

struct Fixture {
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest model;
};

Fixture MakeFixture(uint64_t seed = 1, int64_t rows = 1500) {
  synth::PlantedOptions opts;
  opts.num_rows = rows;
  opts.seed = seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, DareForest()};
  ForestConfig forest_config;
  forest_config.num_trees = 5;
  forest_config.max_depth = 6;
  forest_config.random_depth = 2;
  forest_config.seed = 23;
  auto model = DareForest::Train(f.train, forest_config);
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  return f;
}

FumeConfig TestFumeConfig(const Fixture& f) {
  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.metric = FairnessMetric::kStatisticalParity;
  config.group = f.group;
  config.lattice.excluded_attrs = {f.group.sensitive_attr};
  return config;
}

TEST(ObsFumeTest, TracingDoesNotChangeResults) {
  Fixture f = MakeFixture();
  const FumeConfig config = TestFumeConfig(f);

  obs::StopTracing();
  auto plain = ExplainFairnessViolation(f.model, f.train, f.test, config);
  ASSERT_TRUE(plain.ok());

  obs::StartTracing();
  auto traced = ExplainFairnessViolation(f.model, f.train, f.test, config);
  obs::StopTracing();
  ASSERT_TRUE(traced.ok());
  EXPECT_GT(obs::TraceEventCount(), 0);

  // Byte-identical search output: same subsets, same doubles, bit for bit.
  ASSERT_EQ(plain->top_k.size(), traced->top_k.size());
  for (size_t i = 0; i < plain->top_k.size(); ++i) {
    EXPECT_EQ(plain->top_k[i].predicate.ToString(f.train.schema()),
              traced->top_k[i].predicate.ToString(f.train.schema()));
    EXPECT_EQ(plain->top_k[i].attribution, traced->top_k[i].attribution);
    EXPECT_EQ(plain->top_k[i].support, traced->top_k[i].support);
    EXPECT_EQ(plain->top_k[i].new_fairness, traced->top_k[i].new_fairness);
    EXPECT_EQ(plain->top_k[i].new_accuracy, traced->top_k[i].new_accuracy);
  }
  EXPECT_EQ(plain->original_fairness, traced->original_fairness);
  ASSERT_EQ(plain->all_candidates.size(), traced->all_candidates.size());
  obs::ClearTrace();
}

TEST(ObsFumeTest, SearchPopulatesPruningCountersAndSpans) {
  obs::MetricsRegistry::Global().Reset();
  Fixture f = MakeFixture(2);
  FumeConfig config = TestFumeConfig(f);
  config.num_threads = 4;

  obs::StartTracing();
  auto result = ExplainFairnessViolation(f.model, f.train, f.test, config);
  obs::StopTracing();
  ASSERT_TRUE(result.ok());

  const obs::MetricsSnapshot m = obs::MetricsRegistry::Global().Snapshot();
  // The per-rule registry counters mirror the per-run FumeStats.
  int64_t stats_explored = 0, rule2_low = 0, rule2_high = 0, rule4 = 0,
          rule5 = 0, rule1 = 0;
  for (const LevelStats& level : result->stats.levels) {
    stats_explored += level.explored;
    rule1 += level.rule1_pruned;
    rule2_low += level.rule2_pruned_low;
    rule2_high += level.rule2_expand_only;
    rule4 += level.rule4_pruned;
    rule5 += level.rule5_pruned;
  }
  EXPECT_EQ(m.CounterValue("fume.search.explored_subsets"), stats_explored);
  EXPECT_EQ(m.CounterValue("fume.prune.rule2_support_low"), rule2_low);
  EXPECT_EQ(m.CounterValue("fume.prune.rule2_support_high"), rule2_high);
  EXPECT_EQ(m.CounterValue("fume.prune.rule4_parent"), rule4);
  EXPECT_EQ(m.CounterValue("fume.prune.rule5_nonpositive"), rule5);
  EXPECT_GE(m.CounterValue("fume.prune.rule1_contradiction") +
                m.CounterValue("lattice.merge.degenerate"),
            rule1);
  EXPECT_GT(rule2_low + rule2_high + rule4 + rule5, 0);

  // Unlearning and cache counters flowed through the whole stack.
  EXPECT_EQ(m.CounterValue("removal.unlearn.evaluations"),
            result->stats.attribution_evaluations);
  EXPECT_EQ(m.CounterValue("fume.rowset_cache.hit"), result->stats.cache_hits);
  EXPECT_EQ(m.CounterValue("fume.rowset_cache.insert"),
            result->stats.cache_inserts);
  EXPECT_GT(m.CounterValue("forest.unlearn.nodes_visited"), 0);
  EXPECT_GT(m.CounterValue("posting.match.literal"), 0);

  // Spans from every layer (search levels, evaluation, forest deletes)
  // made it into one trace, across worker threads.
  const std::string json = obs::TraceToJson();
  EXPECT_NE(json.find("\"name\":\"fume.level\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fume.evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"removal.unlearn.evaluate\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forest.delete\""), std::string::npos);
  obs::ClearTrace();
}

TEST(ObsFumeTest, LevelStatsRuleBreakdownIsConsistent) {
  Fixture f = MakeFixture(3);
  auto result =
      ExplainFairnessViolation(f.model, f.train, f.test, TestFumeConfig(f));
  ASSERT_TRUE(result.ok());
  for (const LevelStats& level : result->stats.levels) {
    // Everything classified at this level is either estimated or pruned by
    // rule 2; rules 4/5 only discard already-estimated nodes.
    EXPECT_LE(level.rule4_pruned + level.rule5_pruned, level.explored);
    if (level.level == 1) EXPECT_EQ(level.rule1_pruned, 0);
    EXPECT_GE(level.rule2_pruned_low, 0);
    EXPECT_GE(level.rule2_expand_only, 0);
  }
}

}  // namespace
}  // namespace fume
