// The central property of the unlearning substrate (DESIGN.md §2/§6.1):
//
//   DeleteRows(Train(D), T)  ==  Train(D \ T)     (same config & seed)
//
// node-for-node, including every cached statistic. Swept over dataset
// shapes, deletion patterns, threshold modes and seeds with TEST_P.

#include <gtest/gtest.h>

#include <numeric>

#include "forest/forest.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset RandomDataset(int64_t n, int p, int card, uint64_t seed,
                      double signal = 0.6) {
  Schema schema;
  for (int j = 0; j < p; ++j) {
    std::vector<std::string> cats;
    for (int v = 0; v < card; ++v) cats.push_back("v" + std::to_string(v));
    EXPECT_TRUE(schema.AddCategorical("x" + std::to_string(j), cats).ok());
  }
  Dataset data(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<int32_t> row(static_cast<size_t>(p));
    for (int j = 0; j < p; ++j) row[static_cast<size_t>(j)] = rng.NextInt(0, card - 1);
    const double base = row[0] < card / 2 ? signal : 1.0 - signal;
    EXPECT_TRUE(data.AppendRow(row, rng.NextBernoulli(base) ? 1 : 0).ok());
  }
  return data;
}

// Exactness check: unlearned forest == scratch-retrained forest, both
// structurally and in predictions.
void ExpectExactUnlearning(const Dataset& train,
                           const std::vector<RowId>& doomed,
                           const ForestConfig& config) {
  auto trained = DareForest::Train(train, config);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  DareForest unlearned = trained->Clone();
  ASSERT_TRUE(unlearned.DeleteRows(doomed).ok());
  ASSERT_TRUE(unlearned.ValidateStats());

  std::vector<int64_t> doomed64(doomed.begin(), doomed.end());
  const Dataset reduced = train.DropRows(doomed64);
  // NOTE: after DropRows row ids shift, so structural equality of leaf
  // instance lists cannot hold verbatim; instead retrain on a dataset where
  // the kept rows occupy their original positions. We achieve this by
  // comparing predictions AND by recreating the reduced training run on the
  // same store through a second deletion order (see below). Prediction
  // equality over the full original data is the strongest id-independent
  // check:
  if (reduced.num_rows() > 0) {
    auto retrained = DareForest::Train(reduced, config);
    ASSERT_TRUE(retrained.ok());
    for (int64_t r = 0; r < train.num_rows(); ++r) {
      ASSERT_DOUBLE_EQ(unlearned.PredictProb(train, r),
                       retrained->PredictProb(train, r))
          << "prediction diverged at row " << r;
    }
    EXPECT_EQ(unlearned.num_nodes(), retrained->num_nodes());
    EXPECT_EQ(unlearned.num_training_rows(), retrained->num_training_rows());
  }
}

struct SweepCase {
  int64_t n;
  int p;
  int card;
  int num_delete;
  ThresholdMode mode;
  uint64_t seed;
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  return "n" + std::to_string(c.n) + "_p" + std::to_string(c.p) + "_d" +
         std::to_string(c.card) + "_del" + std::to_string(c.num_delete) +
         (c.mode == ThresholdMode::kExact ? "_exact" : "_sampled") + "_s" +
         std::to_string(c.seed);
}

class UnlearnExactnessSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(UnlearnExactnessSweep, DeleteEqualsRetrain) {
  const SweepCase& c = GetParam();
  Dataset train = RandomDataset(c.n, c.p, c.card, c.seed);
  ForestConfig config;
  config.num_trees = 3;
  config.max_depth = 8;
  config.random_depth = 2;
  config.num_candidate_attrs = std::max(2, c.p / 2);
  config.threshold_mode = c.mode;
  config.num_sampled_thresholds = 3;
  config.seed = c.seed * 31 + 7;

  Rng rng(c.seed + 1000);
  std::vector<RowId> all(static_cast<size_t>(c.n));
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(&all);
  std::vector<RowId> doomed(all.begin(), all.begin() + c.num_delete);
  ExpectExactUnlearning(train, doomed, config);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnlearnExactnessSweep,
    testing::Values(
        SweepCase{60, 3, 3, 5, ThresholdMode::kExact, 1},
        SweepCase{60, 3, 3, 30, ThresholdMode::kExact, 2},
        SweepCase{200, 5, 4, 20, ThresholdMode::kExact, 3},
        SweepCase{200, 5, 4, 100, ThresholdMode::kExact, 4},
        SweepCase{200, 8, 2, 50, ThresholdMode::kExact, 5},
        SweepCase{400, 4, 6, 40, ThresholdMode::kExact, 6},
        SweepCase{400, 4, 6, 350, ThresholdMode::kExact, 7},
        SweepCase{120, 6, 5, 12, ThresholdMode::kSampled, 8},
        SweepCase{300, 7, 8, 60, ThresholdMode::kSampled, 9},
        SweepCase{500, 3, 10, 100, ThresholdMode::kSampled, 10}),
    CaseName);

class UnlearnSeedSweep : public testing::TestWithParam<int> {};

TEST_P(UnlearnSeedSweep, ManySeedsStayExact) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dataset train = RandomDataset(150, 5, 4, seed);
  ForestConfig config;
  config.num_trees = 2;
  config.max_depth = 10;
  config.random_depth = 3;
  config.seed = seed;
  Rng rng(seed + 5);
  std::vector<RowId> all(150);
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(&all);
  std::vector<RowId> doomed(all.begin(), all.begin() + 25);
  ExpectExactUnlearning(train, doomed, config);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnlearnSeedSweep, testing::Range(0, 12));

TEST(UnlearnSequenceTest, SequentialDeletionsStayExact) {
  // Delete in several batches; after each batch the forest must equal the
  // scratch model on the surviving rows.
  Dataset train = RandomDataset(240, 5, 4, 99);
  ForestConfig config;
  config.num_trees = 3;
  config.max_depth = 7;
  config.random_depth = 2;
  config.seed = 17;
  auto forest = DareForest::Train(train, config);
  ASSERT_TRUE(forest.ok());

  std::vector<RowId> order(240);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(1234);
  rng.Shuffle(&order);

  std::vector<int64_t> deleted_so_far;
  size_t cursor = 0;
  for (int batch_size : {1, 5, 20, 60}) {
    std::vector<RowId> batch(order.begin() + cursor,
                             order.begin() + cursor + batch_size);
    cursor += static_cast<size_t>(batch_size);
    ASSERT_TRUE(forest->DeleteRows(batch).ok());
    ASSERT_TRUE(forest->ValidateStats());
    deleted_so_far.insert(deleted_so_far.end(), batch.begin(), batch.end());

    auto retrained =
        DareForest::Train(train.DropRows(deleted_so_far), config);
    ASSERT_TRUE(retrained.ok());
    for (int64_t r = 0; r < train.num_rows(); ++r) {
      ASSERT_DOUBLE_EQ(forest->PredictProb(train, r),
                       retrained->PredictProb(train, r));
    }
  }
}

TEST(UnlearnOrderTest, DeletionOrderDoesNotMatter) {
  Dataset train = RandomDataset(150, 4, 4, 55);
  ForestConfig config;
  config.num_trees = 2;
  config.max_depth = 6;
  config.random_depth = 1;
  config.seed = 5;
  auto base = DareForest::Train(train, config);
  ASSERT_TRUE(base.ok());

  std::vector<RowId> doomed = {3, 17, 42, 99, 120, 7, 66};
  DareForest one_shot = base->Clone();
  ASSERT_TRUE(one_shot.DeleteRows(doomed).ok());

  DareForest one_by_one = base->Clone();
  for (RowId r : doomed) {
    ASSERT_TRUE(one_by_one.DeleteRows({r}).ok());
  }
  EXPECT_TRUE(one_shot.StructurallyEquals(one_by_one));

  DareForest reversed = base->Clone();
  for (auto it = doomed.rbegin(); it != doomed.rend(); ++it) {
    ASSERT_TRUE(reversed.DeleteRows({*it}).ok());
  }
  EXPECT_TRUE(one_shot.StructurallyEquals(reversed));
}

// ---------------------------------------------------------------- Addition

// Exact addition: Train(D) + AddData(E) == Train(D ++ E).
void ExpectExactAddition(const Dataset& base, const Dataset& extra,
                         const ForestConfig& config) {
  auto incremental = DareForest::Train(base, config);
  ASSERT_TRUE(incremental.ok());
  auto added = incremental->AddData(extra);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_EQ(added->size(), static_cast<size_t>(extra.num_rows()));
  ASSERT_TRUE(incremental->ValidateStats());

  // Build the concatenated dataset (base rows first, extra rows after — the
  // same ids AddData assigns).
  Dataset all(base.schema());
  std::vector<int32_t> codes(static_cast<size_t>(base.num_attributes()));
  for (const Dataset* part : {&base, &extra}) {
    for (int64_t r = 0; r < part->num_rows(); ++r) {
      for (int j = 0; j < part->num_attributes(); ++j) {
        codes[static_cast<size_t>(j)] = part->Code(r, j);
      }
      ASSERT_TRUE(all.AppendRow(codes, part->Label(r)).ok());
    }
  }
  auto scratch = DareForest::Train(all, config);
  ASSERT_TRUE(scratch.ok());
  EXPECT_TRUE(incremental->StructurallyEquals(*scratch));
}

class AdditionExactnessSweep : public testing::TestWithParam<int> {};

TEST_P(AdditionExactnessSweep, AddEqualsRetrain) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dataset base = RandomDataset(120, 5, 4, seed);
  Dataset extra = RandomDataset(1 + static_cast<int>(seed % 40), 5, 4,
                                seed + 100);
  ForestConfig config;
  config.num_trees = 3;
  config.max_depth = 7;
  config.random_depth = 2;
  config.seed = seed + 3;
  ExpectExactAddition(base, extra, config);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdditionExactnessSweep, testing::Range(0, 8));

TEST(AdditionTest, AddThenDeleteRoundTrips) {
  Dataset base = RandomDataset(150, 4, 4, 21);
  Dataset extra = RandomDataset(30, 4, 4, 22);
  ForestConfig config;
  config.num_trees = 3;
  config.max_depth = 7;
  config.random_depth = 1;
  config.seed = 5;
  auto original = DareForest::Train(base, config);
  ASSERT_TRUE(original.ok());
  DareForest updated = original->Clone();
  auto new_ids = updated.AddData(extra);
  ASSERT_TRUE(new_ids.ok());
  ASSERT_TRUE(updated.DeleteRows(*new_ids).ok());
  // Back to the original model, exactly.
  EXPECT_TRUE(updated.StructurallyEquals(*original));
}

TEST(AdditionTest, LeafCanBecomeASplit) {
  // A pure-leaf forest must grow real structure once conflicting labels
  // arrive.
  Schema schema;
  ASSERT_TRUE(schema.AddCategorical("x", {"a", "b"}).ok());
  Dataset base(schema);
  ASSERT_TRUE(base.AppendRow({0}, 1).ok());
  ASSERT_TRUE(base.AppendRow({1}, 1).ok());
  ForestConfig config;
  config.num_trees = 1;
  config.max_depth = 3;
  config.random_depth = 0;
  config.num_candidate_attrs = 1;
  auto forest = DareForest::Train(base, config);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->num_nodes(), 1);  // pure -> single leaf

  Dataset extra(schema);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(extra.AppendRow({1}, 0).ok());
  ASSERT_TRUE(forest->AddData(extra).ok());
  EXPECT_GT(forest->num_nodes(), 1);  // x splits the labels now
  EXPECT_TRUE(forest->ValidateStats());
  EXPECT_EQ(forest->PredictProb(base, 0), 1.0);
}

TEST(AdditionTest, RejectsIncompatibleRows) {
  Dataset base = RandomDataset(50, 3, 3, 31);
  auto forest = DareForest::Train(base, ForestConfig{});
  ASSERT_TRUE(forest.ok());
  Dataset wrong_width = RandomDataset(5, 4, 3, 32);
  EXPECT_FALSE(forest->AddData(wrong_width).ok());
  Dataset wider_card = RandomDataset(5, 3, 6, 33);
  EXPECT_FALSE(forest->AddData(wider_card).ok());
}

TEST(AdditionTest, InterleavedAddDeleteStaysExact) {
  Dataset base = RandomDataset(100, 4, 3, 41);
  Dataset extra1 = RandomDataset(25, 4, 3, 42);
  Dataset extra2 = RandomDataset(15, 4, 3, 43);
  ForestConfig config;
  config.num_trees = 2;
  config.max_depth = 6;
  config.random_depth = 1;
  config.seed = 9;
  auto forest = DareForest::Train(base, config);
  ASSERT_TRUE(forest.ok());
  auto ids1 = forest->AddData(extra1);
  ASSERT_TRUE(ids1.ok());
  ASSERT_TRUE(forest->DeleteRows({0, 5, 10, (*ids1)[0], (*ids1)[10]}).ok());
  auto ids2 = forest->AddData(extra2);
  ASSERT_TRUE(ids2.ok());
  ASSERT_TRUE(forest->ValidateStats());
  EXPECT_EQ(forest->num_training_rows(), 100 + 25 + 15 - 5);
}

TEST(UnlearnEffortTest, RandomTopLevelsRarelyRetrain) {
  // The point of DaRE's random upper levels: deleting a small batch should
  // retrain far fewer rows than a scratch rebuild would touch.
  Dataset train = RandomDataset(2000, 6, 4, 77);
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 8;
  config.random_depth = 3;
  config.seed = 3;
  auto forest = DareForest::Train(train, config);
  ASSERT_TRUE(forest.ok());
  ASSERT_TRUE(forest->DeleteRows({10, 500, 999, 1500}).ok());
  const DeletionStats& stats = forest->deletion_stats();
  // Scratch retraining would process ~2000 rows x 5 trees.
  EXPECT_LT(stats.rows_retrained, 2000 * 5 / 4);
}

}  // namespace
}  // namespace fume
