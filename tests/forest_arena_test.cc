// Flat-arena traversal exactness and invalidation (src/forest/arena.h).
//
// The arena is a pure execution substrate: every test here asserts
// byte-identity against the reference pointer walk (PredictProbAllPointer /
// PredictAllPointer), not approximate agreement — double == double, no
// tolerance. The invalidation tests pin the generation-stamp contract of
// DESIGN.md §7: a mutation bumps the owning tree's stamp and evicts only
// that tree's cached arena; CoW clones have private cache cells, so neither
// side of a clone can thrash the other.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "data/split.h"
#include "forest/arena.h"
#include "forest/forest.h"
#include "forest/prediction_cache.h"
#include "synth/datasets.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fume {
namespace {

struct ArenaCase {
  Dataset train;
  Dataset test;
  DareForest forest;
};

ArenaCase MakeCase(const Dataset& data, uint64_t forest_seed) {
  SplitOptions split_opts;
  split_opts.test_fraction = 0.3;
  split_opts.seed = 5;
  auto split = SplitTrainTest(data, split_opts);
  EXPECT_TRUE(split.ok());
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 6;
  config.random_depth = 2;
  config.seed = forest_seed;
  auto forest = DareForest::Train(split->train, config);
  EXPECT_TRUE(forest.ok());
  return ArenaCase{std::move(split->train), std::move(split->test),
                   std::move(*forest)};
}

void ExpectArenaMatchesPointer(const DareForest& forest, const Dataset& test) {
  EXPECT_EQ(forest.PredictProbAll(test), forest.PredictProbAllPointer(test));
  EXPECT_EQ(forest.PredictAll(test), forest.PredictAllPointer(test));
}

/// A small insert batch: `count` rows copied out of `source` at random.
Dataset SampleBatch(const Dataset& source, int count, Rng* rng) {
  Dataset batch(source.schema());
  std::vector<int32_t> codes(static_cast<size_t>(source.num_attributes()));
  for (int i = 0; i < count; ++i) {
    const int64_t r = static_cast<int64_t>(
        rng->NextBounded(static_cast<uint64_t>(source.num_rows())));
    for (int j = 0; j < source.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = source.Code(r, j);
    }
    EXPECT_TRUE(batch.AppendRow(codes, source.Label(r)).ok());
  }
  return batch;
}

// Random interleaved deletions and insertions; after every mutation the
// arena path must reproduce the pointer walk byte for byte. `live` tracks
// the still-learned row ids (DeleteRows rejects dead or duplicate ids).
void RunMutationSequence(ArenaCase* c, uint64_t seed) {
  Rng rng(seed);
  std::vector<RowId> live(static_cast<size_t>(c->train.num_rows()));
  for (size_t i = 0; i < live.size(); ++i) live[i] = static_cast<RowId>(i);

  ExpectArenaMatchesPointer(c->forest, c->test);
  for (int step = 0; step < 6; ++step) {
    if (step % 3 == 2) {
      Dataset batch = SampleBatch(c->test, /*count=*/3, &rng);
      auto added = c->forest.AddData(batch);
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      live.insert(live.end(), added->begin(), added->end());
    } else {
      ASSERT_GT(live.size(), 64u);
      std::vector<RowId> doomed;
      for (int i = 0; i < 8; ++i) {
        const size_t pick = static_cast<size_t>(rng.NextBounded(live.size()));
        doomed.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      std::sort(doomed.begin(), doomed.end());
      ASSERT_TRUE(c->forest.DeleteRows(doomed).ok());
    }
    ExpectArenaMatchesPointer(c->forest, c->test);
  }
}

TEST(ForestArenaTest, ByteIdenticalOverMutationsOnGerman) {
  for (uint64_t seed : {11, 12}) {
    synth::SynthOptions opts;
    opts.num_rows = 600;
    opts.seed = seed;
    auto bundle = synth::MakeGermanCredit(opts);
    ASSERT_TRUE(bundle.ok());
    ArenaCase c = MakeCase(bundle->data, /*forest_seed=*/seed * 7);
    RunMutationSequence(&c, /*seed=*/seed * 131);
  }
}

TEST(ForestArenaTest, ByteIdenticalOverMutationsOnPlantedBias) {
  for (uint64_t seed : {3, 4}) {
    synth::PlantedOptions opts;
    opts.num_rows = 800;
    opts.seed = seed;
    auto bundle = synth::MakePlantedBias(opts);
    ASSERT_TRUE(bundle.ok());
    ArenaCase c = MakeCase(bundle->data, /*forest_seed=*/seed + 40);
    RunMutationSequence(&c, /*seed=*/seed * 977);
  }
}

TEST(ForestArenaTest, PointerWalkConfigDisablesArena) {
  synth::PlantedOptions opts;
  opts.num_rows = 500;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  SplitOptions split_opts;
  auto split = SplitTrainTest(bundle->data, split_opts);
  ASSERT_TRUE(split.ok());
  ForestConfig config;
  config.num_trees = 3;
  config.max_depth = 5;
  config.arena_traversal = false;
  auto forest = DareForest::Train(split->train, config);
  ASSERT_TRUE(forest.ok());
  // Same bytes either way — arena_traversal only selects the executor.
  ExpectArenaMatchesPointer(*forest, split->test);
}

TEST(ForestArenaTest, ArenaIsCachedUntilMutation) {
  synth::PlantedOptions opts;
  opts.num_rows = 400;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  ArenaCase c = MakeCase(bundle->data, 9);
  const DareTree& tree = c.forest.tree(0);
  auto a1 = tree.arena();
  ASSERT_NE(a1, nullptr);
  auto a2 = tree.arena();
  EXPECT_EQ(a1.get(), a2.get());  // cached, not recompiled
  EXPECT_EQ(a1->generation(), tree.generation());
  EXPECT_GT(a1->num_nodes(), 1);
  EXPECT_GT(a1->bytes(), 0);

  const uint64_t gen_before = tree.generation();
  ASSERT_TRUE(c.forest.DeleteRows({0, 1, 2, 3}).ok());
  EXPECT_NE(tree.generation(), gen_before);
  auto a3 = tree.arena();
  ASSERT_NE(a3, nullptr);
  EXPECT_NE(a3.get(), a1.get());
  EXPECT_EQ(a3->generation(), tree.generation());
  // The old snapshot still answers for the graph it was compiled from.
  EXPECT_EQ(a1->generation(), gen_before);
}

TEST(ForestArenaTest, CloneInvalidationIsolatesParentAndChild) {
  synth::PlantedOptions opts;
  opts.num_rows = 400;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  ArenaCase c = MakeCase(bundle->data, 21);

  auto base_arena = c.forest.tree(0).arena();
  ASSERT_NE(base_arena, nullptr);

  // A CoW clone shares node graphs and generation, so the seeded snapshot
  // serves both sides until one mutates.
  DareForest clone = c.forest.Clone();
  EXPECT_EQ(clone.tree(0).generation(), c.forest.tree(0).generation());
  EXPECT_EQ(clone.tree(0).arena().get(), base_arena.get());

  // Mutating the clone unshares: the clone recompiles, the parent's cached
  // arena must survive untouched (private cache cells).
  ASSERT_TRUE(clone.DeleteRows({0, 1, 2, 3, 4, 5, 6, 7}).ok());
  EXPECT_NE(clone.tree(0).generation(), c.forest.tree(0).generation());
  auto clone_arena = clone.tree(0).arena();
  ASSERT_NE(clone_arena, nullptr);
  EXPECT_NE(clone_arena.get(), base_arena.get());
  EXPECT_EQ(c.forest.tree(0).arena().get(), base_arena.get());

  // And the other direction: mutating the parent leaves the clone alone.
  ASSERT_TRUE(c.forest.DeleteRows({8, 9, 10}).ok());
  EXPECT_NE(c.forest.tree(0).arena().get(), base_arena.get());
  EXPECT_EQ(clone.tree(0).arena().get(), clone_arena.get());

  // Both sides still byte-identical to their own pointer walks.
  ExpectArenaMatchesPointer(c.forest, c.test);
  ExpectArenaMatchesPointer(clone, c.test);
}

TEST(ForestArenaTest, DeepCloneNeverServesTheSourceArena) {
  synth::PlantedOptions opts;
  opts.num_rows = 300;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  ArenaCase c = MakeCase(bundle->data, 33);
  auto base_arena = c.forest.tree(0).arena();
  ASSERT_NE(base_arena, nullptr);
  DareForest deep = c.forest.DeepClone();
  auto deep_arena = deep.tree(0).arena();
  ASSERT_NE(deep_arena, nullptr);
  // Fresh node addresses require a fresh arena (node_ leaf identity).
  EXPECT_NE(deep_arena.get(), base_arena.get());
  EXPECT_NE(deep_arena->source_root(), base_arena->source_root());
  ExpectArenaMatchesPointer(deep, c.test);
}

// TSan target: many threads hitting compile-on-first-use on the same trees
// must agree on one arena per tree (ArenaSlot's mutex + atomic snapshot).
TEST(ForestArenaTest, ConcurrentCompileOnFirstUseYieldsOneArena) {
  synth::PlantedOptions opts;
  opts.num_rows = 600;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  ArenaCase c = MakeCase(bundle->data, 55);
  // Invalidate whatever training/prediction already compiled.
  ASSERT_TRUE(c.forest.DeleteRows({0}).ok());

  constexpr size_t kThreads = 8;
  const size_t trees = static_cast<size_t>(c.forest.num_trees());
  std::vector<std::shared_ptr<const TreeArena>> seen(kThreads * trees);
  util::ThreadPool pool(static_cast<int>(kThreads));
  pool.ParallelFor(kThreads, [&](int /*worker*/, size_t i) {
    for (size_t t = 0; t < trees; ++t) {
      seen[i * trees + t] = c.forest.tree(static_cast<int>(t)).arena();
    }
  });
  for (size_t t = 0; t < trees; ++t) {
    ASSERT_NE(seen[t], nullptr);
    for (size_t i = 1; i < kThreads; ++i) {
      EXPECT_EQ(seen[i * trees + t].get(), seen[t].get());
    }
  }
  ExpectArenaMatchesPointer(c.forest, c.test);
}

TEST(ForestArenaTest, WhatIfArenaRescoreMatchesPointerPredictions) {
  synth::PlantedOptions opts;
  opts.num_rows = 700;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  ArenaCase c = MakeCase(bundle->data, 77);

  TestPredictionCache cache;
  cache.Rebuild(c.forest, c.test);
  TestPredictionCache::WhatIfScratch scratch;
  Rng rng(19);
  // The base forest is never mutated, so every id in [0, num_training_rows)
  // stays valid for each round's fresh clone.
  const uint64_t live = static_cast<uint64_t>(c.forest.num_training_rows());
  for (int round = 0; round < 4; ++round) {
    DareForest what_if = c.forest.Clone();
    std::vector<RowId> doomed;
    for (int i = 0; i < 32; ++i) {
      doomed.push_back(static_cast<RowId>(rng.NextBounded(live)));
    }
    std::sort(doomed.begin(), doomed.end());
    doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
    ASSERT_TRUE(what_if.DeleteRows(doomed).ok());
    cache.ScoreWhatIf(c.forest, what_if, c.test, &scratch,
                      /*arena_full_rescore=*/true);
    EXPECT_EQ(scratch.preds, what_if.PredictAllPointer(c.test));
    // Same rows through the diff-walk leg: identical bytes again.
    cache.ScoreWhatIf(c.forest, what_if, c.test, &scratch,
                      /*arena_full_rescore=*/false);
    EXPECT_EQ(scratch.preds, what_if.PredictAllPointer(c.test));
  }
}

TEST(ForestArenaTest, NullRootCompilesToTheSentinel) {
  // A null node graph compiles to the one-slot sentinel: every row parks in
  // slot 0 and reads the 0.5 prior — the same answer the pointer walk gives
  // for a rootless tree.
  auto arena = TreeArena::Compile(nullptr, /*generation=*/1);
  ASSERT_NE(arena, nullptr);
  EXPECT_EQ(arena->num_nodes(), 1);
  EXPECT_EQ(arena->source_root(), nullptr);

  const int32_t codes[] = {0, 3, 1, 2};  // 2 rows x 2 attrs
  double probs[2] = {-1.0, -1.0};
  arena->PredictProbs(codes, /*num_attrs=*/2, /*n_rows=*/2, probs);
  EXPECT_EQ(probs[0], 0.5);
  EXPECT_EQ(probs[1], 0.5);

  const TreeNode* leaves[2] = {};
  double walk_probs[2] = {-1.0, -1.0};
  arena->WalkLeaves(codes, 2, 2, leaves, walk_probs);
  EXPECT_EQ(leaves[0], nullptr);
  EXPECT_EQ(leaves[1], nullptr);
  EXPECT_EQ(walk_probs[0], 0.5);
  EXPECT_EQ(walk_probs[1], 0.5);
}

TEST(DatasetPackedCodesTest, MatchesCodesAndInvalidatesOnAppend) {
  synth::PlantedOptions opts;
  opts.num_rows = 120;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  Dataset data = bundle->data;

  auto packed = data.packed_codes();
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(packed->num_attrs, data.num_attributes());
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int j = 0; j < packed->num_attrs; ++j) {
      EXPECT_EQ(packed->row(r)[j], data.Code(r, j));
    }
  }
  EXPECT_EQ(data.packed_codes().get(), packed.get());  // cached

  // Appending a row drops the snapshot; the next call repacks with it.
  std::vector<int32_t> codes(static_cast<size_t>(packed->num_attrs), 0);
  ASSERT_TRUE(data.AppendRow(codes, 1).ok());
  auto repacked = data.packed_codes();
  ASSERT_NE(repacked, nullptr);
  EXPECT_NE(repacked.get(), packed.get());
  EXPECT_EQ(repacked->codes.size(),
            static_cast<size_t>(data.num_rows() * packed->num_attrs));
  EXPECT_EQ(repacked->row(data.num_rows() - 1)[0], 0);

  // Copies never share the cached view (post-copy column patching à la
  // WithPermutedColumn must not see a stale snapshot).
  Dataset copy = data;
  auto copy_packed = copy.packed_codes();
  EXPECT_NE(copy_packed.get(), repacked.get());
  for (int j = 0; j < copy_packed->num_attrs; ++j) {
    EXPECT_EQ(copy_packed->row(0)[j], data.Code(0, j));
  }
}

}  // namespace
}  // namespace fume
