// Tests for src/util: Status/Result, keyed hashing, Rng, string helpers and
// the table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace fume {
namespace {

// --------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad knob");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(st.message(), "bad knob");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad knob");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::IOError("disk gone");
  Status copy = st;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk gone");
  // Copy-assign over an error.
  Status ok;
  copy = ok;
  EXPECT_TRUE(copy.ok());
}

TEST(StatusTest, AllFactoriesMatchPredicates) {
  EXPECT_TRUE(Status::KeyError("k").IsKeyError());
  EXPECT_TRUE(Status::IndexError("i").IsIndexError());
  EXPECT_TRUE(Status::NotImplemented("n").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

Status FailsThenPropagates() {
  FUME_RETURN_NOT_OK(Status::Invalid("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailsThenPropagates().IsInvalid());
}

// --------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::Invalid("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  FUME_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, ErrorRoundTrip) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoublePositive(5), 10);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

// --------------------------------------------------------------- Hashing

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Consecutive inputs should not produce consecutive outputs.
  EXPECT_GT(std::abs(static_cast<int64_t>(Mix64(1) - Mix64(0))), 1000);
}

TEST(HashTest, Hash64OrderSensitivity) {
  EXPECT_NE(Hash64({1, 2}), Hash64({2, 1}));
  EXPECT_NE(Hash64({1}), Hash64({1, 0}));
  EXPECT_EQ(Hash64({5, 6, 7}), Hash64({5, 6, 7}));
}

// --------------------------------------------------------------- Rng

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctSorted) {
  Rng rng(15);
  for (int rep = 0; rep < 50; ++rep) {
    auto sample = rng.SampleWithoutReplacement(30, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    for (int v : sample) EXPECT_TRUE(v >= 0 && v < 30);
  }
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// --------------------------------------------------------------- Strings

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringTest, JoinWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, ParseDoubleStrict) {
  double v;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e3 ", &v));
  EXPECT_FALSE(ParseDouble("3.2x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringTest, ParseIntStrict) {
  int v;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(ParseInt("42.5", &v));
  EXPECT_FALSE(ParseInt("four", &v));
}

TEST(StringTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.127), "12.70%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

// --------------------------------------------------------------- Table

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"xxxx", "y"});
  const std::string out = table.ToString();
  // Every line has the same width.
  std::istringstream iss(out);
  std::string line;
  size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"1"});
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NE(table.ToString().find("| 1 |"), std::string::npos);
}

}  // namespace
}  // namespace fume
