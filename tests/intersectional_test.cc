// Tests for intersectional group derivation and an end-to-end FUME audit of
// an intersectional violation.

#include <gtest/gtest.h>

#include "core/fume.h"
#include "fairness/intersectional.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset TwoSensitiveData(int64_t n, uint64_t seed) {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("race", {"white", "nonwhite"}).ok());
  EXPECT_TRUE(schema.AddCategorical("gender", {"male", "female"}).ok());
  EXPECT_TRUE(schema.AddCategorical("job", {"a", "b", "c"}).ok());
  Dataset data(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    const int race = rng.NextInt(0, 1);
    const int gender = rng.NextInt(0, 1);
    const int job = rng.NextInt(0, 2);
    // Bias concentrated at the nonwhite-female intersection.
    double p = 0.55;
    if (race == 1 && gender == 1) p = 0.25;
    EXPECT_TRUE(
        data.AppendRow({race, gender, job}, rng.NextBernoulli(p) ? 1 : 0)
            .ok());
  }
  return data;
}

TEST(IntersectionalTest, DerivedAttributeIsTheCrossProduct) {
  Dataset data = TwoSensitiveData(200, 1);
  auto derived = WithIntersectionalAttribute(data, 0, 1, "race_x_gender");
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  const Dataset& extended = derived->data;
  EXPECT_EQ(extended.num_attributes(), 4);
  EXPECT_EQ(derived->derived_attr, 3);
  const Attribute& attr = extended.schema().attribute(3);
  EXPECT_EQ(attr.cardinality(), 4);
  EXPECT_EQ(attr.categories[0], "white|male");
  EXPECT_EQ(attr.categories[3], "nonwhite|female");
  for (int64_t r = 0; r < extended.num_rows(); ++r) {
    EXPECT_EQ(extended.Code(r, 3),
              extended.Code(r, 0) * 2 + extended.Code(r, 1));
    EXPECT_EQ(extended.Label(r), data.Label(r));
  }
}

TEST(IntersectionalTest, GroupSpecTargetsOneCombination) {
  Dataset data = TwoSensitiveData(200, 2);
  auto derived = WithIntersectionalAttribute(data, 0, 1, "rg");
  ASSERT_TRUE(derived.ok());
  auto group = IntersectionalGroup(*derived, "white", "male");
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->sensitive_attr, 3);
  EXPECT_EQ(group->privileged_code, 0);
  EXPECT_TRUE(
      IntersectionalGroup(*derived, "white", "zzz").status().IsKeyError());
}

TEST(IntersectionalTest, Validation) {
  Dataset data = TwoSensitiveData(50, 3);
  EXPECT_FALSE(WithIntersectionalAttribute(data, 0, 0, "x").ok());
  EXPECT_FALSE(WithIntersectionalAttribute(data, 0, 9, "x").ok());
  EXPECT_FALSE(WithIntersectionalAttribute(data, 0, 1, "race").ok());
}

TEST(IntersectionalTest, FumeAuditsTheIntersection) {
  Dataset data = TwoSensitiveData(2000, 4);
  auto derived = WithIntersectionalAttribute(data, 0, 1, "race_x_gender");
  ASSERT_TRUE(derived.ok());
  // Privileged = white males; protected = every other intersection. The
  // planted bias hits nonwhite females, so a violation must appear.
  auto group = IntersectionalGroup(*derived, "white", "male");
  ASSERT_TRUE(group.ok());

  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < derived->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  const Dataset train = derived->data.Select(train_rows);
  const Dataset test = derived->data.Select(test_rows);
  ForestConfig forest_config;
  forest_config.num_trees = 10;
  forest_config.max_depth = 6;
  forest_config.seed = 7;
  auto model = DareForest::Train(train, forest_config);
  ASSERT_TRUE(model.ok());
  const double violation = ComputeFairness(
      *model, test, *group, FairnessMetric::kStatisticalParity);
  ASSERT_LT(violation, -0.01);

  FumeConfig config;
  config.top_k = 3;
  config.support_min = 0.05;
  config.support_max = 0.30;
  config.group = *group;
  // Search the base attributes only (exclude the derived one and its
  // constituents' trivial self-explanations).
  config.lattice.excluded_attrs = {derived->derived_attr};
  auto result = ExplainFairnessViolation(*model, train, test, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->top_k.empty());
  // The top subset should involve race and/or gender (the bias source).
  bool mentions_sensitive = false;
  for (const Literal& lit : result->top_k[0].predicate.literals()) {
    if (lit.attr == 0 || lit.attr == 1) mentions_sensitive = true;
  }
  EXPECT_TRUE(mentions_sensitive);
}

}  // namespace
}  // namespace fume
