// Tests for the SliceFinder-style comparator.

#include <gtest/gtest.h>

#include "core/slice_finder.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

// Data where the model is deliberately bad on one known slice: (A = a2)
// rows get adversarial labels the forest cannot fit at shallow depth.
Dataset SlicedData(int64_t n, uint64_t seed) {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("A", {"a0", "a1", "a2"}).ok());
  EXPECT_TRUE(schema.AddCategorical("B", {"b0", "b1"}).ok());
  EXPECT_TRUE(schema.AddCategorical("C", {"c0", "c1", "c2"}).ok());
  Dataset data(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    const int a = rng.NextWeighted({0.55, 0.35, 0.10});
    const int b = rng.NextInt(0, 1);
    const int c = rng.NextInt(0, 2);
    double p = b == 0 ? 0.85 : 0.15;
    if (a == 2) p = 0.5;  // pure noise inside the slice -> high error
    EXPECT_TRUE(
        data.AppendRow({a, b, c}, rng.NextBernoulli(p) ? 1 : 0).ok());
  }
  return data;
}

TEST(SliceFinderTest, FindsTheNoisySlice) {
  Dataset data = SlicedData(3000, 5);
  ForestConfig forest_config;
  forest_config.num_trees = 5;
  forest_config.max_depth = 5;
  forest_config.random_depth = 0;
  forest_config.num_candidate_attrs = 3;
  auto model = DareForest::Train(data, forest_config);
  ASSERT_TRUE(model.ok());

  SliceFinderConfig config;
  config.top_k = 3;
  config.support_min = 0.05;
  config.support_max = 0.20;
  config.max_literals = 1;
  auto slices = FindProblematicSlices(*model, data, config);
  ASSERT_TRUE(slices.ok()) << slices.status().ToString();
  ASSERT_FALSE(slices->empty());
  EXPECT_EQ((*slices)[0].predicate.ToString(data.schema()), "(A = a2)");
  EXPECT_GT((*slices)[0].effect_size, 0.15);
  EXPECT_GT((*slices)[0].slice_error, (*slices)[0].overall_error);
}

TEST(SliceFinderTest, RespectsSupportAndRanking) {
  Dataset data = SlicedData(2000, 6);
  auto model = DareForest::Train(data, ForestConfig{});
  ASSERT_TRUE(model.ok());
  SliceFinderConfig config;
  config.top_k = 10;
  config.support_min = 0.05;
  config.support_max = 0.30;
  config.max_literals = 2;
  auto slices = FindProblematicSlices(*model, data, config);
  ASSERT_TRUE(slices.ok());
  for (size_t i = 0; i < slices->size(); ++i) {
    const Slice& s = (*slices)[i];
    EXPECT_GE(s.support, config.support_min);
    EXPECT_LE(s.support, config.support_max);
    EXPECT_LE(s.predicate.num_literals(), 2);
    if (i > 0) {
      EXPECT_GE((*slices)[i - 1].effect_size, s.effect_size);
    }
    // Error rates are consistent: a recount of the slice must agree.
    const auto rows = s.predicate.MatchingRows(data);
    EXPECT_EQ(static_cast<int64_t>(rows.size()), s.num_rows);
  }
}

TEST(SliceFinderTest, ValidatesConfig) {
  Dataset data = SlicedData(100, 7);
  auto model = DareForest::Train(data, ForestConfig{});
  ASSERT_TRUE(model.ok());
  SliceFinderConfig config;
  config.top_k = 0;
  EXPECT_FALSE(FindProblematicSlices(*model, data, config).ok());
  config.top_k = 5;
  config.max_literals = 0;
  EXPECT_FALSE(FindProblematicSlices(*model, data, config).ok());
}

}  // namespace
}  // namespace fume
