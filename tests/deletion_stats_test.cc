// Field-count guard for DeletionStats (forest/config.h). The struct is
// enumerated by hand in Add(), operator==, the serializer's stats block and
// the member-pointer sweep below; the static_assert on kNumFields trips at
// compile time when a field is added or removed, and these tests keep the
// hand-written enumerations honest for the fields that exist.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "forest/config.h"

namespace fume {
namespace {

// One member pointer per field, in declaration order. Extending
// DeletionStats means extending this list (the size check below fails
// loudly until you do).
std::vector<int64_t DeletionStats::*> Fields() {
  return {&DeletionStats::nodes_visited,      &DeletionStats::nodes_updated,
          &DeletionStats::subtrees_retrained, &DeletionStats::rows_retrained,
          &DeletionStats::leaves_updated,     &DeletionStats::nodes_copied};
}

TEST(DeletionStatsTest, FieldListCoversTheStruct) {
  EXPECT_EQ(Fields().size(), static_cast<size_t>(DeletionStats::kNumFields));
  // No padding, no non-counter members: the struct is exactly its fields.
  // (Also asserted at compile time in config.h.)
  EXPECT_EQ(sizeof(DeletionStats),
            static_cast<size_t>(DeletionStats::kNumFields) * sizeof(int64_t));
}

TEST(DeletionStatsTest, EqualityDetectsEveryField) {
  for (auto field : Fields()) {
    DeletionStats a, b;
    EXPECT_EQ(a, b);
    b.*field = 7;
    EXPECT_FALSE(a == b) << "operator== ignores a field";
  }
}

TEST(DeletionStatsTest, AddSumsEveryField) {
  DeletionStats acc, delta, expect;
  int64_t v = 1;
  for (auto field : Fields()) {
    acc.*field = v;
    delta.*field = 10 * v;
    expect.*field = 11 * v;
    ++v;
  }
  acc.Add(delta);
  EXPECT_EQ(acc, expect);
}

}  // namespace
}  // namespace fume
