// Tests for forest serialization: byte-exact model round trips, continued
// unlearning after load, and corrupt-input rejection.

#include <gtest/gtest.h>

#include <sstream>

#include "forest/serialize.h"
#include "forest/sharded_forest.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

DareForest TrainedForest(uint64_t seed, ThresholdMode mode) {
  auto bundle = synth::MakeParametric(500, 6, 4, seed);
  EXPECT_TRUE(bundle.ok());
  ForestConfig config;
  config.num_trees = 4;
  config.max_depth = 7;
  config.random_depth = 2;
  config.threshold_mode = mode;
  config.seed = seed + 1;
  auto forest = DareForest::Train(bundle->data, config);
  EXPECT_TRUE(forest.ok());
  return std::move(*forest);
}

TEST(SerializeTest, RoundTripIsStructurallyIdentical) {
  DareForest forest = TrainedForest(1, ThresholdMode::kExact);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(SaveForest(forest, out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_EQ(loaded->num_nodes(), forest.num_nodes());
  EXPECT_EQ(loaded->config().seed, forest.config().seed);
}

TEST(SerializeTest, SampledModeRoundTrips) {
  DareForest forest = TrainedForest(2, ThresholdMode::kSampled);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(SaveForest(forest, out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_EQ(loaded->config().threshold_mode, ThresholdMode::kSampled);
}

TEST(SerializeTest, LoadedForestStillUnlearnsExactly) {
  DareForest forest = TrainedForest(3, ThresholdMode::kExact);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(SaveForest(forest, out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok());

  std::vector<RowId> doomed = {3, 50, 77, 123, 400, 499};
  ASSERT_TRUE(forest.DeleteRows(doomed).ok());
  ASSERT_TRUE(loaded->DeleteRows(doomed).ok());
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_TRUE(loaded->ValidateStats());
}

TEST(SerializeTest, DeleteBeforeSaveIsPreserved) {
  DareForest forest = TrainedForest(4, ThresholdMode::kExact);
  ASSERT_TRUE(forest.DeleteRows({1, 2, 3, 100}).ok());
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(SaveForest(forest, out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_EQ(loaded->num_training_rows(), 496);
}

TEST(SerializeTest, DeletionStatsSurviveMixedOpsRoundTrip) {
  // v2 pins the unlearning work counters: a forest that has absorbed a mix
  // of adds and deletes must round-trip its DeletionStats exactly, and keep
  // unlearning identically afterwards.
  DareForest forest = TrainedForest(7, ThresholdMode::kExact);
  auto extra = synth::MakeParametric(40, 6, 4, 99);
  ASSERT_TRUE(extra.ok());
  auto added = forest.AddData(extra->data);
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(forest.DeleteRows({2, 17, 130, (*added)[5], (*added)[20]}).ok());
  ASSERT_NE(forest.deletion_stats(), DeletionStats{});

  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(SaveForest(forest, out).ok());
  std::istringstream in(out.str(), std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_EQ(loaded->deletion_stats(), forest.deletion_stats());

  // Continued ops on both copies accrue identical counters.
  ASSERT_TRUE(forest.DeleteRows({5, 200, 333}).ok());
  ASSERT_TRUE(loaded->DeleteRows({5, 200, 333}).ok());
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_EQ(loaded->deletion_stats(), forest.deletion_stats());
}

TEST(SerializeTest, LazyTagsNeverReachTheWire) {
  // DESIGN.md §6 invariant 9: no tag escapes a flush boundary. SaveForest
  // flushes a lazily-deleted forest before writing, so the bytes it emits
  // equal the eager kernel's on the same op sequence (work counters zeroed
  // on both sides — lazy deliberately does less retrain work).
  DareForest eager = TrainedForest(8, ThresholdMode::kExact);
  DareForest lazy = TrainedForest(8, ThresholdMode::kExact);
  lazy.SetLazyUnlearn(true);
  std::vector<RowId> doomed;
  for (RowId r = 0; r < 160; r += 2) doomed.push_back(r);
  ASSERT_TRUE(eager.DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy.DeleteRows(doomed).ok());
  ASSERT_TRUE(lazy.HasLazyTags());

  // The first save triggers the flush (its retrain work lands in the lazy
  // DeletionStats, which v2 serializes); the byte comparison zeroes both
  // sides' counters afterwards and saves again.
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(SaveForest(lazy, first).ok());
  EXPECT_FALSE(lazy.HasLazyTags());
  eager.ResetDeletionStats();
  lazy.ResetDeletionStats();
  std::ostringstream eager_out(std::ios::binary);
  std::ostringstream lazy_out(std::ios::binary);
  ASSERT_TRUE(SaveForest(eager, eager_out).ok());
  ASSERT_TRUE(SaveForest(lazy, lazy_out).ok());
  EXPECT_EQ(lazy_out.str(), eager_out.str());

  std::istringstream in(lazy_out.str(), std::ios::binary);
  auto loaded = LoadForest(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->StructurallyEquals(eager));
  // lazy_unlearn is a runtime knob, never model state.
  EXPECT_FALSE(loaded->config().lazy_unlearn);
}

TEST(SerializeTest, RuntimeKnobsNeverReachTheWire) {
  // batched_unlearn_kernel / arena_traversal / lazy_unlearn (and the
  // ShardConfig routing of a 1-shard container) are execution knobs, not
  // model state: every combination run over the same train + mutate
  // sequence must serialize to the same bytes. A knob leaking into the
  // wire format would fork checkpoints between deployments that only
  // differ in execution strategy.
  struct Knobs {
    bool batched;
    bool arena;
    bool lazy;  // requires batched
  };
  const std::vector<Knobs> combos = {
      {true, true, false},  {true, false, false}, {false, true, false},
      {false, false, false}, {true, true, true},   {true, false, true},
  };
  auto bundle = synth::MakeParametric(400, 6, 4, 17);
  ASSERT_TRUE(bundle.ok());
  auto extra = synth::MakeParametric(30, 6, 4, 18);
  ASSERT_TRUE(extra.ok());

  std::string reference_mono;
  std::string reference_sharded;
  for (const Knobs& k : combos) {
    ForestConfig config;
    config.num_trees = 4;
    config.max_depth = 7;
    config.random_depth = 2;
    config.seed = 5;
    config.batched_unlearn_kernel = k.batched;
    config.arena_traversal = k.arena;
    config.lazy_unlearn = k.lazy;
    const std::string label = std::string("batched=") +
                              (k.batched ? "1" : "0") +
                              " arena=" + (k.arena ? "1" : "0") +
                              " lazy=" + (k.lazy ? "1" : "0");

    auto forest = DareForest::Train(bundle->data, config);
    ASSERT_TRUE(forest.ok()) << label;
    ASSERT_TRUE(forest->DeleteRows({2, 17, 90, 250, 399}).ok()) << label;
    ASSERT_TRUE(forest->AddData(extra->data).ok()) << label;
    ASSERT_TRUE(forest->DeleteRows({5, 6, 401}).ok()) << label;
    if (k.lazy) forest->FlushAll();
    // Lazy does less retrain work by design, so its counters differ;
    // zero them everywhere so the comparison pins pure model bytes.
    forest->ResetDeletionStats();
    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(SaveForest(*forest, out).ok()) << label;
    if (reference_mono.empty()) {
      reference_mono = out.str();
    } else {
      EXPECT_EQ(out.str(), reference_mono) << label;
    }

    // Same sweep through the sharded container (trained as one shard so
    // the knobs are the only variable; ShardConfig routing fields ARE
    // serialized — deliberately, a checkpoint must re-route identically).
    ShardConfig shard;
    shard.num_shards = 1;
    auto sharded = ShardedForest::Train(bundle->data, config, shard);
    ASSERT_TRUE(sharded.ok()) << label;
    ASSERT_TRUE(sharded->DeleteRows({2, 17, 90, 250, 399}).ok()) << label;
    ASSERT_TRUE(sharded->AddData(extra->data).ok()) << label;
    ASSERT_TRUE(sharded->DeleteRows({5, 6, 401}).ok()) << label;
    if (k.lazy) sharded->FlushAll();
    sharded->ResetDeletionStats();
    std::ostringstream shard_out(std::ios::binary);
    ASSERT_TRUE(sharded->Save(shard_out).ok()) << label;
    if (reference_sharded.empty()) {
      reference_sharded = shard_out.str();
    } else {
      EXPECT_EQ(shard_out.str(), reference_sharded) << label;
    }
  }
}

TEST(SerializeTest, FileRoundTrip) {
  DareForest forest = TrainedForest(5, ThresholdMode::kExact);
  const std::string path = "/tmp/fume_forest_test.bin";
  ASSERT_TRUE(SaveForestToFile(forest, path).ok());
  auto loaded = LoadForestFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->StructurallyEquals(forest));
  EXPECT_FALSE(LoadForestFromFile("/tmp/does-not-exist.bin").ok());
}

TEST(SerializeTest, RejectsCorruptInput) {
  {
    std::istringstream in(std::string("NOTAFORE"), std::ios::binary);
    EXPECT_TRUE(LoadForest(in).status().IsIOError());
  }
  {
    std::istringstream in(std::string(""), std::ios::binary);
    EXPECT_TRUE(LoadForest(in).status().IsIOError());
  }
  // Truncation anywhere in the stream must fail cleanly, never crash.
  DareForest forest = TrainedForest(6, ThresholdMode::kExact);
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(SaveForest(forest, out).ok());
  const std::string blob = out.str();
  for (size_t cut : {size_t{9}, size_t{40}, blob.size() / 2,
                     blob.size() - 3}) {
    std::istringstream in(blob.substr(0, cut), std::ios::binary);
    EXPECT_FALSE(LoadForest(in).ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace fume
