// Tests for the GBDT classifier: learning, determinism, cascade-retrain
// exactness, and FUME over a boosted model (the model-agnostic route).

#include <gtest/gtest.h>

#include "core/fume.h"
#include "gbdt/gbdt.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset XorishData(int64_t n, uint64_t seed) {
  // Label depends on an interaction (x0 high AND x1 low) — a pattern depth-1
  // stumps cannot fit but boosted depth-3 trees can.
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("x0", {"a", "b", "c", "d"}).ok());
  EXPECT_TRUE(schema.AddCategorical("x1", {"p", "q", "r"}).ok());
  EXPECT_TRUE(schema.AddCategorical("x2", {"u", "v"}).ok());
  Dataset data(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    const int x0 = rng.NextInt(0, 3);
    const int x1 = rng.NextInt(0, 2);
    const int x2 = rng.NextInt(0, 1);
    const bool core = x0 >= 2 && x1 <= 0;
    const double p = core ? 0.9 : 0.15;
    EXPECT_TRUE(
        data.AppendRow({x0, x1, x2}, rng.NextBernoulli(p) ? 1 : 0).ok());
  }
  return data;
}

GbdtConfig TestConfig() {
  GbdtConfig config;
  config.num_rounds = 30;
  config.max_depth = 3;
  config.learning_rate = 0.2;
  return config;
}

TEST(GbdtTest, ValidatesInput) {
  Dataset data = XorishData(50, 1);
  GbdtConfig config = TestConfig();
  config.num_rounds = 0;
  EXPECT_FALSE(GbdtClassifier::Train(data, config).ok());
  config = TestConfig();
  config.learning_rate = 0.0;
  EXPECT_FALSE(GbdtClassifier::Train(data, config).ok());
  Schema numeric_schema;
  ASSERT_TRUE(numeric_schema.AddNumeric("n").ok());
  Dataset numeric(numeric_schema);
  ASSERT_TRUE(numeric.AppendRowMixed({0}, {1.0}, 0).ok());
  EXPECT_FALSE(GbdtClassifier::Train(numeric, TestConfig()).ok());
}

TEST(GbdtTest, LearnsTheInteraction) {
  Dataset train = XorishData(1200, 2);
  Dataset test = XorishData(500, 3);
  auto model = GbdtClassifier::Train(train, TestConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Accuracy(test), 0.8);
  // Probabilities are calibrated-ish: core cells high, others low.
  Dataset probe = XorishData(50, 4);
  for (int64_t r = 0; r < probe.num_rows(); ++r) {
    const double p = model->PredictProb(probe, r);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(GbdtTest, TrainingIsDeterministic) {
  Dataset train = XorishData(400, 5);
  auto a = GbdtClassifier::Train(train, TestConfig());
  auto b = GbdtClassifier::Train(train, TestConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    ASSERT_DOUBLE_EQ(a->PredictProb(train, r), b->PredictProb(train, r));
  }
}

TEST(GbdtTest, CascadeDeleteEqualsScratchTrain) {
  Dataset train = XorishData(500, 6);
  auto model = GbdtClassifier::Train(train, TestConfig());
  ASSERT_TRUE(model.ok());

  Rng rng(7);
  std::vector<RowId> doomed;
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    if (rng.NextBernoulli(0.15)) doomed.push_back(static_cast<RowId>(r));
  }
  GbdtClassifier unlearned = model->Clone();
  ASSERT_TRUE(unlearned.DeleteRows(doomed).ok());

  std::vector<int64_t> doomed64(doomed.begin(), doomed.end());
  auto scratch =
      GbdtClassifier::Train(train.DropRows(doomed64), TestConfig());
  ASSERT_TRUE(scratch.ok());
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    ASSERT_DOUBLE_EQ(unlearned.PredictProb(train, r),
                     scratch->PredictProb(train, r));
  }
}

TEST(GbdtTest, DeleteValidation) {
  Dataset train = XorishData(100, 8);
  auto model = GbdtClassifier::Train(train, TestConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->DeleteRows({999}).IsIndexError());
  EXPECT_TRUE(model->DeleteRows({4, 4}).IsInvalid());
  ASSERT_TRUE(model->DeleteRows({4}).ok());
  EXPECT_TRUE(model->DeleteRows({4}).IsInvalid());  // double delete
  EXPECT_EQ(model->num_alive_rows(), 99);
}

TEST(GbdtTest, FumeExplainsAGbdtViolation) {
  synth::PlantedOptions opts;
  opts.num_rows = 1200;
  opts.seed = 3;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  const Dataset train = bundle->data.Select(train_rows);
  const Dataset test = bundle->data.Select(test_rows);

  GbdtConfig model_config = TestConfig();
  model_config.num_rounds = 25;
  auto model = GbdtClassifier::Train(train, model_config);
  ASSERT_TRUE(model.ok());

  FumeConfig config;
  config.top_k = 3;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};
  const ModelEval original =
      EvaluateGbdt(*model, test, config.group, config.metric);
  if (std::abs(original.fairness) < 0.01) {
    GTEST_SKIP() << "model happens to be fair on this draw";
  }
  GbdtUnlearnRemovalMethod removal(&*model, &test, config.group,
                                   config.metric);
  auto result = ExplainWithRemoval(original, train, config, &removal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& s : result->top_k) {
    EXPECT_GT(s.attribution, 0.0);
    EXPECT_LT(std::abs(s.new_fairness), std::abs(original.fairness));
  }
}

}  // namespace
}  // namespace fume
