// Tests for the k-NN model family: prediction semantics, trivially-exact
// unlearning, and FUME running end-to-end over a k-NN model through the
// generic ExplainWithRemoval entry point (paper §5 extensibility).

#include <gtest/gtest.h>

#include "core/fume.h"
#include "knn/knn.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

Dataset SmallKnnData() {
  Schema schema;
  EXPECT_TRUE(schema.AddCategorical("x", {"0", "1", "2"}).ok());
  EXPECT_TRUE(schema.AddCategorical("y", {"a", "b"}).ok());
  Dataset data(schema);
  // Cluster 1 (x=0): positive; cluster 2 (x=2): negative.
  EXPECT_TRUE(data.AppendRow({0, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({0, 1}, 1).ok());
  EXPECT_TRUE(data.AppendRow({0, 0}, 1).ok());
  EXPECT_TRUE(data.AppendRow({2, 0}, 0).ok());
  EXPECT_TRUE(data.AppendRow({2, 1}, 0).ok());
  EXPECT_TRUE(data.AppendRow({2, 0}, 0).ok());
  return data;
}

TEST(KnnTest, TrainValidatesInput) {
  Dataset data = SmallKnnData();
  KnnConfig config;
  config.num_neighbors = 0;
  EXPECT_FALSE(KnnClassifier::Train(data, config).ok());
  Schema numeric_schema;
  ASSERT_TRUE(numeric_schema.AddNumeric("n").ok());
  Dataset numeric(numeric_schema);
  ASSERT_TRUE(numeric.AppendRowMixed({0}, {1.0}, 0).ok());
  EXPECT_FALSE(KnnClassifier::Train(numeric, KnnConfig{}).ok());
}

TEST(KnnTest, NearestClusterWins) {
  Dataset data = SmallKnnData();
  KnnConfig config;
  config.num_neighbors = 3;
  auto model = KnnClassifier::Train(data, config);
  ASSERT_TRUE(model.ok());
  // Query each training row: its own cluster dominates.
  EXPECT_EQ(model->Predict(data, 0), 1);
  EXPECT_EQ(model->Predict(data, 4), 0);
  EXPECT_DOUBLE_EQ(model->PredictProb(data, 0), 1.0);
  // Query {2,0}: rows 3 and 5 are at distance 0; rows 0, 2 and 4 tie at
  // distance 1 and the smallest id (row 0, positive) takes the third slot.
  EXPECT_DOUBLE_EQ(model->PredictProb(data, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(model->Accuracy(data), 1.0);
}

TEST(KnnTest, KLargerThanDataIsClamped) {
  Dataset data = SmallKnnData();
  KnnConfig config;
  config.num_neighbors = 50;
  auto model = KnnClassifier::Train(data, config);
  ASSERT_TRUE(model.ok());
  // All six rows vote: 3 positive / 6.
  EXPECT_DOUBLE_EQ(model->PredictProb(data, 0), 0.5);
}

TEST(KnnTest, DeletionIsExactlyRetraining) {
  synth::PlantedOptions opts;
  opts.num_rows = 400;
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  const Dataset& data = bundle->data;
  KnnConfig config;
  config.num_neighbors = 7;
  auto model = KnnClassifier::Train(data, config);
  ASSERT_TRUE(model.ok());

  Rng rng(3);
  std::vector<RowId> doomed;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (rng.NextBernoulli(0.2)) doomed.push_back(static_cast<RowId>(r));
  }
  KnnClassifier unlearned = model->Clone();
  ASSERT_TRUE(unlearned.DeleteRows(doomed).ok());

  std::vector<int64_t> doomed64(doomed.begin(), doomed.end());
  auto retrained = KnnClassifier::Train(data.DropRows(doomed64), config);
  ASSERT_TRUE(retrained.ok());
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    ASSERT_DOUBLE_EQ(unlearned.PredictProb(data, r),
                     retrained->PredictProb(data, r));
  }
}

TEST(KnnTest, DeleteValidation) {
  Dataset data = SmallKnnData();
  auto model = KnnClassifier::Train(data, KnnConfig{});
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->DeleteRows({99}).IsIndexError());
  ASSERT_TRUE(model->DeleteRows({1}).ok());
  EXPECT_TRUE(model->DeleteRows({1}).IsInvalid());  // double delete
  EXPECT_EQ(model->num_alive_rows(), 5);
}

TEST(KnnTest, EmptyModelPredictsHalf) {
  Dataset data = SmallKnnData();
  auto model = KnnClassifier::Train(data, KnnConfig{});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->DeleteRows({0, 1, 2, 3, 4, 5}).ok());
  EXPECT_DOUBLE_EQ(model->PredictProb(data, 0), 0.5);
}

TEST(KnnTest, FumeExplainsAKnnViolation) {
  synth::PlantedOptions opts;
  opts.num_rows = 1200;
  opts.seed = 3;  // a draw where the k-NN model shows a clear violation
  auto bundle = synth::MakePlantedBias(opts);
  ASSERT_TRUE(bundle.ok());
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  const Dataset train = bundle->data.Select(train_rows);
  const Dataset test = bundle->data.Select(test_rows);

  KnnConfig knn_config;
  knn_config.num_neighbors = 9;
  auto model = KnnClassifier::Train(train, knn_config);
  ASSERT_TRUE(model.ok());

  FumeConfig config;
  config.top_k = 5;
  config.support_min = 0.02;
  config.support_max = 0.25;
  config.max_literals = 2;
  config.group = bundle->group;
  config.lattice.excluded_attrs = {bundle->group.sensitive_attr};

  const ModelEval original =
      EvaluateKnn(*model, test, config.group, config.metric);
  if (std::abs(original.fairness) < 0.01) {
    GTEST_SKIP() << "k-NN model happens to be fair on this draw";
  }
  KnnUnlearnRemovalMethod removal(&*model, &test, config.group, config.metric);
  auto result = ExplainWithRemoval(original, train, config, &removal);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->top_k.empty());
  for (const auto& s : result->top_k) {
    EXPECT_GT(s.attribution, 0.0);
    EXPECT_LE(s.predicate.num_literals(), 2);
  }
}

}  // namespace
}  // namespace fume
