// Tests for attribution math and the two removal methods — in particular
// that DaRE unlearning and same-seed scratch retraining agree EXACTLY on the
// counterfactual fairness (the property FUME's efficiency rests on).

#include <gtest/gtest.h>

#include "core/attribution.h"
#include "core/baseline.h"
#include "core/removal_method.h"
#include "synth/datasets.h"
#include "util/rng.h"

namespace fume {
namespace {

struct Fixture {
  Dataset train;
  Dataset test;
  GroupSpec group;
  DareForest model;
};

ForestConfig TestForestConfig() {
  ForestConfig config;
  config.num_trees = 5;
  config.max_depth = 6;
  config.random_depth = 2;
  config.seed = 23;
  return config;
}

Fixture MakeFixture(uint64_t seed = 1) {
  synth::PlantedOptions opts;
  opts.num_rows = 1500;
  opts.seed = seed;
  auto bundle = synth::MakePlantedBias(opts);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  // Deterministic 70/30 split.
  std::vector<int64_t> train_rows, test_rows;
  for (int64_t r = 0; r < bundle->data.num_rows(); ++r) {
    (r % 10 < 7 ? train_rows : test_rows).push_back(r);
  }
  Fixture f{bundle->data.Select(train_rows), bundle->data.Select(test_rows),
            bundle->group, DareForest()};
  auto model = DareForest::Train(f.train, TestForestConfig());
  EXPECT_TRUE(model.ok());
  f.model = std::move(*model);
  return f;
}

TEST(ComputePhiTest, Definition23) {
  // |F| goes 0.2 -> 0.1: phi = (0.1-0.2)/0.2 = -0.5 (bias halved).
  EXPECT_DOUBLE_EQ(ComputePhi(-0.2, -0.1), -0.5);
  EXPECT_DOUBLE_EQ(ComputePhi(-0.2, 0.1), -0.5);   // magnitude-based
  EXPECT_DOUBLE_EQ(ComputePhi(0.2, -0.3), 0.5);    // bias worsened
  EXPECT_DOUBLE_EQ(ComputePhi(-0.2, 0.0), -1.0);   // fully removed
}

TEST(RemovalMethodsTest, UnlearnEqualsSameSeedRetrainExactly) {
  Fixture f = MakeFixture();
  UnlearnRemovalMethod unlearn(&f.model, &f.test, f.group,
                               FairnessMetric::kStatisticalParity);
  RetrainRemovalMethod retrain(&f.train, &f.test, TestForestConfig(), f.group,
                               FairnessMetric::kStatisticalParity);
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<RowId> rows;
    for (int64_t r = 0; r < f.train.num_rows(); ++r) {
      if (rng.NextBernoulli(0.08)) rows.push_back(static_cast<RowId>(r));
    }
    auto a = unlearn.EvaluateWithout(rows);
    auto b = retrain.EvaluateWithout(rows);
    ASSERT_TRUE(a.ok() && b.ok());
    // DaRE deletion is exact and our construction is deterministic, so the
    // two counterfactual models are identical — not merely close.
    EXPECT_DOUBLE_EQ(a->fairness, b->fairness);
    EXPECT_DOUBLE_EQ(a->accuracy, b->accuracy);
  }
}

TEST(RemovalMethodsTest, DifferentSeedRetrainIsCloseButNotIdentical) {
  Fixture f = MakeFixture();
  UnlearnRemovalMethod unlearn(&f.model, &f.test, f.group,
                               FairnessMetric::kStatisticalParity);
  ForestConfig other = TestForestConfig();
  other.seed = 991;  // fresh randomness, the paper's Figure 3 setting
  RetrainRemovalMethod retrain(&f.train, &f.test, other, f.group,
                               FairnessMetric::kStatisticalParity);
  std::vector<RowId> rows;
  for (RowId r = 0; r < 100; ++r) rows.push_back(r);
  auto a = unlearn.EvaluateWithout(rows);
  auto b = retrain.EvaluateWithout(rows);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->fairness, b->fairness, 0.12);
}

TEST(RemovalMethodsTest, EmptyRemovalLeavesModelUnchanged) {
  Fixture f = MakeFixture();
  UnlearnRemovalMethod unlearn(&f.model, &f.test, f.group,
                               FairnessMetric::kStatisticalParity);
  auto eval = unlearn.EvaluateWithout({});
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->fairness,
                   ComputeFairness(f.model, f.test, f.group,
                                   FairnessMetric::kStatisticalParity));
  EXPECT_DOUBLE_EQ(eval->accuracy, f.model.Accuracy(f.test));
}

TEST(EstimateAttributionTest, PlantedCohortHasPositiveAttribution) {
  Fixture f = MakeFixture();
  const double original = ComputeFairness(
      f.model, f.test, f.group, FairnessMetric::kStatisticalParity);
  ASSERT_LT(original, -0.01);  // planted violation exists

  // The planted cohort (A = a1 AND B = b2).
  Predicate planted;
  for (const auto& [attr, code] : synth::PlantedCohortConditions()) {
    planted = planted.With(Literal{attr, LiteralOp::kEq, code});
  }
  std::vector<int32_t> matched = planted.MatchingRows(f.train);
  std::vector<RowId> rows(matched.begin(), matched.end());
  ASSERT_GT(rows.size(), 20u);

  UnlearnRemovalMethod unlearn(&f.model, &f.test, f.group,
                               FairnessMetric::kStatisticalParity);
  auto subset = EstimateAttribution(&unlearn, planted, rows,
                                    f.train.num_rows(), original);
  ASSERT_TRUE(subset.ok());
  EXPECT_GT(subset->attribution, 0.3);  // removes a large chunk of the bias
  EXPECT_DOUBLE_EQ(subset->phi, -subset->attribution);
  EXPECT_NEAR(subset->support,
              static_cast<double>(rows.size()) /
                  static_cast<double>(f.train.num_rows()),
              1e-12);
}

TEST(EstimateAttributionTest, RandomSubsetHasSmallAttribution) {
  Fixture f = MakeFixture();
  const double original = ComputeFairness(
      f.model, f.test, f.group, FairnessMetric::kStatisticalParity);
  Rng rng(5);
  std::vector<RowId> rows;
  for (int64_t r = 0; r < f.train.num_rows(); ++r) {
    if (rng.NextBernoulli(0.05)) rows.push_back(static_cast<RowId>(r));
  }
  UnlearnRemovalMethod unlearn(&f.model, &f.test, f.group,
                               FairnessMetric::kStatisticalParity);
  auto subset = EstimateAttribution(&unlearn, Predicate(), rows,
                                    f.train.num_rows(), original);
  ASSERT_TRUE(subset.ok());
  // A random 5% slice does not carry the planted signal.
  EXPECT_LT(std::abs(subset->attribution), 0.35);
}

TEST(EstimateAttributionTest, RejectsZeroBias) {
  Fixture f = MakeFixture();
  UnlearnRemovalMethod unlearn(&f.model, &f.test, f.group,
                               FairnessMetric::kStatisticalParity);
  EXPECT_FALSE(
      EstimateAttribution(&unlearn, Predicate(), {0, 1}, 100, 0.0).ok());
}

TEST(BaselineTest, DropUnprivUnfavorReducesBias) {
  Fixture f = MakeFixture();
  auto baseline =
      RunDropUnprivUnfavor(f.train, f.test, TestForestConfig(), f.group,
                           FairnessMetric::kStatisticalParity);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_GT(baseline->removed_rows, 0);
  EXPECT_LT(baseline->removed_fraction, 1.0);
  // Removing all unfavorable outcomes of the unprivileged group pushes its
  // positive rate up, so the disparity magnitude must shrink (or flip).
  EXPECT_GT(baseline->new_fairness, baseline->original_fairness);
  EXPECT_GT(baseline->parity_reduction, 0.0);
}

TEST(BaselineTest, RemovedFractionMatchesData) {
  Fixture f = MakeFixture();
  int64_t expect = 0;
  for (int64_t r = 0; r < f.train.num_rows(); ++r) {
    if (f.train.Code(r, f.group.sensitive_attr) != f.group.privileged_code &&
        f.train.Label(r) == 0) {
      ++expect;
    }
  }
  auto baseline =
      RunDropUnprivUnfavor(f.train, f.test, TestForestConfig(), f.group,
                           FairnessMetric::kStatisticalParity);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->removed_rows, expect);
}

}  // namespace
}  // namespace fume
