#include "subset/literal.h"

#include "util/check.h"

namespace fume {

const char* LiteralOpSymbol(LiteralOp op) {
  switch (op) {
    case LiteralOp::kEq:
      return "=";
    case LiteralOp::kNe:
      return "!=";
    case LiteralOp::kLt:
      return "<";
    case LiteralOp::kLe:
      return "<=";
    case LiteralOp::kGe:
      return ">=";
    case LiteralOp::kGt:
      return ">";
  }
  return "?";
}

bool Literal::Matches(int32_t code) const {
  switch (op) {
    case LiteralOp::kEq:
      return code == value;
    case LiteralOp::kNe:
      return code != value;
    case LiteralOp::kLt:
      return code < value;
    case LiteralOp::kLe:
      return code <= value;
    case LiteralOp::kGe:
      return code >= value;
    case LiteralOp::kGt:
      return code > value;
  }
  return false;
}

uint64_t Literal::AllowedMask(int32_t cardinality) const {
  FUME_CHECK(cardinality >= 1 && cardinality <= 64);
  uint64_t mask = 0;
  for (int32_t c = 0; c < cardinality; ++c) {
    if (Matches(c)) mask |= uint64_t{1} << c;
  }
  return mask;
}

std::string Literal::ToString(const Schema& schema) const {
  const Attribute& a = schema.attribute(attr);
  std::string v = (value >= 0 && value < a.cardinality())
                      ? a.categories[static_cast<size_t>(value)]
                      : std::to_string(value);
  return a.name + " " + LiteralOpSymbol(op) + " " + v;
}

}  // namespace fume
