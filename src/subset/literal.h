// Literal: one (attribute op value) comparison over category codes.
// Predicates (predicate.h) are conjunctions of literals (paper §2.1).

#ifndef FUME_SUBSET_LITERAL_H_
#define FUME_SUBSET_LITERAL_H_

#include <cstdint>
#include <string>

#include "data/schema.h"

namespace fume {

/// Comparison operator of a literal: X op v over the attribute's code order
/// (bin order for discretized attributes).
enum class LiteralOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGe,
  kGt,
};

const char* LiteralOpSymbol(LiteralOp op);

/// \brief One comparison (attr op value). Value is a category code.
struct Literal {
  int attr = 0;
  LiteralOp op = LiteralOp::kEq;
  int32_t value = 0;

  bool Matches(int32_t code) const;

  /// Bitmask (over codes 0..cardinality-1, cardinality <= 64) of codes the
  /// literal admits. Used for Rule 1 satisfiability checks.
  uint64_t AllowedMask(int32_t cardinality) const;

  /// "Gender = Male" (needs the schema for names).
  std::string ToString(const Schema& schema) const;

  /// Total order (attr, op, value): the canonical literal order inside
  /// predicates and the apriori join order.
  friend bool operator<(const Literal& a, const Literal& b) {
    if (a.attr != b.attr) return a.attr < b.attr;
    if (a.op != b.op) return static_cast<int>(a.op) < static_cast<int>(b.op);
    return a.value < b.value;
  }
  friend bool operator==(const Literal& a, const Literal& b) {
    return a.attr == b.attr && a.op == b.op && a.value == b.value;
  }
};

}  // namespace fume

#endif  // FUME_SUBSET_LITERAL_H_
