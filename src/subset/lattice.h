// The hierarchically ordered lattice of predicate subsets (paper §4),
// borrowed from apriori candidate generation: level l nodes carry l literals
// and are produced by joining two level-(l-1) nodes that share l-2 literals.

#ifndef FUME_SUBSET_LATTICE_H_
#define FUME_SUBSET_LATTICE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "subset/posting_index.h"
#include "subset/predicate.h"

namespace fume {

/// \brief One lattice node: a predicate plus its matched training rows and
/// search bookkeeping filled in by FUME.
struct LatticeNode {
  Predicate predicate;
  Bitmap rows;          // matching training rows
  int64_t support_count = 0;  // |rows|, counted when rows was built
  double support = 0.0; // |rows| / |D|
  int level = 1;        // number of literals

  /// Bias attribution (positive = removing the subset reduces bias; the
  /// paper's "parity reduction" as a fraction). NaN until estimated —
  /// nodes kept for expansion only (support > tau_max) are never estimated.
  double attribution = std::numeric_limits<double>::quiet_NaN();
  /// Best parent attribution, for pruning Rule 4. NaN at level 1.
  double parent_attribution = std::numeric_limits<double>::quiet_NaN();

  bool attribution_known() const { return attribution == attribution; }
};

struct LatticeOptions {
  /// Generate equality literals for every (attribute, value) pair at level 1
  /// (the paper's construction over discretized data).
  bool equality_literals = true;
  /// Additionally generate range literals (<= v and >= v) for attributes
  /// whose code order is meaningful (discretized numerics). Off by default
  /// to mirror the paper's experiments.
  bool range_literals = false;
  /// Attributes excluded from literals (e.g. the sensitive attribute when
  /// the practitioner wants explanations not phrased in terms of it).
  std::vector<int> excluded_attrs;
};

/// Work breakdown of one MergeLevel call (Rule 1 is the only rule applied
/// inside the lattice; the rest live in the FUME search loop).
struct LatticeMergeStats {
  /// Join pairs examined — the "possible subsets" column of Table 9.
  int64_t pairs_considered = 0;
  /// Pairs dropped because the merge is unsatisfiable (Rule 1 proper).
  int64_t rule1_contradictions = 0;
  /// Pairs dropped as degenerate (the joined literal already present).
  int64_t degenerate_merges = 0;
};

/// \brief Generates lattice levels over one training set.
class Lattice {
 public:
  Lattice(const Dataset& train, LatticeOptions options);

  /// Level-1 nodes: one per literal, with bitmaps from the posting index.
  std::vector<LatticeNode> MakeLevel1() const;

  /// Apriori join of level-(l-1) nodes into level-l candidates: two nodes
  /// sharing their first l-2 literals merge; contradictory results (Rule 1)
  /// are dropped. `parents` must be sorted by predicate (the join relies on
  /// the canonical order); MergeLevel sorts a copy if needed.
  ///
  /// Each candidate's rows = intersection of its parents' bitmaps (a
  /// level-l node IS parent ∩ its other parent's last literal — see
  /// DESIGN.md §6.4 — so no candidate ever consults the posting index),
  /// derived in one fused AND+popcount pass that also fills support_count.
  /// parent_attribution = max of the parents' known attributions.
  /// `stats` receives the pairs-considered / Rule 1 breakdown.
  std::vector<LatticeNode> MergeLevel(std::vector<LatticeNode> parents,
                                      LatticeMergeStats& stats) const;

  /// Same, reporting only the pairs-considered count (nullable).
  std::vector<LatticeNode> MergeLevel(std::vector<LatticeNode> parents,
                                      int64_t* pairs_considered) const;

  /// Number of syntactically possible subsets at level 1 (= sum of literal
  /// counts); reported by Table 9.
  int64_t NumPossibleLevel1() const;

  const PostingIndex& index() const { return index_; }
  const Schema& schema() const { return *schema_; }
  int64_t num_rows() const { return num_rows_; }

 private:
  std::vector<Literal> MakeLiterals() const;

  const Schema* schema_;
  int64_t num_rows_;
  LatticeOptions options_;
  PostingIndex index_;
};

}  // namespace fume

#endif  // FUME_SUBSET_LATTICE_H_
