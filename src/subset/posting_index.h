// PostingIndex: per-literal row bitmaps over a training set. Level-1 lattice
// nodes take their bitmap straight from the index; deeper nodes intersect
// parent bitmaps, so no predicate ever rescans the data.
//
// Non-equality literals (ranges) are unions of several equality bitmaps;
// those unions are computed once per literal and cached, so a literal that
// appears in many lattice candidates pays its union exactly once per index.

#ifndef FUME_SUBSET_POSTING_INDEX_H_
#define FUME_SUBSET_POSTING_INDEX_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "data/dataset.h"
#include "subset/bitmap.h"
#include "subset/literal.h"
#include "subset/predicate.h"

namespace fume {

/// \brief Precomputed equality bitmaps for every (attribute, code) pair of an
/// all-categorical dataset; arbitrary literals/predicates are evaluated by
/// combining them.
class PostingIndex {
 public:
  /// Builds bitmaps for `data` (must be all-categorical).
  static PostingIndex Build(const Dataset& data);

  int64_t num_rows() const { return num_rows_; }

  /// Bitmap of rows with code(attr) == value.
  const Bitmap& EqualityBitmap(int attr, int32_t value) const;

  /// Bitmap of rows matching an arbitrary literal. Equality literals
  /// resolve to their precomputed map; other operators are unions over the
  /// matching codes, computed on first use and cached for the index's
  /// lifetime (counters posting.literal_cache.{hit,miss}). The returned
  /// reference stays valid as long as the index lives. Thread-safe.
  const Bitmap& LiteralBitmap(const Literal& literal) const;

  /// Bitmap of rows matching an arbitrary literal, as an owned copy.
  Bitmap Match(const Literal& literal) const;

  /// Bitmap of rows matching a conjunction, built from scratch by
  /// intersecting the (cached) literal bitmaps. The lattice never calls
  /// this on its search path — children derive from parent rowsets — so a
  /// call here counts as lattice.rowset.scratch.
  Bitmap Match(const Predicate& predicate) const;

  /// sup(predicate) = |match| / |D|, counted without materializing a rowset
  /// (fused AND+popcount over the literal bitmaps).
  double Support(const Predicate& predicate) const;

 private:
  int64_t num_rows_ = 0;
  std::vector<int32_t> cards_;
  /// maps_[attr][code]
  std::vector<std::vector<Bitmap>> maps_;
  /// Union-of-equality bitmaps for non-equality literals, filled lazily.
  /// std::map keeps node addresses stable, so LiteralBitmap can hand out
  /// references that outlive later insertions. Behind a unique_ptr because
  /// std::mutex would pin the index in place (Build returns by value).
  struct LiteralCache {
    std::mutex mutex;
    std::map<Literal, Bitmap> entries;
  };
  mutable std::unique_ptr<LiteralCache> cache_ =
      std::make_unique<LiteralCache>();
};

}  // namespace fume

#endif  // FUME_SUBSET_POSTING_INDEX_H_
