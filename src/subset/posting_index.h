// PostingIndex: per-literal row bitmaps over a training set. Level-1 lattice
// nodes take their bitmap straight from the index; deeper nodes intersect
// parent bitmaps, so no predicate ever rescans the data.

#ifndef FUME_SUBSET_POSTING_INDEX_H_
#define FUME_SUBSET_POSTING_INDEX_H_

#include <vector>

#include "data/dataset.h"
#include "subset/bitmap.h"
#include "subset/literal.h"
#include "subset/predicate.h"

namespace fume {

/// \brief Precomputed equality bitmaps for every (attribute, code) pair of an
/// all-categorical dataset; arbitrary literals/predicates are evaluated by
/// combining them.
class PostingIndex {
 public:
  /// Builds bitmaps for `data` (must be all-categorical).
  static PostingIndex Build(const Dataset& data);

  int64_t num_rows() const { return num_rows_; }

  /// Bitmap of rows with code(attr) == value.
  const Bitmap& EqualityBitmap(int attr, int32_t value) const;

  /// Bitmap of rows matching an arbitrary literal (union of equality maps).
  Bitmap Match(const Literal& literal) const;

  /// Bitmap of rows matching a conjunction.
  Bitmap Match(const Predicate& predicate) const;

  double Support(const Predicate& predicate) const;

 private:
  int64_t num_rows_ = 0;
  std::vector<int32_t> cards_;
  /// maps_[attr][code]
  std::vector<std::vector<Bitmap>> maps_;
};

}  // namespace fume

#endif  // FUME_SUBSET_POSTING_INDEX_H_
