#include "subset/posting_index.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

namespace {

// Posting-list work counters: how many literal/predicate lookups the
// search issues and how many bitmap combines they cost. One relaxed add
// per Match call — per-row work stays uninstrumented.
obs::Counter* LiteralMatches() {
  static obs::Counter* c = obs::GetCounter("posting.match.literal");
  return c;
}
obs::Counter* PredicateMatches() {
  static obs::Counter* c = obs::GetCounter("posting.match.predicate");
  return c;
}
obs::Counter* BitmapUnions() {
  static obs::Counter* c = obs::GetCounter("posting.bitmap.union");
  return c;
}
obs::Counter* BitmapIntersections() {
  static obs::Counter* c = obs::GetCounter("posting.bitmap.intersect");
  return c;
}
obs::Counter* LiteralCacheHits() {
  static obs::Counter* c = obs::GetCounter("posting.literal_cache.hit");
  return c;
}
obs::Counter* LiteralCacheMisses() {
  static obs::Counter* c = obs::GetCounter("posting.literal_cache.miss");
  return c;
}
// Predicate rowsets materialized from scratch (vs the lattice's
// parent-derived path, lattice.rowset.derived).
obs::Counter* ScratchRowsets() {
  static obs::Counter* c = obs::GetCounter("lattice.rowset.scratch");
  return c;
}

}  // namespace

PostingIndex PostingIndex::Build(const Dataset& data) {
  FUME_CHECK(data.schema().AllCategorical());
  obs::TraceSpan span("posting.build", {{"rows", data.num_rows()}});
  PostingIndex index;
  index.num_rows_ = data.num_rows();
  const int p = data.num_attributes();
  index.cards_.resize(static_cast<size_t>(p));
  index.maps_.resize(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    const int32_t card = data.schema().attribute(j).cardinality();
    index.cards_[static_cast<size_t>(j)] = card;
    index.maps_[static_cast<size_t>(j)].assign(static_cast<size_t>(card),
                                               Bitmap(data.num_rows()));
    const auto& codes = data.codes(j);
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      index.maps_[static_cast<size_t>(j)]
                 [static_cast<size_t>(codes[static_cast<size_t>(r)])]
                     .Set(r);
    }
  }
  return index;
}

const Bitmap& PostingIndex::EqualityBitmap(int attr, int32_t value) const {
  return maps_[static_cast<size_t>(attr)][static_cast<size_t>(value)];
}

const Bitmap& PostingIndex::LiteralBitmap(const Literal& literal) const {
  LiteralMatches()->Inc();
  // Equality literals ARE the precomputed posting lists — no union, no
  // cache entry needed.
  if (literal.op == LiteralOp::kEq) {
    LiteralCacheHits()->Inc();
    return EqualityBitmap(literal.attr, literal.value);
  }
  std::lock_guard<std::mutex> lock(cache_->mutex);
  auto it = cache_->entries.find(literal);
  if (it != cache_->entries.end()) {
    LiteralCacheHits()->Inc();
    return it->second;
  }
  LiteralCacheMisses()->Inc();
  const int32_t card = cards_[static_cast<size_t>(literal.attr)];
  Bitmap out(num_rows_);
  for (int32_t c = 0; c < card; ++c) {
    if (literal.Matches(c)) {
      BitmapUnions()->Inc();
      out.UnionWith(maps_[static_cast<size_t>(literal.attr)]
                         [static_cast<size_t>(c)]);
    }
  }
  return cache_->entries.emplace(literal, std::move(out)).first->second;
}

Bitmap PostingIndex::Match(const Literal& literal) const {
  return LiteralBitmap(literal);
}

Bitmap PostingIndex::Match(const Predicate& predicate) const {
  PredicateMatches()->Inc();
  ScratchRowsets()->Inc();
  if (predicate.empty()) {
    Bitmap out(num_rows_);
    for (int64_t r = 0; r < num_rows_; ++r) out.Set(r);
    return out;
  }
  const auto& literals = predicate.literals();
  Bitmap out = LiteralBitmap(literals.front());
  for (size_t i = 1; i < literals.size(); ++i) {
    BitmapIntersections()->Inc();
    out.IntersectWith(LiteralBitmap(literals[i]));
  }
  return out;
}

double PostingIndex::Support(const Predicate& predicate) const {
  if (num_rows_ == 0) return 0.0;
  const auto& literals = predicate.literals();
  int64_t count = 0;
  if (literals.empty()) {
    count = num_rows_;
  } else if (literals.size() == 1) {
    count = LiteralBitmap(literals[0]).Count();
  } else if (literals.size() == 2) {
    BitmapIntersections()->Inc();
    count = Bitmap::IntersectCount(LiteralBitmap(literals[0]),
                                   LiteralBitmap(literals[1]));
  } else {
    // Three or more literals need one intermediate; the final AND is fused
    // with the count, so no full Match() bitmap is ever materialized.
    Bitmap acc;
    BitmapIntersections()->Inc();
    acc.AssignIntersect(LiteralBitmap(literals[0]), LiteralBitmap(literals[1]));
    for (size_t i = 2; i + 1 < literals.size(); ++i) {
      BitmapIntersections()->Inc();
      acc.IntersectWith(LiteralBitmap(literals[i]));
    }
    BitmapIntersections()->Inc();
    count = Bitmap::IntersectCount(acc, LiteralBitmap(literals.back()));
  }
  return static_cast<double>(count) / static_cast<double>(num_rows_);
}

}  // namespace fume
