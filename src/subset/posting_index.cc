#include "subset/posting_index.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

namespace {

// Posting-list work counters: how many literal/predicate lookups the
// search issues and how many bitmap combines they cost. One relaxed add
// per Match call — per-row work stays uninstrumented.
obs::Counter* LiteralMatches() {
  static obs::Counter* c = obs::GetCounter("posting.match.literal");
  return c;
}
obs::Counter* PredicateMatches() {
  static obs::Counter* c = obs::GetCounter("posting.match.predicate");
  return c;
}
obs::Counter* BitmapUnions() {
  static obs::Counter* c = obs::GetCounter("posting.bitmap.union");
  return c;
}
obs::Counter* BitmapIntersections() {
  static obs::Counter* c = obs::GetCounter("posting.bitmap.intersect");
  return c;
}

}  // namespace

PostingIndex PostingIndex::Build(const Dataset& data) {
  FUME_CHECK(data.schema().AllCategorical());
  obs::TraceSpan span("posting.build", {{"rows", data.num_rows()}});
  PostingIndex index;
  index.num_rows_ = data.num_rows();
  const int p = data.num_attributes();
  index.cards_.resize(static_cast<size_t>(p));
  index.maps_.resize(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    const int32_t card = data.schema().attribute(j).cardinality();
    index.cards_[static_cast<size_t>(j)] = card;
    index.maps_[static_cast<size_t>(j)].assign(static_cast<size_t>(card),
                                               Bitmap(data.num_rows()));
    const auto& codes = data.codes(j);
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      index.maps_[static_cast<size_t>(j)]
                 [static_cast<size_t>(codes[static_cast<size_t>(r)])]
                     .Set(r);
    }
  }
  return index;
}

const Bitmap& PostingIndex::EqualityBitmap(int attr, int32_t value) const {
  return maps_[static_cast<size_t>(attr)][static_cast<size_t>(value)];
}

Bitmap PostingIndex::Match(const Literal& literal) const {
  LiteralMatches()->Inc();
  const int32_t card = cards_[static_cast<size_t>(literal.attr)];
  Bitmap out(num_rows_);
  for (int32_t c = 0; c < card; ++c) {
    if (literal.Matches(c)) {
      BitmapUnions()->Inc();
      out.UnionWith(maps_[static_cast<size_t>(literal.attr)]
                         [static_cast<size_t>(c)]);
    }
  }
  return out;
}

Bitmap PostingIndex::Match(const Predicate& predicate) const {
  PredicateMatches()->Inc();
  Bitmap out(num_rows_);
  if (predicate.empty()) {
    for (int64_t r = 0; r < num_rows_; ++r) out.Set(r);
    return out;
  }
  bool first = true;
  for (const Literal& lit : predicate.literals()) {
    const Bitmap m = Match(lit);
    if (first) {
      out = m;
      first = false;
    } else {
      BitmapIntersections()->Inc();
      out.IntersectWith(m);
    }
  }
  return out;
}

double PostingIndex::Support(const Predicate& predicate) const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(Match(predicate).Count()) /
         static_cast<double>(num_rows_);
}

}  // namespace fume
