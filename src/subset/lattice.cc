#include "subset/lattice.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fume {

Lattice::Lattice(const Dataset& train, LatticeOptions options)
    : schema_(&train.schema()),
      num_rows_(train.num_rows()),
      options_(std::move(options)),
      index_(PostingIndex::Build(train)) {}

std::vector<Literal> Lattice::MakeLiterals() const {
  std::vector<Literal> literals;
  auto excluded = [&](int attr) {
    return std::find(options_.excluded_attrs.begin(),
                     options_.excluded_attrs.end(),
                     attr) != options_.excluded_attrs.end();
  };
  for (int j = 0; j < schema_->num_attributes(); ++j) {
    if (excluded(j)) continue;
    const int32_t card = schema_->attribute(j).cardinality();
    if (options_.equality_literals) {
      for (int32_t v = 0; v < card; ++v) {
        literals.push_back(Literal{j, LiteralOp::kEq, v});
      }
    }
    if (options_.range_literals && card > 2) {
      // Interior cut points only; the extreme cuts duplicate equalities.
      for (int32_t v = 1; v + 1 < card; ++v) {
        literals.push_back(Literal{j, LiteralOp::kLe, v});
        literals.push_back(Literal{j, LiteralOp::kGe, v});
      }
    }
  }
  std::sort(literals.begin(), literals.end());
  return literals;
}

int64_t Lattice::NumPossibleLevel1() const {
  return static_cast<int64_t>(MakeLiterals().size());
}

std::vector<LatticeNode> Lattice::MakeLevel1() const {
  std::vector<LatticeNode> nodes;
  for (const Literal& lit : MakeLiterals()) {
    LatticeNode node;
    node.predicate = Predicate::Of(lit);
    node.rows = index_.LiteralBitmap(lit);
    node.support_count = node.rows.Count();
    node.support = num_rows_ == 0
                       ? 0.0
                       : static_cast<double>(node.support_count) /
                             static_cast<double>(num_rows_);
    node.level = 1;
    nodes.push_back(std::move(node));
  }
  return nodes;
}

std::vector<LatticeNode> Lattice::MergeLevel(std::vector<LatticeNode> parents,
                                             int64_t* pairs_considered) const {
  LatticeMergeStats stats;
  std::vector<LatticeNode> out = MergeLevel(std::move(parents), stats);
  if (pairs_considered != nullptr) *pairs_considered = stats.pairs_considered;
  return out;
}

std::vector<LatticeNode> Lattice::MergeLevel(std::vector<LatticeNode> parents,
                                             LatticeMergeStats& stats) const {
  static obs::Counter* pairs_counter =
      obs::GetCounter("lattice.merge.pairs_considered");
  static obs::Counter* rule1_counter =
      obs::GetCounter("fume.prune.rule1_contradiction");
  static obs::Counter* degenerate_counter =
      obs::GetCounter("lattice.merge.degenerate");
  static obs::Counter* derived_counter =
      obs::GetCounter("lattice.rowset.derived");
  obs::TraceSpan span("lattice.merge",
                      {{"parents", static_cast<int64_t>(parents.size())}});
  LatticeMergeStats local;
  std::sort(parents.begin(), parents.end(),
            [](const LatticeNode& a, const LatticeNode& b) {
              return a.predicate < b.predicate;
            });
  std::vector<LatticeNode> out;
  // Classic apriori join: predicates sharing their first l-2 literals form a
  // contiguous run in canonical order; join every pair within a run.
  const size_t n = parents.size();
  for (size_t i = 0; i < n; ++i) {
    const auto& li = parents[i].predicate.literals();
    for (size_t j = i + 1; j < n; ++j) {
      const auto& lj = parents[j].predicate.literals();
      // Same prefix of length l-2?
      bool same_prefix = li.size() == lj.size();
      if (same_prefix) {
        for (size_t t = 0; t + 1 < li.size(); ++t) {
          if (!(li[t] == lj[t])) {
            same_prefix = false;
            break;
          }
        }
      }
      if (!same_prefix) break;  // runs are contiguous; advance i
      ++local.pairs_considered;
      // Rule 1: drop contradictions (for equality literals this skips any
      // pair constraining the same attribute twice).
      Predicate merged = parents[i].predicate.With(lj.back());
      if (merged.num_literals() !=
          static_cast<int>(li.size()) + 1) {
        ++local.degenerate_merges;
        continue;  // duplicate literal; degenerate merge
      }
      if (!merged.IsSatisfiable(*schema_)) {
        ++local.rule1_contradictions;
        continue;
      }

      LatticeNode node;
      node.predicate = std::move(merged);
      // Child = parent ∩ parent, never a fresh posting-index scan; the AND
      // pass also yields the support count, so no separate Count() walk.
      derived_counter->Inc();
      node.support_count =
          node.rows.AssignIntersect(parents[i].rows, parents[j].rows);
      node.support = num_rows_ == 0
                         ? 0.0
                         : static_cast<double>(node.support_count) /
                               static_cast<double>(num_rows_);
      node.level = static_cast<int>(li.size()) + 1;
      // Rule 4 bookkeeping: remember the strongest known parent attribution.
      double pa = std::numeric_limits<double>::quiet_NaN();
      for (const LatticeNode* parent : {&parents[i], &parents[j]}) {
        if (parent->attribution_known()) {
          pa = std::isnan(pa) ? parent->attribution
                              : std::max(pa, parent->attribution);
        }
      }
      node.parent_attribution = pa;
      out.push_back(std::move(node));
    }
  }
  pairs_counter->Inc(local.pairs_considered);
  rule1_counter->Inc(local.rule1_contradictions);
  degenerate_counter->Inc(local.degenerate_merges);
  span.AddArg("children", static_cast<int64_t>(out.size()));
  stats = local;
  return out;
}

}  // namespace fume
