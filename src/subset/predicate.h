// Predicate: a conjunction of literals describing a coherent training-data
// subset, e.g. (Age > 45) AND (Gender = Female)  (paper §2.1).

#ifndef FUME_SUBSET_PREDICATE_H_
#define FUME_SUBSET_PREDICATE_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "subset/bitmap.h"
#include "subset/literal.h"
#include "util/result.h"

namespace fume {

/// \brief Conjunction of literals, kept sorted in canonical literal order.
class Predicate {
 public:
  Predicate() = default;
  explicit Predicate(std::vector<Literal> literals);

  /// Single-literal convenience.
  static Predicate Of(Literal literal);

  /// This predicate with one more literal (canonically re-sorted).
  Predicate With(Literal literal) const;

  int num_literals() const { return static_cast<int>(literals_.size()); }
  const std::vector<Literal>& literals() const { return literals_; }
  bool empty() const { return literals_.empty(); }

  bool MatchesRow(const Dataset& data, int64_t row) const;

  /// Bitmap of matching rows.
  Bitmap Match(const Dataset& data) const;

  /// Matching row ids (ascending).
  std::vector<int32_t> MatchingRows(const Dataset& data) const;

  /// Fraction of `data` rows matched (the paper's sup(T)).
  double Support(const Dataset& data) const;

  /// Rule 1: false when some attribute's admitted code set is empty — e.g.
  /// (Age < 50) AND (Age > 70) — so the subset can never contain data.
  bool IsSatisfiable(const Schema& schema) const;

  /// True when `other`'s literal set contains this predicate's literals.
  bool IsSubsetOf(const Predicate& other) const;

  /// "(Gender = Male) AND (Housing = Rent)".
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.literals_ == b.literals_;
  }
  friend bool operator<(const Predicate& a, const Predicate& b) {
    return a.literals_ < b.literals_;
  }

 private:
  std::vector<Literal> literals_;  // sorted, deduplicated
};

}  // namespace fume

#endif  // FUME_SUBSET_PREDICATE_H_
