// Fixed-size row bitmap used for predicate evaluation. Lattice children are
// intersections of their parents' bitmaps, so support computation is a few
// AND+popcount passes rather than a rescan of the data.

#ifndef FUME_SUBSET_BITMAP_H_
#define FUME_SUBSET_BITMAP_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace fume {

/// \brief Dense bitset over row indices [0, size).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(int64_t size)
      : size_(size), words_(static_cast<size_t>((size + 63) / 64), 0) {}

  int64_t size() const { return size_; }

  void Set(int64_t i) {
    FUME_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i >> 6)] |= uint64_t{1} << (i & 63);
  }

  bool Get(int64_t i) const {
    return (words_[static_cast<size_t>(i >> 6)] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  int64_t Count() const {
    int64_t c = 0;
    for (uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  /// this &= other (sizes must match).
  void IntersectWith(const Bitmap& other) {
    FUME_DCHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// this |= other.
  void UnionWith(const Bitmap& other) {
    FUME_DCHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  static Bitmap Intersect(const Bitmap& a, const Bitmap& b) {
    Bitmap out = a;
    out.IntersectWith(b);
    return out;
  }

  /// |a & b| without materializing the intersection — one fused AND +
  /// popcount pass. The R2 support checks and the top-k overlap filter only
  /// need the count, never the rowset.
  static int64_t IntersectCount(const Bitmap& a, const Bitmap& b) {
    FUME_DCHECK_EQ(a.size_, b.size_);
    int64_t c = 0;
    for (size_t i = 0; i < a.words_.size(); ++i) {
      c += std::popcount(a.words_[i] & b.words_[i]);
    }
    return c;
  }

  /// |a \ b| (bits set in a but not b) without materializing.
  static int64_t AndNotCount(const Bitmap& a, const Bitmap& b) {
    FUME_DCHECK_EQ(a.size_, b.size_);
    int64_t c = 0;
    for (size_t i = 0; i < a.words_.size(); ++i) {
      c += std::popcount(a.words_[i] & ~b.words_[i]);
    }
    return c;
  }

  /// this = a & b, reusing this bitmap's storage when already sized, and
  /// returns |a & b| from the same pass — one traversal where
  /// copy + IntersectWith + Count take three.
  int64_t AssignIntersect(const Bitmap& a, const Bitmap& b) {
    FUME_DCHECK_EQ(a.size_, b.size_);
    size_ = a.size_;
    words_.resize(a.words_.size());
    int64_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      const uint64_t w = a.words_[i] & b.words_[i];
      words_[i] = w;
      c += std::popcount(w);
    }
    return c;
  }

  /// Indices of set bits, ascending.
  std::vector<int32_t> ToRows() const {
    std::vector<int32_t> out;
    out.reserve(static_cast<size_t>(Count()));
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        out.push_back(static_cast<int32_t>((w << 6) + b));
        bits &= bits - 1;
      }
    }
    return out;
  }

  bool operator==(const Bitmap& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  int64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fume

#endif  // FUME_SUBSET_BITMAP_H_
