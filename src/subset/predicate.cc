#include "subset/predicate.h"

#include <algorithm>

namespace fume {

Predicate::Predicate(std::vector<Literal> literals)
    : literals_(std::move(literals)) {
  std::sort(literals_.begin(), literals_.end());
  literals_.erase(std::unique(literals_.begin(), literals_.end()),
                  literals_.end());
}

Predicate Predicate::Of(Literal literal) { return Predicate({literal}); }

Predicate Predicate::With(Literal literal) const {
  std::vector<Literal> lits = literals_;
  lits.push_back(literal);
  return Predicate(std::move(lits));
}

bool Predicate::MatchesRow(const Dataset& data, int64_t row) const {
  for (const Literal& lit : literals_) {
    if (!lit.Matches(data.Code(row, lit.attr))) return false;
  }
  return true;
}

Bitmap Predicate::Match(const Dataset& data) const {
  Bitmap out(data.num_rows());
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (MatchesRow(data, r)) out.Set(r);
  }
  return out;
}

std::vector<int32_t> Predicate::MatchingRows(const Dataset& data) const {
  std::vector<int32_t> out;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (MatchesRow(data, r)) out.push_back(static_cast<int32_t>(r));
  }
  return out;
}

double Predicate::Support(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  int64_t matched = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (MatchesRow(data, r)) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(data.num_rows());
}

bool Predicate::IsSatisfiable(const Schema& schema) const {
  // Per attribute, some code must satisfy every literal on that attribute;
  // otherwise the conjunction is a contradiction like
  // (Age < 50) AND (Age > 70). Scanning codes directly keeps this correct
  // for any cardinality (no 64-bit mask limit).
  for (size_t i = 0; i < literals_.size();) {
    const int attr = literals_[i].attr;
    const int32_t card = schema.attribute(attr).cardinality();
    size_t j = i;
    while (j < literals_.size() && literals_[j].attr == attr) ++j;
    bool some_code_fits = false;
    for (int32_t code = 0; code < card && !some_code_fits; ++code) {
      some_code_fits = true;
      for (size_t t = i; t < j; ++t) {
        if (!literals_[t].Matches(code)) {
          some_code_fits = false;
          break;
        }
      }
    }
    if (!some_code_fits) return false;
    i = j;
  }
  return true;
}

bool Predicate::IsSubsetOf(const Predicate& other) const {
  return std::includes(other.literals_.begin(), other.literals_.end(),
                       literals_.begin(), literals_.end());
}

std::string Predicate::ToString(const Schema& schema) const {
  if (literals_.empty()) return "(true)";
  std::string out;
  for (size_t i = 0; i < literals_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += "(" + literals_[i].ToString(schema) + ")";
  }
  return out;
}

}  // namespace fume
