// Per-group confusion statistics underlying every group-fairness metric.

#ifndef FUME_FAIRNESS_CONFUSION_H_
#define FUME_FAIRNESS_CONFUSION_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace fume {

/// Identifies the sensitive attribute and which of its codes is the
/// privileged group (paper: S = 1 privileged, S = 0 protected). Any code
/// different from `privileged_code` counts as protected.
struct GroupSpec {
  int sensitive_attr = 0;
  int32_t privileged_code = 1;
};

/// \brief Binary-classification confusion counts for one group.
struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }
  int64_t predicted_positive() const { return tp + fp; }
  int64_t actual_positive() const { return tp + fn; }

  /// P(yhat = 1). Zero when the group is empty.
  double PositiveRate() const;
  /// True positive rate P(yhat = 1 | y = 1); zero when undefined.
  double Tpr() const;
  /// False positive rate P(yhat = 1 | y = 0); zero when undefined.
  double Fpr() const;
  /// Positive predictive value P(y = 1 | yhat = 1); zero when undefined.
  double Ppv() const;

  void Add(int label, int prediction);
};

/// Confusions of the privileged and protected groups.
struct GroupConfusion {
  Confusion privileged;
  Confusion unprivileged;
};

/// Tallies group confusions of predictions against `data`'s labels.
/// `predictions` must have one entry per row of `data`.
GroupConfusion ComputeGroupConfusion(const Dataset& data,
                                     const std::vector<int>& predictions,
                                     const GroupSpec& group);

}  // namespace fume

#endif  // FUME_FAIRNESS_CONFUSION_H_
