#include "fairness/metrics.h"

namespace fume {

const char* FairnessMetricName(FairnessMetric metric) {
  switch (metric) {
    case FairnessMetric::kStatisticalParity:
      return "statistical parity";
    case FairnessMetric::kEqualizedOdds:
      return "equalized odds";
    case FairnessMetric::kPredictiveParity:
      return "predictive parity";
    case FairnessMetric::kEqualOpportunity:
      return "equal opportunity";
    case FairnessMetric::kDisparateImpact:
      return "disparate impact";
  }
  return "unknown";
}

double FairnessFromConfusion(const GroupConfusion& confusion,
                             FairnessMetric metric) {
  const Confusion& prot = confusion.unprivileged;
  const Confusion& priv = confusion.privileged;
  switch (metric) {
    case FairnessMetric::kStatisticalParity:
      return prot.PositiveRate() - priv.PositiveRate();
    case FairnessMetric::kEqualizedOdds:
      return 0.5 * ((prot.Tpr() - priv.Tpr()) + (prot.Fpr() - priv.Fpr()));
    case FairnessMetric::kPredictiveParity:
      return prot.Ppv() - priv.Ppv();
    case FairnessMetric::kEqualOpportunity:
      return prot.Tpr() - priv.Tpr();
    case FairnessMetric::kDisparateImpact: {
      const double priv_rate = priv.PositiveRate();
      if (priv_rate == 0.0) return 0.0;
      return prot.PositiveRate() / priv_rate - 1.0;
    }
  }
  return 0.0;
}

double ComputeFairness(const Dataset& data,
                       const std::vector<int>& predictions,
                       const GroupSpec& group, FairnessMetric metric) {
  return FairnessFromConfusion(ComputeGroupConfusion(data, predictions, group),
                               metric);
}

double ComputeFairness(const DareForest& model, const Dataset& data,
                       const GroupSpec& group, FairnessMetric metric) {
  return ComputeFairness(data, model.PredictAll(data), group, metric);
}

FairnessSummary Summarize(const DareForest& model, const Dataset& data,
                          const GroupSpec& group) {
  FairnessSummary out;
  const std::vector<int> preds = model.PredictAll(data);
  out.confusion = ComputeGroupConfusion(data, preds, group);
  out.statistical_parity =
      FairnessFromConfusion(out.confusion, FairnessMetric::kStatisticalParity);
  out.equalized_odds =
      FairnessFromConfusion(out.confusion, FairnessMetric::kEqualizedOdds);
  out.predictive_parity =
      FairnessFromConfusion(out.confusion, FairnessMetric::kPredictiveParity);
  int64_t correct = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == data.Label(r)) ++correct;
  }
  out.accuracy = data.num_rows() == 0
                     ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(data.num_rows());
  return out;
}

}  // namespace fume
