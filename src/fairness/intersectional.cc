#include "fairness/intersectional.h"

namespace fume {

Result<IntersectionalDataset> WithIntersectionalAttribute(
    const Dataset& data, int attr_a, int attr_b, const std::string& name) {
  const Schema& schema = data.schema();
  if (attr_a < 0 || attr_a >= schema.num_attributes() || attr_b < 0 ||
      attr_b >= schema.num_attributes() || attr_a == attr_b) {
    return Status::Invalid("attr_a/attr_b must be distinct valid attributes");
  }
  const Attribute& a = schema.attribute(attr_a);
  const Attribute& b = schema.attribute(attr_b);
  if (a.type != AttributeType::kCategorical ||
      b.type != AttributeType::kCategorical) {
    return Status::Invalid("intersectional attributes must be categorical");
  }

  Schema extended;
  extended.set_label_name(schema.label_name());
  for (int j = 0; j < schema.num_attributes(); ++j) {
    FUME_RETURN_NOT_OK(extended.AddAttribute(schema.attribute(j)));
  }
  Attribute derived;
  derived.name = name;
  derived.type = AttributeType::kCategorical;
  for (const std::string& ca : a.categories) {
    for (const std::string& cb : b.categories) {
      derived.categories.push_back(ca + "|" + cb);
    }
  }
  FUME_RETURN_NOT_OK(extended.AddAttribute(derived));

  IntersectionalDataset out;
  out.derived_attr = schema.num_attributes();
  Dataset result(extended);
  const int32_t card_b = b.cardinality();
  std::vector<int32_t> codes(static_cast<size_t>(extended.num_attributes()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int j = 0; j < schema.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = data.Code(r, j);
    }
    codes[static_cast<size_t>(out.derived_attr)] =
        data.Code(r, attr_a) * card_b + data.Code(r, attr_b);
    FUME_RETURN_NOT_OK(result.AppendRow(codes, data.Label(r)));
  }
  out.data = std::move(result);
  return out;
}

Result<GroupSpec> IntersectionalGroup(const IntersectionalDataset& derived,
                                      const std::string& privileged_a,
                                      const std::string& privileged_b) {
  const Attribute& attr =
      derived.data.schema().attribute(derived.derived_attr);
  const int code = attr.FindCategory(privileged_a + "|" + privileged_b);
  if (code < 0) {
    return Status::KeyError("no combination '" + privileged_a + "|" +
                            privileged_b + "' in derived attribute");
  }
  return GroupSpec{derived.derived_attr, code};
}

}  // namespace fume
