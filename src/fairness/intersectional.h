// Intersectional group audits: fairness violations often concentrate at the
// intersection of sensitive attributes (e.g. race x gender). This utility
// derives a cross-product attribute so the standard GroupSpec machinery —
// and FUME itself — can audit an intersectional group like
// "non-white women vs everyone else" unchanged.

#ifndef FUME_FAIRNESS_INTERSECTIONAL_H_
#define FUME_FAIRNESS_INTERSECTIONAL_H_

#include <string>

#include "data/dataset.h"
#include "fairness/confusion.h"
#include "util/result.h"

namespace fume {

/// Result of deriving an intersectional attribute.
struct IntersectionalDataset {
  /// The input dataset plus one appended categorical attribute whose
  /// categories are "A|B" combinations (cardinality = card(a) * card(b)).
  Dataset data;
  /// Index of the derived attribute (the last one).
  int derived_attr = 0;
};

/// Appends the cross product of attributes `attr_a` and `attr_b` as a new
/// categorical attribute named `name`. Fails if the name collides or either
/// attribute is not categorical.
Result<IntersectionalDataset> WithIntersectionalAttribute(
    const Dataset& data, int attr_a, int attr_b, const std::string& name);

/// Builds a GroupSpec over the derived attribute where the privileged group
/// is ONE combination (everything else is protected) — e.g. privileged =
/// White|Male for an audit of all other intersections against it.
Result<GroupSpec> IntersectionalGroup(const IntersectionalDataset& derived,
                                      const std::string& privileged_a,
                                      const std::string& privileged_b);

}  // namespace fume

#endif  // FUME_FAIRNESS_INTERSECTIONAL_H_
