#include "fairness/confusion.h"

#include "util/check.h"

namespace fume {

namespace {
double Ratio(int64_t num, int64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

double Confusion::PositiveRate() const { return Ratio(tp + fp, total()); }
double Confusion::Tpr() const { return Ratio(tp, tp + fn); }
double Confusion::Fpr() const { return Ratio(fp, fp + tn); }
double Confusion::Ppv() const { return Ratio(tp, tp + fp); }

void Confusion::Add(int label, int prediction) {
  if (label == 1) {
    prediction == 1 ? ++tp : ++fn;
  } else {
    prediction == 1 ? ++fp : ++tn;
  }
}

GroupConfusion ComputeGroupConfusion(const Dataset& data,
                                     const std::vector<int>& predictions,
                                     const GroupSpec& group) {
  FUME_CHECK_EQ(static_cast<int64_t>(predictions.size()), data.num_rows());
  GroupConfusion out;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    Confusion& c = data.Code(r, group.sensitive_attr) == group.privileged_code
                       ? out.privileged
                       : out.unprivileged;
    c.Add(data.Label(r), predictions[static_cast<size_t>(r)]);
  }
  return out;
}

}  // namespace fume
