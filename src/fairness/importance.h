// Permutation feature importance (scikit-learn's permutation_importance
// re-implemented): the paper's §6.3 analysis compares importance rankings
// before and after deleting an attributable subset.

#ifndef FUME_FAIRNESS_IMPORTANCE_H_
#define FUME_FAIRNESS_IMPORTANCE_H_

#include <string>
#include <vector>

#include "forest/forest.h"

namespace fume {

struct ImportanceOptions {
  /// Shuffles per attribute; the importance is the mean accuracy drop.
  int num_repeats = 5;
  uint64_t seed = 17;
};

struct FeatureImportance {
  int attr = 0;
  std::string name;
  /// Mean accuracy drop when this column is shuffled. Larger = the model
  /// leans on the feature more.
  double importance = 0.0;
};

/// Importances for every attribute, sorted descending by importance.
std::vector<FeatureImportance> PermutationImportance(
    const DareForest& model, const Dataset& data,
    const ImportanceOptions& options);

/// Relative change (new - old) / max(|old|, eps) of one attribute's
/// importance between two rankings; the §6.3 "feature importance deviation".
double ImportanceShift(const std::vector<FeatureImportance>& before,
                       const std::vector<FeatureImportance>& after, int attr);

}  // namespace fume

#endif  // FUME_FAIRNESS_IMPORTANCE_H_
