#include "fairness/importance.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace fume {

std::vector<FeatureImportance> PermutationImportance(
    const DareForest& model, const Dataset& data,
    const ImportanceOptions& options) {
  const double baseline = model.Accuracy(data);
  const int64_t n = data.num_rows();
  std::vector<FeatureImportance> out;
  out.reserve(static_cast<size_t>(data.num_attributes()));
  for (int j = 0; j < data.num_attributes(); ++j) {
    double drop_sum = 0.0;
    for (int rep = 0; rep < options.num_repeats; ++rep) {
      Rng rng(Hash64({options.seed, static_cast<uint64_t>(j),
                      static_cast<uint64_t>(rep)}));
      std::vector<int64_t> perm(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
      rng.Shuffle(&perm);
      const Dataset shuffled = data.WithPermutedColumn(j, perm);
      drop_sum += baseline - model.Accuracy(shuffled);
    }
    FeatureImportance fi;
    fi.attr = j;
    fi.name = data.schema().attribute(j).name;
    fi.importance = drop_sum / options.num_repeats;
    out.push_back(std::move(fi));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FeatureImportance& a, const FeatureImportance& b) {
                     return a.importance > b.importance;
                   });
  return out;
}

double ImportanceShift(const std::vector<FeatureImportance>& before,
                       const std::vector<FeatureImportance>& after, int attr) {
  auto find = [&](const std::vector<FeatureImportance>& v) -> double {
    for (const auto& fi : v) {
      if (fi.attr == attr) return fi.importance;
    }
    return 0.0;
  };
  const double old_imp = find(before);
  const double new_imp = find(after);
  const double denom = std::max(std::fabs(old_imp), 1e-9);
  return (new_imp - old_imp) / denom;
}

}  // namespace fume
