// Group-fairness metrics F(h, D) of paper §2.1: signed differences between
// the protected and privileged groups; 0 means fair, negative means biased
// against the protected group (Definition 2.1).

#ifndef FUME_FAIRNESS_METRICS_H_
#define FUME_FAIRNESS_METRICS_H_

#include <string>
#include <vector>

#include "fairness/confusion.h"
#include "forest/forest.h"

namespace fume {

enum class FairnessMetric {
  /// F = P(yhat=1 | protected) - P(yhat=1 | privileged).
  kStatisticalParity,
  /// Average odds difference:
  /// F = 0.5 * [(TPR_prot - TPR_priv) + (FPR_prot - FPR_priv)].
  /// Zero iff TPR and FPR differences cancel; the |F| used by FUME treats it
  /// as the scalarization of the equalized-odds criterion.
  kEqualizedOdds,
  /// F = PPV_protected - PPV_privileged.
  kPredictiveParity,
  /// Equal opportunity (Hardt et al. 2016): F = TPR_prot - TPR_priv —
  /// the true-positive-rate half of equalized odds.
  kEqualOpportunity,
  /// Disparate impact, centered at fairness:
  /// F = P(yhat=1 | protected) / P(yhat=1 | privileged) - 1.
  /// The classic four-fifths rule flags F < -0.2. Defined as 0 when the
  /// privileged rate is 0.
  kDisparateImpact,
};

const char* FairnessMetricName(FairnessMetric metric);

/// Signed metric value from precomputed group confusions.
double FairnessFromConfusion(const GroupConfusion& confusion,
                             FairnessMetric metric);

/// F(predictions, data): signed fairness of given predictions.
double ComputeFairness(const Dataset& data, const std::vector<int>& predictions,
                       const GroupSpec& group, FairnessMetric metric);

/// F(h, data): applies the classifier then measures.
double ComputeFairness(const DareForest& model, const Dataset& data,
                       const GroupSpec& group, FairnessMetric metric);

/// Convenience bundle of everything the evaluation section reports.
struct FairnessSummary {
  double statistical_parity = 0.0;
  double equalized_odds = 0.0;
  double predictive_parity = 0.0;
  double accuracy = 0.0;
  GroupConfusion confusion;
};

FairnessSummary Summarize(const DareForest& model, const Dataset& data,
                          const GroupSpec& group);

}  // namespace fume

#endif  // FUME_FAIRNESS_METRICS_H_
