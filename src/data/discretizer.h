// Discretizer: converts numeric attributes to ordered categorical bins.
// The paper discretizes every numeric column before subset search (§6.1.1);
// the forest and the predicate lattice both require all-categorical data.

#ifndef FUME_DATA_DISCRETIZER_H_
#define FUME_DATA_DISCRETIZER_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace fume {

/// Binning strategy for numeric columns.
enum class BinningStrategy {
  kEquiWidth,  // equal-width bins over [min, max]
  kQuantile,   // equal-frequency bins from empirical quantiles
};

struct DiscretizerOptions {
  BinningStrategy strategy = BinningStrategy::kQuantile;
  /// Number of bins per numeric attribute (capped by the number of distinct
  /// values actually present).
  int num_bins = 4;
};

/// \brief Learns bin boundaries on one dataset and applies them to others
/// (fit on train, transform train and test with the same edges).
class Discretizer {
 public:
  /// Learns boundaries for every numeric attribute of `data`.
  static Result<Discretizer> Fit(const Dataset& data,
                                 const DiscretizerOptions& options);

  /// Maps a dataset (same schema as fitted) to an all-categorical dataset.
  /// Numeric attributes become ordered bins named "[lo, hi)"; categorical
  /// attributes pass through unchanged.
  Result<Dataset> Transform(const Dataset& data) const;

  /// The transformed schema (all categorical).
  const Schema& output_schema() const { return output_schema_; }

  /// Upper bin edges for a numeric attribute (size = num bins - 1).
  const std::vector<double>& edges(int attr) const { return edges_[attr]; }

 private:
  Schema input_schema_;
  Schema output_schema_;
  /// Per input attribute: interior bin edges; empty for categorical.
  std::vector<std::vector<double>> edges_;
};

}  // namespace fume

#endif  // FUME_DATA_DISCRETIZER_H_
