#include "data/discretizer.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace fume {

namespace {

// Deduplicated ascending interior edges -> bin names "[lo, hi)".
std::vector<std::string> BinNames(const std::vector<double>& edges) {
  std::vector<std::string> names;
  const size_t nbins = edges.size() + 1;
  for (size_t b = 0; b < nbins; ++b) {
    std::string lo = b == 0 ? "-inf" : FormatDouble(edges[b - 1], 3);
    std::string hi = b == edges.size() ? "+inf" : FormatDouble(edges[b], 3);
    names.push_back("[" + lo + ", " + hi + ")");
  }
  return names;
}

int32_t BinOf(double v, const std::vector<double>& edges) {
  // First bin whose upper edge exceeds v; values >= last edge go to the
  // final bin.
  auto it = std::upper_bound(edges.begin(), edges.end(), v);
  return static_cast<int32_t>(it - edges.begin());
}

}  // namespace

Result<Discretizer> Discretizer::Fit(const Dataset& data,
                                     const DiscretizerOptions& options) {
  if (options.num_bins < 2) {
    return Status::Invalid("num_bins must be >= 2");
  }
  if (data.num_rows() == 0) {
    return Status::Invalid("cannot fit a discretizer on an empty dataset");
  }
  Discretizer d;
  d.input_schema_ = data.schema();
  d.output_schema_.set_label_name(data.schema().label_name());
  d.edges_.resize(static_cast<size_t>(data.num_attributes()));

  for (int j = 0; j < data.num_attributes(); ++j) {
    const Attribute& a = data.schema().attribute(j);
    if (a.type == AttributeType::kCategorical) {
      FUME_RETURN_NOT_OK(d.output_schema_.AddAttribute(a));
      continue;
    }
    std::vector<double> values = data.numerics(j);
    std::sort(values.begin(), values.end());
    std::vector<double> edges;
    if (options.strategy == BinningStrategy::kEquiWidth) {
      const double lo = values.front();
      const double hi = values.back();
      if (hi > lo) {
        const double w = (hi - lo) / options.num_bins;
        for (int b = 1; b < options.num_bins; ++b) edges.push_back(lo + b * w);
      }
    } else {
      const int64_t n = static_cast<int64_t>(values.size());
      for (int b = 1; b < options.num_bins; ++b) {
        const double q = static_cast<double>(b) / options.num_bins;
        const int64_t idx = std::min<int64_t>(
            n - 1, static_cast<int64_t>(std::llround(q * (n - 1))));
        edges.push_back(values[idx]);
      }
    }
    // Deduplicate edges (constant / low-cardinality columns collapse bins)
    // and drop edges that cannot split the observed range: an edge <= min
    // would leave the first bin empty, one > max the last.
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&](double e) {
                                 return e <= values.front() ||
                                        e > values.back();
                               }),
                edges.end());
    Attribute binned;
    binned.name = a.name;
    binned.type = AttributeType::kCategorical;
    binned.categories = BinNames(edges);
    FUME_RETURN_NOT_OK(d.output_schema_.AddAttribute(binned));
    d.edges_[static_cast<size_t>(j)] = std::move(edges);
  }
  return d;
}

Result<Dataset> Discretizer::Transform(const Dataset& data) const {
  if (!data.schema().Equals(input_schema_)) {
    return Status::Invalid("dataset schema does not match fitted schema");
  }
  Dataset out(output_schema_);
  const int p = data.num_attributes();
  std::vector<int32_t> codes(static_cast<size_t>(p));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int j = 0; j < p; ++j) {
      if (input_schema_.attribute(j).type == AttributeType::kCategorical) {
        codes[static_cast<size_t>(j)] = data.Code(r, j);
      } else {
        codes[static_cast<size_t>(j)] =
            BinOf(data.Numeric(r, j), edges_[static_cast<size_t>(j)]);
      }
    }
    FUME_RETURN_NOT_OK(out.AppendRow(codes, data.Label(r)));
  }
  return out;
}

}  // namespace fume
