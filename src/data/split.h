// Train/test splitting with optional stratification by label.

#ifndef FUME_DATA_SPLIT_H_
#define FUME_DATA_SPLIT_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/result.h"

namespace fume {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

struct SplitOptions {
  double test_fraction = 0.3;
  uint64_t seed = 0;
  /// Keep the positive rate (approximately) equal across the two halves.
  bool stratify_by_label = true;
};

/// Randomly partitions `data` into train/test.
Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      const SplitOptions& options);

}  // namespace fume

#endif  // FUME_DATA_SPLIT_H_
