#include "data/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace fume {

namespace {

// Splits one CSV record. Handles double-quoted fields with embedded
// delimiters and doubled quotes ("" -> ").
std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string QuoteIfNeeded(const std::string& s, char delim) {
  if (s.find(delim) == std::string::npos &&
      s.find('"') == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Dataset> ReadCsv(std::istream& in, const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    records.push_back(SplitCsvLine(line, options.delimiter));
  }
  if (records.empty()) return Status::Invalid("CSV input is empty");

  std::vector<std::string> header;
  size_t first_data_row = 0;
  if (options.has_header) {
    header = records[0];
    first_data_row = 1;
    if (records.size() < 2) return Status::Invalid("CSV has a header only");
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      header.push_back("col" + std::to_string(c));
    }
  }
  const size_t width = header.size();
  for (size_t r = first_data_row; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::Invalid("row " + std::to_string(r) + " has " +
                             std::to_string(records[r].size()) +
                             " fields, expected " + std::to_string(width));
    }
  }

  // Locate the label column.
  int label_col;
  if (options.has_header) {
    auto it = std::find(header.begin(), header.end(), options.label_column);
    if (it == header.end()) {
      return Status::KeyError("label column '" + options.label_column +
                              "' not found in header");
    }
    label_col = static_cast<int>(it - header.begin());
  } else {
    label_col = static_cast<int>(width) - 1;
  }

  auto is_missing = [&](std::string_view field) {
    const std::string trimmed(Trim(field));
    return std::find(options.missing_values.begin(),
                     options.missing_values.end(),
                     trimmed) != options.missing_values.end();
  };
  constexpr const char* kMissingCategory = "(missing)";

  // Infer per-column types (over non-label columns). A column with any
  // missing field is read as categorical (see CsvReadOptions docs).
  std::vector<bool> is_numeric(width, true);
  for (size_t c = 0; c < width; ++c) {
    if (static_cast<int>(c) == label_col) continue;
    if (std::find(options.force_categorical.begin(),
                  options.force_categorical.end(),
                  header[c]) != options.force_categorical.end()) {
      is_numeric[c] = false;
      continue;
    }
    for (size_t r = first_data_row; r < records.size(); ++r) {
      const std::string& field = records[r][c];
      double unused;
      if (is_missing(field) ||
          (!Trim(field).empty() && !ParseDouble(field, &unused))) {
        is_numeric[c] = false;
        break;
      }
    }
  }

  // Build dictionaries for categorical columns.
  Schema schema;
  schema.set_label_name(header[static_cast<size_t>(label_col)]);
  std::vector<std::unordered_map<std::string, int>> dicts(width);
  for (size_t c = 0; c < width; ++c) {
    if (static_cast<int>(c) == label_col) continue;
    if (is_numeric[c]) {
      FUME_RETURN_NOT_OK(schema.AddNumeric(header[c]));
    } else {
      std::vector<std::string> categories;
      for (size_t r = first_data_row; r < records.size(); ++r) {
        const std::string value = is_missing(records[r][c])
                                      ? std::string(kMissingCategory)
                                      : std::string(Trim(records[r][c]));
        if (dicts[c].emplace(value, static_cast<int>(categories.size()))
                .second) {
          categories.push_back(value);
        }
      }
      FUME_RETURN_NOT_OK(schema.AddCategorical(header[c], categories));
    }
  }

  Dataset data(schema);
  const int p = schema.num_attributes();
  std::vector<int32_t> codes(static_cast<size_t>(p));
  std::vector<double> nums(static_cast<size_t>(p), 0.0);
  bool any_numeric =
      std::any_of(is_numeric.begin(), is_numeric.end(),
                  [&](bool b) { return b; });
  for (size_t r = first_data_row; r < records.size(); ++r) {
    int j = 0;
    for (size_t c = 0; c < width; ++c) {
      if (static_cast<int>(c) == label_col) continue;
      if (is_numeric[c]) {
        double v = 0.0;
        if (!ParseDouble(records[r][c], &v)) {
          return Status::Invalid("non-numeric value '" + records[r][c] +
                                 "' in numeric column '" + header[c] + "'");
        }
        nums[static_cast<size_t>(j)] = v;
        codes[static_cast<size_t>(j)] = 0;
      } else {
        const std::string value = is_missing(records[r][c])
                                      ? std::string(kMissingCategory)
                                      : std::string(Trim(records[r][c]));
        codes[static_cast<size_t>(j)] = dicts[c].at(value);
      }
      ++j;
    }
    // Parse label.
    const std::string label_field(
        Trim(records[r][static_cast<size_t>(label_col)]));
    int label;
    if (options.positive_label_values.empty()) {
      if (!ParseInt(label_field, &label) || (label != 0 && label != 1)) {
        return Status::Invalid("label '" + label_field +
                               "' is not 0/1; set positive_label_values");
      }
    } else {
      label = std::find(options.positive_label_values.begin(),
                        options.positive_label_values.end(),
                        label_field) != options.positive_label_values.end()
                  ? 1
                  : 0;
    }
    FUME_RETURN_NOT_OK(
        data.AppendRowMixed(codes, any_numeric ? nums : std::vector<double>{},
                            label));
  }
  return data;
}

Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadCsv(in, options);
}

Status WriteCsv(const Dataset& data, std::ostream& out, char delimiter) {
  const Schema& schema = data.schema();
  for (int j = 0; j < schema.num_attributes(); ++j) {
    out << QuoteIfNeeded(schema.attribute(j).name, delimiter) << delimiter;
  }
  out << QuoteIfNeeded(schema.label_name(), delimiter) << "\n";
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int j = 0; j < schema.num_attributes(); ++j) {
      out << QuoteIfNeeded(data.CellToString(r, j), delimiter) << delimiter;
    }
    out << data.Label(r) << "\n";
  }
  if (!out) return Status::IOError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Dataset& data, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteCsv(data, out, delimiter);
}

}  // namespace fume
