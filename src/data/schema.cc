#include "data/schema.h"

namespace fume {

int Attribute::FindCategory(const std::string& category) const {
  for (size_t i = 0; i < categories.size(); ++i) {
    if (categories[i] == category) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::AddAttribute(Attribute attr) {
  if (attr.name.empty()) {
    return Status::Invalid("attribute name must be non-empty");
  }
  if (index_.count(attr.name) > 0) {
    return Status::Invalid("duplicate attribute name: " + attr.name);
  }
  if (attr.type == AttributeType::kCategorical && attr.categories.empty()) {
    return Status::Invalid("categorical attribute '" + attr.name +
                           "' needs at least one category");
  }
  index_[attr.name] = static_cast<int>(attributes_.size());
  attributes_.push_back(std::move(attr));
  return Status::OK();
}

Status Schema::AddCategorical(const std::string& name,
                              std::vector<std::string> categories) {
  Attribute a;
  a.name = name;
  a.type = AttributeType::kCategorical;
  a.categories = std::move(categories);
  return AddAttribute(std::move(a));
}

Status Schema::AddNumeric(const std::string& name) {
  Attribute a;
  a.name = name;
  a.type = AttributeType::kNumeric;
  return AddAttribute(std::move(a));
}

Result<int> Schema::FindAttribute(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::KeyError("no attribute named '" + name + "'");
  }
  return it->second;
}

bool Schema::AllCategorical() const {
  for (const auto& a : attributes_) {
    if (a.type != AttributeType::kCategorical) return false;
  }
  return true;
}

bool Schema::Equals(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  if (label_name_ != other.label_name_) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const Attribute& a = attributes_[i];
    const Attribute& b = other.attributes_[i];
    if (a.name != b.name || a.type != b.type || a.categories != b.categories) {
      return false;
    }
  }
  return true;
}

}  // namespace fume
