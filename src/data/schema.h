// Schema: attribute names, types, and category dictionaries for a Dataset.

#ifndef FUME_DATA_SCHEMA_H_
#define FUME_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace fume {

/// Column content type. After discretization every attribute is categorical:
/// an ordered dictionary of category names addressed by small integer codes.
enum class AttributeType {
  kNumeric,      // raw double values
  kCategorical,  // int32 codes into a category dictionary
};

/// \brief Description of one attribute (feature column).
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kCategorical;
  /// Category names, indexed by code. Empty for numeric attributes. Code
  /// order is meaningful for discretized numeric attributes (bin order) and
  /// is the split order used by the forest.
  std::vector<std::string> categories;

  int cardinality() const { return static_cast<int>(categories.size()); }

  /// Returns the code for a category name, or -1 if absent.
  int FindCategory(const std::string& category) const;
};

/// \brief Ordered collection of attributes plus the binary label's name.
///
/// The label is stored separately from attributes (it is not searchable by
/// predicates and not an input to the classifier).
class Schema {
 public:
  Schema() = default;

  /// Appends an attribute; fails on duplicate name.
  Status AddAttribute(Attribute attr);

  /// Convenience: appends a categorical attribute with the given categories.
  Status AddCategorical(const std::string& name,
                        std::vector<std::string> categories);

  /// Convenience: appends a numeric attribute.
  Status AddNumeric(const std::string& name);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }

  /// Index of the attribute with the given name, or error.
  Result<int> FindAttribute(const std::string& name) const;

  /// True when every attribute is categorical (required by the forest and
  /// the predicate lattice).
  bool AllCategorical() const;

  const std::string& label_name() const { return label_name_; }
  void set_label_name(std::string name) { label_name_ = std::move(name); }

  bool Equals(const Schema& other) const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, int> index_;
  std::string label_name_ = "label";
};

}  // namespace fume

#endif  // FUME_DATA_SCHEMA_H_
