// Dataset: columnar labeled tabular data. Numeric columns hold doubles,
// categorical columns hold int32 codes into the schema's dictionaries;
// labels are binary (favorable = 1).

#ifndef FUME_DATA_DATASET_H_
#define FUME_DATA_DATASET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "util/result.h"

namespace fume {

/// \brief Immutable packed row-major snapshot of an all-categorical
/// dataset's codes: row r occupies [codes.data() + r * num_attrs, +num_attrs).
///
/// The column-store Code(row, attr) gathers two indirections per cell; the
/// flat-arena tree traversal instead streams this matrix linearly alongside
/// the node arrays. Built lazily once per Dataset (packed_codes()) and
/// shared by reference; appending rows invalidates the snapshot.
struct PackedCodes {
  std::vector<int32_t> codes;
  int num_attrs = 0;
  const int32_t* row(int64_t r) const {
    return codes.data() + r * num_attrs;
  }
};

/// \brief Storage for one column; exactly one of the two vectors is in use,
/// matching the attribute's type in the schema.
struct ColumnData {
  std::vector<double> numeric;
  std::vector<int32_t> codes;
};

/// \brief A labeled tabular dataset with columnar storage.
///
/// Rows are addressed by dense indices [0, num_rows). Row identity matters:
/// the forest's leaf instance lists and the subset posting lists both store
/// these indices, so mutating a Dataset after models/indexes were built on it
/// is not supported (build new objects instead).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema);
  // The cached packed view never transfers: a copy's (or moved-to object's)
  // columns can legitimately be patched right after the transfer (e.g.
  // WithPermutedColumn), which must not be visible through a shared
  // snapshot. Each object rebuilds its own view on first use.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return static_cast<int64_t>(labels_.size()); }
  int num_attributes() const { return schema_.num_attributes(); }

  /// Appends one row. `codes_or_bins[j]` is interpreted per attribute j's
  /// type: categorical -> code (validated against cardinality), numeric ->
  /// ignored in favor of `numerics[j]`. For all-categorical datasets pass
  /// `numerics` empty.
  Status AppendRow(const std::vector<int32_t>& codes, int label);
  Status AppendRowMixed(const std::vector<int32_t>& codes,
                        const std::vector<double>& numerics, int label);

  /// Cell accessors. The attribute's type must match.
  int32_t Code(int64_t row, int attr) const {
    return columns_[attr].codes[row];
  }
  double Numeric(int64_t row, int attr) const {
    return columns_[attr].numeric[row];
  }
  int Label(int64_t row) const { return labels_[row]; }

  const std::vector<uint8_t>& labels() const { return labels_; }
  const std::vector<int32_t>& codes(int attr) const {
    return columns_[attr].codes;
  }
  const std::vector<double>& numerics(int attr) const {
    return columns_[attr].numeric;
  }

  /// The packed row-major code matrix (requires an all-categorical
  /// schema). Thread-safe: concurrent first calls build one snapshot; the
  /// returned pointer stays valid (and coherent with the rows it was built
  /// from) even if this Dataset later appends rows.
  std::shared_ptr<const PackedCodes> packed_codes() const;

  /// Fraction of rows with label 1 (the favorable outcome).
  double PositiveRate() const;

  /// Fraction of rows with Code(row, attr) == code that have label 1;
  /// returns 0 when the group is empty. This is the "base rate" of §6.3.
  double BaseRate(int attr, int32_t code) const;

  /// Fraction of rows with Code(row, attr) == code.
  double GroupFraction(int attr, int32_t code) const;

  /// New dataset containing the given rows, in the given order.
  /// Row indices must be valid.
  Dataset Select(const std::vector<int64_t>& rows) const;

  /// New dataset with the rows whose ids appear in `rows` removed.
  /// `rows` need not be sorted; duplicates are tolerated.
  Dataset DropRows(const std::vector<int64_t>& rows) const;

  /// Copy where column `attr`'s value for row i is taken from row perm[i]
  /// (everything else unchanged). Used by permutation feature importance.
  Dataset WithPermutedColumn(int attr,
                             const std::vector<int64_t>& perm) const;

  /// Human-readable rendering of one cell ("Male", "3.14").
  std::string CellToString(int64_t row, int attr) const;

  /// Verifies internal consistency (column lengths, code ranges).
  Status Validate() const;

 private:
  Schema schema_;
  std::vector<ColumnData> columns_;
  std::vector<uint8_t> labels_;
  /// Lazily built packed view; null until the first packed_codes() call
  /// and reset to null by AppendRow/AppendRowMixed.
  mutable std::atomic<std::shared_ptr<const PackedCodes>> packed_{nullptr};
};

}  // namespace fume

#endif  // FUME_DATA_DATASET_H_
