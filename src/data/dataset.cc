#include "data/dataset.h"

#include <mutex>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/string_util.h"

namespace fume {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(static_cast<size_t>(schema_.num_attributes()));
}

Dataset::Dataset(const Dataset& other)
    : schema_(other.schema_),
      columns_(other.columns_),
      labels_(other.labels_) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  columns_ = other.columns_;
  labels_ = other.labels_;
  packed_.store(nullptr);
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : schema_(std::move(other.schema_)),
      columns_(std::move(other.columns_)),
      labels_(std::move(other.labels_)) {}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  columns_ = std::move(other.columns_);
  labels_ = std::move(other.labels_);
  packed_.store(nullptr);
  return *this;
}

std::shared_ptr<const PackedCodes> Dataset::packed_codes() const {
  std::shared_ptr<const PackedCodes> cur = packed_.load();
  if (cur != nullptr) return cur;
  FUME_CHECK(schema_.AllCategorical());
  // Builds are rare (once per dataset per process, plus once per append
  // burst), so one process-wide mutex is plenty; readers never take it.
  static std::mutex build_mu;
  std::lock_guard<std::mutex> lock(build_mu);
  cur = packed_.load();
  if (cur != nullptr) return cur;
  auto packed = std::make_shared<PackedCodes>();
  const int p = schema_.num_attributes();
  const int64_t n = num_rows();
  packed->num_attrs = p;
  packed->codes.resize(static_cast<size_t>(n) * static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    const std::vector<int32_t>& col = columns_[static_cast<size_t>(j)].codes;
    int32_t* out = packed->codes.data() + j;
    for (int64_t r = 0; r < n; ++r) {
      out[static_cast<size_t>(r) * static_cast<size_t>(p)] =
          col[static_cast<size_t>(r)];
    }
  }
  packed_.store(packed);
  return packed;
}

Status Dataset::AppendRow(const std::vector<int32_t>& codes, int label) {
  return AppendRowMixed(codes, {}, label);
}

Status Dataset::AppendRowMixed(const std::vector<int32_t>& codes,
                               const std::vector<double>& numerics,
                               int label) {
  const int p = schema_.num_attributes();
  if (static_cast<int>(codes.size()) != p) {
    return Status::Invalid("row has " + std::to_string(codes.size()) +
                           " codes, schema has " + std::to_string(p) +
                           " attributes");
  }
  if (label != 0 && label != 1) {
    return Status::Invalid("label must be 0 or 1, got " +
                           std::to_string(label));
  }
  for (int j = 0; j < p; ++j) {
    const Attribute& a = schema_.attribute(j);
    if (a.type == AttributeType::kCategorical) {
      const int32_t code = codes[j];
      if (code < 0 || code >= a.cardinality()) {
        return Status::Invalid("code " + std::to_string(code) +
                               " out of range for attribute '" + a.name + "'");
      }
    } else {
      if (static_cast<int>(numerics.size()) != p) {
        return Status::Invalid("numeric attribute '" + a.name +
                               "' requires a numerics vector of full width");
      }
    }
  }
  for (int j = 0; j < p; ++j) {
    const Attribute& a = schema_.attribute(j);
    if (a.type == AttributeType::kCategorical) {
      columns_[j].codes.push_back(codes[j]);
    } else {
      columns_[j].numeric.push_back(numerics[j]);
    }
  }
  labels_.push_back(static_cast<uint8_t>(label));
  packed_.store(nullptr);  // the packed snapshot no longer covers all rows
  return Status::OK();
}

double Dataset::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  int64_t pos = 0;
  for (uint8_t y : labels_) pos += y;
  return static_cast<double>(pos) / static_cast<double>(labels_.size());
}

double Dataset::BaseRate(int attr, int32_t code) const {
  int64_t in_group = 0;
  int64_t pos = 0;
  const auto& col = columns_[attr].codes;
  for (int64_t i = 0; i < num_rows(); ++i) {
    if (col[i] == code) {
      ++in_group;
      pos += labels_[i];
    }
  }
  if (in_group == 0) return 0.0;
  return static_cast<double>(pos) / static_cast<double>(in_group);
}

double Dataset::GroupFraction(int attr, int32_t code) const {
  if (num_rows() == 0) return 0.0;
  int64_t in_group = 0;
  for (int32_t c : columns_[attr].codes) {
    if (c == code) ++in_group;
  }
  return static_cast<double>(in_group) / static_cast<double>(num_rows());
}

Dataset Dataset::Select(const std::vector<int64_t>& rows) const {
  Dataset out(schema_);
  const int p = schema_.num_attributes();
  for (int j = 0; j < p; ++j) {
    const ColumnData& src = columns_[j];
    ColumnData& dst = out.columns_[j];
    if (schema_.attribute(j).type == AttributeType::kCategorical) {
      dst.codes.reserve(rows.size());
      for (int64_t r : rows) dst.codes.push_back(src.codes[r]);
    } else {
      dst.numeric.reserve(rows.size());
      for (int64_t r : rows) dst.numeric.push_back(src.numeric[r]);
    }
  }
  out.labels_.reserve(rows.size());
  for (int64_t r : rows) out.labels_.push_back(labels_[r]);
  return out;
}

Dataset Dataset::DropRows(const std::vector<int64_t>& rows) const {
  std::vector<uint8_t> drop(static_cast<size_t>(num_rows()), 0);
  for (int64_t r : rows) {
    FUME_CHECK(r >= 0 && r < num_rows());
    drop[static_cast<size_t>(r)] = 1;
  }
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(num_rows()));
  for (int64_t i = 0; i < num_rows(); ++i) {
    if (!drop[static_cast<size_t>(i)]) keep.push_back(i);
  }
  return Select(keep);
}

Dataset Dataset::WithPermutedColumn(int attr,
                                    const std::vector<int64_t>& perm) const {
  FUME_CHECK_EQ(static_cast<int64_t>(perm.size()), num_rows());
  Dataset out = *this;
  ColumnData& col = out.columns_[attr];
  if (schema_.attribute(attr).type == AttributeType::kCategorical) {
    const std::vector<int32_t>& src = columns_[attr].codes;
    for (int64_t i = 0; i < num_rows(); ++i) {
      col.codes[static_cast<size_t>(i)] =
          src[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    }
  } else {
    const std::vector<double>& src = columns_[attr].numeric;
    for (int64_t i = 0; i < num_rows(); ++i) {
      col.numeric[static_cast<size_t>(i)] =
          src[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    }
  }
  return out;
}

std::string Dataset::CellToString(int64_t row, int attr) const {
  const Attribute& a = schema_.attribute(attr);
  if (a.type == AttributeType::kCategorical) {
    return a.categories[static_cast<size_t>(Code(row, attr))];
  }
  return FormatDouble(Numeric(row, attr), 4);
}

Status Dataset::Validate() const {
  const int p = schema_.num_attributes();
  if (static_cast<int>(columns_.size()) != p) {
    return Status::Internal("column count does not match schema");
  }
  for (int j = 0; j < p; ++j) {
    const Attribute& a = schema_.attribute(j);
    const ColumnData& col = columns_[j];
    if (a.type == AttributeType::kCategorical) {
      if (static_cast<int64_t>(col.codes.size()) != num_rows()) {
        return Status::Internal("length mismatch in column '" + a.name + "'");
      }
      for (int32_t c : col.codes) {
        if (c < 0 || c >= a.cardinality()) {
          return Status::Internal("code out of range in column '" + a.name +
                                  "'");
        }
      }
    } else {
      if (static_cast<int64_t>(col.numeric.size()) != num_rows()) {
        return Status::Internal("length mismatch in column '" + a.name + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace fume
