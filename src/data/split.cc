#include "data/split.h"

#include <algorithm>

#include "util/rng.h"

namespace fume {

Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      const SplitOptions& options) {
  if (options.test_fraction <= 0.0 || options.test_fraction >= 1.0) {
    return Status::Invalid("test_fraction must be in (0, 1)");
  }
  if (data.num_rows() < 2) {
    return Status::Invalid("need at least 2 rows to split");
  }
  Rng rng(Hash64({options.seed, 0x73706c6974ULL}));  // "split"
  std::vector<int64_t> test_rows;
  std::vector<int64_t> train_rows;
  if (options.stratify_by_label) {
    for (int label : {0, 1}) {
      std::vector<int64_t> group;
      for (int64_t r = 0; r < data.num_rows(); ++r) {
        if (data.Label(r) == label) group.push_back(r);
      }
      rng.Shuffle(&group);
      const size_t n_test = static_cast<size_t>(
          options.test_fraction * static_cast<double>(group.size()));
      for (size_t i = 0; i < group.size(); ++i) {
        (i < n_test ? test_rows : train_rows).push_back(group[i]);
      }
    }
  } else {
    std::vector<int64_t> rows(static_cast<size_t>(data.num_rows()));
    for (int64_t r = 0; r < data.num_rows(); ++r) {
      rows[static_cast<size_t>(r)] = r;
    }
    rng.Shuffle(&rows);
    const size_t n_test = static_cast<size_t>(
        options.test_fraction * static_cast<double>(rows.size()));
    for (size_t i = 0; i < rows.size(); ++i) {
      (i < n_test ? test_rows : train_rows).push_back(rows[i]);
    }
  }
  // Preserve original row order inside each half (row ids in downstream
  // indexes stay monotone, which eases debugging).
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(test_rows.begin(), test_rows.end());
  if (train_rows.empty() || test_rows.empty()) {
    return Status::Invalid("split produced an empty half");
  }
  return TrainTestSplit{data.Select(train_rows), data.Select(test_rows)};
}

}  // namespace fume
