// CSV reader/writer so users can run FUME on their own data (the paper's
// pipeline loads UCI-style CSVs, discretizes, then searches).

#ifndef FUME_DATA_CSV_H_
#define FUME_DATA_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace fume {

/// Options controlling CSV ingestion.
struct CsvReadOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Name of the binary label column (must exist in the header). When
  /// has_header is false, the last column is the label.
  std::string label_column = "label";
  /// Category names (in order) interpreted as label 1; everything else is 0.
  /// Empty means: parse the label column as integer 0/1.
  std::vector<std::string> positive_label_values;
  /// Columns forced to be read as categorical even if every value parses as
  /// a number (e.g. zip codes).
  std::vector<std::string> force_categorical;
  /// Field values treated as missing (after trimming), e.g. {"", "?", "NA"}.
  /// Missing categorical fields become a dedicated "(missing)" category;
  /// a column with missing numeric fields is read as categorical with its
  /// numbers as string categories plus "(missing)" (binning such columns is
  /// the caller's choice — silently imputing would hide exactly the data
  /// issues FUME exists to surface). Empty list = no missing handling
  /// (default; empty numeric fields are then a parse error).
  std::vector<std::string> missing_values;
};

/// Parses CSV text into a Dataset. Column types are inferred: a column where
/// every non-empty field parses as a double becomes numeric, otherwise
/// categorical with a dictionary built in first-appearance order.
Result<Dataset> ReadCsv(std::istream& in, const CsvReadOptions& options);

/// Convenience wrapper opening a file.
Result<Dataset> ReadCsvFile(const std::string& path,
                            const CsvReadOptions& options);

/// Writes a dataset (attributes then label) with a header row.
Status WriteCsv(const Dataset& data, std::ostream& out, char delimiter = ',');

Status WriteCsvFile(const Dataset& data, const std::string& path,
                    char delimiter = ',');

}  // namespace fume

#endif  // FUME_DATA_CSV_H_
