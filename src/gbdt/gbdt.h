// GbdtClassifier: gradient boosted decision trees for binary classification
// (logistic loss, XGBoost-style second-order splits), the third ensemble
// family the paper's introduction names ("random forest classifiers,
// gradient boosted decision trees").
//
// Unlearning story — stated honestly: boosting is sequential, so deleting a
// training row changes the residuals every later tree was fit to; unlike
// DaRE forests there is no cheap exact deletion (the KDD'23 GBDT-unlearning
// work the paper cites resorts to approximations). This implementation is
// DETERMINISTIC (training is a pure function of data + config), so
// DeleteRows achieves exact unlearning by cascade retraining — the model
// after deletion equals a scratch train on the reduced data, at roughly
// scratch-training cost. FUME runs unchanged on top (the model-agnostic
// route of paper §5); the latency difference vs DaRE is the point.

#ifndef FUME_GBDT_GBDT_H_
#define FUME_GBDT_GBDT_H_

#include <memory>
#include <vector>

#include "core/removal_method.h"
#include "data/dataset.h"
#include "forest/training_store.h"
#include "util/result.h"

namespace fume {

struct GbdtConfig {
  /// Boosting rounds (trees).
  int num_rounds = 40;
  /// Depth of each regression tree.
  int max_depth = 3;
  double learning_rate = 0.15;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double l2 = 1.0;
  /// Minimum hessian mass per child for a split to be valid.
  double min_child_weight = 1.0;
  int min_samples_leaf = 3;
};

namespace gbdt_internal {
struct RegressionNode;
}  // namespace gbdt_internal

/// \brief One regression tree over category codes (splits code <= t),
/// returning a leaf weight (log-odds increment).
class GbdtTree {
 public:
  GbdtTree();
  ~GbdtTree();
  GbdtTree(GbdtTree&&) noexcept;
  GbdtTree& operator=(GbdtTree&&) noexcept;
  GbdtTree(const GbdtTree&);
  GbdtTree& operator=(const GbdtTree&);

  /// Fits to gradients/hessians of the alive rows.
  static GbdtTree Fit(const TrainingStore& store,
                      const std::vector<RowId>& rows,
                      const std::vector<double>& gradients,
                      const std::vector<double>& hessians,
                      const GbdtConfig& config);

  /// Log-odds increment for one instance of an all-categorical dataset.
  double Predict(const Dataset& data, int64_t row) const;

  int64_t num_nodes() const;

 private:
  std::unique_ptr<gbdt_internal::RegressionNode> root_;
  friend class GbdtClassifier;
};

/// \brief The boosted ensemble.
class GbdtClassifier {
 public:
  static Result<GbdtClassifier> Train(const Dataset& train,
                                      const GbdtConfig& config);

  double PredictProb(const Dataset& data, int64_t row) const;
  int Predict(const Dataset& data, int64_t row) const;
  std::vector<int> PredictAll(const Dataset& data) const;
  double Accuracy(const Dataset& data) const;

  /// Exact unlearning via deterministic cascade retrain: equivalent to
  /// Train() on the reduced data (asserted in tests), at retraining cost —
  /// the honest price of boosting's sequential dependence.
  Status DeleteRows(const std::vector<RowId>& rows);

  GbdtClassifier Clone() const { return *this; }

  int num_rounds() const { return static_cast<int>(trees_.size()); }
  int64_t num_alive_rows() const { return alive_count_; }
  const GbdtConfig& config() const { return config_; }

 private:
  void Boost();  // (re)fits trees_ from the alive rows

  std::shared_ptr<const TrainingStore> store_;
  GbdtConfig config_;
  std::vector<uint8_t> alive_;
  int64_t alive_count_ = 0;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<GbdtTree> trees_;
};

/// RemovalMethod adapter: FUME over a GBDT via cascade retraining.
class GbdtUnlearnRemovalMethod : public RemovalMethod {
 public:
  GbdtUnlearnRemovalMethod(const GbdtClassifier* model, const Dataset* test,
                           GroupSpec group, FairnessMetric metric);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  const char* name() const override { return "gbdt-cascade-retrain"; }

 private:
  const GbdtClassifier* model_;
  const Dataset* test_;
  GroupSpec group_;
  FairnessMetric metric_;
};

/// Evaluates a trained GBDT on test data (fairness + accuracy).
ModelEval EvaluateGbdt(const GbdtClassifier& model, const Dataset& test,
                       const GroupSpec& group, FairnessMetric metric);

}  // namespace fume

#endif  // FUME_GBDT_GBDT_H_
