#include "gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "fairness/metrics.h"
#include "util/check.h"

namespace fume {
namespace gbdt_internal {

struct RegressionNode {
  int attr = -1;
  int32_t threshold = -1;
  double weight = 0.0;  // leaf value (log-odds increment)
  std::unique_ptr<RegressionNode> left, right;

  bool is_leaf() const { return left == nullptr; }
};

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

struct SplitChoice {
  bool found = false;
  int attr = -1;
  int32_t threshold = -1;
  double gain = 0.0;
};

// XGBoost-style structure score: G^2 / (H + lambda).
double Score(double g, double h, double l2) { return g * g / (h + l2); }

// Exhaustive best split over all (attribute, inter-code threshold) pairs.
// Deterministic: strict-improvement scan in ascending (attr, threshold)
// order — the property the cascade-retrain exactness rests on.
SplitChoice BestSplit(const TrainingStore& store,
                      const std::vector<RowId>& rows,
                      const std::vector<double>& gradients,
                      const std::vector<double>& hessians, double g_total,
                      double h_total, const GbdtConfig& config) {
  SplitChoice best;
  const double parent_score = Score(g_total, h_total, config.l2);
  for (int attr = 0; attr < store.num_attrs(); ++attr) {
    const int32_t card = store.cardinality(attr);
    if (card < 2) continue;
    // Per-code aggregates, then prefix sums over thresholds.
    std::vector<double> g_by_code(static_cast<size_t>(card), 0.0);
    std::vector<double> h_by_code(static_cast<size_t>(card), 0.0);
    std::vector<int64_t> n_by_code(static_cast<size_t>(card), 0);
    for (RowId r : rows) {
      const auto code = static_cast<size_t>(store.code(r, attr));
      g_by_code[code] += gradients[static_cast<size_t>(r)];
      h_by_code[code] += hessians[static_cast<size_t>(r)];
      ++n_by_code[code];
    }
    double g_left = 0.0, h_left = 0.0;
    int64_t n_left = 0;
    for (int32_t t = 0; t < card - 1; ++t) {
      g_left += g_by_code[static_cast<size_t>(t)];
      h_left += h_by_code[static_cast<size_t>(t)];
      n_left += n_by_code[static_cast<size_t>(t)];
      const double h_right = h_total - h_left;
      const int64_t n_right = static_cast<int64_t>(rows.size()) - n_left;
      if (n_left < config.min_samples_leaf ||
          n_right < config.min_samples_leaf ||
          h_left < config.min_child_weight ||
          h_right < config.min_child_weight) {
        continue;
      }
      const double gain = Score(g_left, h_left, config.l2) +
                          Score(g_total - g_left, h_right, config.l2) -
                          parent_score;
      if (!best.found || gain > best.gain + 1e-12) {
        best.found = true;
        best.attr = attr;
        best.threshold = t;
        best.gain = gain;
      }
    }
  }
  if (best.found && best.gain <= 1e-12) best.found = false;
  return best;
}

std::unique_ptr<RegressionNode> FitNode(const TrainingStore& store,
                                        const std::vector<RowId>& rows,
                                        const std::vector<double>& gradients,
                                        const std::vector<double>& hessians,
                                        int depth, const GbdtConfig& config) {
  auto node = std::make_unique<RegressionNode>();
  double g_total = 0.0, h_total = 0.0;
  for (RowId r : rows) {
    g_total += gradients[static_cast<size_t>(r)];
    h_total += hessians[static_cast<size_t>(r)];
  }
  SplitChoice split;
  if (depth < config.max_depth &&
      static_cast<int64_t>(rows.size()) >= 2 * config.min_samples_leaf) {
    split = BestSplit(store, rows, gradients, hessians, g_total, h_total,
                      config);
  }
  if (!split.found) {
    node->weight = -g_total / (h_total + config.l2);
    return node;
  }
  node->attr = split.attr;
  node->threshold = split.threshold;
  std::vector<RowId> left_rows, right_rows;
  for (RowId r : rows) {
    (store.code(r, split.attr) <= split.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  node->left =
      FitNode(store, left_rows, gradients, hessians, depth + 1, config);
  node->right =
      FitNode(store, right_rows, gradients, hessians, depth + 1, config);
  return node;
}

std::unique_ptr<RegressionNode> CloneNode(const RegressionNode* node) {
  auto out = std::make_unique<RegressionNode>();
  out->attr = node->attr;
  out->threshold = node->threshold;
  out->weight = node->weight;
  if (!node->is_leaf()) {
    out->left = CloneNode(node->left.get());
    out->right = CloneNode(node->right.get());
  }
  return out;
}

int64_t CountNodes(const RegressionNode* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf()) return 1;
  return 1 + CountNodes(node->left.get()) + CountNodes(node->right.get());
}

}  // namespace
}  // namespace gbdt_internal

using gbdt_internal::RegressionNode;

GbdtTree::GbdtTree() = default;
GbdtTree::~GbdtTree() = default;
GbdtTree::GbdtTree(GbdtTree&&) noexcept = default;
GbdtTree& GbdtTree::operator=(GbdtTree&&) noexcept = default;

GbdtTree::GbdtTree(const GbdtTree& other) {
  if (other.root_ != nullptr) root_ = gbdt_internal::CloneNode(other.root_.get());
}

GbdtTree& GbdtTree::operator=(const GbdtTree& other) {
  if (this != &other) {
    root_ = other.root_ != nullptr
                ? gbdt_internal::CloneNode(other.root_.get())
                : nullptr;
  }
  return *this;
}

GbdtTree GbdtTree::Fit(const TrainingStore& store,
                       const std::vector<RowId>& rows,
                       const std::vector<double>& gradients,
                       const std::vector<double>& hessians,
                       const GbdtConfig& config) {
  GbdtTree tree;
  tree.root_ = gbdt_internal::FitNode(store, rows, gradients, hessians,
                                      /*depth=*/0, config);
  return tree;
}

double GbdtTree::Predict(const Dataset& data, int64_t row) const {
  const RegressionNode* n = root_.get();
  FUME_DCHECK(n != nullptr);
  while (!n->is_leaf()) {
    n = data.Code(row, n->attr) <= n->threshold ? n->left.get()
                                                : n->right.get();
  }
  return n->weight;
}

int64_t GbdtTree::num_nodes() const {
  return gbdt_internal::CountNodes(root_.get());
}

Result<GbdtClassifier> GbdtClassifier::Train(const Dataset& train,
                                             const GbdtConfig& config) {
  if (!train.schema().AllCategorical()) {
    return Status::Invalid("GbdtClassifier requires all-categorical data");
  }
  if (train.num_rows() == 0) {
    return Status::Invalid("cannot train on an empty dataset");
  }
  if (config.num_rounds < 1 || config.max_depth < 1 ||
      config.learning_rate <= 0.0 || config.l2 < 0.0) {
    return Status::Invalid("invalid GBDT hyperparameters");
  }
  GbdtClassifier model;
  model.store_ = TrainingStore::Make(train);
  model.config_ = config;
  model.alive_.assign(static_cast<size_t>(train.num_rows()), 1);
  model.alive_count_ = train.num_rows();
  model.Boost();
  return model;
}

void GbdtClassifier::Boost() {
  trees_.clear();
  const int64_t n = store_->num_rows();
  std::vector<RowId> rows;
  int64_t positives = 0;
  for (RowId r = 0; r < n; ++r) {
    if (!alive_[static_cast<size_t>(r)]) continue;
    rows.push_back(r);
    positives += store_->label(r);
  }
  if (rows.empty()) {
    base_score_ = 0.0;
    return;
  }
  // Initial log-odds, clamped away from degenerate all-one / all-zero.
  const double p0 = std::min(
      0.99, std::max(0.01, static_cast<double>(positives) /
                               static_cast<double>(rows.size())));
  base_score_ = std::log(p0 / (1.0 - p0));

  std::vector<double> margin(static_cast<size_t>(n), base_score_);
  std::vector<double> gradients(static_cast<size_t>(n), 0.0);
  std::vector<double> hessians(static_cast<size_t>(n), 0.0);
  trees_.reserve(static_cast<size_t>(config_.num_rounds));
  for (int round = 0; round < config_.num_rounds; ++round) {
    for (RowId r : rows) {
      const double p =
          1.0 / (1.0 + std::exp(-margin[static_cast<size_t>(r)]));
      gradients[static_cast<size_t>(r)] = p - store_->label(r);
      hessians[static_cast<size_t>(r)] = std::max(1e-9, p * (1.0 - p));
    }
    GbdtTree tree = GbdtTree::Fit(*store_, rows, gradients, hessians,
                                  config_);
    // Update margins through the raw tree; scale by the learning rate.
    for (RowId r : rows) {
      const RegressionNode* node = tree.root_.get();
      while (!node->is_leaf()) {
        node = store_->code(r, node->attr) <= node->threshold
                   ? node->left.get()
                   : node->right.get();
      }
      margin[static_cast<size_t>(r)] +=
          config_.learning_rate * node->weight;
    }
    trees_.push_back(std::move(tree));
  }
}

double GbdtClassifier::PredictProb(const Dataset& data, int64_t row) const {
  if (alive_count_ == 0) return 0.5;
  double margin = base_score_;
  for (const GbdtTree& tree : trees_) {
    margin += config_.learning_rate * tree.Predict(data, row);
  }
  return 1.0 / (1.0 + std::exp(-margin));
}

int GbdtClassifier::Predict(const Dataset& data, int64_t row) const {
  return PredictProb(data, row) >= 0.5 ? 1 : 0;
}

std::vector<int> GbdtClassifier::PredictAll(const Dataset& data) const {
  std::vector<int> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = Predict(data, r);
  }
  return out;
}

double GbdtClassifier::Accuracy(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  const std::vector<int> preds = PredictAll(data);
  int64_t correct = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == data.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

Status GbdtClassifier::DeleteRows(const std::vector<RowId>& rows) {
  std::unordered_set<RowId> seen;
  for (RowId r : rows) {
    if (r < 0 || r >= store_->num_rows()) {
      return Status::IndexError("row id " + std::to_string(r) +
                                " out of range");
    }
    if (!alive_[static_cast<size_t>(r)]) {
      return Status::Invalid("row " + std::to_string(r) +
                             " already deleted (or duplicated in batch)");
    }
    if (!seen.insert(r).second) {
      return Status::Invalid("duplicate row id in deletion batch");
    }
  }
  for (RowId r : rows) alive_[static_cast<size_t>(r)] = 0;
  alive_count_ -= static_cast<int64_t>(rows.size());
  // Boosting is sequential: every later tree depends on earlier residuals,
  // so exact unlearning requires the cascade. Training is deterministic,
  // hence this equals a scratch train on the surviving rows.
  Boost();
  return Status::OK();
}

GbdtUnlearnRemovalMethod::GbdtUnlearnRemovalMethod(
    const GbdtClassifier* model, const Dataset* test, GroupSpec group,
    FairnessMetric metric)
    : model_(model), test_(test), group_(group), metric_(metric) {}

ModelEval EvaluateGbdt(const GbdtClassifier& model, const Dataset& test,
                       const GroupSpec& group, FairnessMetric metric) {
  const std::vector<int> preds = model.PredictAll(test);
  ModelEval eval;
  eval.fairness = ComputeFairness(test, preds, group, metric);
  int64_t correct = 0;
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test.Label(r)) ++correct;
  }
  eval.accuracy = test.num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.num_rows());
  return eval;
}

Result<ModelEval> GbdtUnlearnRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  GbdtClassifier what_if = model_->Clone();
  FUME_RETURN_NOT_OK(what_if.DeleteRows(rows));
  return EvaluateGbdt(what_if, *test_, group_, metric_);
}

}  // namespace fume
