#include "hedgecut/hedgecut.h"

#include <algorithm>
#include <unordered_set>

#include "fairness/metrics.h"
#include "forest/split_stats.h"  // WeightedGini
#include "util/check.h"
#include "util/rng.h"

namespace fume {
namespace hedgecut_internal {

struct Candidate {
  int attr = 0;
  int32_t threshold = 0;
  int64_t left_count = 0;
  int64_t left_pos = 0;
};

struct Node {
  int64_t count = 0;
  int64_t pos = 0;
  // Internal-node state. `active` indexes the winning candidate; -1 = leaf.
  std::vector<Candidate> candidates;
  int active = -1;
  std::unique_ptr<Node> left, right;
  // Maintained runner-up variant (HedgeCut's low-latency trick); -1 = none.
  int variant = -1;
  std::unique_ptr<Node> variant_left, variant_right;
  // Leaf state.
  std::vector<RowId> rows;

  bool is_leaf() const { return active < 0; }
};

namespace {

constexpr uint64_t kTagCandAttr = 0x4c6563ULL;
constexpr uint64_t kTagCandThr = 0x4c6564ULL;
constexpr uint64_t kTagChild = 0x4c6565ULL;

// The candidate set is a pure function of (path key, schema, config):
// num_candidates keyed draws, duplicates dropped.
std::vector<Candidate> DrawCandidates(uint64_t key, const TrainingStore& store,
                                      const HedgecutConfig& config) {
  std::vector<Candidate> out;
  for (int i = 0; i < config.num_candidates; ++i) {
    const int attr = static_cast<int>(
        Hash64({key, kTagCandAttr, static_cast<uint64_t>(i)}) %
        static_cast<uint64_t>(store.num_attrs()));
    const int32_t card = store.cardinality(attr);
    if (card < 2) continue;
    const int32_t threshold = static_cast<int32_t>(
        Hash64({key, kTagCandThr, static_cast<uint64_t>(i)}) %
        static_cast<uint64_t>(card - 1));
    const bool duplicate =
        std::any_of(out.begin(), out.end(), [&](const Candidate& c) {
          return c.attr == attr && c.threshold == threshold;
        });
    if (!duplicate) out.push_back(Candidate{attr, threshold, 0, 0});
  }
  return out;
}

// Child key derived from the CANDIDATE identity, not from whether the
// subtree currently serves as active or variant — this is what makes a
// swapped-in variant identical to a scratch build (header notes).
uint64_t ChildKeyFor(uint64_t key, const Candidate& candidate, int side) {
  return Hash64({key, kTagChild, static_cast<uint64_t>(candidate.attr),
                 static_cast<uint64_t>(static_cast<uint32_t>(candidate.threshold)),
                 static_cast<uint64_t>(side)});
}

// Gini gain of a candidate at a node; negative infinity stand-in (-1) when
// the candidate is invalid under min_samples_leaf.
double CandidateGain(const Node& node, const Candidate& candidate,
                     int min_leaf) {
  const int64_t right_count = node.count - candidate.left_count;
  const int64_t right_pos = node.pos - candidate.left_pos;
  if (candidate.left_count < min_leaf || right_count < min_leaf) return -1.0;
  const double parent = WeightedGini(node.count, node.pos, 0, 0);
  const double children = WeightedGini(candidate.left_count,
                                       candidate.left_pos, right_count,
                                       right_pos);
  return parent - children;
}

struct Decision {
  bool is_leaf = true;
  int winner = -1;
  int runner_up = -1;
  bool robust = true;
};

Decision Decide(const Node& node, int depth, const HedgecutConfig& config) {
  Decision decision;
  if (node.count < config.min_samples_split) return decision;
  if (node.pos == 0 || node.pos == node.count) return decision;
  if (depth >= config.max_depth) return decision;
  const int min_leaf = std::max(1, config.min_samples_leaf);
  double best = -1.0, second = -1.0;
  for (size_t i = 0; i < node.candidates.size(); ++i) {
    const double gain = CandidateGain(node, node.candidates[i], min_leaf);
    if (gain < 0.0) continue;
    if (decision.winner < 0 || gain > best + 1e-12) {
      decision.runner_up = decision.winner;
      second = best;
      decision.winner = static_cast<int>(i);
      best = gain;
    } else if (decision.runner_up < 0 || gain > second + 1e-12) {
      decision.runner_up = static_cast<int>(i);
      second = gain;
    }
  }
  if (decision.winner < 0) return decision;
  decision.is_leaf = false;
  decision.robust = decision.runner_up < 0 ||
                    (best - second) >= config.robustness_margin;
  return decision;
}

void ComputeStats(Node* node, const TrainingStore& store,
                  const std::vector<RowId>& rows) {
  node->count = static_cast<int64_t>(rows.size());
  node->pos = 0;
  for (auto& candidate : node->candidates) {
    candidate.left_count = 0;
    candidate.left_pos = 0;
  }
  for (RowId r : rows) {
    const int y = store.label(r);
    node->pos += y;
    for (auto& candidate : node->candidates) {
      if (store.code(r, candidate.attr) <= candidate.threshold) {
        ++candidate.left_count;
        candidate.left_pos += y;
      }
    }
  }
}

std::unique_ptr<Node> BuildNode(const TrainingStore& store,
                                const std::vector<RowId>& rows, int depth,
                                uint64_t key, const HedgecutConfig& config,
                                bool allow_variants = true) {
  auto node = std::make_unique<Node>();
  node->candidates = DrawCandidates(key, store, config);
  ComputeStats(node.get(), store, rows);

  const Decision decision = Decide(*node, depth, config);
  if (decision.is_leaf) {
    node->candidates.clear();
    node->active = -1;
    node->rows = rows;
    return node;
  }
  node->active = decision.winner;

  auto partition = [&](const Candidate& candidate,
                       std::vector<RowId>* left_rows,
                       std::vector<RowId>* right_rows) {
    for (RowId r : rows) {
      (store.code(r, candidate.attr) <= candidate.threshold ? *left_rows
                                                            : *right_rows)
          .push_back(r);
    }
  };

  {
    const Candidate& winner =
        node->candidates[static_cast<size_t>(decision.winner)];
    std::vector<RowId> left_rows, right_rows;
    partition(winner, &left_rows, &right_rows);
    node->left = BuildNode(store, left_rows, depth + 1,
                           ChildKeyFor(key, winner, 0), config,
                           allow_variants);
    node->right = BuildNode(store, right_rows, depth + 1,
                            ChildKeyFor(key, winner, 1), config,
                            allow_variants);
  }
  if (!decision.robust && allow_variants) {
    // Non-robust winner: maintain the runner-up's subtrees so a future flip
    // is served instantly. Variants are kept one level deep only — a
    // variant subtree carries no variants of its own (they are a pure
    // cache; nesting them would grow the tree exponentially). The served
    // (active) structure is unaffected either way.
    node->variant = decision.runner_up;
    const Candidate& runner =
        node->candidates[static_cast<size_t>(decision.runner_up)];
    std::vector<RowId> left_rows, right_rows;
    partition(runner, &left_rows, &right_rows);
    node->variant_left =
        BuildNode(store, left_rows, depth + 1, ChildKeyFor(key, runner, 0),
                  config, /*allow_variants=*/false);
    node->variant_right =
        BuildNode(store, right_rows, depth + 1, ChildKeyFor(key, runner, 1),
                  config, /*allow_variants=*/false);
  }
  return node;
}

void CollectActiveRows(const Node* node, std::vector<RowId>* out) {
  if (node->is_leaf()) {
    out->insert(out->end(), node->rows.begin(), node->rows.end());
    return;
  }
  CollectActiveRows(node->left.get(), out);
  CollectActiveRows(node->right.get(), out);
}

void DeleteFromNode(Node* node, const TrainingStore& store,
                    const std::vector<RowId>& rows, int depth, uint64_t key,
                    const HedgecutConfig& config,
                    HedgecutDeletionStats* stats) {
  ++stats->nodes_visited;

  if (node->is_leaf()) {
    std::unordered_set<RowId> doomed(rows.begin(), rows.end());
    int64_t removed_pos = 0;
    size_t kept = 0;
    for (size_t i = 0; i < node->rows.size(); ++i) {
      if (doomed.count(node->rows[i]) > 0) {
        removed_pos += store.label(node->rows[i]);
      } else {
        node->rows[kept++] = node->rows[i];
      }
    }
    FUME_CHECK_EQ(node->rows.size() - kept, rows.size());
    node->rows.resize(kept);
    node->count -= static_cast<int64_t>(rows.size());
    node->pos -= removed_pos;
    return;
  }

  // Decrement node and per-candidate statistics.
  for (RowId r : rows) {
    const int y = store.label(r);
    --node->count;
    node->pos -= y;
    for (auto& candidate : node->candidates) {
      if (store.code(r, candidate.attr) <= candidate.threshold) {
        --candidate.left_count;
        candidate.left_pos -= y;
      }
    }
  }

  const Decision decision = Decide(*node, depth, config);
  if (decision.is_leaf) {
    // Collapse into a leaf holding the remaining rows.
    std::vector<RowId> remaining;
    CollectActiveRows(node, &remaining);
    std::unordered_set<RowId> doomed(rows.begin(), rows.end());
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](RowId r) { return doomed.count(r); }),
                    remaining.end());
    ++stats->subtree_rebuilds;
    stats->rows_retrained += static_cast<int64_t>(remaining.size());
    std::unique_ptr<Node> rebuilt =
        BuildNode(store, remaining, depth, key, config);
    *node = std::move(*rebuilt);
    return;
  }

  auto route = [&](const Candidate& candidate, Node* left, Node* right,
                   int side_key_base) {
    std::vector<RowId> left_rows, right_rows;
    for (RowId r : rows) {
      (store.code(r, candidate.attr) <= candidate.threshold ? left_rows
                                                            : right_rows)
          .push_back(r);
    }
    (void)side_key_base;
    if (!left_rows.empty()) {
      DeleteFromNode(left, store, left_rows, depth + 1,
                     ChildKeyFor(key, candidate, 0), config, stats);
    }
    if (!right_rows.empty()) {
      DeleteFromNode(right, store, right_rows, depth + 1,
                     ChildKeyFor(key, candidate, 1), config, stats);
    }
  };

  if (decision.winner == node->active) {
    // Winner unchanged: keep serving the active pair; also keep any
    // maintained variant up to date.
    route(node->candidates[static_cast<size_t>(node->active)],
          node->left.get(), node->right.get(), 0);
    if (node->variant >= 0) {
      route(node->candidates[static_cast<size_t>(node->variant)],
            node->variant_left.get(), node->variant_right.get(), 2);
    }
    return;
  }

  if (node->variant >= 0 && decision.winner == node->variant) {
    // The flip HedgeCut optimizes for: deletions are applied to both pairs,
    // then the maintained variant becomes active instantly.
    route(node->candidates[static_cast<size_t>(node->active)],
          node->left.get(), node->right.get(), 0);
    route(node->candidates[static_cast<size_t>(node->variant)],
          node->variant_left.get(), node->variant_right.get(), 2);
    std::swap(node->active, node->variant);
    std::swap(node->left, node->variant_left);
    std::swap(node->right, node->variant_right);
    ++stats->variant_swaps;
    return;
  }

  // Winner flipped to a candidate without a maintained variant: retrain the
  // node from its remaining rows.
  std::vector<RowId> remaining;
  CollectActiveRows(node, &remaining);
  std::unordered_set<RowId> doomed(rows.begin(), rows.end());
  remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                 [&](RowId r) { return doomed.count(r); }),
                  remaining.end());
  ++stats->subtree_rebuilds;
  stats->rows_retrained += static_cast<int64_t>(remaining.size());
  std::unique_ptr<Node> rebuilt =
      BuildNode(store, remaining, depth, key, config);
  *node = std::move(*rebuilt);
}

std::unique_ptr<Node> CloneNode(const Node* node) {
  auto out = std::make_unique<Node>();
  out->count = node->count;
  out->pos = node->pos;
  out->candidates = node->candidates;
  out->active = node->active;
  out->variant = node->variant;
  out->rows = node->rows;
  if (node->left) out->left = CloneNode(node->left.get());
  if (node->right) out->right = CloneNode(node->right.get());
  if (node->variant_left) out->variant_left = CloneNode(node->variant_left.get());
  if (node->variant_right) {
    out->variant_right = CloneNode(node->variant_right.get());
  }
  return out;
}

bool ActiveEquals(const Node* a, const Node* b) {
  if (a->count != b->count || a->pos != b->pos) return false;
  if (a->is_leaf() != b->is_leaf()) return false;
  if (a->is_leaf()) {
    std::vector<RowId> ra = a->rows;
    std::vector<RowId> rb = b->rows;
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    return ra == rb;
  }
  const Candidate& ca = a->candidates[static_cast<size_t>(a->active)];
  const Candidate& cb = b->candidates[static_cast<size_t>(b->active)];
  if (ca.attr != cb.attr || ca.threshold != cb.threshold ||
      ca.left_count != cb.left_count || ca.left_pos != cb.left_pos) {
    return false;
  }
  return ActiveEquals(a->left.get(), b->left.get()) &&
         ActiveEquals(a->right.get(), b->right.get());
}

int64_t CountActive(const Node* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf()) return 1;
  return 1 + CountActive(node->left.get()) + CountActive(node->right.get());
}

int64_t CountVariant(const Node* node) {
  if (node == nullptr || node->is_leaf()) return 0;
  int64_t total = CountVariant(node->left.get()) +
                  CountVariant(node->right.get());
  if (node->variant >= 0) {
    total += CountActive(node->variant_left.get()) +
             CountActive(node->variant_right.get());
    total += CountVariant(node->variant_left.get()) +
             CountVariant(node->variant_right.get());
  }
  return total;
}

uint64_t RootKey(uint64_t seed, int tree_id) {
  return Hash64({seed, 0x4c65c7ULL, static_cast<uint64_t>(tree_id)});
}

}  // namespace
}  // namespace hedgecut_internal

using hedgecut_internal::Node;

HedgecutTree::HedgecutTree() = default;
HedgecutTree::~HedgecutTree() = default;
HedgecutTree::HedgecutTree(HedgecutTree&&) noexcept = default;
HedgecutTree& HedgecutTree::operator=(HedgecutTree&&) noexcept = default;

HedgecutTree HedgecutTree::Build(std::shared_ptr<const TrainingStore> store,
                                 const std::vector<RowId>& rows, int tree_id,
                                 const HedgecutConfig& config) {
  HedgecutTree tree;
  tree.store_ = std::move(store);
  tree.config_ = config;
  tree.tree_id_ = tree_id;
  tree.root_ = hedgecut_internal::BuildNode(
      *tree.store_, rows, /*depth=*/0,
      hedgecut_internal::RootKey(config.seed, tree_id), config);
  return tree;
}

void HedgecutTree::DeleteRows(const std::vector<RowId>& rows,
                              HedgecutDeletionStats* stats_out) {
  if (rows.empty() || root_ == nullptr) return;
  HedgecutDeletionStats local;
  hedgecut_internal::DeleteFromNode(
      root_.get(), *store_, rows, /*depth=*/0,
      hedgecut_internal::RootKey(config_.seed, tree_id_), config_, &local);
  if (stats_out != nullptr) stats_out->Add(local);
}

double HedgecutTree::PredictProb(const Dataset& data, int64_t row) const {
  const Node* n = root_.get();
  if (n == nullptr || n->count == 0) return 0.5;
  while (!n->is_leaf()) {
    const auto& candidate = n->candidates[static_cast<size_t>(n->active)];
    n = data.Code(row, candidate.attr) <= candidate.threshold
            ? n->left.get()
            : n->right.get();
  }
  if (n->count == 0) return 0.5;
  return static_cast<double>(n->pos) / static_cast<double>(n->count);
}

HedgecutTree HedgecutTree::Clone() const {
  HedgecutTree out;
  out.store_ = store_;
  out.config_ = config_;
  out.tree_id_ = tree_id_;
  if (root_ != nullptr) out.root_ = hedgecut_internal::CloneNode(root_.get());
  return out;
}

bool HedgecutTree::ActiveStructureEquals(const HedgecutTree& other) const {
  if ((root_ == nullptr) != (other.root_ == nullptr)) return false;
  if (root_ == nullptr) return true;
  return hedgecut_internal::ActiveEquals(root_.get(), other.root_.get());
}

int64_t HedgecutTree::num_nodes() const {
  return hedgecut_internal::CountActive(root_.get());
}

int64_t HedgecutTree::num_variant_nodes() const {
  return hedgecut_internal::CountVariant(root_.get());
}

Result<HedgecutForest> HedgecutForest::Train(const Dataset& train,
                                             const HedgecutConfig& config) {
  if (!train.schema().AllCategorical()) {
    return Status::Invalid(
        "HedgecutForest requires an all-categorical dataset");
  }
  if (train.num_rows() == 0) {
    return Status::Invalid("cannot train on an empty dataset");
  }
  if (config.num_trees < 1 || config.max_depth < 1 ||
      config.num_candidates < 1) {
    return Status::Invalid(
        "num_trees, max_depth and num_candidates must be positive");
  }
  if (config.robustness_margin < 0.0) {
    return Status::Invalid("robustness_margin must be non-negative");
  }
  HedgecutForest forest;
  forest.config_ = config;
  forest.store_ = TrainingStore::Make(train);
  std::vector<RowId> all_rows(static_cast<size_t>(train.num_rows()));
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    all_rows[static_cast<size_t>(r)] = static_cast<RowId>(r);
  }
  forest.trees_.reserve(static_cast<size_t>(config.num_trees));
  for (int t = 0; t < config.num_trees; ++t) {
    forest.trees_.push_back(
        HedgecutTree::Build(forest.store_, all_rows, t, config));
  }
  return forest;
}

Status HedgecutForest::DeleteRows(const std::vector<RowId>& rows) {
  if (rows.empty()) return Status::OK();
  std::unordered_set<RowId> seen;
  for (RowId r : rows) {
    if (r < 0 || r >= store_->num_rows()) {
      return Status::IndexError("row id " + std::to_string(r) +
                                " out of range");
    }
    if (!seen.insert(r).second) {
      return Status::Invalid("duplicate row id in deletion batch");
    }
  }
  for (auto& tree : trees_) tree.DeleteRows(rows, &deletion_stats_);
  return Status::OK();
}

double HedgecutForest::PredictProb(const Dataset& data, int64_t row) const {
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.PredictProb(data, row);
  return sum / static_cast<double>(trees_.size());
}

int HedgecutForest::Predict(const Dataset& data, int64_t row) const {
  return PredictProb(data, row) >= 0.5 ? 1 : 0;
}

std::vector<int> HedgecutForest::PredictAll(const Dataset& data) const {
  std::vector<int> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = Predict(data, r);
  }
  return out;
}

double HedgecutForest::Accuracy(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  const std::vector<int> preds = PredictAll(data);
  int64_t correct = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == data.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

HedgecutForest HedgecutForest::Clone() const {
  HedgecutForest out;
  out.store_ = store_;
  out.config_ = config_;
  out.trees_.reserve(trees_.size());
  for (const auto& tree : trees_) out.trees_.push_back(tree.Clone());
  return out;
}

bool HedgecutForest::ActiveStructureEquals(const HedgecutForest& other) const {
  if (trees_.size() != other.trees_.size()) return false;
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (!trees_[i].ActiveStructureEquals(other.trees_[i])) return false;
  }
  return true;
}

int64_t HedgecutForest::num_nodes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) total += tree.num_nodes();
  return total;
}

int64_t HedgecutForest::num_variant_nodes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) total += tree.num_variant_nodes();
  return total;
}

HedgecutUnlearnRemovalMethod::HedgecutUnlearnRemovalMethod(
    const HedgecutForest* model, const Dataset* test, GroupSpec group,
    FairnessMetric metric)
    : model_(model), test_(test), group_(group), metric_(metric) {}

ModelEval EvaluateHedgecut(const HedgecutForest& model, const Dataset& test,
                           const GroupSpec& group, FairnessMetric metric) {
  const std::vector<int> preds = model.PredictAll(test);
  ModelEval eval;
  eval.fairness = ComputeFairness(test, preds, group, metric);
  int64_t correct = 0;
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test.Label(r)) ++correct;
  }
  eval.accuracy = test.num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.num_rows());
  return eval;
}

Result<ModelEval> HedgecutUnlearnRemovalMethod::EvaluateWithout(
    const std::vector<RowId>& rows) {
  HedgecutForest what_if = model_->Clone();
  FUME_RETURN_NOT_OK(what_if.DeleteRows(rows));
  return EvaluateHedgecut(what_if, *test_, group_, metric_);
}

}  // namespace fume
