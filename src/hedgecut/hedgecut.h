// HedgecutForest: an extremely-randomized-trees (ERT) variant with
// low-latency unlearning in the spirit of HedgeCut (Schelter, Grafberger &
// Dunning, SIGMOD'21), the second tree-unlearning system the paper's §5.1
// discusses.
//
// Differences from DaRE (src/forest):
//   * Every split is chosen among a small set of fully random candidate
//     (attribute, threshold) pairs — keyed by the node path, so the
//     candidate set never depends on the data — and the best candidate by
//     Gini gain wins.
//   * At build time each node computes a robustness margin: the gain lead
//     of the winner over the runner-up. For non-robust nodes (lead below
//     the configured threshold) the tree ALSO builds and maintains the
//     runner-up's subtree pair ("split variants"). When a deletion flips
//     the winner to the runner-up, the maintained variant is swapped in —
//     no retraining pass at all, HedgeCut's headline trick.
//   * Deletions are still exact: subtree child keys are derived from the
//     candidate identity (not from the active/variant position), so a
//     swapped-in variant is bit-identical to what a scratch build of the
//     reduced data would produce. The test suite asserts prediction
//     equality with scratch retraining, as for DaRE.
//
// Simplification vs the original system (documented in DESIGN.md): the
// robustness margin is a plain gain-lead threshold rather than HedgeCut's
// deletion-budget bound, and only the single runner-up variant is kept.

#ifndef FUME_HEDGECUT_HEDGECUT_H_
#define FUME_HEDGECUT_HEDGECUT_H_

#include <memory>
#include <vector>

#include "core/removal_method.h"
#include "data/dataset.h"
#include "forest/training_store.h"
#include "util/result.h"

namespace fume {

struct HedgecutConfig {
  int num_trees = 20;
  int max_depth = 10;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Random candidate splits drawn per node.
  int num_candidates = 8;
  /// A winner whose Gini-gain lead over the runner-up is below this margin
  /// is non-robust: the runner-up's subtrees are built and maintained.
  double robustness_margin = 0.01;
  uint64_t seed = 42;
};

/// Work counters for one DeleteRows call.
struct HedgecutDeletionStats {
  int64_t nodes_visited = 0;
  int64_t variant_swaps = 0;      // winner flips served from a variant
  int64_t subtree_rebuilds = 0;   // winner flips that required retraining
  int64_t rows_retrained = 0;

  void Add(const HedgecutDeletionStats& other) {
    nodes_visited += other.nodes_visited;
    variant_swaps += other.variant_swaps;
    subtree_rebuilds += other.subtree_rebuilds;
    rows_retrained += other.rows_retrained;
  }
};

namespace hedgecut_internal {
struct Node;
}  // namespace hedgecut_internal

/// \brief One ERT tree with maintained split variants.
class HedgecutTree {
 public:
  HedgecutTree();
  ~HedgecutTree();
  HedgecutTree(HedgecutTree&&) noexcept;
  HedgecutTree& operator=(HedgecutTree&&) noexcept;

  static HedgecutTree Build(std::shared_ptr<const TrainingStore> store,
                            const std::vector<RowId>& rows, int tree_id,
                            const HedgecutConfig& config);

  void DeleteRows(const std::vector<RowId>& rows,
                  HedgecutDeletionStats* stats_out);

  double PredictProb(const Dataset& data, int64_t row) const;

  HedgecutTree Clone() const;

  /// Equality of the ACTIVE structure (splits, counts, leaf membership).
  /// Maintained variants are an internal cache and intentionally excluded:
  /// after deletions they may differ from a scratch build's variants even
  /// though the served model is identical.
  bool ActiveStructureEquals(const HedgecutTree& other) const;

  int64_t num_nodes() const;      // active structure only
  int64_t num_variant_nodes() const;

 private:
  std::shared_ptr<const TrainingStore> store_;
  HedgecutConfig config_;
  int tree_id_ = 0;
  std::unique_ptr<hedgecut_internal::Node> root_;
};

/// \brief The ensemble. API mirrors DareForest.
class HedgecutForest {
 public:
  static Result<HedgecutForest> Train(const Dataset& train,
                                      const HedgecutConfig& config);

  Status DeleteRows(const std::vector<RowId>& rows);

  double PredictProb(const Dataset& data, int64_t row) const;
  int Predict(const Dataset& data, int64_t row) const;
  std::vector<int> PredictAll(const Dataset& data) const;
  double Accuracy(const Dataset& data) const;

  HedgecutForest Clone() const;
  bool ActiveStructureEquals(const HedgecutForest& other) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  int64_t num_nodes() const;
  int64_t num_variant_nodes() const;
  const HedgecutDeletionStats& deletion_stats() const {
    return deletion_stats_;
  }
  const HedgecutConfig& config() const { return config_; }

 private:
  std::shared_ptr<TrainingStore> store_;
  HedgecutConfig config_;
  std::vector<HedgecutTree> trees_;
  HedgecutDeletionStats deletion_stats_;
};

/// RemovalMethod adapter: FUME over a HedgeCut-style model.
class HedgecutUnlearnRemovalMethod : public RemovalMethod {
 public:
  HedgecutUnlearnRemovalMethod(const HedgecutForest* model,
                               const Dataset* test, GroupSpec group,
                               FairnessMetric metric);

  Result<ModelEval> EvaluateWithout(const std::vector<RowId>& rows) override;
  const char* name() const override { return "hedgecut-unlearn"; }

 private:
  const HedgecutForest* model_;
  const Dataset* test_;
  GroupSpec group_;
  FairnessMetric metric_;
};

/// Evaluates a trained HedgeCut model on test data (fairness + accuracy).
ModelEval EvaluateHedgecut(const HedgecutForest& model, const Dataset& test,
                           const GroupSpec& group, FairnessMetric metric);

}  // namespace fume

#endif  // FUME_HEDGECUT_HEDGECUT_H_
