#include "repair/what_if.h"

#include <cmath>

#include "fairness/metrics.h"

namespace fume {

namespace {

ModelEval Evaluate(const DareForest& model, const Dataset& test,
                   const GroupSpec& group, FairnessMetric metric) {
  const std::vector<int> preds = model.PredictAll(test);
  ModelEval eval;
  eval.fairness = ComputeFairness(test, preds, group, metric);
  int64_t correct = 0;
  for (int64_t r = 0; r < test.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == test.Label(r)) ++correct;
  }
  eval.accuracy = test.num_rows() == 0
                      ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(test.num_rows());
  return eval;
}

double ParityReduction(const ModelEval& before, const ModelEval& after) {
  const double original = std::fabs(before.fairness);
  if (original == 0.0) return 0.0;
  return (original - std::fabs(after.fairness)) / original;
}

Status CheckSubset(const Predicate& subset) {
  if (subset.empty()) {
    return Status::Invalid("what-if interventions need a non-empty subset");
  }
  return Status::OK();
}

// Builds the dataset of `rows` from `train`, with labels rewritten by
// `policy`.
Dataset RelabeledRows(const Dataset& train, const std::vector<int32_t>& rows,
                      const GroupSpec& group, RelabelPolicy policy) {
  Dataset out(train.schema());
  std::vector<int32_t> codes(static_cast<size_t>(train.num_attributes()));
  for (int32_t r : rows) {
    for (int j = 0; j < train.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = train.Code(r, j);
    }
    int label = train.Label(r);
    switch (policy) {
      case RelabelPolicy::kFlipAll:
        label = 1 - label;
        break;
      case RelabelPolicy::kSetPositive:
        label = 1;
        break;
      case RelabelPolicy::kSetNegative:
        label = 0;
        break;
      case RelabelPolicy::kSetProtectedPositive:
        if (train.Code(r, group.sensitive_attr) != group.privileged_code) {
          label = 1;
        }
        break;
    }
    FUME_CHECK(out.AppendRow(codes, label).ok());
  }
  return out;
}

}  // namespace

const char* RelabelPolicyName(RelabelPolicy policy) {
  switch (policy) {
    case RelabelPolicy::kFlipAll:
      return "flip all labels";
    case RelabelPolicy::kSetPositive:
      return "set all favorable";
    case RelabelPolicy::kSetNegative:
      return "set all unfavorable";
    case RelabelPolicy::kSetProtectedPositive:
      return "set protected members favorable";
  }
  return "unknown";
}

Result<WhatIfResult> WhatIfRemove(const DareForest& model,
                                  const Dataset& train, const Dataset& test,
                                  const GroupSpec& group,
                                  FairnessMetric metric,
                                  const Predicate& subset) {
  FUME_RETURN_NOT_OK(CheckSubset(subset));
  WhatIfResult result;
  result.before = Evaluate(model, test, group, metric);
  const std::vector<int32_t> rows = subset.MatchingRows(train);
  result.rows_affected = static_cast<int64_t>(rows.size());

  DareForest what_if = model.Clone();
  FUME_RETURN_NOT_OK(
      what_if.DeleteRows(std::vector<RowId>(rows.begin(), rows.end())));
  result.after = Evaluate(what_if, test, group, metric);
  result.parity_reduction = ParityReduction(result.before, result.after);
  return result;
}

Result<WhatIfResult> WhatIfRelabel(const DareForest& model,
                                   const Dataset& train, const Dataset& test,
                                   const GroupSpec& group,
                                   FairnessMetric metric,
                                   const Predicate& subset,
                                   RelabelPolicy policy) {
  FUME_RETURN_NOT_OK(CheckSubset(subset));
  WhatIfResult result;
  result.before = Evaluate(model, test, group, metric);
  const std::vector<int32_t> rows = subset.MatchingRows(train);
  result.rows_affected = static_cast<int64_t>(rows.size());

  // Exactly equivalent to retraining on the relabeled data: unlearn the
  // original rows, then add them back with corrected labels.
  DareForest what_if = model.Clone();
  FUME_RETURN_NOT_OK(
      what_if.DeleteRows(std::vector<RowId>(rows.begin(), rows.end())));
  const Dataset relabeled = RelabeledRows(train, rows, group, policy);
  FUME_RETURN_NOT_OK(what_if.AddData(relabeled).status());
  result.after = Evaluate(what_if, test, group, metric);
  result.parity_reduction = ParityReduction(result.before, result.after);
  return result;
}

Result<WhatIfResult> WhatIfDuplicate(const DareForest& model,
                                     const Dataset& train,
                                     const Dataset& test,
                                     const GroupSpec& group,
                                     FairnessMetric metric,
                                     const Predicate& subset,
                                     int extra_copies) {
  FUME_RETURN_NOT_OK(CheckSubset(subset));
  if (extra_copies < 1) {
    return Status::Invalid("extra_copies must be >= 1");
  }
  WhatIfResult result;
  result.before = Evaluate(model, test, group, metric);
  const std::vector<int32_t> rows = subset.MatchingRows(train);
  result.rows_affected = static_cast<int64_t>(rows.size());

  Dataset copies(train.schema());
  std::vector<int32_t> codes(static_cast<size_t>(train.num_attributes()));
  for (int copy = 0; copy < extra_copies; ++copy) {
    for (int32_t r : rows) {
      for (int j = 0; j < train.num_attributes(); ++j) {
        codes[static_cast<size_t>(j)] = train.Code(r, j);
      }
      FUME_CHECK(copies.AppendRow(codes, train.Label(r)).ok());
    }
  }
  DareForest what_if = model.Clone();
  FUME_RETURN_NOT_OK(what_if.AddData(copies).status());
  result.after = Evaluate(what_if, test, group, metric);
  result.parity_reduction = ParityReduction(result.before, result.after);
  return result;
}

}  // namespace fume
