// What-if repair analyses. FUME's output is a subset a data steward should
// inspect (paper §1: "mislabeled instances in the unprivileged group,
// fixing which may improve the downstream model"). This module closes that
// loop: it evaluates candidate *fixes* of a subset — removal, relabeling,
// or reweighting — without retraining, by combining exact unlearning
// (DeleteRows) with exact incremental addition (AddData).

#ifndef FUME_REPAIR_WHAT_IF_H_
#define FUME_REPAIR_WHAT_IF_H_

#include "core/removal_method.h"
#include "subset/predicate.h"

namespace fume {

/// How a subset's labels are rewritten by WhatIfRelabel.
enum class RelabelPolicy {
  /// Flip every label in the subset.
  kFlipAll,
  /// Give every subset member the favorable label.
  kSetPositive,
  /// Give every subset member the unfavorable label.
  kSetNegative,
  /// Give the subset's *protected* members the favorable label (the classic
  /// "correct the under-labeled cohort" repair); privileged members keep
  /// their labels.
  kSetProtectedPositive,
};

const char* RelabelPolicyName(RelabelPolicy policy);

/// Outcome of one what-if intervention.
struct WhatIfResult {
  ModelEval before;
  ModelEval after;
  /// Fraction of |original bias| removed by the intervention (negative =
  /// the intervention makes bias worse).
  double parity_reduction = 0.0;
  /// Training rows the intervention touched.
  int64_t rows_affected = 0;
};

/// Evaluates removing the subset (the standard FUME counterfactual),
/// exposed here for side-by-side comparison with the repairs.
Result<WhatIfResult> WhatIfRemove(const DareForest& model,
                                  const Dataset& train, const Dataset& test,
                                  const GroupSpec& group,
                                  FairnessMetric metric,
                                  const Predicate& subset);

/// Evaluates rewriting the subset's labels per `policy`: the subset's rows
/// are exactly unlearned and re-added with new labels — equivalent to
/// retraining on the corrected data, at unlearning cost.
Result<WhatIfResult> WhatIfRelabel(const DareForest& model,
                                   const Dataset& train, const Dataset& test,
                                   const GroupSpec& group,
                                   FairnessMetric metric,
                                   const Predicate& subset,
                                   RelabelPolicy policy);

/// Evaluates upweighting the subset by adding `extra_copies` duplicates of
/// each member (a pre-processing-style reweighing repair).
Result<WhatIfResult> WhatIfDuplicate(const DareForest& model,
                                     const Dataset& train,
                                     const Dataset& test,
                                     const GroupSpec& group,
                                     FairnessMetric metric,
                                     const Predicate& subset,
                                     int extra_copies);

}  // namespace fume

#endif  // FUME_REPAIR_WHAT_IF_H_
