#include "obs/trace.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace fume {
namespace obs {

namespace {

constexpr int64_t kDefaultBufferCapacity = 1000000;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t dur_ns;    // complete events only
  uint64_t flow_id;  // flow events only
  char phase;        // 'X' complete, 's' flow start, 'f' flow finish
  int num_args;
  std::pair<const char*, int64_t> args[TraceSpan::kMaxArgs];
};

// Each thread appends to its own buffer; the global session keeps a
// shared_ptr to every buffer ever created so events survive thread exit.
// The per-buffer mutex is only ever contended by the exporter.
struct ThreadBuffer {
  std::mutex mu;
  uint32_t tid;
  std::vector<TraceEvent> events;
};

struct TraceSession {
  std::atomic<bool> enabled{false};
  std::atomic<int64_t> epoch_ns{0};
  std::atomic<int64_t> capacity{kDefaultBufferCapacity};
  std::atomic<uint64_t> next_flow_id{1};
  std::mutex mu;  // guards buffers (the vector, not the events)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<uint32_t> next_tid{0};
};

TraceSession& Session() {
  static TraceSession* session = new TraceSession();
  return *session;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceSession& s = Session();
    b->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// Appends `e` to the calling thread's buffer unless it is at capacity, in
// which case the event is dropped and counted in obs.trace.dropped. The
// counter pointer is cached function-local-static like every other hot
// call site in this repo.
void RecordEvent(const TraceEvent& e) {
  const int64_t capacity = Session().capacity.load(std::memory_order_relaxed);
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (static_cast<int64_t>(buffer.events.size()) >= capacity) {
    static Counter* dropped = GetCounter("obs.trace.dropped");
    dropped->Inc();
    return;
  }
  buffer.events.push_back(e);
}

void RecordFlowEvent(const char* name, uint64_t id, char phase) {
  if (!Session().enabled.load(std::memory_order_relaxed)) return;
  TraceEvent e;
  e.name = name;
  e.start_ns = NowNanos();
  e.dur_ns = 0;
  e.flow_id = id;
  e.phase = phase;
  e.num_args = 0;
  RecordEvent(e);
}

}  // namespace

bool TracingEnabled() {
  return Session().enabled.load(std::memory_order_relaxed);
}

void StartTracing() {
  ClearTrace();
  Session().epoch_ns.store(NowNanos(), std::memory_order_relaxed);
  Session().enabled.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  Session().enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  TraceSession& s = Session();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

void SetTraceBufferCapacity(int64_t max_events) {
  Session().capacity.store(
      max_events > 0 ? max_events : kDefaultBufferCapacity,
      std::memory_order_relaxed);
}

int64_t TraceBufferCapacity() {
  return Session().capacity.load(std::memory_order_relaxed);
}

uint64_t AllocateFlowIds(uint64_t count) {
  return Session().next_flow_id.fetch_add(count == 0 ? 1 : count,
                                          std::memory_order_relaxed);
}

void TraceFlowBegin(const char* name, uint64_t id) {
  RecordFlowEvent(name, id, 's');
}

void TraceFlowEnd(const char* name, uint64_t id) {
  RecordFlowEvent(name, id, 'f');
}

int64_t TraceEventCount() {
  TraceSession& s = Session();
  std::lock_guard<std::mutex> lock(s.mu);
  int64_t total = 0;
  for (auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += static_cast<int64_t>(buffer->events.size());
  }
  return total;
}

namespace {

void AppendMicros(int64_t ns, std::ostream& os) {
  // Microseconds with nanosecond precision, without float rounding.
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
     << static_cast<char>('0' + (ns % 100) / 10)
     << static_cast<char>('0' + ns % 10);
}

void AppendEvent(const TraceEvent& e, uint32_t tid, int64_t epoch_ns,
                 std::ostream& os) {
  os << "{\"ph\":\"" << e.phase << "\",\"name\":\"" << e.name
     << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
  AppendMicros(e.start_ns - epoch_ns, os);
  if (e.phase == 'X') {
    os << ",\"dur\":";
    AppendMicros(e.dur_ns, os);
  } else {
    // Flow events: matching ids connect an "s" on one thread to an "f" on
    // another; bp:"e" binds the finish to its enclosing span.
    os << ",\"cat\":\"flow\",\"id\":" << e.flow_id;
    if (e.phase == 'f') os << ",\"bp\":\"e\"";
  }
  if (e.num_args > 0) {
    os << ",\"args\":{";
    for (int i = 0; i < e.num_args; ++i) {
      if (i > 0) os << ',';
      os << '"' << e.args[i].first << "\":" << e.args[i].second;
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

void WriteTraceJson(std::ostream& os) {
  TraceSession& s = Session();
  const int64_t epoch_ns = s.epoch_ns.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mu);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (auto& buffer : s.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const TraceEvent& e : buffer->events) {
      if (!first) os << ',';
      first = false;
      AppendEvent(e, buffer->tid, epoch_ns, os);
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string TraceToJson() {
  std::ostringstream os;
  WriteTraceJson(os);
  return os.str();
}

bool WriteTraceJsonFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteTraceJson(out);
  return static_cast<bool>(out);
}

TraceSpan::TraceSpan(
    const char* name,
    std::initializer_list<std::pair<const char*, int64_t>> args)
    : name_(TracingEnabled() ? name : nullptr) {
  if (name_ == nullptr) return;
  for (const auto& arg : args) {
    if (num_args_ >= kMaxArgs) break;
    args_[num_args_++] = arg;
  }
  start_ns_ = NowNanos();
}

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (name_ == nullptr) return;
  for (int i = 0; i < num_args_; ++i) {
    if (args_[i].first == key) {
      args_[i].second = value;
      return;
    }
  }
  if (num_args_ < kMaxArgs) args_[num_args_++] = {key, value};
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  const int64_t end_ns = NowNanos();
  TraceEvent e;
  e.name = name_;
  e.start_ns = start_ns_;
  e.dur_ns = end_ns - start_ns_;
  e.flow_id = 0;
  e.phase = 'X';
  e.num_args = num_args_;
  for (int i = 0; i < num_args_; ++i) e.args[i] = args_[i];
  RecordEvent(e);
}

}  // namespace obs
}  // namespace fume
