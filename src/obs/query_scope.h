// Query-scoped cost attribution on top of the process-wide metrics
// registry (obs/metrics.h).
//
// A QueryScope is an RAII thread-local scope that captures, for one query
// (a FUME search, one stream op, one what-if evaluation...), the *deltas*
// of a declared set of counters/histograms plus wall time and thread-CPU
// time — while the same updates keep flowing into the cumulative global
// registry. The global registry answers "what has this process done"; a
// QueryScope answers "what did THIS request cost", which is the unit an
// admission controller or a per-tenant audit report reasons about.
//
// Mechanics: the scope installs itself as the calling thread's innermost
// hook (a thread-local pointer). Counter::Inc / Histogram::Record consult
// that pointer; tracked metrics add their delta into the scope (and into
// every enclosing scope — an outer scope's cost includes its inner
// scopes'), untracked ones fall through after a short pointer scan. When
// no scope is active the overhead is one thread-local load and a branch,
// preserving the "leave instrumentation permanently enabled" contract.
//
// Cross-thread attribution: util::ThreadPool captures the caller's active
// scope when a batch is published and attaches every participating worker
// to it for the duration of its chunk (internal::ScopeAttachGuard), so
// deltas accumulated inside BeginParallel/EndParallel regions land on the
// query that enqueued the work, and the workers' thread-CPU time is added
// to the query's cpu_seconds. Attribution never changes results: scopes
// only observe (top-k is byte-identical with scoping on or off, pinned by
// tests/query_scope_test.cc).
//
// Usage idiom (docs/observability.md):
//
//   obs::QueryScope scope("search");          // default tracked set
//   auto result = ExplainFairnessViolation(model, train, test, config);
//   obs::QueryCost cost = scope.Finish();
//   std::cout << cost.CompactString() << "\n";  // or cost.ToJson()

#ifndef FUME_OBS_QUERY_SCOPE_H_
#define FUME_OBS_QUERY_SCOPE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace fume {
namespace obs {

namespace internal {

/// Shared delta accumulator for one QueryScope. Workers attached through
/// the thread pool update it concurrently, so all deltas are relaxed
/// atomics; the owner reads them only after every ParallelFor it issued
/// has returned (the pool's completion barrier orders the writes).
struct ScopeHook {
  /// Upper bound on tracked metrics per scope; constructors drop extras.
  static constexpr int kMaxTracked = 48;

  int num_counters = 0;
  const Counter* counters[kMaxTracked] = {};
  std::atomic<int64_t> counter_deltas[kMaxTracked] = {};

  int num_histograms = 0;
  const Histogram* histograms[kMaxTracked] = {};
  std::atomic<int64_t> histogram_counts[kMaxTracked] = {};
  std::atomic<int64_t> histogram_sums[kMaxTracked] = {};

  /// Thread-CPU nanoseconds contributed by pool workers while attached
  /// (the owning thread's CPU is measured start-to-finish by QueryScope).
  std::atomic<int64_t> worker_cpu_ns{0};

  /// Enclosing scope on the owning thread (attribution chain).
  ScopeHook* parent = nullptr;
};

/// RAII attachment of a worker thread to a (possibly null) hook borrowed
/// from the enqueuing thread. Restores the worker's previous hook and
/// credits the worker's thread-CPU time to the hook chain on detach.
/// No-ops entirely when `hook` is null.
class ScopeAttachGuard {
 public:
  explicit ScopeAttachGuard(ScopeHook* hook);
  ~ScopeAttachGuard();

  ScopeAttachGuard(const ScopeAttachGuard&) = delete;
  ScopeAttachGuard& operator=(const ScopeAttachGuard&) = delete;

 private:
  ScopeHook* hook_;
  ScopeHook* saved_;
  int64_t cpu_start_ns_ = 0;
};

}  // namespace internal

/// One tracked metric's per-query delta.
struct QueryCounterDelta {
  std::string name;
  int64_t delta = 0;
};

struct QueryHistogramDelta {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
};

/// The per-query cost report a QueryScope produces.
struct QueryCost {
  std::string label;
  double wall_seconds = 0.0;
  /// Thread-CPU seconds: the owning thread from scope start to Finish plus
  /// every pool worker's CPU while attached to this query. Can exceed
  /// wall_seconds on a multi-threaded query.
  double cpu_seconds = 0.0;
  /// Deltas of every tracked counter/histogram, in declaration order
  /// (zeros included — consumers decide what to elide).
  std::vector<QueryCounterDelta> counters;
  std::vector<QueryHistogramDelta> histograms;

  /// Delta of a named tracked counter, or 0 when not tracked.
  int64_t CounterDelta(const std::string& name) const;

  /// {"label":...,"wall_us":...,"cpu_us":...,"counters":{name:delta,...},
  /// "histograms":{name:{"count":...,"sum":...},...}} — zero deltas are
  /// elided so event-log lines stay small.
  std::string ToJson() const;
  /// One human line: `wall 12.3ms cpu 18.0ms | name=delta ...` (nonzero
  /// deltas only), for CLI per-query reporting.
  std::string CompactString() const;
  /// Multi-line text form (one metric per line), for --query-cost.
  void PrintText(std::ostream& os) const;
};

/// \brief RAII query scope. See the file comment for semantics.
///
/// Scopes must be finished/destroyed in LIFO order per thread (they form
/// the attribution chain). Not copyable or movable: the registered hook
/// points into this object.
class QueryScope {
 public:
  /// Tracks DefaultCounters() and DefaultHistograms().
  explicit QueryScope(std::string label);
  /// Tracks an explicit set (names are registered on first use, exactly
  /// like GetCounter/GetHistogram). Extras beyond kMaxTracked are dropped.
  QueryScope(std::string label, const std::vector<std::string>& counter_names,
             const std::vector<std::string>& histogram_names = {});
  ~QueryScope();

  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// Detaches the scope and returns the cost report. Subsequent calls
  /// return the same report; the destructor finishes implicitly.
  QueryCost Finish();

  /// The standard cost set: search evaluations, per-rule pruning hits,
  /// rowset-cache traffic, unlearning work (rows deleted, subtrees
  /// retrained, rows retrained, CoW nodes copied), delta-rescoring work,
  /// lattice rowset provenance, pool dispatch, and stream apply work —
  /// the counters a serving admission controller would bill per query.
  static const std::vector<std::string>& DefaultCounters();
  /// Default tracked histograms (per-evaluation row-set sizes).
  static const std::vector<std::string>& DefaultHistograms();

 private:
  std::string label_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> histogram_names_;
  std::unique_ptr<internal::ScopeHook> hook_;
  int64_t wall_start_ns_ = 0;
  int64_t cpu_start_ns_ = 0;
  bool finished_ = false;
  QueryCost cost_;
};

}  // namespace obs
}  // namespace fume

#endif  // FUME_OBS_QUERY_SCOPE_H_
