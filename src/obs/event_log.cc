#include "obs/event_log.h"

#include <chrono>
#include <cstdio>

namespace fume {
namespace obs {

namespace {

int64_t UnixMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendEscaped(const std::string& s, std::ostream& os) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

EventLog::EventLog(const std::string& path) {
  if (!path.empty()) out_.open(path);
}

EventLog::Builder::Builder(EventLog* log, const std::string& event)
    : log_(log) {
  line_ << "\"event\":\"";
  AppendEscaped(event, line_);
  line_ << '"';
}

EventLog::Builder& EventLog::Builder::Field(const char* key,
                                            const std::string& value) {
  line_ << ",\"" << key << "\":\"";
  AppendEscaped(value, line_);
  line_ << '"';
  return *this;
}

EventLog::Builder& EventLog::Builder::Field(const char* key,
                                            const char* value) {
  return Field(key, std::string(value));
}

EventLog::Builder& EventLog::Builder::Field(const char* key, int64_t value) {
  line_ << ",\"" << key << "\":" << value;
  return *this;
}

EventLog::Builder& EventLog::Builder::Field(const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  line_ << ",\"" << key << "\":" << buf;
  return *this;
}

EventLog::Builder& EventLog::Builder::Field(const char* key, bool value) {
  line_ << ",\"" << key << "\":" << (value ? "true" : "false");
  return *this;
}

EventLog::Builder& EventLog::Builder::Field(const char* key,
                                            const QueryCost& cost) {
  line_ << ",\"" << key << "\":" << cost.ToJson();
  return *this;
}

void EventLog::Builder::Write() {
  if (log_ == nullptr) return;
  log_->WriteLine(line_.str());
  log_ = nullptr;
}

EventLog::Builder EventLog::Event(const std::string& event) {
  return Builder(ok() ? this : nullptr, event);
}

void EventLog::WriteLine(const std::string& body) {
  const int64_t ts_us = UnixMicros();
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  out_ << "{\"seq\":" << seq << ",\"ts_us\":" << ts_us << ',' << body
       << "}\n";
  out_.flush();
}

}  // namespace obs
}  // namespace fume
