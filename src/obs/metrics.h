// Process-wide metrics: named counters, gauges and log-scale histograms
// with lock-free hot paths. Instrumented code keeps a raw pointer to its
// metric (registration is a one-time, mutex-guarded lookup; the canonical
// idiom is a function-local static) and updates it with a single relaxed
// atomic operation, so leaving the counters permanently enabled costs one
// uncontended add per event. Snapshots serialize to plain text and JSON
// for `fume_cli --metrics-out` and the bench artifacts.
//
// Naming scheme (docs/observability.md): dotted lowercase paths,
// `<subsystem>.<object>.<event>`, e.g. `fume.prune.rule4_parent`,
// `forest.unlearn.subtrees_retrained`, `fume.rowset_cache.hit`.

#ifndef FUME_OBS_METRICS_H_
#define FUME_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fume {
namespace obs {

class Counter;
class Histogram;

namespace internal {

/// Per-query delta accumulator installed by obs::QueryScope
/// (obs/query_scope.h). The hot-path contract: when no scope is active on
/// the current thread the hook pointer is null and a metric update pays
/// exactly one thread-local load and a not-taken branch on top of its
/// relaxed atomic; when a scope is active, tracked metrics additionally
/// add their delta into the scope (untracked ones fall through after a
/// short pointer scan). Definition lives in query_scope.cc.
struct ScopeHook;

/// Innermost active scope of the current thread (null when none). Worker
/// threads borrow the caller's hook for the duration of a ThreadPool batch
/// via internal::ScopeAttachGuard.
extern thread_local ScopeHook* tls_scope;

void ScopeCounterAdd(ScopeHook* hook, const Counter* counter, int64_t n);
void ScopeHistogramRecord(ScopeHook* hook, const Histogram* histogram,
                          int64_t value);

}  // namespace internal

/// Monotonically increasing event count. All operations are lock-free.
class Counter {
 public:
  void Inc(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
    if (internal::ScopeHook* hook = internal::tls_scope) {
      internal::ScopeCounterAdd(hook, this, n);
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. a frontier size).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative integer samples. Bucket b holds
/// values whose bit width is b, i.e. [2^(b-1), 2^b - 1] (bucket 0 holds
/// value 0 and clamped negatives), so 64 buckets cover all of int64_t and
/// Record() is a shift plus one relaxed add.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(int64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
    if (internal::ScopeHook* hook = internal::tls_scope) {
      internal::ScopeHistogramRecord(hook, this, v < 0 ? 0 : v);
    }
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

  static int BucketIndex(int64_t v);
  /// Smallest value the bucket can hold (0 for bucket 0, else 2^(b-1)).
  static int64_t BucketLowerBound(int bucket);
  /// Largest value the bucket can hold (inclusive; 2^b - 1).
  static int64_t BucketUpperBound(int bucket);

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Point-in-time copy of one histogram's buckets (non-empty buckets only).
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  /// (inclusive upper bound, sample count) per non-empty bucket, ascending.
  std::vector<std::pair<int64_t, int64_t>> buckets;

  /// Inclusive upper bound of the bucket containing the q-quantile sample
  /// (q in [0, 1]); 0 when empty. The true sample is <= this bound and
  /// >= half of it — the guarantee the tests pin down.
  int64_t QuantileUpperBound(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Point-in-time copy of every metric in a registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of a named counter, or 0 when absent (convenience for tests).
  int64_t CounterValue(const std::string& name) const;

  /// `counter <name> <value>` / `histogram <name> count=... p50<=...` lines.
  void PrintText(std::ostream& os) const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// buckets:[{le,count}]}}} — stable key order (sorted by name).
  std::string ToJson() const;
};

/// \brief Thread-safe name -> metric registry.
///
/// Get*() registers on first use and afterwards returns the same pointer
/// (stable for the registry's lifetime; metrics are never deleted, Reset()
/// only zeroes them). A name denotes one metric kind for the lifetime of
/// the registry; Get*() with the wrong kind returns nullptr.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (pointers stay valid).
  void Reset();

  /// The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& Global();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Shorthands for the global registry, used at instrumentation sites:
///   static obs::Counter* hits = obs::GetCounter("fume.rowset_cache.hit");
///   hits->Inc();
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);

}  // namespace obs
}  // namespace fume

#endif  // FUME_OBS_METRICS_H_
