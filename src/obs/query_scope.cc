#include "obs/query_scope.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <sstream>

#include "util/check.h"

namespace fume {
namespace obs {

namespace internal {

thread_local ScopeHook* tls_scope = nullptr;

namespace {

int64_t WallNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 +
         static_cast<int64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

}  // namespace

void ScopeCounterAdd(ScopeHook* hook, const Counter* counter, int64_t n) {
  // The chain walk makes an outer scope's report include everything its
  // inner scopes attributed — the natural containment semantics when a
  // query issues sub-operations that are themselves scoped.
  for (ScopeHook* h = hook; h != nullptr; h = h->parent) {
    for (int i = 0; i < h->num_counters; ++i) {
      if (h->counters[i] == counter) {
        h->counter_deltas[i].fetch_add(n, std::memory_order_relaxed);
        break;
      }
    }
  }
}

void ScopeHistogramRecord(ScopeHook* hook, const Histogram* histogram,
                          int64_t value) {
  for (ScopeHook* h = hook; h != nullptr; h = h->parent) {
    for (int i = 0; i < h->num_histograms; ++i) {
      if (h->histograms[i] == histogram) {
        h->histogram_counts[i].fetch_add(1, std::memory_order_relaxed);
        h->histogram_sums[i].fetch_add(value, std::memory_order_relaxed);
        break;
      }
    }
  }
}

ScopeAttachGuard::ScopeAttachGuard(ScopeHook* hook)
    : hook_(hook), saved_(nullptr) {
  if (hook_ == nullptr) return;
  saved_ = tls_scope;
  tls_scope = hook_;
  cpu_start_ns_ = ThreadCpuNanos();
}

ScopeAttachGuard::~ScopeAttachGuard() {
  if (hook_ == nullptr) return;
  const int64_t cpu_ns = ThreadCpuNanos() - cpu_start_ns_;
  for (ScopeHook* h = hook_; h != nullptr; h = h->parent) {
    h->worker_cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
  }
  tls_scope = saved_;
}

}  // namespace internal

int64_t QueryCost::CounterDelta(const std::string& name) const {
  for (const QueryCounterDelta& c : counters) {
    if (c.name == name) return c.delta;
  }
  return 0;
}

namespace {

void AppendMicrosField(const char* key, double seconds, std::ostream& os) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.1f", key, seconds * 1e6);
  os << buf;
}

}  // namespace

std::string QueryCost::ToJson() const {
  std::ostringstream os;
  os << "{\"label\":\"" << label << "\",";
  AppendMicrosField("wall_us", wall_seconds, os);
  os << ',';
  AppendMicrosField("cpu_us", cpu_seconds, os);
  os << ",\"counters\":{";
  bool first = true;
  for (const QueryCounterDelta& c : counters) {
    if (c.delta == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << c.name << "\":" << c.delta;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const QueryHistogramDelta& h : histograms) {
    if (h.count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << h.name << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << '}';
  }
  os << "}}";
  return os.str();
}

std::string QueryCost::CompactString() const {
  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wall %.1fms cpu %.1fms",
                wall_seconds * 1e3, cpu_seconds * 1e3);
  os << buf;
  bool any = false;
  for (const QueryCounterDelta& c : counters) {
    if (c.delta == 0) continue;
    os << (any ? " " : " | ") << c.name << '=' << c.delta;
    any = true;
  }
  for (const QueryHistogramDelta& h : histograms) {
    if (h.count == 0) continue;
    os << (any ? " " : " | ") << h.name << "=" << h.sum << "/" << h.count;
    any = true;
  }
  return os.str();
}

void QueryCost::PrintText(std::ostream& os) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "query %s: wall %.3f ms, thread-cpu %.3f ms\n", label.c_str(),
                wall_seconds * 1e3, cpu_seconds * 1e3);
  os << buf;
  for (const QueryCounterDelta& c : counters) {
    if (c.delta != 0) os << "  " << c.name << " +" << c.delta << "\n";
  }
  for (const QueryHistogramDelta& h : histograms) {
    if (h.count != 0) {
      os << "  " << h.name << " count+" << h.count << " sum+" << h.sum << "\n";
    }
  }
}

const std::vector<std::string>& QueryScope::DefaultCounters() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "fume.search.evaluations",
      "fume.search.explored_subsets",
      "fume.prune.rule1_contradiction",
      "fume.prune.rule2_support_low",
      "fume.prune.rule2_support_high",
      "fume.prune.rule3_unexpanded",
      "fume.prune.rule4_parent",
      "fume.prune.rule5_nonpositive",
      "fume.rowset_cache.hit",
      "fume.rowset_cache.miss",
      "forest.unlearn.rows_deleted",
      "forest.unlearn.subtrees_retrained",
      "forest.unlearn.rows_retrained",
      "forest.unlearn.cow_nodes_copied",
      "forest.add.rows_added",
      "removal.unlearn.cow_rows_rescored",
      "lattice.rowset.derived",
      "lattice.rowset.scratch",
      "pool.jobs_dispatched",
      "stream.predcache.trees_rewalked",
      "stream.rows.inserted",
      "stream.rows.deleted",
  };
  return *names;
}

const std::vector<std::string>& QueryScope::DefaultHistograms() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "removal.unlearn.rows_per_evaluation",
  };
  return *names;
}

QueryScope::QueryScope(std::string label)
    : QueryScope(std::move(label), DefaultCounters(), DefaultHistograms()) {}

QueryScope::QueryScope(std::string label,
                       const std::vector<std::string>& counter_names,
                       const std::vector<std::string>& histogram_names)
    : label_(std::move(label)), hook_(new internal::ScopeHook()) {
  for (const std::string& name : counter_names) {
    if (hook_->num_counters >= internal::ScopeHook::kMaxTracked) break;
    Counter* counter = GetCounter(name);
    if (counter == nullptr) continue;  // name registered as another kind
    counter_names_.push_back(name);
    hook_->counters[hook_->num_counters++] = counter;
  }
  for (const std::string& name : histogram_names) {
    if (hook_->num_histograms >= internal::ScopeHook::kMaxTracked) break;
    Histogram* histogram = GetHistogram(name);
    if (histogram == nullptr) continue;
    histogram_names_.push_back(name);
    hook_->histograms[hook_->num_histograms++] = histogram;
  }
  hook_->parent = internal::tls_scope;
  internal::tls_scope = hook_.get();
  wall_start_ns_ = internal::WallNowNanos();
  cpu_start_ns_ = internal::ThreadCpuNanos();
}

QueryScope::~QueryScope() { Finish(); }

QueryCost QueryScope::Finish() {
  if (finished_) return cost_;
  finished_ = true;
  // LIFO discipline: this scope must still be the innermost on its owning
  // thread (Finish from a different thread or out of order would corrupt
  // the chain).
  FUME_CHECK(internal::tls_scope == hook_.get());
  const int64_t own_cpu_ns = internal::ThreadCpuNanos() - cpu_start_ns_;
  const int64_t wall_ns = internal::WallNowNanos() - wall_start_ns_;
  internal::tls_scope = hook_->parent;
  // Credit this scope's own-thread CPU to enclosing scopes too, mirroring
  // what a nested Counter::Inc does via the chain walk.
  for (internal::ScopeHook* h = hook_->parent; h != nullptr; h = h->parent) {
    h->worker_cpu_ns.fetch_add(own_cpu_ns, std::memory_order_relaxed);
  }

  cost_.label = label_;
  cost_.wall_seconds = static_cast<double>(wall_ns) * 1e-9;
  cost_.cpu_seconds =
      static_cast<double>(
          own_cpu_ns + hook_->worker_cpu_ns.load(std::memory_order_relaxed)) *
      1e-9;
  cost_.counters.reserve(counter_names_.size());
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    cost_.counters.push_back(
        {counter_names_[i],
         hook_->counter_deltas[i].load(std::memory_order_relaxed)});
  }
  cost_.histograms.reserve(histogram_names_.size());
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    cost_.histograms.push_back(
        {histogram_names_[i],
         hook_->histogram_counts[i].load(std::memory_order_relaxed),
         hook_->histogram_sums[i].load(std::memory_order_relaxed)});
  }
  return cost_;
}

}  // namespace obs
}  // namespace fume
