// Scoped trace spans exportable as Chrome trace-event JSON.
//
// A TraceSpan is an RAII scope: construction timestamps the start,
// destruction records one complete ("ph":"X") event into a per-thread
// buffer. Nesting falls out of ts/dur containment, which is how
// chrome://tracing and Perfetto reconstruct the span tree per thread.
//
// Tracing is off by default. A disabled TraceSpan costs one relaxed
// atomic load and a branch — no clock read, no allocation — so spans are
// left permanently compiled into the hot paths. Enable with
// StartTracing(), run the workload, then TraceToJson() /
// WriteTraceJsonFile() and load the file in chrome://tracing or
// https://ui.perfetto.dev.
//
// Span names (and arg keys) must be string literals or otherwise outlive
// the trace session: the buffer stores the pointer, not a copy.

#ifndef FUME_OBS_TRACE_H_
#define FUME_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <utility>

namespace fume {
namespace obs {

/// True between StartTracing() and StopTracing().
bool TracingEnabled();

/// Clears any previous trace and starts recording spans.
void StartTracing();

/// Stops recording. Already-recorded events stay available for export.
void StopTracing();

/// Drops all recorded events (implicit in StartTracing()).
void ClearTrace();

/// Number of events recorded so far (for tests / sanity checks).
int64_t TraceEventCount();

/// Caps each per-thread trace buffer at `max_events` (default 1,000,000 ≈
/// 80 MB across a busy pool). Once a thread's buffer is full, further
/// events on that thread are dropped and counted in the cumulative
/// `obs.trace.dropped` counter instead of growing memory without bound.
/// Applies to events recorded after the call; <= 0 restores the default.
void SetTraceBufferCapacity(int64_t max_events);
int64_t TraceBufferCapacity();

/// \name Flow events (cross-thread arrows)
/// Chrome trace-event flow semantics: a "s" (start) event recorded inside
/// an enclosing span on one thread and a matching-id "f" (finish, with
/// bp:"e") recorded inside a span on another thread make Perfetto draw an
/// arrow between the two spans. util::ThreadPool emits one flow per
/// (batch, worker) — begin at enqueue on the caller, end inside the
/// worker's `pool.worker` span — so a traced multi-threaded search shows
/// a connected span tree instead of disconnected per-worker islands.
/// All three no-op when tracing is disabled.
/// @{

/// Reserves `count` consecutive flow ids and returns the first (never 0).
uint64_t AllocateFlowIds(uint64_t count);
/// Records a flow start ("ph":"s") bound to the current thread's
/// innermost open span. `name` must outlive the trace session.
void TraceFlowBegin(const char* name, uint64_t id);
/// Records a flow finish ("ph":"f", "bp":"e") bound to the current
/// thread's innermost open span.
void TraceFlowEnd(const char* name, uint64_t id);
/// @}

/// Serializes the recorded events as `{"traceEvents":[...]}` — the JSON
/// object format accepted by chrome://tracing and Perfetto. Timestamps are
/// microseconds relative to StartTracing().
void WriteTraceJson(std::ostream& os);
std::string TraceToJson();

/// Writes TraceToJson() to a file; returns false on I/O failure.
bool WriteTraceJsonFile(const std::string& path);

/// \brief RAII timed span. Records nothing unless tracing is enabled at
/// construction time.
class TraceSpan {
 public:
  static constexpr int kMaxArgs = 4;

  explicit TraceSpan(const char* name) : TraceSpan(name, {}) {}

  /// Up to kMaxArgs integer annotations, rendered into the event's "args"
  /// object (e.g. {"level", 2}); extras are dropped.
  TraceSpan(const char* name,
            std::initializer_list<std::pair<const char*, int64_t>> args);

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches/overwrites an annotation after construction (e.g. a result
  /// count known only at scope exit). No-op when the span is disabled.
  void AddArg(const char* key, int64_t value);

 private:
  const char* name_;  // nullptr when tracing was off at construction
  int64_t start_ns_ = 0;
  int num_args_ = 0;
  std::pair<const char*, int64_t> args_[kMaxArgs];
};

}  // namespace obs
}  // namespace fume

#endif  // FUME_OBS_TRACE_H_
