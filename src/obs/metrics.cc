#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fume {
namespace obs {

namespace {

int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace

int Histogram::BucketIndex(int64_t v) {
  if (v <= 0) return 0;
  const int w = BitWidth(static_cast<uint64_t>(v));
  return std::min(w, kNumBuckets - 1);
}

int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return int64_t{1} << (bucket - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kNumBuckets - 1) return INT64_MAX;
  return (int64_t{1} << bucket) - 1;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

int64_t HistogramSnapshot::QuantileUpperBound(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; q = 0 means the minimum.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(count) + 0.5));
  int64_t seen = 0;
  for (const auto& [upper, n] : buckets) {
    seen += n;
    if (seen >= rank) return upper;
  }
  return buckets.back().first;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void MetricsSnapshot::PrintText(std::ostream& os) const {
  for (const auto& [name, value] : counters) {
    os << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, h] : histograms) {
    os << "histogram " << name << " count=" << h.count << " sum=" << h.sum
       << " p50<=" << h.QuantileUpperBound(0.5)
       << " p90<=" << h.QuantileUpperBound(0.9)
       << " p99<=" << h.QuantileUpperBound(0.99) << "\n";
  }
}

namespace {

// Metric names are restricted to [a-z0-9._-] by convention, but escape
// anyway so the output is always valid JSON.
void AppendJsonString(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

template <typename T, typename Fn>
void AppendJsonObject(const std::vector<std::pair<std::string, T>>& items,
                      std::ostream& os, Fn&& append_value) {
  os << '{';
  bool first = true;
  for (const auto& [name, value] : items) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(name, os);
    os << ':';
    append_value(value);
  }
  os << '}';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":";
  AppendJsonObject(counters, os, [&](int64_t v) { os << v; });
  os << ",\"gauges\":";
  AppendJsonObject(gauges, os, [&](int64_t v) { os << v; });
  os << ",\"histograms\":";
  AppendJsonObject(histograms, os, [&](const HistogramSnapshot& h) {
    // Quantile *upper bounds* (log2-bucket resolution, see
    // QuantileUpperBound) so JSON consumers need not re-derive them from
    // the raw buckets.
    os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << h.QuantileUpperBound(0.5)
       << ",\"p90\":" << h.QuantileUpperBound(0.9)
       << ",\"p99\":" << h.QuantileUpperBound(0.99) << ",\"buckets\":[";
    bool first = true;
    for (const auto& [upper, n] : h.buckets) {
      if (!first) os << ',';
      first = false;
      os << "{\"le\":" << upper << ",\"count\":" << n << "}";
    }
    os << "]}";
  });
  os << '}';
  return os.str();
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter: entry.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: entry.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(name, std::move(entry)).first;
  }
  return it->second.kind == kind ? &it->second : nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Entry* e = FindOrCreate(name, Kind::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Entry* e = FindOrCreate(name, Kind::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Entry* e = FindOrCreate(name, Kind::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters.emplace_back(name, entry.counter->Value());
        break;
      case Kind::kGauge:
        snapshot.gauges.emplace_back(name, entry.gauge->Value());
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.count = entry.histogram->Count();
        h.sum = entry.histogram->Sum();
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          const int64_t n =
              entry.histogram->buckets_[b].load(std::memory_order_relaxed);
          if (n > 0) {
            h.buckets.emplace_back(Histogram::BucketUpperBound(b), n);
          }
        }
        snapshot.histograms.emplace_back(name, std::move(h));
        break;
      }
    }
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->Reset(); break;
      case Kind::kGauge: entry.gauge->Reset(); break;
      case Kind::kHistogram: entry.histogram->Reset(); break;
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* GetCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}

Gauge* GetGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}

Histogram* GetHistogram(const std::string& name) {
  return MetricsRegistry::Global().GetHistogram(name);
}

}  // namespace obs
}  // namespace fume
