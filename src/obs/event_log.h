// Structured JSONL event log for operational timelines.
//
// Metrics (obs/metrics.h) aggregate; traces (obs/trace.h) profile one run
// under a viewer. The event log sits between them: an append-only file of
// one JSON object per line — one line per discrete operation the process
// performed (a FUME search, a stream op, a checkpoint) with that
// operation's QueryScope cost summary embedded. JSONL is greppable,
// tail-able, and trivially ingested by jq / pandas / log shippers, which
// is the access pattern an audit trail needs.
//
// Usage:
//
//   obs::EventLog log("events.jsonl");
//   log.Event("search")
//       .Field("dataset", path)
//       .Field("top_k", 5)
//       .Field("cost", scope.Finish())
//       .Write();
//
// Every line carries "seq" (per-log monotone sequence) and "ts_us"
// (wall-clock unix micros). Writes are mutex-serialized so concurrent
// emitters interleave whole lines, never fragments. A default-constructed
// or failed-to-open log swallows events (ok() reports which).

#ifndef FUME_OBS_EVENT_LOG_H_
#define FUME_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

#include "obs/query_scope.h"

namespace fume {
namespace obs {

class EventLog {
 public:
  /// Disabled sink: Event(...).Write() is a no-op, ok() is false.
  EventLog() = default;
  /// Opens `path` for writing (truncates any previous log). An empty path
  /// yields a disabled sink, so CLIs can construct one unconditionally
  /// from an optional --event-log flag.
  explicit EventLog(const std::string& path);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// True when the log is backed by a healthy output file.
  bool ok() const { return static_cast<bool>(out_) && out_.is_open(); }

  /// Number of lines written so far (for tests).
  int64_t lines_written() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// \brief One pending line, filled field-by-field, emitted by Write().
  ///
  /// Field ordering in the output matches call order, after the standard
  /// "seq"/"ts_us"/"event" prefix. Keys must be plain identifiers (they
  /// are not escaped); string values are JSON-escaped.
  class Builder {
   public:
    Builder(Builder&&) = default;

    Builder& Field(const char* key, const std::string& value);
    Builder& Field(const char* key, const char* value);
    Builder& Field(const char* key, int64_t value);
    Builder& Field(const char* key, int value) {
      return Field(key, static_cast<int64_t>(value));
    }
    Builder& Field(const char* key, size_t value) {
      return Field(key, static_cast<int64_t>(value));
    }
    Builder& Field(const char* key, double value);
    Builder& Field(const char* key, bool value);
    /// Embeds the cost report as a nested object (QueryCost::ToJson).
    Builder& Field(const char* key, const QueryCost& cost);

    /// Appends the line (with trailing '\n') and flushes. Call exactly
    /// once; a Builder dropped without Write() emits nothing.
    void Write();

   private:
    friend class EventLog;
    Builder(EventLog* log, const std::string& event);

    EventLog* log_;  // nullptr once written or when the log is disabled
    std::ostringstream line_;
  };

  /// Starts a line with `"event":"<event>"`.
  Builder Event(const std::string& event);

 private:
  friend class Builder;
  void WriteLine(const std::string& body);

  std::ofstream out_;
  std::mutex mu_;  // serializes WriteLine
  std::atomic<int64_t> seq_{0};
};

}  // namespace obs
}  // namespace fume

#endif  // FUME_OBS_EVENT_LOG_H_
