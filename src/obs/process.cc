#include "obs/process.h"

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fume {
namespace obs {

int64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<int64_t>(usage.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

void SetProcessGauges() {
  static Gauge* rss = GetGauge("proc.rss_peak_kb");
  rss->Set(PeakRssKb());
}

}  // namespace obs
}  // namespace fume
