// Process-level resource gauges.
//
// Counters and histograms in this registry are all incremental; peak RSS
// is a property of the process the kernel tracks for us. These helpers
// sample it on demand into the registry so metrics exports (CLI --metrics,
// bench_artifacts/*.metrics.json) carry the memory context of the run —
// call SetProcessGauges() immediately before snapshotting.

#ifndef FUME_OBS_PROCESS_H_
#define FUME_OBS_PROCESS_H_

#include <cstdint>

namespace fume {
namespace obs {

/// Peak resident set size of this process in kilobytes
/// (getrusage(RUSAGE_SELF).ru_maxrss on Linux), or 0 when unavailable.
int64_t PeakRssKb();

/// Samples PeakRssKb() into the `proc.rss_peak_kb` gauge.
void SetProcessGauges();

}  // namespace obs
}  // namespace fume

#endif  // FUME_OBS_PROCESS_H_
