// Binary serialization of trained DaRE forests. The saved artifact contains
// the training snapshot, the configuration and every node's cached
// statistics, so a loaded forest supports further exact unlearning and
// addition — an audit can train once and debug many times.
//
// Format (little-endian, version-tagged): magic "FUMEDARE", u32 version,
// config block, training store block, then each tree pre-order.

#ifndef FUME_FOREST_SERIALIZE_H_
#define FUME_FOREST_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "forest/forest.h"
#include "util/result.h"

namespace fume {

Status SaveForest(const DareForest& forest, std::ostream& out);
Result<DareForest> LoadForest(std::istream& in);

Status SaveForestToFile(const DareForest& forest, const std::string& path);
Result<DareForest> LoadForestFromFile(const std::string& path);

}  // namespace fume

#endif  // FUME_FOREST_SERIALIZE_H_
