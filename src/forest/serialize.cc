#include "forest/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace fume {

namespace {

constexpr char kMagic[8] = {'F', 'U', 'M', 'E', 'D', 'A', 'R', 'E'};
// Version 2 appends the forest's DeletionStats to the config block, so the
// unlearning work counters survive a save/load round trip. Version 1 files
// (no stats block) still load, with zeroed counters.
constexpr uint32_t kVersion = 2;

// ---- primitive writers/readers (little-endian native assumed; the format
// is an internal artifact, not a cross-platform interchange format).

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  WritePod<uint64_t>(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v, uint64_t max_size) {
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > max_size) return false;  // corrupt / hostile input
  v->resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(size * sizeof(T)));
  }
  return static_cast<bool>(in);
}

// Sanity bound for any vector in the file (1 billion elements).
constexpr uint64_t kMaxVec = 1ull << 30;

void WriteNode(std::ostream& out, const TreeNode* node) {
  WritePod<uint8_t>(out, node->is_leaf() ? 1 : 0);
  WritePod<int64_t>(out, node->count);
  WritePod<int64_t>(out, node->pos);
  if (node->is_leaf()) {
    WriteVec(out, node->rows);
    return;
  }
  WritePod<int32_t>(out, node->attr);
  WritePod<int32_t>(out, node->threshold);
  WritePod<uint8_t>(out, node->is_random ? 1 : 0);
  WriteVec(out, node->stats.cand_attrs);
  // The on-disk format predates the flat interleaved histogram buffer and
  // stays per-attribute (count vector, pos vector) pairs — de-interleave at
  // this boundary so old files keep loading byte-for-byte.
  WritePod<uint64_t>(out, node->stats.cand_attrs.size());
  for (size_t i = 0; i < node->stats.cand_attrs.size(); ++i) {
    const int64_t* h = node->stats.HistRow(i);
    const size_t card = static_cast<size_t>(node->stats.HistCard(i));
    std::vector<int64_t> hc(card), hp(card);
    for (size_t v = 0; v < card; ++v) {
      hc[v] = h[2 * v];
      hp[v] = h[2 * v + 1];
    }
    WriteVec(out, hc);
    WriteVec(out, hp);
  }
  WriteNode(out, node->left.get());
  WriteNode(out, node->right.get());
}

Result<std::shared_ptr<TreeNode>> ReadNode(std::istream& in, int depth) {
  if (depth > 64) return Status::IOError("forest file: tree too deep");
  auto node = std::make_shared<TreeNode>();
  uint8_t is_leaf = 0;
  if (!ReadPod(in, &is_leaf) || !ReadPod(in, &node->count) ||
      !ReadPod(in, &node->pos)) {
    return Status::IOError("forest file: truncated node header");
  }
  if (is_leaf != 0) {
    if (!ReadVec(in, &node->rows, kMaxVec)) {
      return Status::IOError("forest file: truncated leaf rows");
    }
    return node;
  }
  uint8_t is_random = 0;
  if (!ReadPod(in, &node->attr) || !ReadPod(in, &node->threshold) ||
      !ReadPod(in, &is_random)) {
    return Status::IOError("forest file: truncated split record");
  }
  node->is_random = is_random != 0;
  if (!ReadVec(in, &node->stats.cand_attrs, kMaxVec)) {
    return Status::IOError("forest file: truncated candidate attrs");
  }
  uint64_t num_hists = 0;
  if (!ReadPod(in, &num_hists) || num_hists != node->stats.cand_attrs.size()) {
    return Status::IOError("forest file: histogram count mismatch");
  }
  node->stats.hist_offsets.assign(num_hists + 1, 0);
  node->stats.hist.clear();
  std::vector<int64_t> hc, hp;
  for (uint64_t i = 0; i < num_hists; ++i) {
    if (!ReadVec(in, &hc, kMaxVec) || !ReadVec(in, &hp, kMaxVec) ||
        hc.size() != hp.size()) {
      return Status::IOError("forest file: truncated histograms");
    }
    node->stats.hist_offsets[i + 1] =
        node->stats.hist_offsets[i] + static_cast<int32_t>(hc.size());
    for (size_t v = 0; v < hc.size(); ++v) {
      node->stats.hist.push_back(hc[v]);
      node->stats.hist.push_back(hp[v]);
    }
  }
  node->stats.count = node->count;
  node->stats.pos = node->pos;
  FUME_ASSIGN_OR_RETURN(node->left, ReadNode(in, depth + 1));
  FUME_ASSIGN_OR_RETURN(node->right, ReadNode(in, depth + 1));
  return node;
}

}  // namespace

Status SaveForest(const DareForest& forest, std::ostream& out) {
  // No tag escapes a flush boundary (DESIGN.md §6 invariant 9): a lazily
  // deferred forest is flushed before a single byte is written, so saved
  // models — and every checkpoint built on this — are always exact. The
  // CHECK is belt-and-braces for forests mutated concurrently (illegal).
  forest.EnsureFlushed();
  FUME_CHECK(!forest.HasLazyTags());
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, kVersion);

  // Config block.
  const ForestConfig& config = forest.config();
  WritePod<int32_t>(out, config.num_trees);
  WritePod<int32_t>(out, config.max_depth);
  WritePod<int32_t>(out, config.random_depth);
  WritePod<int32_t>(out, config.min_samples_split);
  WritePod<int32_t>(out, config.min_samples_leaf);
  WritePod<int32_t>(out, config.num_candidate_attrs);
  WritePod<uint8_t>(out,
                    config.threshold_mode == ThresholdMode::kExact ? 0 : 1);
  WritePod<int32_t>(out, config.num_sampled_thresholds);
  WritePod<uint64_t>(out, config.seed);

  // Unlearning work counters (v2+).
  const DeletionStats& stats = forest.deletion_stats();
  WritePod<int64_t>(out, stats.nodes_visited);
  WritePod<int64_t>(out, stats.nodes_updated);
  WritePod<int64_t>(out, stats.subtrees_retrained);
  WritePod<int64_t>(out, stats.rows_retrained);
  WritePod<int64_t>(out, stats.leaves_updated);

  // Training store block.
  const TrainingStore& store = forest.store();
  const int p = store.num_attrs();
  std::vector<int32_t> cards(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) cards[static_cast<size_t>(j)] = store.cardinality(j);
  WriteVec(out, cards);
  WritePod<int64_t>(out, store.num_rows());
  for (RowId r = 0; r < store.num_rows(); ++r) {
    for (int j = 0; j < p; ++j) WritePod<int32_t>(out, store.code(r, j));
  }
  for (RowId r = 0; r < store.num_rows(); ++r) {
    WritePod<uint8_t>(out, static_cast<uint8_t>(store.label(r)));
  }

  // Trees.
  WritePod<int32_t>(out, forest.num_trees());
  for (int t = 0; t < forest.num_trees(); ++t) {
    WritePod<int32_t>(out, forest.tree(t).tree_id());
    const TreeNode* root = forest.tree(t).root();
    WritePod<uint8_t>(out, root != nullptr ? 1 : 0);
    if (root != nullptr) WriteNode(out, root);
  }
  if (!out) return Status::IOError("forest write failed");
  return Status::OK();
}

Result<DareForest> LoadForest(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("not a FUME forest file (bad magic)");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version < 1 || version > kVersion) {
    return Status::IOError("unsupported forest file version");
  }

  ForestConfig config;
  uint8_t mode = 0;
  if (!ReadPod(in, &config.num_trees) || !ReadPod(in, &config.max_depth) ||
      !ReadPod(in, &config.random_depth) ||
      !ReadPod(in, &config.min_samples_split) ||
      !ReadPod(in, &config.min_samples_leaf) ||
      !ReadPod(in, &config.num_candidate_attrs) || !ReadPod(in, &mode) ||
      !ReadPod(in, &config.num_sampled_thresholds) ||
      !ReadPod(in, &config.seed)) {
    return Status::IOError("forest file: truncated config block");
  }
  config.threshold_mode =
      mode == 0 ? ThresholdMode::kExact : ThresholdMode::kSampled;

  DeletionStats stats;
  if (version >= 2) {
    if (!ReadPod(in, &stats.nodes_visited) ||
        !ReadPod(in, &stats.nodes_updated) ||
        !ReadPod(in, &stats.subtrees_retrained) ||
        !ReadPod(in, &stats.rows_retrained) ||
        !ReadPod(in, &stats.leaves_updated)) {
      return Status::IOError("forest file: truncated deletion-stats block");
    }
  }

  std::vector<int32_t> cards;
  if (!ReadVec(in, &cards, kMaxVec) || cards.empty()) {
    return Status::IOError("forest file: bad cardinality block");
  }
  int64_t num_rows = 0;
  if (!ReadPod(in, &num_rows) || num_rows < 0 ||
      num_rows > static_cast<int64_t>(kMaxVec)) {
    return Status::IOError("forest file: bad row count");
  }
  std::vector<int32_t> codes(static_cast<size_t>(num_rows) * cards.size());
  if (!codes.empty()) {
    in.read(reinterpret_cast<char*>(codes.data()),
            static_cast<std::streamsize>(codes.size() * sizeof(int32_t)));
  }
  std::vector<uint8_t> labels(static_cast<size_t>(num_rows));
  if (!labels.empty()) {
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(labels.size()));
  }
  if (!in) return Status::IOError("forest file: truncated store block");
  auto store = TrainingStore::FromParts(std::move(cards), std::move(codes),
                                        std::move(labels));

  int32_t num_trees = 0;
  if (!ReadPod(in, &num_trees) || num_trees < 0 || num_trees > 1000000) {
    return Status::IOError("forest file: bad tree count");
  }
  std::vector<DareTree> trees;
  trees.reserve(static_cast<size_t>(num_trees));
  for (int32_t t = 0; t < num_trees; ++t) {
    int32_t tree_id = 0;
    uint8_t has_root = 0;
    if (!ReadPod(in, &tree_id) || !ReadPod(in, &has_root)) {
      return Status::IOError("forest file: truncated tree header");
    }
    std::shared_ptr<TreeNode> root;
    if (has_root != 0) {
      FUME_ASSIGN_OR_RETURN(root, ReadNode(in, 0));
    }
    trees.push_back(
        DareTree::FromParts(store, config, tree_id, std::move(root)));
  }
  DareForest forest =
      DareForest::FromParts(std::move(store), config, std::move(trees), stats);
  if (!forest.ValidateStats()) {
    return Status::IOError("forest file: cached statistics fail validation");
  }
  return forest;
}

Status SaveForestToFile(const DareForest& forest, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return SaveForest(forest, out);
}

Result<DareForest> LoadForestFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return LoadForest(in);
}

}  // namespace fume
