#include "forest/arena.h"

#include <limits>

#include "forest/tree.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace fume {

namespace {

// Rows descended per inner-loop block. Lanes advance in lockstep one level
// per pass, so each node array line is touched once per block instead of
// once per row, and the (independent) lane loads pipeline.
constexpr int kLanes = 8;

std::atomic<int64_t> g_arena_bytes{0};

void AddLiveBytes(int64_t delta) {
  static obs::Gauge* gauge = obs::GetGauge("forest.arena.bytes");
  gauge->Set(g_arena_bytes.fetch_add(delta, std::memory_order_relaxed) +
             delta);
}

double LeafProb(const TreeNode* n) {
  return n->count == 0
             ? 0.5
             : static_cast<double>(n->pos) / static_cast<double>(n->count);
}

}  // namespace

namespace arena_internal {

uint64_t NextGeneration() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

int64_t LiveArenaBytes() {
  return g_arena_bytes.load(std::memory_order_relaxed);
}

}  // namespace arena_internal

TreeArena::~TreeArena() { AddLiveBytes(-bytes_); }

int32_t TreeArena::AddSlot() {
  const int32_t id = static_cast<int32_t>(child_.size());
  attr_.push_back(0);
  threshold_.push_back(std::numeric_limits<int32_t>::max());
  child_.push_back(id);
  prob_.push_back(0.5);
  node_.push_back(nullptr);
  return id;
}

void TreeArena::CompileNode(const TreeNode* n, int32_t slot, int depth) {
  node_[static_cast<size_t>(slot)] = n;
  if (n->is_leaf()) {
    // AddSlot already parked the slot on itself (child == self, threshold
    // INT32_MAX); only the payload needs filling.
    prob_[static_cast<size_t>(slot)] = LeafProb(n);
    if (depth > depth_) depth_ = depth;
    return;
  }
  attr_[static_cast<size_t>(slot)] = n->attr;
  threshold_[static_cast<size_t>(slot)] = n->threshold;
  const int32_t left = AddSlot();
  AddSlot();
  child_[static_cast<size_t>(slot)] = left;
  CompileNode(n->left.get(), left, depth + 1);
  CompileNode(n->right.get(), left + 1, depth + 1);
}

std::shared_ptr<const TreeArena> TreeArena::Compile(const TreeNode* root,
                                                    uint64_t generation,
                                                    int64_t reserve_hint) {
  static obs::Counter* compiles = obs::GetCounter("forest.arena.compile");
  compiles->Inc();
  std::shared_ptr<TreeArena> arena(new TreeArena());
  arena->generation_ = generation;
  arena->source_root_ = root;
  if (reserve_hint > 0) {
    const size_t hint = static_cast<size_t>(reserve_hint);
    arena->attr_.reserve(hint);
    arena->threshold_.reserve(hint);
    arena->child_.reserve(hint);
    arena->prob_.reserve(hint);
    arena->node_.reserve(hint);
  }
  const int32_t root_slot = arena->AddSlot();
  if (root == nullptr || root->count == 0) {
    // PredictProb answers 0.5 before descending an absent or emptied tree;
    // a one-slot self-parked leaf reproduces that (node_ keeps the root
    // pointer so cached-leaf identity matches the pointer walk).
    arena->node_[0] = root;
  } else {
    arena->CompileNode(root, root_slot, 0);
  }
  arena->bytes_ = static_cast<int64_t>(
      arena->attr_.capacity() * sizeof(int32_t) +
      arena->threshold_.capacity() * sizeof(int32_t) +
      arena->child_.capacity() * sizeof(int32_t) +
      arena->prob_.capacity() * sizeof(double) +
      arena->node_.capacity() * sizeof(const TreeNode*) + sizeof(TreeArena));
  AddLiveBytes(arena->bytes_);
  return arena;
}

template <typename Emit>
void TreeArena::Walk(const int32_t* codes, int num_attrs, int64_t n_rows,
                     Emit&& emit) const {
  FUME_DCHECK(num_attrs > 0);
  const int32_t* const attr = attr_.data();
  const int32_t* const thr = threshold_.data();
  const int32_t* const child = child_.data();
  const int steps = depth_;
  int64_t r = 0;
  for (; r + kLanes <= n_rows; r += kLanes) {
    const int32_t* rows[kLanes];
    int32_t idx[kLanes];
    for (int b = 0; b < kLanes; ++b) {
      rows[b] = codes + (r + b) * num_attrs;
      idx[b] = 0;
    }
    for (int d = 0; d < steps; ++d) {
      for (int b = 0; b < kLanes; ++b) {
        const int32_t i = idx[b];
        idx[b] = child[i] + static_cast<int32_t>(rows[b][attr[i]] > thr[i]);
      }
    }
    for (int b = 0; b < kLanes; ++b) emit(r + b, idx[b]);
  }
  for (; r < n_rows; ++r) {
    const int32_t* row = codes + r * num_attrs;
    int32_t i = 0;
    while (child[i] != i) {
      i = child[i] + static_cast<int32_t>(row[attr[i]] > thr[i]);
    }
    emit(r, i);
  }
}

void TreeArena::AccumulateProbs(const int32_t* codes, int num_attrs,
                                int64_t n_rows, double* sums) const {
  const double* const prob = prob_.data();
  Walk(codes, num_attrs, n_rows,
       [&](int64_t row, int32_t leaf) { sums[row] += prob[leaf]; });
}

void TreeArena::PredictProbs(const int32_t* codes, int num_attrs,
                             int64_t n_rows, double* out) const {
  const double* const prob = prob_.data();
  Walk(codes, num_attrs, n_rows,
       [&](int64_t row, int32_t leaf) { out[row] = prob[leaf]; });
}

void TreeArena::WalkLeaves(const int32_t* codes, int num_attrs, int64_t n_rows,
                           const TreeNode** leaves, double* probs) const {
  const double* const prob = prob_.data();
  const TreeNode* const* const node = node_.data();
  Walk(codes, num_attrs, n_rows, [&](int64_t row, int32_t leaf) {
    leaves[row] = node[leaf];
    probs[row] = prob[leaf];
  });
}

}  // namespace fume
