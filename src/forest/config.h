// Configuration for DaRE random forests (Data Removal-Enabled Random
// Forests, Brophy & Lowd ICML'21), the unlearning substrate of FUME.

#ifndef FUME_FOREST_CONFIG_H_
#define FUME_FOREST_CONFIG_H_

#include <cstdint>

namespace fume {

/// How candidate split thresholds are enumerated at greedy nodes.
enum class ThresholdMode {
  /// Every inter-bin threshold is a candidate. Slightly slower builds but
  /// the strongest unlearning guarantee (structural equality with scratch
  /// retraining; see DESIGN.md §2).
  kExact,
  /// k' thresholds sampled per candidate attribute, keyed by the node path
  /// (data-independent, as in the DaRE paper). Faster on high-cardinality
  /// attributes; still exactly unlearnable because the candidate set never
  /// depends on the data.
  kSampled,
};

struct ForestConfig {
  /// Number of trees in the ensemble.
  int num_trees = 20;
  /// Maximum tree depth (root has depth 0).
  int max_depth = 10;
  /// Levels [0, random_depth) use data-independent random splits — the DaRE
  /// trick that makes deletions rarely retrain the expensive top of a tree.
  int random_depth = 2;
  /// A node with fewer instances becomes a leaf.
  int min_samples_split = 2;
  /// Both children of a valid split must hold at least this many instances.
  int min_samples_leaf = 1;
  /// Candidate attributes considered per greedy node (p~ in the paper);
  /// 0 means ceil(sqrt(p)).
  int num_candidate_attrs = 0;
  ThresholdMode threshold_mode = ThresholdMode::kExact;
  /// k': thresholds sampled per attribute in kSampled mode.
  int num_sampled_thresholds = 8;
  uint64_t seed = 42;
  /// Run deletions/additions through the allocation-free batched kernel
  /// (epoch-stamped DeletionScratch, columnar NodeStats::RemoveRows,
  /// in-place route partitioning). false restores the per-row baseline —
  /// byte-identical results, kept for exactness tests and the
  /// bench_unlearn_kernel comparison. Not part of the serialized model
  /// (a runtime execution knob, not model state).
  bool batched_unlearn_kernel = true;
  /// Route batch prediction (PredictProbAll/PredictAll and the test-set
  /// prediction cache's tree walks) through per-tree flat SoA arenas —
  /// compiled lazily from the CoW node graph, invalidated by generation
  /// stamp, traversed with branch-light index arithmetic. false restores
  /// the pointer walk everywhere. Results are byte-identical either way
  /// (FUME_ARENA_VERIFY builds cross-check every call). Like
  /// batched_unlearn_kernel, a runtime execution knob — not part of the
  /// serialized model.
  bool arena_traversal = true;
  /// Defer trigger-subtree retrains (DynFrs-style lazy tags): a deletion
  /// that flips a split decision appends the doomed rows to a per-node
  /// LazyTag instead of rebuilding, keeping ancestor histograms exact, and
  /// the rebuild happens on the first query descent / FlushAll / budget
  /// overflow. Requires batched_unlearn_kernel. Once flushed the forest is
  /// byte-identical to the eager kernel on the same op sequence (DESIGN.md
  /// §6 invariant 9); DeletionStats deliberately differ (lazy does less
  /// work). Runtime execution knob — not part of the serialized model.
  bool lazy_unlearn = false;
  /// Staleness budget: DeleteRows auto-flushes the whole forest when the
  /// pending doomed-row count (resp. tag count) across trees exceeds this.
  int64_t max_lazy_rows = 4096;
  int64_t max_lazy_nodes = 512;
};

/// Counters describing the work done by one DeleteRows call; used by the
/// ablation bench and the complexity discussion in the paper's §5.1.
struct DeletionStats {
  int64_t nodes_visited = 0;
  int64_t nodes_updated = 0;     // stats decremented in place
  int64_t subtrees_retrained = 0;
  int64_t rows_retrained = 0;    // instances gathered into rebuilds
  int64_t leaves_updated = 0;
  // Nodes replaced by a private shallow copy (CoW unshare) because a live
  // clone still referenced them. Non-zero means the op changed node
  // addresses, so caches keyed on node identity must re-walk this tree.
  int64_t nodes_copied = 0;

  void Add(const DeletionStats& other) {
    nodes_visited += other.nodes_visited;
    nodes_updated += other.nodes_updated;
    subtrees_retrained += other.subtrees_retrained;
    rows_retrained += other.rows_retrained;
    leaves_updated += other.leaves_updated;
    nodes_copied += other.nodes_copied;
  }

  friend bool operator==(const DeletionStats& a, const DeletionStats& b) {
    return a.nodes_visited == b.nodes_visited &&
           a.nodes_updated == b.nodes_updated &&
           a.subtrees_retrained == b.subtrees_retrained &&
           a.rows_retrained == b.rows_retrained &&
           a.leaves_updated == b.leaves_updated &&
           a.nodes_copied == b.nodes_copied;
  }

  /// Field count guard. Add()/operator==/the serializer's stats block and
  /// the stats_test field sweep all enumerate the fields by hand; a new
  /// counter that misses one of those paths would merge/compare/serialize
  /// silently wrong. Adding a field trips this assert — bump the count
  /// AFTER extending every enumeration (see deletion_stats_test.cc).
  static constexpr int kNumFields = 6;
};
static_assert(sizeof(DeletionStats) == DeletionStats::kNumFields * sizeof(int64_t),
              "DeletionStats gained or lost a field: update Add(), "
              "operator==, serialize.cc's stats block and "
              "deletion_stats_test.cc, then adjust kNumFields");

}  // namespace fume

#endif  // FUME_FOREST_CONFIG_H_
