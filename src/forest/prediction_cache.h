// Per-tree test-set prediction cache.
//
// A DaRE op (add/delete) leaves most trees structurally intact: existing
// nodes keep their addresses and their split decisions; the only events
// that free nodes are counted subtree retrains (DeletionStats::
// subtrees_retrained — a split decision flipped and `*node =
// std::move(*rebuilt)` replaced the subtree, dangling its descendants).
// This cache exploits that: it remembers, per tree, the node each test row
// lands in. After an op it re-walks a tree from the root only if that tree
// retrained a subtree; otherwise it *resumes* each row's descent from the
// cached node — a no-op when the node is still a leaf (deletion never
// grows leaves), and a short walk into the grown subtree when an insert
// rebuilt the leaf into a split in place (same address, fresh children).
//
// ScoreWhatIf() serves a second consumer: FUME's what-if evaluations. A
// copy-on-write clone of the base forest shares every node it did not
// mutate, so diffing base vs. clone by node identity finds the changed
// regions without visiting them, and only test rows routed into a changed
// region are re-scored (see docs/performance.md).
//
// Exactness: probabilities and hard predictions are byte-identical to
// DareForest::PredictProbAll / PredictAll — per-row tree probabilities are
// summed in tree order before one division, mirroring PredictProb.

#ifndef FUME_FOREST_PREDICTION_CACHE_H_
#define FUME_FOREST_PREDICTION_CACHE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "forest/forest.h"

namespace fume {

class TestPredictionCache {
 public:
  /// Reusable working memory for ScoreWhatIf. One instance per worker
  /// thread; after the first evaluation no allocations occur in steady
  /// state (epoch counters take the place of clearing).
  struct WhatIfScratch {
    /// Hard predictions for the what-if forest, byte-identical to
    /// what_if.PredictAll(test). Valid after ScoreWhatIf returns, until
    /// the next call on this scratch.
    std::vector<int> preds;
    /// Opt-in: when true, ScoreWhatIf also fills `probs` with the what-if
    /// mean probability per row, byte-identical to
    /// what_if.PredictProbAll(test) (same sum-then-divide arithmetic that
    /// produces preds). Off by default — the extra row-major vector only
    /// pays for itself when a consumer needs the probabilities, e.g. the
    /// sharded cache voting across shards.
    bool want_probs = false;
    std::vector<double> probs;
    /// Test rows whose prediction path crossed a mutated region (their
    /// hard prediction did not necessarily flip).
    int64_t rows_rescored = 0;
    /// Trees whose root handle differed from the base forest's.
    int64_t trees_changed = 0;

   private:
    friend class TestPredictionCache;
    std::vector<std::vector<double>> tree_prob;  // [t][r] where tree dirty
    std::vector<uint32_t> tree_epoch;
    std::vector<uint32_t> row_epoch;
    std::vector<int64_t> touched;  // rows rescored this evaluation
    std::vector<int64_t> order;    // row-index buffer, partitioned in place
    uint32_t epoch = 0;
  };

  /// Full walk of every tree for every test row. Call after building,
  /// loading or replacing the forest.
  void Rebuild(const DareForest& forest, const Dataset& test);

  /// Incrementally refreshes after one forest op. `tree_dirty[t]` must be
  /// true when tree t may have freed nodes during the op (any subtree
  /// retrain) — those trees are re-walked from the root; the rest resume
  /// from their cached nodes.
  void Update(const DareForest& forest, const Dataset& test,
              const std::vector<bool>& tree_dirty);

  /// Scores a copy-on-write clone of the forest this cache was seeded
  /// from, re-walking only test rows whose cached descent crosses a
  /// mutated region. `base` must be that seed forest (alive, unmutated
  /// since Rebuild/Update); `what_if` a Clone() of it, arbitrarily
  /// mutated. Fills scratch->preds with predictions byte-identical to
  /// what_if.PredictAll(test). Thread-safe for concurrent calls on one
  /// cache with distinct scratches.
  ///
  /// `arena_full_rescore` trades the pointer diff-walk for a full pass of
  /// every test row through each changed tree's flat arena — the right
  /// call when the mutation was broad (large deletion batches unshare most
  /// paths, so the diff-walk would re-walk nearly everything through
  /// pointers anyway). Requires what_if.config().arena_traversal; results
  /// are byte-identical either way.
  void ScoreWhatIf(const DareForest& base, const DareForest& what_if,
                   const Dataset& test, WhatIfScratch* scratch,
                   bool arena_full_rescore = false) const;

  /// Mean forest probability per test row; byte-identical to
  /// forest.PredictProbAll(test).
  const std::vector<double>& probs() const { return mean_prob_; }
  /// Hard predictions at the 0.5 threshold; byte-identical to PredictAll.
  const std::vector<int>& predictions() const { return pred_; }

  int num_trees() const { return static_cast<int>(leaf_.size()); }

 private:
  void WalkTree(const DareForest& forest, const Dataset& test, int t);
  /// Reference root-to-leaf pointer descent into caller-provided arrays
  /// (the pre-arena WalkTree body); also the FUME_ARENA_VERIFY oracle.
  void WalkTreePointer(const DareForest& forest, const Dataset& test, int t,
                       const TreeNode** leaves, double* probs) const;
  void ResumeTree(const Dataset& test, int t);
  void Finalize(const DareForest& forest);
  void DiffWalk(const TreeNode* base, const TreeNode* changed,
                const Dataset& test, int t, size_t begin, size_t end,
                WhatIfScratch* scratch) const;

  // leaf_[t][r]: the leaf of tree t that test row r reaches (nullptr when
  // the tree has no root). prob_[t][r]: that leaf's positive fraction.
  std::vector<std::vector<const TreeNode*>> leaf_;
  std::vector<std::vector<double>> prob_;
  std::vector<double> mean_prob_;
  std::vector<int> pred_;
};

}  // namespace fume

#endif  // FUME_FOREST_PREDICTION_CACHE_H_
