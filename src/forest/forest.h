// DareForest: ensemble of DareTrees with exact batch unlearning — the
// removal method R used by FUME (paper §5.1).

#ifndef FUME_FOREST_FOREST_H_
#define FUME_FOREST_FOREST_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "forest/tree.h"
#include "util/result.h"

namespace fume {

/// \brief A data-removal-enabled random forest.
///
/// Train() is a pure function of (training data, config.seed): two forests
/// trained on identical data with identical configs are structurally equal.
/// DeleteRows() exactly unlearns training rows, yielding the forest Train()
/// would produce on the reduced data. Typical FUME usage:
///
///   auto forest = DareForest::Train(train, config).ValueOrDie();
///   DareForest what_if = forest.Clone();
///   what_if.DeleteRows(subset_row_ids);   // estimate "trained without T"
class DareForest {
 public:
  DareForest() = default;
  /// Debug builds audit the CoW node graph on destruction
  /// (DareTree::DebugCheckCowConsistency); release builds do nothing.
  ~DareForest();
  // Copying is explicit — Clone() (CoW, cheap) or DeepClone() (eager) —
  // so an accidental `DareForest f = other;` can't silently share node
  // graphs and pay surprise CoW unshares later.
  DareForest(const DareForest&) = delete;
  DareForest& operator=(const DareForest&) = delete;
  DareForest(DareForest&&) = default;
  DareForest& operator=(DareForest&&) = default;

  /// Trains on an all-categorical dataset. Every tree sees all rows (DaRE
  /// forests do not bootstrap — deletion must remove a row from every tree);
  /// diversity comes from per-node random attribute subsets and random
  /// upper levels.
  static Result<DareForest> Train(const Dataset& train,
                                  const ForestConfig& config);

  /// Exactly unlearns training rows (ids into the training dataset given to
  /// Train). Duplicate ids are an error.
  Status DeleteRows(const std::vector<RowId>& rows) {
    return DeleteRows(rows, nullptr);
  }

  /// As above, additionally reporting the work done in each tree by THIS
  /// call (one entry per tree, zeroed first). A tree whose entry has
  /// subtrees_retrained == 0 kept every node object alive — callers holding
  /// pointers into it (e.g. the stream engine's prediction cache) may keep
  /// them. Pass nullptr to skip the report.
  Status DeleteRows(const std::vector<RowId>& rows,
                    std::vector<DeletionStats>* per_tree) {
    return DeleteRows(rows, per_tree, nullptr);
  }

  /// As above with caller-owned kernel scratch. Long-lived callers (what-if
  /// evaluation workers, the stream engine) pass the same scratch to every
  /// call so steady-state deletions allocate nothing; a warm reuse bumps
  /// forest.unlearn.scratch_reuse. nullptr uses call-local scratch. The
  /// scratch is an execution resource only — results are byte-identical
  /// whatever is passed (or with the kernel disabled entirely).
  Status DeleteRows(const std::vector<RowId>& rows,
                    std::vector<DeletionStats>* per_tree,
                    DeletionScratch* scratch);

  /// Exactly adds new training instances: the updated forest equals Train()
  /// on the enlarged dataset (same config/seed). `rows` must be
  /// all-categorical with the same attribute count and cardinalities as the
  /// training data. Returns the ids assigned to the new rows.
  Result<std::vector<RowId>> AddData(const Dataset& rows) {
    return AddData(rows, nullptr);
  }

  /// As above with the per-tree work report of DeleteRows' overload.
  Result<std::vector<RowId>> AddData(const Dataset& rows,
                                     std::vector<DeletionStats>* per_tree) {
    return AddData(rows, per_tree, nullptr);
  }

  /// As above with caller-owned kernel scratch (see DeleteRows).
  Result<std::vector<RowId>> AddData(const Dataset& rows,
                                     std::vector<DeletionStats>* per_tree,
                                     DeletionScratch* scratch);

  /// Rebuilds every pending lazy-tag subtree across all trees (no-op when
  /// none are pending — only meaningful with config().lazy_unlearn). The
  /// retrain work lands in deletion_stats() and, when `per_tree` is
  /// non-null, is ADDED into its entries (zero-sized vectors are sized and
  /// zeroed first), so callers tracking per-tree dirtiness across a
  /// deferred burst see the flush retrains too.
  void FlushAll(std::vector<DeletionStats>* per_tree = nullptr,
                DeletionScratch* scratch = nullptr);
  /// True while any tree holds a pending LazyTag.
  bool HasLazyTags() const;
  /// Pending deferred doomed rows / tag nodes summed across trees.
  int64_t lazy_rows() const;
  int64_t lazy_nodes() const;
  /// Logically-const flush used by the const traversal entry points
  /// (PredictProbAll and friends, the prediction cache's walks). A tagged
  /// forest is thread-confined by contract — engine forests live behind the
  /// stream/serve writer lock and what-if clones are worker-private, while
  /// every published snapshot is flushed before it is shared — so the
  /// const_cast never races. No-op unless lazy_unlearn is on with pending
  /// tags.
  void EnsureFlushed() const;
  /// Toggles config().lazy_unlearn on this forest and every tree. Disabling
  /// flushes pending tags first; enabling requires batched_unlearn_kernel.
  /// What-if evaluation disables lazy on its clones (a delete that is
  /// scored immediately gains nothing from deferral).
  void SetLazyUnlearn(bool on);
  /// Zeroes deletion_stats(). Lazy-vs-eager byte-identity checks reset both
  /// forests' counters before serializing: the model bytes converge after a
  /// flush, the work counters (deliberately) do not — lazy does less work.
  void ResetDeletionStats() { deletion_stats_ = DeletionStats{}; }

  /// P(label = 1): mean of per-tree leaf positive fractions.
  double PredictProb(const Dataset& data, int64_t row) const;
  /// Hard prediction at the 0.5 probability threshold.
  int Predict(const Dataset& data, int64_t row) const;
  /// Batch prediction over every row of `data`. With
  /// config().arena_traversal (the default) the rows stream through each
  /// tree's flat arena (compiled on demand, cached until the next
  /// mutation); results are byte-identical to the pointer walk.
  std::vector<double> PredictProbAll(const Dataset& data) const;
  std::vector<int> PredictAll(const Dataset& data) const;
  /// Reference pointer-walk batch prediction (a per-row PredictProb loop,
  /// ignoring config().arena_traversal). Kept as the exactness baseline the
  /// arena path is diffed against in tests, FUME_ARENA_VERIFY builds and
  /// the eval-throughput bench's deep-copy strategy.
  std::vector<double> PredictProbAllPointer(const Dataset& data) const;
  std::vector<int> PredictAllPointer(const Dataset& data) const;

  /// Fraction of rows of `data` predicted correctly.
  double Accuracy(const Dataset& data) const;

  /// Copy-on-write copy: O(num_trees), shares every node refcounted (and the
  /// immutable training snapshot). Mutating either forest privately copies
  /// just the nodes the mutation touches, so clones stay fully independent in
  /// behaviour. This is what FUME's what-if evaluations use.
  DareForest Clone() const;

  /// Eager copy of every node — the pre-CoW Clone() behaviour, kept as the
  /// reference path for exactness tests and the eval-throughput bench.
  DareForest DeepClone() const;

  bool StructurallyEquals(const DareForest& other) const;
  /// Revalidates every cached node statistic in every tree.
  bool ValidateStats() const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const DareTree& tree(int i) const { return trees_[i]; }
  int64_t num_nodes() const;
  /// Approximate heap footprint of all node graphs — what DeepClone() has to
  /// allocate and copy and what Clone() avoids.
  int64_t ApproxHeapBytes() const;
  /// Rows still learned (after deletions).
  int64_t num_training_rows() const;
  const ForestConfig& config() const { return config_; }
  /// Work counters accumulated over every DeleteRows call on this forest.
  const DeletionStats& deletion_stats() const { return deletion_stats_; }

  const TrainingStore& store() const { return *store_; }

  /// Reassembles a forest from deserialized parts (forest/serialize.cc).
  /// `stats` restores the unlearning work counters accumulated before the
  /// forest was saved, so a save/load round trip preserves them.
  static DareForest FromParts(std::shared_ptr<TrainingStore> store,
                              const ForestConfig& config,
                              std::vector<DareTree> trees,
                              const DeletionStats& stats = DeletionStats{});

 private:
  Status CheckCompatible(const Dataset& data) const;

  std::shared_ptr<TrainingStore> store_;
  ForestConfig config_;
  std::vector<DareTree> trees_;
  DeletionStats deletion_stats_;
};

}  // namespace fume

#endif  // FUME_FOREST_FOREST_H_
