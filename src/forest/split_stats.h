// Cached per-node split statistics and the deterministic split-decision
// function shared by tree construction and unlearning.
//
// The decision at a node is a *pure function* of (node data multiset, depth,
// node path key, config). Construction computes it from raw rows; deletion
// recomputes it from incrementally-updated histograms and rebuilds the
// subtree only when the decision changed. This is what makes
//   DeleteRows(Build(D), T) == Build(D \ T)
// hold node-for-node (DESIGN.md §2).

#ifndef FUME_FOREST_SPLIT_STATS_H_
#define FUME_FOREST_SPLIT_STATS_H_

#include <cstdint>
#include <vector>

#include "forest/config.h"
#include "forest/training_store.h"

namespace fume {

/// \brief Cached statistics of one decision node: label counts plus, for each
/// candidate attribute, per-value (count, positive) histograms.
///
/// The histograms live in ONE flat interleaved buffer instead of a
/// vector-of-vectors: a node costs 3 allocations instead of 2 + 2 per
/// candidate attribute, which is what makes CoW node copies, what-if
/// destruction, and subtree retrains cheap (every internal TreeNode embeds
/// a NodeStats). Bin (i, v) holds its count at hist[2*(hist_offsets[i]+v)]
/// and its positive count right next to it — the unlearning update loops
/// touch both with one cache line.
struct NodeStats {
  int64_t count = 0;
  int64_t pos = 0;
  /// Candidate attributes, ascending. Chosen by the node's path key, so the
  /// set never changes under deletions.
  std::vector<int> cand_attrs;
  /// Prefix sums of the candidate attributes' cardinalities, size
  /// cand_attrs.size() + 1. Fixed by the schema: deletions update hist
  /// values only, never this shape.
  std::vector<int32_t> hist_offsets;
  /// All histograms, interleaved: hist[2*(hist_offsets[i]+v)] = #instances
  /// with code(cand_attrs[i]) == v, hist[2*(hist_offsets[i]+v)+1] = the
  /// positives among them. Size 2 * hist_offsets.back().
  std::vector<int64_t> hist;

  /// #instances at this node with code(cand_attrs[i]) == v.
  int64_t HistCount(size_t i, int32_t v) const {
    return hist[2 * (static_cast<size_t>(hist_offsets[i]) +
                     static_cast<size_t>(v))];
  }
  /// #positives among HistCount(i, v).
  int64_t HistPos(size_t i, int32_t v) const {
    return hist[2 * (static_cast<size_t>(hist_offsets[i]) +
                     static_cast<size_t>(v)) +
                1];
  }
  /// Base of candidate i's interleaved (count, pos) bin pairs: bin v's
  /// count at [2*v], its positives at [2*v + 1].
  const int64_t* HistRow(size_t i) const {
    return hist.data() + 2 * static_cast<size_t>(hist_offsets[i]);
  }
  /// Number of bins of candidate i (its attribute's cardinality).
  int32_t HistCard(size_t i) const {
    return hist_offsets[i + 1] - hist_offsets[i];
  }

  /// Index of `attr` within cand_attrs, or -1.
  int CandIndex(int attr) const;

  /// Recomputes everything from raw rows (used at build / rebuild time).
  void ComputeFromRows(const TrainingStore& store,
                       const std::vector<RowId>& rows,
                       std::vector<int> cand_attrs_sorted);

  /// Span variant for the batched kernel's rebuild path (rows live in a
  /// partitioned scratch buffer, not a per-node vector).
  void ComputeFromRows(const TrainingStore& store, const RowId* rows,
                       int64_t n, std::vector<int> cand_attrs_sorted);

  /// Subtracts one instance (used during unlearning).
  void RemoveRow(const TrainingStore& store, RowId row);

  /// Adds one instance (used during incremental addition).
  void AddRow(const TrainingStore& store, RowId row);

  /// Subtracts a batch in one pass over the rows: each row-major store line
  /// and label is loaded exactly once while the small histograms stay
  /// cache-resident for the whole batch. Integer decrements commute, so the
  /// result is byte-identical to n RemoveRow calls.
  void RemoveRows(const TrainingStore& store, const RowId* rows, int64_t n);

  /// Batch counterpart of AddRow (same access pattern as RemoveRows).
  void AddRows(const TrainingStore& store, const RowId* rows, int64_t n);

  /// Fused RemoveRows + stable partition of [begin, end) around
  /// (attr, threshold): every row's store line is visited exactly once to
  /// update the histograms AND route the row (left side kept in place,
  /// right side staged in *spill and copied back). Returns the boundary.
  /// Identical statistics to RemoveRows and identical ordering to a stable
  /// partition — the batched kernel's one-pass internal-node step.
  /// (Deletion-only: the add path cannot fuse — an add retrain reuses its
  /// routed span in batch order, which partitioning would destroy.)
  RowId* RemoveRowsAndPartition(const TrainingStore& store, RowId* begin,
                                RowId* end, int attr, int32_t threshold,
                                std::vector<RowId>* spill);

  bool Equals(const NodeStats& other) const;
};

/// What a node should be, given its data.
struct SplitDecision {
  bool is_leaf = true;
  int attr = -1;
  int32_t threshold = -1;  // left child takes code <= threshold
  bool is_random = false;

  bool SameSplit(const SplitDecision& other) const {
    return is_leaf == other.is_leaf && attr == other.attr &&
           threshold == other.threshold && is_random == other.is_random;
  }
};

/// Deterministic candidate-attribute choice for the node identified by
/// `path_key`: p~ distinct attributes (plus, at random-depth nodes, the
/// random split attribute), sorted ascending.
std::vector<int> ChooseCandidateAttrs(uint64_t path_key, int num_attrs,
                                      int depth, const ForestConfig& config);

/// Candidate thresholds for `attr` at this node: all inter-bin thresholds in
/// kExact mode, or a path-keyed sample of k' in kSampled mode. Ascending.
std::vector<int32_t> CandidateThresholds(uint64_t path_key, int attr,
                                         int32_t cardinality,
                                         const ForestConfig& config);

/// The split-decision function. `stats` must already hold the node's
/// histograms over ChooseCandidateAttrs(path_key, ...).
SplitDecision DecideSplit(const NodeStats& stats, const TrainingStore& store,
                          int depth, uint64_t path_key,
                          const ForestConfig& config);

/// Weighted Gini impurity of a binary split; lower is better.
/// Exposed for unit tests.
double WeightedGini(int64_t left_count, int64_t left_pos, int64_t right_count,
                    int64_t right_pos);

/// Path keys for the two children of the node with key `parent_key`.
uint64_t ChildPathKey(uint64_t parent_key, int side);

/// Path key of a tree's root.
uint64_t RootPathKey(uint64_t seed, int tree_id);

}  // namespace fume

#endif  // FUME_FOREST_SPLIT_STATS_H_
