#include "forest/split_stats.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace fume {

namespace {

// Domain-separation tags for keyed hashing.
constexpr uint64_t kTagCandAttrs = 0xca0dda77ULL;
constexpr uint64_t kTagRandomAttr = 0x4a0dda22ULL;
constexpr uint64_t kTagRandomThresh = 0x7a3d1177ULL;
constexpr uint64_t kTagSampledThresh = 0x5a3db3f1ULL;
constexpr uint64_t kTagChild = 0xc411d099ULL;

}  // namespace

int NodeStats::CandIndex(int attr) const {
  auto it = std::lower_bound(cand_attrs.begin(), cand_attrs.end(), attr);
  if (it == cand_attrs.end() || *it != attr) return -1;
  return static_cast<int>(it - cand_attrs.begin());
}

void NodeStats::ComputeFromRows(const TrainingStore& store,
                                const std::vector<RowId>& rows,
                                std::vector<int> cand_attrs_sorted) {
  ComputeFromRows(store, rows.data(), static_cast<int64_t>(rows.size()),
                  std::move(cand_attrs_sorted));
}

void NodeStats::ComputeFromRows(const TrainingStore& store, const RowId* rows,
                                int64_t n,
                                std::vector<int> cand_attrs_sorted) {
  cand_attrs = std::move(cand_attrs_sorted);
  count = n;
  pos = 0;
  const size_t num_attrs = cand_attrs.size();
  hist_offsets.resize(num_attrs + 1);
  int32_t total = 0;
  for (size_t i = 0; i < num_attrs; ++i) {
    hist_offsets[i] = total;
    total += store.cardinality(cand_attrs[i]);
  }
  hist_offsets[num_attrs] = total;
  hist.assign(2 * static_cast<size_t>(total), 0);
  int64_t* const h = hist.data();
  const int32_t* const off = hist_offsets.data();
  for (int64_t k = 0; k < n; ++k) {
    const RowId r = rows[k];
    const int y = store.label(r);
    pos += y;
    for (size_t i = 0; i < num_attrs; ++i) {
      const int32_t v = store.code(r, cand_attrs[i]);
      int64_t* const bin = h + 2 * (static_cast<size_t>(off[i]) +
                                    static_cast<size_t>(v));
      ++bin[0];
      bin[1] += y;
    }
  }
}

void NodeStats::RemoveRow(const TrainingStore& store, RowId row) {
  const int y = store.label(row);
  --count;
  pos -= y;
  int64_t* const h = hist.data();
  const int32_t* const off = hist_offsets.data();
  for (size_t i = 0; i < cand_attrs.size(); ++i) {
    const int32_t v = store.code(row, cand_attrs[i]);
    int64_t* const bin =
        h + 2 * (static_cast<size_t>(off[i]) + static_cast<size_t>(v));
    --bin[0];
    bin[1] -= y;
  }
}

void NodeStats::AddRow(const TrainingStore& store, RowId row) {
  const int y = store.label(row);
  ++count;
  pos += y;
  int64_t* const h = hist.data();
  const int32_t* const off = hist_offsets.data();
  for (size_t i = 0; i < cand_attrs.size(); ++i) {
    const int32_t v = store.code(row, cand_attrs[i]);
    int64_t* const bin =
        h + 2 * (static_cast<size_t>(off[i]) + static_cast<size_t>(v));
    ++bin[0];
    bin[1] += y;
  }
}

// Batch update order: rows outer, attributes inner. The store is row-major,
// so each (scattered) row's cache line is touched exactly once, with its
// label loaded once; the histograms are a few dozen entries and live in L1
// across the whole batch. Integer increments commute, so the result is
// byte-identical to n RemoveRow/AddRow calls in any order.
void NodeStats::RemoveRows(const TrainingStore& store, const RowId* rows,
                           int64_t n) {
  const size_t num_attrs = cand_attrs.size();
  int64_t* const h = hist.data();
  const int32_t* const off = hist_offsets.data();
  for (int64_t k = 0; k < n; ++k) {
    const RowId r = rows[k];
    const int y = store.label(r);
    pos -= y;
    for (size_t i = 0; i < num_attrs; ++i) {
      const auto v = static_cast<size_t>(store.code(r, cand_attrs[i]));
      int64_t* const bin = h + 2 * (static_cast<size_t>(off[i]) + v);
      --bin[0];
      bin[1] -= y;
    }
  }
  count -= n;
}

void NodeStats::AddRows(const TrainingStore& store, const RowId* rows,
                        int64_t n) {
  const size_t num_attrs = cand_attrs.size();
  int64_t* const h = hist.data();
  const int32_t* const off = hist_offsets.data();
  for (int64_t k = 0; k < n; ++k) {
    const RowId r = rows[k];
    const int y = store.label(r);
    pos += y;
    for (size_t i = 0; i < num_attrs; ++i) {
      const auto v = static_cast<size_t>(store.code(r, cand_attrs[i]));
      int64_t* const bin = h + 2 * (static_cast<size_t>(off[i]) + v);
      ++bin[0];
      bin[1] += y;
    }
  }
  count += n;
}

RowId* NodeStats::RemoveRowsAndPartition(const TrainingStore& store,
                                         RowId* begin, RowId* end, int attr,
                                         int32_t threshold,
                                         std::vector<RowId>* spill) {
  const size_t num_attrs = cand_attrs.size();
  spill->clear();
  RowId* write = begin;
  int64_t* const h = hist.data();
  const int32_t* const off = hist_offsets.data();
  for (RowId* p = begin; p != end; ++p) {
    const RowId r = *p;
    const int y = store.label(r);
    pos -= y;
    for (size_t i = 0; i < num_attrs; ++i) {
      const auto v = static_cast<size_t>(store.code(r, cand_attrs[i]));
      int64_t* const bin = h + 2 * (static_cast<size_t>(off[i]) + v);
      --bin[0];
      bin[1] -= y;
    }
    if (store.code(r, attr) <= threshold) {
      *write++ = r;
    } else {
      spill->push_back(r);
    }
  }
  count -= end - begin;
  std::copy(spill->begin(), spill->end(), write);
  return write;
}

bool NodeStats::Equals(const NodeStats& other) const {
  return count == other.count && pos == other.pos &&
         cand_attrs == other.cand_attrs &&
         hist_offsets == other.hist_offsets && hist == other.hist;
}

std::vector<int> ChooseCandidateAttrs(uint64_t path_key, int num_attrs,
                                      int depth, const ForestConfig& config) {
  int want = config.num_candidate_attrs;
  if (want <= 0) {
    want = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(num_attrs))));
  }
  want = std::min(want, num_attrs);
  std::vector<int> attrs;
  attrs.reserve(static_cast<size_t>(want) + 1);
  std::vector<uint8_t> taken(static_cast<size_t>(num_attrs), 0);
  // Keyed draws until `want` distinct attributes are collected. The sequence
  // depends only on path_key, never on the data.
  uint64_t i = 0;
  while (static_cast<int>(attrs.size()) < want) {
    const int a = static_cast<int>(Hash64({path_key, kTagCandAttrs, i++}) %
                                   static_cast<uint64_t>(num_attrs));
    if (!taken[static_cast<size_t>(a)]) {
      taken[static_cast<size_t>(a)] = 1;
      attrs.push_back(a);
    }
  }
  if (depth < config.random_depth) {
    // The random-split attribute must be tracked in the histograms so the
    // validity of the random split stays checkable during unlearning.
    const int a = static_cast<int>(Hash64({path_key, kTagRandomAttr}) %
                                   static_cast<uint64_t>(num_attrs));
    if (!taken[static_cast<size_t>(a)]) attrs.push_back(a);
  }
  std::sort(attrs.begin(), attrs.end());
  return attrs;
}

std::vector<int32_t> CandidateThresholds(uint64_t path_key, int attr,
                                         int32_t cardinality,
                                         const ForestConfig& config) {
  const int32_t num_thresholds = cardinality - 1;  // thresholds 0..card-2
  std::vector<int32_t> out;
  if (num_thresholds <= 0) return out;
  if (config.threshold_mode == ThresholdMode::kExact ||
      config.num_sampled_thresholds >= num_thresholds) {
    out.resize(static_cast<size_t>(num_thresholds));
    for (int32_t t = 0; t < num_thresholds; ++t) out[static_cast<size_t>(t)] = t;
    return out;
  }
  // Sampled mode: k' distinct keyed draws from [0, card-1).
  std::vector<uint8_t> taken(static_cast<size_t>(num_thresholds), 0);
  uint64_t i = 0;
  while (static_cast<int>(out.size()) < config.num_sampled_thresholds) {
    const int32_t t = static_cast<int32_t>(
        Hash64({path_key, kTagSampledThresh, static_cast<uint64_t>(attr),
                i++}) %
        static_cast<uint64_t>(num_thresholds));
    if (!taken[static_cast<size_t>(t)]) {
      taken[static_cast<size_t>(t)] = 1;
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double WeightedGini(int64_t left_count, int64_t left_pos, int64_t right_count,
                    int64_t right_pos) {
  auto gini = [](int64_t c, int64_t p) {
    if (c == 0) return 0.0;
    const double fp = static_cast<double>(p) / static_cast<double>(c);
    const double fn = 1.0 - fp;
    return 1.0 - fp * fp - fn * fn;
  };
  const double total = static_cast<double>(left_count + right_count);
  if (total == 0.0) return 0.0;
  return (static_cast<double>(left_count) * gini(left_count, left_pos) +
          static_cast<double>(right_count) * gini(right_count, right_pos)) /
         total;
}

namespace {

// Left-side (count, pos) of splitting `cand` at threshold t, from histograms.
struct SideCounts {
  int64_t count = 0;
  int64_t pos = 0;
};

// Checks whether the (attr, threshold) split is valid for this node given
// min_samples_leaf, and returns its score through *score.
bool ScoreSplit(const NodeStats& stats, int cand_index, int32_t threshold,
                int min_leaf, double* score) {
  const int64_t* const h = stats.HistRow(static_cast<size_t>(cand_index));
  SideCounts left;
  for (int32_t v = 0; v <= threshold; ++v) {
    left.count += h[2 * static_cast<size_t>(v)];
    left.pos += h[2 * static_cast<size_t>(v) + 1];
  }
  const int64_t right_count = stats.count - left.count;
  const int64_t right_pos = stats.pos - left.pos;
  if (left.count < min_leaf || right_count < min_leaf) return false;
  *score = WeightedGini(left.count, left.pos, right_count, right_pos);
  return true;
}

}  // namespace

SplitDecision DecideSplit(const NodeStats& stats, const TrainingStore& store,
                          int depth, uint64_t path_key,
                          const ForestConfig& config) {
  SplitDecision leaf;  // default: leaf
  if (stats.count < config.min_samples_split) return leaf;
  if (stats.pos == 0 || stats.pos == stats.count) return leaf;
  if (depth >= config.max_depth) return leaf;

  const int min_leaf = std::max(1, config.min_samples_leaf);

  if (depth < config.random_depth) {
    // DaRE random node: attribute and threshold are keyed draws over the
    // attribute's *global* bin range, hence never invalidated by deletions
    // as long as both sides remain populated.
    const int attr =
        static_cast<int>(Hash64({path_key, kTagRandomAttr}) %
                         static_cast<uint64_t>(store.num_attrs()));
    const int32_t card = store.cardinality(attr);
    if (card >= 2) {
      const int32_t threshold = static_cast<int32_t>(
          Hash64({path_key, kTagRandomThresh}) %
          static_cast<uint64_t>(card - 1));
      const int ci = stats.CandIndex(attr);
      double unused;
      if (ci >= 0 && ScoreSplit(stats, ci, threshold, min_leaf, &unused)) {
        SplitDecision d;
        d.is_leaf = false;
        d.attr = attr;
        d.threshold = threshold;
        d.is_random = true;
        return d;
      }
    }
    // Degenerate random split: fall through to the greedy choice (still a
    // deterministic function of the node's data).
  }

  // Greedy: Gini argmax over candidate attributes and thresholds, ties
  // broken by ascending (attribute, threshold) via strict-improvement scan.
  // Thresholds are visited ascending, so left-side counts accumulate in a
  // running prefix instead of re-summing bins [0, t] per threshold, and the
  // exact mode (every inter-bin threshold) enumerates candidates directly
  // rather than materializing the CandidateThresholds vector — this is the
  // hot path of every deletion's per-node decision re-check. Scores are
  // computed from the same integer inputs in the same order as the scan it
  // replaces, so decisions are bit-identical.
  SplitDecision best = leaf;
  double best_score = 0.0;
  bool have_best = false;
  for (size_t i = 0; i < stats.cand_attrs.size(); ++i) {
    const int attr = stats.cand_attrs[i];
    const int32_t num_thresholds = store.cardinality(attr) - 1;
    if (num_thresholds <= 0) continue;
    const bool exact = config.threshold_mode == ThresholdMode::kExact ||
                       config.num_sampled_thresholds >= num_thresholds;
    std::vector<int32_t> sampled;
    if (!exact) {
      sampled =
          CandidateThresholds(path_key, attr, store.cardinality(attr), config);
    }
    const size_t num_cand =
        exact ? static_cast<size_t>(num_thresholds) : sampled.size();
    const int64_t* const h = stats.HistRow(i);
    SideCounts left;
    int32_t bin = 0;
    for (size_t k = 0; k < num_cand; ++k) {
      const int32_t t = exact ? static_cast<int32_t>(k) : sampled[k];
      for (; bin <= t; ++bin) {
        left.count += h[2 * static_cast<size_t>(bin)];
        left.pos += h[2 * static_cast<size_t>(bin) + 1];
      }
      const int64_t right_count = stats.count - left.count;
      const int64_t right_pos = stats.pos - left.pos;
      if (left.count < min_leaf || right_count < min_leaf) continue;
      const double score =
          WeightedGini(left.count, left.pos, right_count, right_pos);
      if (!have_best || score < best_score - 1e-12) {
        have_best = true;
        best_score = score;
        best.is_leaf = false;
        best.attr = attr;
        best.threshold = t;
        best.is_random = false;
      }
    }
  }
  return best;
}

uint64_t ChildPathKey(uint64_t parent_key, int side) {
  return Hash64({parent_key, kTagChild, static_cast<uint64_t>(side)});
}

uint64_t RootPathKey(uint64_t seed, int tree_id) {
  return Hash64({seed, 0x9007ULL, static_cast<uint64_t>(tree_id)});
}

}  // namespace fume
