// DeletionScratch: reusable working memory for the batched unlearning
// kernel (DareTree::DeleteRows / AddRows via DareForest).
//
// One DeleteRows call on a forest marks its doomed rows ONCE in an
// epoch-stamped membership array sized to the training store; every leaf
// update and subtree retrain in every tree then answers "is this row
// doomed?" with one array load — where the per-row baseline rebuilt an
// std::unordered_set of the routed rows at each leaf and each retrain.
// Epoch stamping replaces clearing (the same trick as
// TestPredictionCache::WhatIfScratch), so a warm scratch performs no
// allocation and no O(store) work between batches. The routing and
// retrain-collection buffers are likewise reused across the trees of one
// batch and across batches.
//
// Ownership: DareForest::DeleteRows/AddData accept an optional scratch;
// long-lived callers (UnlearnRemovalMethod workers, the stream engine)
// keep one per worker so thousands of what-if evaluations share the same
// memory. A scratch must never be used by two threads at once.

#ifndef FUME_FOREST_DELETION_SCRATCH_H_
#define FUME_FOREST_DELETION_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "forest/training_store.h"
#include "util/check.h"

namespace fume {

class DeletionScratch {
 public:
  /// Starts a new batch over a store with `num_store_rows` rows,
  /// invalidating all previous doomed marks in O(1). Returns true when the
  /// scratch was already warm (no membership-array growth — the
  /// forest.unlearn.scratch_reuse signal).
  bool BeginBatch(int64_t num_store_rows) {
    bool warm = true;
    if (epoch_of_.size() < static_cast<size_t>(num_store_rows)) {
      epoch_of_.resize(static_cast<size_t>(num_store_rows), 0);
      warm = false;
    }
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: stale stamps could collide, clear once
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0);
      epoch_ = 1;
      warm = false;
    }
    return warm;
  }

  /// Marks a row doomed in the current batch. Returns false if it already
  /// was (duplicate detection falls out of the stamp for free).
  bool MarkDoomed(RowId row) {
    FUME_DCHECK(row >= 0 &&
                static_cast<size_t>(row) < epoch_of_.size());
    if (epoch_of_[static_cast<size_t>(row)] == epoch_) return false;
    epoch_of_[static_cast<size_t>(row)] = epoch_;
    return true;
  }

  bool IsDoomed(RowId row) const {
    return static_cast<size_t>(row) < epoch_of_.size() &&
           epoch_of_[static_cast<size_t>(row)] == epoch_;
  }

  /// Routing buffer: DareTree::DeleteRows copies the batch in once, then
  /// the recursion partitions spans of it in place (no per-node vectors).
  std::vector<RowId> route;
  /// Retrain collection buffer: leaf rows of a retrained subtree, filtered
  /// of doomed rows in place.
  std::vector<RowId> remaining;
  /// Spill buffer for the stable in-place span partition (right-going rows
  /// park here for one pass, then are copied back after the left-going
  /// rows). Stability keeps leaf membership order — and serialized bytes —
  /// identical to the per-row baseline.
  std::vector<RowId> partition_tmp;
  /// Doomed rows actually removed so far in the current tree (leaf removals
  /// plus rows filtered out of retrain collections). DareTree::DeleteRows
  /// checks this against the batch size once per tree — the kernel's
  /// replacement for the per-leaf membership-count assertion.
  int64_t settled = 0;

 private:
  /// epoch_of_[row] == epoch_  <=>  row is doomed in the current batch.
  std::vector<uint32_t> epoch_of_;
  uint32_t epoch_ = 0;
};

}  // namespace fume

#endif  // FUME_FOREST_DELETION_SCRATCH_H_
