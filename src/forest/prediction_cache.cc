#include "forest/prediction_cache.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

void TestPredictionCache::WalkTree(const DareForest& forest,
                                   const Dataset& test, int t) {
  const int64_t n_rows = test.num_rows();
  auto& leaves = leaf_[static_cast<size_t>(t)];
  auto& probs = prob_[static_cast<size_t>(t)];
  leaves.resize(static_cast<size_t>(n_rows));
  probs.resize(static_cast<size_t>(n_rows));
  if (forest.config().arena_traversal) {
    // Arena walk: same leaf TreeNode* per row as the pointer loop below
    // (the stream engine's resume contract keys on those addresses), same
    // probability bytes.
    if (const std::shared_ptr<const TreeArena> arena = forest.tree(t).arena()) {
      const std::shared_ptr<const PackedCodes> packed = test.packed_codes();
      arena->WalkLeaves(packed->codes.data(), packed->num_attrs, n_rows,
                        leaves.data(), probs.data());
#ifdef FUME_ARENA_VERIFY
      std::vector<const TreeNode*> ref_leaves = leaves;
      std::vector<double> ref_probs = probs;
      WalkTreePointer(forest, test, t, ref_leaves.data(), ref_probs.data());
      FUME_CHECK(leaves == ref_leaves);
      FUME_CHECK(probs == ref_probs);
#endif
      return;
    }
  }
  WalkTreePointer(forest, test, t, leaves.data(), probs.data());
}

void TestPredictionCache::WalkTreePointer(const DareForest& forest,
                                          const Dataset& test, int t,
                                          const TreeNode** leaves,
                                          double* probs) const {
  const int64_t n_rows = test.num_rows();
  const TreeNode* root = forest.tree(t).root();
  for (int64_t r = 0; r < n_rows; ++r) {
    const TreeNode* n = root;
    if (n != nullptr && n->count != 0) {
      while (!n->is_leaf()) {
        n = test.Code(r, n->attr) <= n->threshold ? n->left.get()
                                                  : n->right.get();
      }
    }
    leaves[static_cast<size_t>(r)] = n;
    probs[static_cast<size_t>(r)] =
        (n == nullptr || n->count == 0)
            ? 0.5
            : static_cast<double>(n->pos) / static_cast<double>(n->count);
  }
}

void TestPredictionCache::ResumeTree(const Dataset& test, int t) {
  auto& leaves = leaf_[static_cast<size_t>(t)];
  auto& probs = prob_[static_cast<size_t>(t)];
  for (size_t r = 0; r < leaves.size(); ++r) {
    const TreeNode* n = leaves[r];
    if (n != nullptr && n->count != 0 && !n->is_leaf()) {
      // An insert rebuilt this leaf into a split in place (same address);
      // the row still reaches it, so finish the walk from here.
      do {
        n = test.Code(static_cast<int64_t>(r), n->attr) <= n->threshold
                ? n->left.get()
                : n->right.get();
      } while (!n->is_leaf());
      leaves[r] = n;
    }
    probs[r] = (n == nullptr || n->count == 0)
                   ? 0.5
                   : static_cast<double>(n->pos) /
                         static_cast<double>(n->count);
  }
}

void TestPredictionCache::Finalize(const DareForest& forest) {
  const size_t n_rows = pred_.size();
  const double num_trees = static_cast<double>(forest.num_trees());
  for (size_t r = 0; r < n_rows; ++r) {
    double sum = 0.0;
    for (int t = 0; t < forest.num_trees(); ++t) {
      sum += prob_[static_cast<size_t>(t)][r];
    }
    mean_prob_[r] = sum / num_trees;
    pred_[r] = mean_prob_[r] >= 0.5 ? 1 : 0;
  }
}

void TestPredictionCache::Rebuild(const DareForest& forest,
                                  const Dataset& test) {
  obs::TraceSpan span("stream.predcache.rebuild",
                      {{"trees", forest.num_trees()},
                       {"rows", test.num_rows()}});
  // The cache stores leaf pointers — they must come from a flushed graph.
  forest.EnsureFlushed();
  leaf_.assign(static_cast<size_t>(forest.num_trees()), {});
  prob_.assign(static_cast<size_t>(forest.num_trees()), {});
  mean_prob_.assign(static_cast<size_t>(test.num_rows()), 0.0);
  pred_.assign(static_cast<size_t>(test.num_rows()), 0);
  for (int t = 0; t < forest.num_trees(); ++t) WalkTree(forest, test, t);
  Finalize(forest);
}

void TestPredictionCache::Update(const DareForest& forest, const Dataset& test,
                                 const std::vector<bool>& tree_dirty) {
  FUME_CHECK_EQ(tree_dirty.size(), leaf_.size());
  FUME_CHECK_EQ(static_cast<size_t>(forest.num_trees()), leaf_.size());
  static obs::Counter* rewalked =
      obs::GetCounter("stream.predcache.trees_rewalked");
  static obs::Counter* resumed =
      obs::GetCounter("stream.predcache.trees_refreshed");
  obs::TraceSpan span("stream.predcache.update");
  // Flushing here would be unsound, not just unexpected: a flush retrain
  // frees nodes in trees the caller's dirty flags call clean, and ResumeTree
  // would then chase freed leaf pointers. Callers must flush first and fold
  // the flush retrains into tree_dirty (DareForest::FlushAll's per_tree
  // report), as StreamEngine does.
  FUME_CHECK(!forest.HasLazyTags());
  int64_t walked = 0;
  for (int t = 0; t < forest.num_trees(); ++t) {
    if (tree_dirty[static_cast<size_t>(t)]) {
      WalkTree(forest, test, t);
      ++walked;
    } else {
      ResumeTree(test, t);
    }
  }
  rewalked->Inc(walked);
  resumed->Inc(forest.num_trees() - walked);
  span.AddArg("rewalked", walked);
  Finalize(forest);
}

void TestPredictionCache::DiffWalk(const TreeNode* base,
                                   const TreeNode* changed,
                                   const Dataset& test, int t, size_t begin,
                                   size_t end, WhatIfScratch* s) const {
  // A shared node means the what-if tree reuses the base subtree verbatim:
  // every row routed here keeps its cached probability. This prune is the
  // whole point — a CoW mutation unshares only the path it touched.
  if (base == changed || begin == end) return;
  if (base != nullptr && changed != nullptr && !base->is_leaf() &&
      !changed->is_leaf() && base->attr == changed->attr &&
      base->threshold == changed->threshold) {
    // Same routing decision on both sides: partition the row range in place
    // (order within a side is irrelevant) and recurse into each side.
    size_t mid = begin;
    for (size_t i = begin; i < end; ++i) {
      if (test.Code(s->order[i], changed->attr) <= changed->threshold) {
        std::swap(s->order[i], s->order[mid++]);
      }
    }
    DiffWalk(base->left.get(), changed->left.get(), test, t, begin, mid, s);
    DiffWalk(base->right.get(), changed->right.get(), test, t, mid, end, s);
    return;
  }
  // Structurally changed region: finish each row's descent in the what-if
  // tree. The null/empty checks coincide with PredictProb's at the real
  // root and are vacuous below it (the builder never produces an empty
  // internal node), so the probability matches PredictProb bit for bit.
  auto& probs = s->tree_prob[static_cast<size_t>(t)];
  for (size_t i = begin; i < end; ++i) {
    const int64_t r = s->order[i];
    const TreeNode* n = changed;
    double p = 0.5;
    if (n != nullptr && n->count != 0) {
      while (!n->is_leaf()) {
        n = test.Code(r, n->attr) <= n->threshold ? n->left.get()
                                                  : n->right.get();
      }
      if (n->count != 0) {
        p = static_cast<double>(n->pos) / static_cast<double>(n->count);
      }
    }
    probs[static_cast<size_t>(r)] = p;
    if (s->row_epoch[static_cast<size_t>(r)] != s->epoch) {
      s->row_epoch[static_cast<size_t>(r)] = s->epoch;
      s->touched.push_back(r);
    }
  }
}

void TestPredictionCache::ScoreWhatIf(const DareForest& base,
                                      const DareForest& what_if,
                                      const Dataset& test, WhatIfScratch* s,
                                      bool arena_full_rescore) const {
  const size_t num_trees = leaf_.size();
  FUME_CHECK_EQ(static_cast<size_t>(base.num_trees()), num_trees);
  FUME_CHECK_EQ(static_cast<size_t>(what_if.num_trees()), num_trees);
  // The base graph this cache was walked against is flushed by contract;
  // flush the (worker-private) what-if clone before diffing against it.
  // What-if evaluation normally disables lazy on its clones, so this only
  // fires for callers scoring an ad-hoc lazily-deleted clone.
  what_if.EnsureFlushed();
  const size_t n_rows = mean_prob_.size();
  FUME_CHECK_EQ(static_cast<size_t>(test.num_rows()), n_rows);
  const bool arena_mode =
      arena_full_rescore && what_if.config().arena_traversal;
  std::shared_ptr<const PackedCodes> packed;
  if (arena_mode) packed = test.packed_codes();
  bool rescored_all = false;

  // Epoch bump takes the place of clearing the per-tree/per-row markers;
  // on (unlikely) wrap-around, reset them for real.
  if (++s->epoch == 0) {
    s->tree_epoch.assign(s->tree_epoch.size(), 0);
    s->row_epoch.assign(s->row_epoch.size(), 0);
    s->epoch = 1;
  }
  s->tree_epoch.resize(num_trees, 0);
  s->row_epoch.resize(n_rows, 0);
  s->tree_prob.resize(num_trees);
  s->touched.clear();
  s->trees_changed = 0;

  for (size_t t = 0; t < num_trees; ++t) {
    const TreeNode* broot = base.tree(static_cast<int>(t)).root();
    const TreeNode* nroot = what_if.tree(static_cast<int>(t)).root();
    if (broot == nroot) continue;  // whole tree still shared
    ++s->trees_changed;
    s->tree_epoch[t] = s->epoch;
    if (arena_mode) {
      // Broad mutation: stream every row through the changed tree's arena
      // instead of diff-walking the pointer graphs. Same leaf probability
      // bytes as DiffWalk's descent, just computed for all rows at once.
      if (const std::shared_ptr<const TreeArena> arena =
              what_if.tree(static_cast<int>(t)).arena()) {
        s->tree_prob[t].resize(n_rows);
        arena->PredictProbs(packed->codes.data(), packed->num_attrs,
                            static_cast<int64_t>(n_rows),
                            s->tree_prob[t].data());
        rescored_all = true;
        continue;
      }
    }
    // Seed with the base probabilities so rows pruned at a shared subtree
    // keep their cached value; DiffWalk overwrites only rescored rows.
    s->tree_prob[t] = prob_[t];
    s->order.resize(n_rows);
    for (size_t i = 0; i < n_rows; ++i) {
      s->order[i] = static_cast<int64_t>(i);
    }
    DiffWalk(broot, nroot, test, static_cast<int>(t), 0, n_rows, s);
  }

  // Re-sum each rescored row over every tree in tree order — the same
  // order and arithmetic as Finalize/PredictProb, so the result is
  // byte-identical to what_if.PredictAll(test). A full arena rescore
  // invalidates every row's sum, not just the diff-walk's touched list.
  s->preds = pred_;
  if (s->want_probs) s->probs = mean_prob_;
  const double tree_count = static_cast<double>(num_trees);
  auto resum = [&](int64_t r) {
    double sum = 0.0;
    for (size_t t = 0; t < num_trees; ++t) {
      sum += s->tree_epoch[t] == s->epoch
                 ? s->tree_prob[t][static_cast<size_t>(r)]
                 : prob_[t][static_cast<size_t>(r)];
    }
    const double mean = sum / tree_count;
    if (s->want_probs) s->probs[static_cast<size_t>(r)] = mean;
    s->preds[static_cast<size_t>(r)] = mean >= 0.5 ? 1 : 0;
  };
  if (rescored_all) {
    for (size_t r = 0; r < n_rows; ++r) resum(static_cast<int64_t>(r));
    s->rows_rescored = static_cast<int64_t>(n_rows);
  } else {
    for (int64_t r : s->touched) resum(r);
    s->rows_rescored = static_cast<int64_t>(s->touched.size());
  }
#ifdef FUME_ARENA_VERIFY
  FUME_CHECK(s->preds == what_if.PredictAllPointer(test));
#endif
}

}  // namespace fume
