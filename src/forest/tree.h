// DareTree: one tree of a DaRE forest. Supports exact unlearning of row
// batches with minimal subtree retraining.

#ifndef FUME_FOREST_TREE_H_
#define FUME_FOREST_TREE_H_

#include <memory>
#include <vector>

#include "forest/config.h"
#include "forest/split_stats.h"
#include "forest/training_store.h"

namespace fume {

/// \brief A decision-tree node. Internal nodes cache NodeStats; leaves hold
/// the ids of the training rows they contain.
struct TreeNode {
  int64_t count = 0;
  int64_t pos = 0;
  // Internal-node fields.
  int attr = -1;
  int32_t threshold = -1;
  bool is_random = false;
  NodeStats stats;
  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;
  // Leaf field.
  std::vector<RowId> rows;

  bool is_leaf() const { return left == nullptr; }
};

/// \brief One data-removal-enabled decision tree.
///
/// Construction is a pure function of (store contents, seed, tree_id,
/// config); DeleteRows yields the tree that construction would have produced
/// on the reduced data (exact unlearning; asserted structurally in tests).
class DareTree {
 public:
  DareTree() = default;

  /// Builds from the given training rows.
  static DareTree Build(std::shared_ptr<const TrainingStore> store,
                        const std::vector<RowId>& rows, int tree_id,
                        const ForestConfig& config);

  /// Exactly unlearns the given rows (must currently be in the tree; caller
  /// ensures no duplicates). Appends work counters to *stats_out (nullable).
  void DeleteRows(const std::vector<RowId>& rows, DeletionStats* stats_out);

  /// Exactly adds rows (already present in the store, not in the tree): the
  /// result equals Build() on the enlarged row set. Mirrors DeleteRows.
  void AddRows(const std::vector<RowId>& rows, DeletionStats* stats_out);

  /// P(label=1) for an instance supplied via an accessor: codes(attr) must
  /// return the instance's code for `attr`.
  template <typename CodeFn>
  double PredictProb(CodeFn&& codes) const {
    const TreeNode* n = root_.get();
    if (n == nullptr || n->count == 0) return 0.5;
    while (!n->is_leaf()) {
      n = codes(n->attr) <= n->threshold ? n->left.get() : n->right.get();
    }
    if (n->count == 0) return 0.5;
    return static_cast<double>(n->pos) / static_cast<double>(n->count);
  }

  /// Deep copy sharing the (immutable) training store.
  DareTree Clone() const;

  /// Structural equality: same shape, same splits, same cached statistics,
  /// same leaf membership (order-insensitive).
  bool StructurallyEquals(const DareTree& other) const;

  /// Verifies every cached statistic against a recount of the instances
  /// reaching each node; returns false (and reports via stderr) on mismatch.
  bool ValidateStats() const;

  int64_t num_nodes() const;
  int64_t num_leaves() const;
  int depth() const;
  const TreeNode* root() const { return root_.get(); }
  int tree_id() const { return tree_id_; }
  int64_t num_training_rows() const {
    return root_ == nullptr ? 0 : root_->count;
  }

  /// Reassembles a tree from deserialized parts (forest/serialize.cc).
  static DareTree FromParts(std::shared_ptr<const TrainingStore> store,
                            const ForestConfig& config, int tree_id,
                            std::unique_ptr<TreeNode> root);

 private:
  std::unique_ptr<TreeNode> BuildNode(const std::vector<RowId>& rows,
                                      int depth, uint64_t path_key);
  void DeleteFromNode(TreeNode* node, const std::vector<RowId>& rows,
                      int depth, uint64_t path_key, DeletionStats* stats_out);
  void AddToNode(TreeNode* node, const std::vector<RowId>& rows, int depth,
                 uint64_t path_key, DeletionStats* stats_out);
  static void CollectLeafRows(const TreeNode* node, std::vector<RowId>* out);

  std::shared_ptr<const TrainingStore> store_;
  ForestConfig config_;
  int tree_id_ = 0;
  std::unique_ptr<TreeNode> root_;
};

}  // namespace fume

#endif  // FUME_FOREST_TREE_H_
