// DareTree: one tree of a DaRE forest. Supports exact unlearning of row
// batches with minimal subtree retraining.
//
// Node storage is copy-on-write: children are held through refcounted
// shared_ptrs, Clone() shares the whole node graph (O(1) per tree), and a
// mutation unshares exactly the nodes on its path — a shared node is
// replaced in the mutating tree by a private shallow copy before being
// touched, so a what-if clone never perturbs the forest it was cloned
// from. A node owned exclusively (refcount 1) is still mutated strictly in
// place, preserving the address-stability contract the stream engine's
// prediction cache relies on.

#ifndef FUME_FOREST_TREE_H_
#define FUME_FOREST_TREE_H_

#include <memory>
#include <vector>

#include "forest/arena.h"
#include "forest/config.h"
#include "forest/deletion_scratch.h"
#include "forest/split_stats.h"
#include "forest/training_store.h"

namespace fume {

namespace cow_debug {

/// Debug bookkeeping member: counts live TreeNodes process-wide so tests
/// can assert that destroying a forest and all its CoW clones releases
/// every refcounted node. Compiles to an empty no-op type under NDEBUG.
struct NodeTally {
#ifndef NDEBUG
  NodeTally();
  NodeTally(const NodeTally&);
  NodeTally& operator=(const NodeTally&) { return *this; }
  ~NodeTally();
#endif
};

/// Number of TreeNode objects currently alive (always 0 under NDEBUG).
int64_t LiveTreeNodes();

/// Samples LiveTreeNodes() into the `forest.live_nodes` gauge. Called by
/// the CLIs and benches right before a metrics export so snapshots carry
/// the live CoW node population alongside proc.rss_peak_kb.
void RefreshLiveNodesGauge();

}  // namespace cow_debug

/// Deferred-retrain marker (ForestConfig::lazy_unlearn). A deletion that
/// flips this node's split decision parks the doomed rows here instead of
/// retraining: `doomed` lists every row logically deleted from the subtree
/// but still physically present in its leaves. The node's own count/pos/
/// stats keep being decremented exactly on later batches, so at flush they
/// are a valid BuildNodeKernel seed; everything *below* the tag is stale
/// and is discarded wholesale by the flush rebuild.
struct LazyTag {
  std::vector<RowId> doomed;
};

/// \brief A decision-tree node. Internal nodes cache NodeStats; leaves hold
/// the ids of the training rows they contain.
///
/// Copying a TreeNode is shallow: scalar fields, stats and leaf rows are
/// copied, children stay shared — that is exactly the CoW "unshare one
/// node" step, never use it to deep-copy a subtree. A pending LazyTag is
/// deep-copied by that step, so after an unshare the clone and its parent
/// flush independent tag state (never aliased).
struct TreeNode {
  int64_t count = 0;
  int64_t pos = 0;
  // Internal-node fields.
  int attr = -1;
  int32_t threshold = -1;
  bool is_random = false;
  NodeStats stats;
  std::shared_ptr<TreeNode> left;
  std::shared_ptr<TreeNode> right;
  // Leaf field.
  std::vector<RowId> rows;
  // Null except on a lazily-deferred retrain trigger (see LazyTag).
  std::unique_ptr<LazyTag> lazy;
  [[no_unique_address]] cow_debug::NodeTally tally;

  TreeNode() = default;
  TreeNode(const TreeNode& other);  // CoW unshare copy; deep-copies `lazy`
  TreeNode& operator=(const TreeNode&) = delete;
  TreeNode(TreeNode&&) = default;
  TreeNode& operator=(TreeNode&&) = default;

  bool is_leaf() const { return left == nullptr; }
};

/// \brief One data-removal-enabled decision tree.
///
/// Construction is a pure function of (store contents, seed, tree_id,
/// config); DeleteRows yields the tree that construction would have produced
/// on the reduced data (exact unlearning; asserted structurally in tests).
class DareTree {
 public:
  DareTree() = default;

  /// Builds from the given training rows.
  static DareTree Build(std::shared_ptr<const TrainingStore> store,
                        const std::vector<RowId>& rows, int tree_id,
                        const ForestConfig& config);

  /// Exactly unlearns the given rows (must currently be in the tree; caller
  /// ensures no duplicates). Appends work counters to *stats_out (nullable).
  /// Nodes shared with other trees (CoW clones) are unshared before being
  /// touched; exclusively-owned nodes are updated in place at a stable
  /// address unless a subtree retrain replaces them.
  void DeleteRows(const std::vector<RowId>& rows, DeletionStats* stats_out);

  /// Scratch-kernel variant shared across the trees of one forest batch:
  /// `scratch` must have the batch's rows marked doomed (BeginBatch +
  /// MarkDoomed once per forest-level call). With
  /// config.batched_unlearn_kernel the recursion routes rows by
  /// partitioning scratch->route spans in place and answers doomed-row
  /// membership from the epoch-stamped array — allocation-free when the
  /// scratch is warm; otherwise falls back to the per-row baseline
  /// (results byte-identical either way).
  void DeleteRows(const std::vector<RowId>& rows, DeletionStats* stats_out,
                  DeletionScratch* scratch);

  /// Exactly adds rows (already present in the store, not in the tree): the
  /// result equals Build() on the enlarged row set. Mirrors DeleteRows.
  void AddRows(const std::vector<RowId>& rows, DeletionStats* stats_out);

  /// Scratch variant of AddRows (routing buffers only — additions need no
  /// doomed marks, so any scratch works regardless of batch state).
  void AddRows(const std::vector<RowId>& rows, DeletionStats* stats_out,
               DeletionScratch* scratch);

  /// Rebuilds every pending LazyTag subtree, topmost first: marks the tag's
  /// doomed rows in a fresh scratch batch, collects the surviving leaf rows,
  /// and retrains via BuildNodeKernel seeded with the tag node's
  /// exactly-maintained stats. Afterwards the tree is byte-identical to the
  /// eager kernel applied to the same op sequence (DESIGN.md §6 invariant
  /// 9). Retrain work is appended to *stats_out (nullable). No-op without
  /// tags (no generation bump, arenas stay valid).
  void FlushLazy(DeletionStats* stats_out, DeletionScratch* scratch);
  bool has_lazy_tags() const { return lazy_nodes_ > 0; }
  /// Doomed rows (resp. tag nodes) currently deferred in this tree.
  int64_t lazy_rows() const { return lazy_rows_; }
  int64_t lazy_nodes() const { return lazy_nodes_; }
  /// Toggles config_.lazy_unlearn for subsequent DeleteRows calls. Enabling
  /// requires the batched kernel; disabling requires pending tags to have
  /// been flushed first (DareForest::SetLazyUnlearn handles both).
  void SetLazyUnlearn(bool on);

  /// P(label=1) for an instance supplied via an accessor: codes(attr) must
  /// return the instance's code for `attr`.
  template <typename CodeFn>
  double PredictProb(CodeFn&& codes) const {
    const TreeNode* n = root_.get();
    if (n == nullptr || n->count == 0) return 0.5;
    while (!n->is_leaf()) {
      n = codes(n->attr) <= n->threshold ? n->left.get() : n->right.get();
    }
    if (n->count == 0) return 0.5;
    return static_cast<double>(n->pos) / static_cast<double>(n->count);
  }

  /// Copy-on-write copy: shares the whole refcounted node graph (and the
  /// immutable training store) in O(1); a later mutation of either tree
  /// privately copies just the nodes it touches.
  DareTree Clone() const;

  /// Eager full copy of every node (the pre-CoW Clone behaviour). Kept as
  /// the reference path for exactness tests and the eval-throughput bench.
  DareTree DeepClone() const;

  /// Structural equality: same shape, same splits, same cached statistics,
  /// same leaf membership (order-insensitive). Shared subtrees short-circuit
  /// by node identity.
  bool StructurallyEquals(const DareTree& other) const;

  /// Verifies every cached statistic against a recount of the instances
  /// reaching each node; returns false (and reports via stderr) on mismatch.
  bool ValidateStats() const;

  int64_t num_nodes() const;
  int64_t num_leaves() const;
  int depth() const;
  /// Approximate heap footprint of the node graph (what a DeepClone would
  /// have to allocate and copy); used by the eval-throughput bench.
  int64_t ApproxHeapBytes() const;
  const TreeNode* root() const { return root_.get(); }
  /// The refcounted root handle (node-identity diffing, e.g. the prediction
  /// cache's what-if rescoring, compares these graphs by address).
  const std::shared_ptr<TreeNode>& root_handle() const { return root_; }

  /// The flat SoA arena for the tree's current state: compiled lazily on
  /// first use, cached keyed on the generation stamp, shared by every
  /// caller until the next mutation invalidates it. Thread-safe (concurrent
  /// first calls compile once). Returns nullptr only for a
  /// default-constructed tree, which has no cache slot — callers fall back
  /// to the pointer walk. See docs/performance.md "Flat arena layout".
  std::shared_ptr<const TreeArena> arena() const;
  /// Monotonic mutation stamp, drawn from a process-wide counter: bumped
  /// once per DeleteRows/AddRows batch (the granularity at which Mutable()
  /// unshares CoW nodes), assigned fresh by Build/DeepClone/FromParts and
  /// inherited by Clone(). Two trees with equal stamps are byte-identical —
  /// stamps diverge forever at the first mutation after a Clone — which is
  /// what makes the stamp alone a sound arena cache key (DESIGN.md §7).
  uint64_t generation() const { return generation_; }
  int tree_id() const { return tree_id_; }
  int64_t num_training_rows() const {
    return root_ == nullptr ? 0 : root_->count;
  }

  /// Debug-only structural audit of the CoW graph: within this tree every
  /// node is reachable exactly once (sharing happens across trees, never
  /// inside one) and children come in pairs. FUME_CHECKs on violation;
  /// no-op under NDEBUG. Called from ~DareForest.
  void DebugCheckCowConsistency() const;

  /// Reassembles a tree from deserialized parts (forest/serialize.cc).
  static DareTree FromParts(std::shared_ptr<const TrainingStore> store,
                            const ForestConfig& config, int tree_id,
                            std::shared_ptr<TreeNode> root);

 private:
  std::shared_ptr<TreeNode> BuildNode(const std::vector<RowId>& rows,
                                      int depth, uint64_t path_key);
  /// Span-based rebuild used by the batched kernel's retrain legs: rows are
  /// partitioned in place (stable, via scratch->partition_tmp) instead of
  /// being copied into per-node left/right vectors, and nodes that the
  /// histogram-free DecideSplit conditions already force into leaves skip
  /// the candidate-histogram pass entirely (a leaf discards its stats).
  /// `seed_stats`, when non-null, must equal ComputeFromRows on [begin, end)
  /// with this node's candidate attributes — the retrain call sites pass the
  /// trigger node's just-updated histograms (that equality is the cached-
  /// stats invariant ValidateStats checks), sparing the rebuild root's full
  /// pass over the remaining rows; it is consumed by move. `pos_hint`, when
  /// >= 0, is the positive count of [begin, end) (the recursion derives the
  /// children's counts during partitioning, so only the rebuild root ever
  /// runs a label pass). Byte-identical output to BuildNode on the same row
  /// sequence.
  std::shared_ptr<TreeNode> BuildNodeKernel(RowId* begin, RowId* end,
                                            int depth, uint64_t path_key,
                                            DeletionScratch* scratch,
                                            NodeStats* seed_stats = nullptr,
                                            int64_t pos_hint = -1);
  /// CoW unshare: returns a privately-owned, mutable view of *slot,
  /// replacing a shared node with a shallow copy first (counted in
  /// stats_out->nodes_copied — a copy changes the node's address, which
  /// identity-keyed caches must observe).
  TreeNode* Mutable(std::shared_ptr<TreeNode>* slot, DeletionStats* stats_out);
  /// Advances generation_ and drops a now-stale cached arena. Called once
  /// per mutating batch, before any node is touched.
  void BumpGeneration();
  // Per-row baseline recursion (config.batched_unlearn_kernel = false):
  // builds an unordered_set of doomed rows at every leaf/retrain and routes
  // through freshly allocated per-node vectors. Kept verbatim as the
  // exactness reference for the kernel.
  void DeleteFromNode(std::shared_ptr<TreeNode>* slot,
                      const std::vector<RowId>& rows, int depth,
                      uint64_t path_key, DeletionStats* stats_out);
  void AddToNode(std::shared_ptr<TreeNode>* slot,
                 const std::vector<RowId>& rows, int depth, uint64_t path_key,
                 DeletionStats* stats_out);
  // Batched kernel recursion: operates on a span of scratch->route,
  // partitioned in place at each split (stable, via scratch->partition_tmp,
  // so leaf membership order — and hence serialized bytes — match the
  // baseline exactly).
  void DeleteFromNodeKernel(std::shared_ptr<TreeNode>* slot, RowId* begin,
                            RowId* end, int depth, uint64_t path_key,
                            DeletionStats* stats_out, DeletionScratch* scratch);
  // Lazy recursion (config.lazy_unlearn): identical to DeleteFromNodeKernel
  // at leaves and at untagged nodes whose decision holds, but a decision
  // flip creates a LazyTag (absorbing any descendant tags) instead of
  // retraining, and a batch reaching an existing tag just extends it —
  // decrementing the tag node's stats so they stay a valid rebuild seed.
  void DeleteFromNodeLazy(std::shared_ptr<TreeNode>* slot, RowId* begin,
                          RowId* end, int depth, uint64_t path_key,
                          DeletionStats* stats_out, DeletionScratch* scratch);
  /// Installs a tag on `node` holding [begin, end) and updates the
  /// lazy_rows_/lazy_nodes_ ledgers. Older tags deeper in the subtree stay
  /// in place — the flush at this ancestor gathers their rows and discards
  /// them with the stale subtree.
  void TagNode(TreeNode* node, const RowId* begin, const RowId* end);
  /// True when any node of the subtree carries a tag (prunes below tags —
  /// tags never nest under a live tag).
  static bool SubtreeHasTag(const TreeNode* node);
  /// Flush recursion: unshares only the paths that lead to a tag.
  void FlushNode(std::shared_ptr<TreeNode>* slot, int depth, uint64_t path_key,
                 DeletionStats* stats_out, DeletionScratch* scratch);
  void AddToNodeKernel(std::shared_ptr<TreeNode>* slot, RowId* begin,
                       RowId* end, int depth, uint64_t path_key,
                       DeletionStats* stats_out, DeletionScratch* scratch);
  /// Stable split of [begin, end) around this node's split test; returns
  /// the boundary. One forward pass plus a copy-back from
  /// scratch->partition_tmp — no allocation once the buffer is warm. When
  /// `left_pos_out` is non-null it receives the positive-label count of the
  /// left side (fused with the routing pass; see BuildNodeKernel pos_hint).
  RowId* PartitionBySplit(const TreeNode* node, RowId* begin, RowId* end,
                          DeletionScratch* scratch,
                          int64_t* left_pos_out = nullptr) const;
  static void CollectLeafRows(const TreeNode* node, std::vector<RowId>* out);
  /// Kernel variant: collects leaf rows left-to-right while dropping doomed
  /// rows in the same pass (same surviving order as CollectLeafRows +
  /// stable remove_if). Returns the number of doomed rows dropped.
  static int64_t CollectLeafRowsFiltered(const TreeNode* node,
                                         const DeletionScratch& scratch,
                                         std::vector<RowId>* out);

  std::shared_ptr<const TrainingStore> store_;
  ForestConfig config_;
  int tree_id_ = 0;
  std::shared_ptr<TreeNode> root_;
  uint64_t generation_ = 0;
  /// Pending lazy-deletion ledger. Clone() copies both (the clone shares
  /// the tagged graph and owes the same flush work); rows absorbed from a
  /// descendant tag into an ancestor's are not recounted, so a flush of the
  /// topmost tags drives both back to exactly zero.
  int64_t lazy_rows_ = 0;
  int64_t lazy_nodes_ = 0;
  /// Arena cache cell. Build/FromParts/DeepClone allocate a fresh one;
  /// Clone() allocates its own (never shared with the source, so what-if
  /// churn can't evict the base forest's arenas) seeded with the source's
  /// current snapshot, which stays valid until either side mutates.
  std::shared_ptr<arena_internal::ArenaSlot> arena_slot_;
};

}  // namespace fume

#endif  // FUME_FOREST_TREE_H_
