// DareTree: one tree of a DaRE forest. Supports exact unlearning of row
// batches with minimal subtree retraining.
//
// Node storage is copy-on-write: children are held through refcounted
// shared_ptrs, Clone() shares the whole node graph (O(1) per tree), and a
// mutation unshares exactly the nodes on its path — a shared node is
// replaced in the mutating tree by a private shallow copy before being
// touched, so a what-if clone never perturbs the forest it was cloned
// from. A node owned exclusively (refcount 1) is still mutated strictly in
// place, preserving the address-stability contract the stream engine's
// prediction cache relies on.

#ifndef FUME_FOREST_TREE_H_
#define FUME_FOREST_TREE_H_

#include <memory>
#include <vector>

#include "forest/config.h"
#include "forest/split_stats.h"
#include "forest/training_store.h"

namespace fume {

namespace cow_debug {

/// Debug bookkeeping member: counts live TreeNodes process-wide so tests
/// can assert that destroying a forest and all its CoW clones releases
/// every refcounted node. Compiles to an empty no-op type under NDEBUG.
struct NodeTally {
#ifndef NDEBUG
  NodeTally();
  NodeTally(const NodeTally&);
  NodeTally& operator=(const NodeTally&) { return *this; }
  ~NodeTally();
#endif
};

/// Number of TreeNode objects currently alive (always 0 under NDEBUG).
int64_t LiveTreeNodes();

}  // namespace cow_debug

/// \brief A decision-tree node. Internal nodes cache NodeStats; leaves hold
/// the ids of the training rows they contain.
///
/// Copying a TreeNode is shallow: scalar fields, stats and leaf rows are
/// copied, children stay shared — that is exactly the CoW "unshare one
/// node" step, never use it to deep-copy a subtree.
struct TreeNode {
  int64_t count = 0;
  int64_t pos = 0;
  // Internal-node fields.
  int attr = -1;
  int32_t threshold = -1;
  bool is_random = false;
  NodeStats stats;
  std::shared_ptr<TreeNode> left;
  std::shared_ptr<TreeNode> right;
  // Leaf field.
  std::vector<RowId> rows;
  [[no_unique_address]] cow_debug::NodeTally tally;

  bool is_leaf() const { return left == nullptr; }
};

/// \brief One data-removal-enabled decision tree.
///
/// Construction is a pure function of (store contents, seed, tree_id,
/// config); DeleteRows yields the tree that construction would have produced
/// on the reduced data (exact unlearning; asserted structurally in tests).
class DareTree {
 public:
  DareTree() = default;

  /// Builds from the given training rows.
  static DareTree Build(std::shared_ptr<const TrainingStore> store,
                        const std::vector<RowId>& rows, int tree_id,
                        const ForestConfig& config);

  /// Exactly unlearns the given rows (must currently be in the tree; caller
  /// ensures no duplicates). Appends work counters to *stats_out (nullable).
  /// Nodes shared with other trees (CoW clones) are unshared before being
  /// touched; exclusively-owned nodes are updated in place at a stable
  /// address unless a subtree retrain replaces them.
  void DeleteRows(const std::vector<RowId>& rows, DeletionStats* stats_out);

  /// Exactly adds rows (already present in the store, not in the tree): the
  /// result equals Build() on the enlarged row set. Mirrors DeleteRows.
  void AddRows(const std::vector<RowId>& rows, DeletionStats* stats_out);

  /// P(label=1) for an instance supplied via an accessor: codes(attr) must
  /// return the instance's code for `attr`.
  template <typename CodeFn>
  double PredictProb(CodeFn&& codes) const {
    const TreeNode* n = root_.get();
    if (n == nullptr || n->count == 0) return 0.5;
    while (!n->is_leaf()) {
      n = codes(n->attr) <= n->threshold ? n->left.get() : n->right.get();
    }
    if (n->count == 0) return 0.5;
    return static_cast<double>(n->pos) / static_cast<double>(n->count);
  }

  /// Copy-on-write copy: shares the whole refcounted node graph (and the
  /// immutable training store) in O(1); a later mutation of either tree
  /// privately copies just the nodes it touches.
  DareTree Clone() const;

  /// Eager full copy of every node (the pre-CoW Clone behaviour). Kept as
  /// the reference path for exactness tests and the eval-throughput bench.
  DareTree DeepClone() const;

  /// Structural equality: same shape, same splits, same cached statistics,
  /// same leaf membership (order-insensitive). Shared subtrees short-circuit
  /// by node identity.
  bool StructurallyEquals(const DareTree& other) const;

  /// Verifies every cached statistic against a recount of the instances
  /// reaching each node; returns false (and reports via stderr) on mismatch.
  bool ValidateStats() const;

  int64_t num_nodes() const;
  int64_t num_leaves() const;
  int depth() const;
  /// Approximate heap footprint of the node graph (what a DeepClone would
  /// have to allocate and copy); used by the eval-throughput bench.
  int64_t ApproxHeapBytes() const;
  const TreeNode* root() const { return root_.get(); }
  /// The refcounted root handle (node-identity diffing, e.g. the prediction
  /// cache's what-if rescoring, compares these graphs by address).
  const std::shared_ptr<TreeNode>& root_handle() const { return root_; }
  int tree_id() const { return tree_id_; }
  int64_t num_training_rows() const {
    return root_ == nullptr ? 0 : root_->count;
  }

  /// Debug-only structural audit of the CoW graph: within this tree every
  /// node is reachable exactly once (sharing happens across trees, never
  /// inside one) and children come in pairs. FUME_CHECKs on violation;
  /// no-op under NDEBUG. Called from ~DareForest.
  void DebugCheckCowConsistency() const;

  /// Reassembles a tree from deserialized parts (forest/serialize.cc).
  static DareTree FromParts(std::shared_ptr<const TrainingStore> store,
                            const ForestConfig& config, int tree_id,
                            std::shared_ptr<TreeNode> root);

 private:
  std::shared_ptr<TreeNode> BuildNode(const std::vector<RowId>& rows,
                                      int depth, uint64_t path_key);
  /// CoW unshare: returns a privately-owned, mutable view of *slot,
  /// replacing a shared node with a shallow copy first.
  TreeNode* Mutable(std::shared_ptr<TreeNode>* slot);
  void DeleteFromNode(std::shared_ptr<TreeNode>* slot,
                      const std::vector<RowId>& rows, int depth,
                      uint64_t path_key, DeletionStats* stats_out);
  void AddToNode(std::shared_ptr<TreeNode>* slot,
                 const std::vector<RowId>& rows, int depth, uint64_t path_key,
                 DeletionStats* stats_out);
  static void CollectLeafRows(const TreeNode* node, std::vector<RowId>* out);

  std::shared_ptr<const TrainingStore> store_;
  ForestConfig config_;
  int tree_id_ = 0;
  std::shared_ptr<TreeNode> root_;
};

}  // namespace fume

#endif  // FUME_FOREST_TREE_H_
