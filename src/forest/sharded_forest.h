// SISA-style sharded DaRE ensemble (Bourtoule et al., arXiv 1912.03817).
//
// Training data is partitioned across N independent DaRE sub-forests
// ("shards"); the ensemble prediction is a vote over the shard outputs.
// Because a training row lives in exactly one shard, deleting it touches
// only that shard — a deletion burst becomes shard-local unlearning that
// runs concurrently on the shared util::ThreadPool, and a checkpoint only
// needs to re-serialize the shards an op actually dirtied.
//
// Determinism contract (docs/sharding.md):
//  * Row placement is a pure function of the global row id (and, in slice
//    mode, the row's slice attribute code) — never of thread schedule.
//  * Shard s trains with seed `config.seed + kShardSeedStride * s`, so
//    shard contents and structure are a pure function of (data, config,
//    shard config). With num_shards == 1 the stride term vanishes and the
//    single shard is byte-identical to the monolithic DareForest.
//  * DeleteRows/AddData/FlushAll may fan out across shards on a pool, but
//    every observable result — per-shard DeletionStats, serialized bytes,
//    vote outputs — is merged in ascending shard order, so runs are
//    reproducible across thread counts {1, 4, 8, ...}.
//  * Votes accumulate shard mean probabilities in shard order and divide
//    once, mirroring DareForest::PredictProb's sum-then-divide; for one
//    shard the division is by 1.0 and the ensemble probability is
//    bit-identical to the monolithic forest's.

#ifndef FUME_FOREST_SHARDED_FOREST_H_
#define FUME_FOREST_SHARDED_FOREST_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "forest/config.h"
#include "forest/deletion_scratch.h"
#include "forest/forest.h"
#include "forest/prediction_cache.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace fume {

/// \brief How rows are partitioned across shards and how shard outputs are
/// aggregated. Routing fields are model state: they are serialized with the
/// sharded container (a checkpoint must re-route future ops identically),
/// unlike the runtime execution knobs of ForestConfig.
struct ShardConfig {
  enum class Placement : uint8_t {
    /// splitmix64(global id) % num_shards — uniform, workload-oblivious.
    kHash = 0,
    /// Rows whose `slice_attr` code equals `slice_value` (the planted-bias
    /// cohort — the rows FUME's search is most likely to delete) are
    /// concentrated into the LAST `hot_shards` shards; the rest hash across
    /// the remaining cold shards. A deletion burst aimed at the biased
    /// slice then touches only the hot shards.
    kSlice = 1,
  };
  enum class Vote : uint8_t {
    /// Ensemble probability = mean of shard mean-probabilities; predict
    /// mean >= 0.5. Monolithic-identical at num_shards == 1.
    kSoft = 0,
    /// Each shard casts a hard 0/1 vote (its mean prob >= 0.5); majority
    /// wins, ties fall back to the soft mean.
    kMajority = 1,
  };

  int num_shards = 1;
  Placement placement = Placement::kHash;
  Vote vote = Vote::kSoft;
  /// kSlice only: the attribute/code defining the hot cohort.
  int slice_attr = -1;
  int32_t slice_value = 0;
  /// kSlice only: number of trailing shards reserved for the hot cohort.
  int hot_shards = 1;
};

/// Parses "hash" / "slice" into a Placement.
Result<ShardConfig::Placement> ParsePlacement(const std::string& name);
const char* PlacementName(ShardConfig::Placement placement);

/// \brief Ensemble of independently trained/unlearned DaRE sub-forests.
///
/// Global row ids are assigned sequentially in arrival order (training rows
/// first, then AddData batches), exactly like TrainingStore ids in the
/// monolithic forest — the same op log drives both. shard_of/local_of map a
/// global id to its owning shard and the row's TrainingStore id inside it;
/// like store ids, global ids are never recycled.
class ShardedForest {
 public:
  ShardedForest() = default;
  ShardedForest(const ShardedForest&) = delete;
  ShardedForest& operator=(const ShardedForest&) = delete;
  ShardedForest(ShardedForest&&) = default;
  ShardedForest& operator=(ShardedForest&&) = default;

  /// Partitions `train` per `shard.placement` and trains each shard with
  /// its derived seed, concurrently when `pool` is non-null. Errors if any
  /// shard would receive zero rows.
  static Result<ShardedForest> Train(const Dataset& train,
                                     const ForestConfig& config,
                                     const ShardConfig& shard,
                                     util::ThreadPool* pool = nullptr);

  /// Exactly unlearns the given global row ids: buckets them per owning
  /// shard (preserving batch order within a shard) and runs shard-local
  /// DeleteRows, fanning out on `pool` when given. `per_shard_tree`, when
  /// non-null, is sized to num_shards; entry s is that shard's per-tree
  /// DeletionStats report for THIS call, left empty when shard s owned no
  /// row of the batch. `scratch`, when non-null, is resized to num_shards
  /// and entry s is handed to shard s (shard-affine, so reuse stays warm
  /// across calls). Statuses are checked in shard order.
  Status DeleteRows(const std::vector<RowId>& global_rows,
                    std::vector<std::vector<DeletionStats>>* per_shard_tree =
                        nullptr,
                    util::ThreadPool* pool = nullptr,
                    std::vector<DeletionScratch>* scratch = nullptr);

  /// Exactly adds new rows, routing each to its placed shard; returns the
  /// assigned global ids in input order. An insert is a flush boundary for
  /// the WHOLE ensemble: shards holding pending lazy tags are flushed even
  /// if they receive no new row (their flush retrains land in their
  /// `per_shard_tree` entry), mirroring DareForest::AddData's contract.
  Result<std::vector<RowId>> AddData(
      const Dataset& rows,
      std::vector<std::vector<DeletionStats>>* per_shard_tree = nullptr,
      util::ThreadPool* pool = nullptr,
      std::vector<DeletionScratch>* scratch = nullptr);

  /// Flushes pending lazy-tag subtrees in every shard (see DareForest::
  /// FlushAll); `per_shard_tree` entry s stays empty when shard s had no
  /// tags. Fans out on `pool` when given.
  void FlushAll(std::vector<std::vector<DeletionStats>>* per_shard_tree =
                    nullptr,
                util::ThreadPool* pool = nullptr,
                std::vector<DeletionScratch>* scratch = nullptr);
  bool HasLazyTags() const;
  int64_t lazy_rows() const;
  int64_t lazy_nodes() const;
  void SetLazyUnlearn(bool on);
  void EnsureFlushed() const;
  void ResetDeletionStats();

  /// Ensemble probability per row of `data` (vote over shard means).
  std::vector<double> PredictProbAll(const Dataset& data) const;
  /// Hard ensemble predictions per the configured vote mode.
  std::vector<int> PredictAll(const Dataset& data) const;
  /// Both of the above in one pass over the shards.
  void Predict(const Dataset& data, std::vector<double>* probs,
               std::vector<int>* preds) const;
  double Accuracy(const Dataset& data) const;

  /// Copy-on-write clone: every shard Clone()s (sharing all nodes);
  /// deletion_stats() of the clone starts at zero. O(num_shards · trees).
  ShardedForest Clone() const;

  bool StructurallyEquals(const ShardedForest& other) const;
  bool ValidateStats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const DareForest& shard(int s) const { return shards_[s]; }
  DareForest& mutable_shard(int s) { return shards_[s]; }
  const ShardConfig& shard_config() const { return shard_config_; }

  /// Total global ids ever assigned (live + deleted), == the id the next
  /// AddData row would get.
  int64_t num_global_ids() const {
    return shard_of_ == nullptr ? 0
                                : static_cast<int64_t>(shard_of_->size());
  }
  int shard_of(RowId global) const { return (*shard_of_)[global]; }
  RowId local_of(RowId global) const { return (*local_of_)[global]; }
  /// Cell accessors by global id (rows stay addressable after deletion,
  /// like TrainingStore).
  int32_t Code(RowId global, int attr) const;
  int Label(RowId global) const;

  /// Live training rows summed across shards.
  int64_t num_training_rows() const;
  int64_t num_nodes() const;
  int64_t ApproxHeapBytes() const;
  /// Cumulative unlearning work, summed in shard order.
  DeletionStats deletion_stats() const;

  /// Serializes the sharded container: shard config + placement maps +
  /// one independent SaveForest blob per shard. Requires no pending lazy
  /// tags (flush first).
  Status Save(std::ostream& out) const;
  /// As Save, but re-serializes only shards with `dirty[s]` true (or with
  /// no cached blob yet); clean shards reuse `(*blobs)[s]` verbatim.
  /// `blobs` is updated in place and afterwards holds every shard's
  /// current bytes — the incremental-checkpoint fast path. Output bytes
  /// are identical to Save().
  Status SaveWithCache(std::ostream& out, std::vector<std::string>* blobs,
                       const std::vector<bool>& dirty) const;
  static Result<ShardedForest> Load(std::istream& in);

  /// Deterministic id hash used by kHash placement (exposed for tests).
  static uint64_t HashGlobalId(RowId global);
  /// The shard a new global row id would be routed to. `slice_code` is the
  /// row's code at shard_config().slice_attr (ignored under kHash).
  int PlaceRow(RowId global, int32_t slice_code) const;

  /// Per-shard derived seed stride (shard s trains with base seed +
  /// stride * s; golden-ratio odd constant so nearby shards decorrelate).
  static constexpr uint64_t kShardSeedStride = 0x9E3779B97F4A7C15ull;

 private:
  Status ValidateGlobalRows(const std::vector<RowId>& global_rows) const;

  ShardConfig shard_config_;
  std::vector<DareForest> shards_;
  /// Owning shard / local TrainingStore id for every global id ever
  /// assigned. uint8_t caps num_shards at 255 (validated ≤ 64). Shared
  /// copy-on-write with clones/snapshots: a what-if Clone() is O(shards ·
  /// trees), not O(rows); AddData takes a private copy first when the maps
  /// are still shared (single-writer contract, same as TrainingStore).
  std::shared_ptr<std::vector<uint8_t>> shard_of_;
  std::shared_ptr<std::vector<RowId>> local_of_;
};

/// Combines per-shard mean probabilities (shard order) into ensemble
/// probabilities and hard predictions. `mean` is always filled; `preds`
/// may be null. Shared by ShardedForest::Predict and the sharded
/// prediction cache so every consumer votes identically.
void VoteFromShardProbs(const std::vector<const std::vector<double>*>& shard_probs,
                        ShardConfig::Vote vote, std::vector<double>* mean,
                        std::vector<int>* preds);

/// \brief Per-shard TestPredictionCache with a voted ensemble view.
///
/// Mirrors TestPredictionCache's API one level up: Rebuild after training
/// or loading, Update after an op with the per-shard dirty report, and
/// ScoreWhatIf against a CoW clone. A what-if evaluation typically mutates
/// one or two shards; untouched shards (every tree root identical to the
/// base) contribute their cached probabilities without any walk or copy.
class ShardedPredictionCache {
 public:
  struct WhatIfScratch {
    /// Voted ensemble predictions for the what-if forest, byte-identical
    /// to what_if.PredictAll(test).
    std::vector<int> preds;
    /// Summed across shards (see TestPredictionCache::WhatIfScratch).
    int64_t rows_rescored = 0;
    int64_t trees_changed = 0;
    /// Shards with at least one changed tree root this evaluation.
    int64_t shards_changed = 0;

   private:
    friend class ShardedPredictionCache;
    std::vector<TestPredictionCache::WhatIfScratch> shard_scratch;
    std::vector<double> sum;
  };

  void Rebuild(const ShardedForest& forest, const Dataset& test);

  /// Refreshes after one ensemble op. `shard_tree_dirty[s]` is shard s's
  /// per-tree dirty flags; an EMPTY entry means shard s was untouched by
  /// the op and is skipped entirely.
  void Update(const ShardedForest& forest, const Dataset& test,
              const std::vector<std::vector<bool>>& shard_tree_dirty);

  /// Scores a Clone() of the seed ensemble (see TestPredictionCache::
  /// ScoreWhatIf). Thread-safe for concurrent calls with distinct
  /// scratches.
  void ScoreWhatIf(const ShardedForest& base, const ShardedForest& what_if,
                   const Dataset& test, WhatIfScratch* scratch,
                   bool arena_full_rescore = false) const;

  /// Voted ensemble probability / predictions per test row;
  /// byte-identical to forest.PredictProbAll / PredictAll.
  const std::vector<double>& probs() const { return mean_prob_; }
  const std::vector<int>& predictions() const { return pred_; }

  int num_shards() const { return static_cast<int>(caches_.size()); }
  const TestPredictionCache& shard(int s) const { return caches_[s]; }

 private:
  void FinalizeVote();

  ShardConfig::Vote vote_ = ShardConfig::Vote::kSoft;
  std::vector<TestPredictionCache> caches_;
  std::vector<double> mean_prob_;
  std::vector<int> pred_;
};

}  // namespace fume

#endif  // FUME_FOREST_SHARDED_FOREST_H_
