// TrainingStore: compact row-major copy of the training data that a forest
// (and all its clones) share. Leaf instance lists and update requests refer
// to rows of this store by RowId.
//
// The store is append-only: AddData grows it with new rows (for DaRE's
// incremental addition) but existing rows are never mutated or removed, so
// every forest sharing the store keeps valid references — a forest simply
// never points at rows it has not added.

#ifndef FUME_FOREST_TRAINING_STORE_H_
#define FUME_FOREST_TRAINING_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "util/check.h"

namespace fume {

/// Training-set row index. Training sets are bounded well below 2^31.
using RowId = int32_t;

/// \brief Append-only snapshot of an all-categorical training set.
class TrainingStore {
 public:
  /// Builds a snapshot; `data` must be all-categorical.
  static std::shared_ptr<TrainingStore> Make(const Dataset& data);

  int64_t num_rows() const { return num_rows_; }
  int num_attrs() const { return num_attrs_; }
  int32_t cardinality(int attr) const { return cards_[attr]; }

  int32_t code(RowId row, int attr) const {
    return codes_[static_cast<size_t>(row) * num_attrs_ + attr];
  }
  int label(RowId row) const { return labels_[static_cast<size_t>(row)]; }

  /// Appends one row and returns its id. Codes must respect the store's
  /// cardinalities; label must be 0/1. Not thread-safe.
  RowId Append(const std::vector<int32_t>& codes, int label);

  /// Reassembles a store from deserialized parts (forest/serialize.cc).
  /// `codes` is row-major with cards.size() columns.
  static std::shared_ptr<TrainingStore> FromParts(
      std::vector<int32_t> cards, std::vector<int32_t> codes,
      std::vector<uint8_t> labels);

 private:
  int64_t num_rows_ = 0;
  int num_attrs_ = 0;
  std::vector<int32_t> cards_;
  std::vector<int32_t> codes_;   // row-major n x p
  std::vector<uint8_t> labels_;
};

}  // namespace fume

#endif  // FUME_FOREST_TRAINING_STORE_H_
