// TrainingStore: compact row-major copy of the training data that a forest
// (and all its clones) share. Leaf instance lists and update requests refer
// to rows of this store by RowId.
//
// The store is append-only: AddData grows it with new rows (for DaRE's
// incremental addition) but existing rows are never mutated or removed, so
// every forest sharing the store keeps valid references — a forest simply
// never points at rows it has not added.
//
// Storage is segmented (doubling segments off a fixed pointer table) rather
// than a single contiguous vector so that Append never relocates existing
// rows. That makes the store *append-stable*: a reader that learned about
// rows [0, n) through a release/acquire edge (e.g. an atomically published
// CoW snapshot) may keep reading those rows while a single writer appends
// more — the bytes it reads are never moved or rewritten. Append itself is
// still single-writer; only published rows are safe to read concurrently.

#ifndef FUME_FOREST_TRAINING_STORE_H_
#define FUME_FOREST_TRAINING_STORE_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "util/check.h"

namespace fume {

/// Training-set row index. Training sets are bounded well below 2^31.
using RowId = int32_t;

/// \brief Append-only snapshot of an all-categorical training set.
class TrainingStore {
 public:
  /// Builds a snapshot; `data` must be all-categorical.
  static std::shared_ptr<TrainingStore> Make(const Dataset& data);

  int64_t num_rows() const { return num_rows_.load(std::memory_order_acquire); }
  int num_attrs() const { return num_attrs_; }
  int32_t cardinality(int attr) const { return cards_[attr]; }

  int32_t code(RowId row, int attr) const {
    const int seg = SegmentOf(row);
    const size_t off = static_cast<size_t>(row) - SegmentStart(seg);
    return code_segs_[static_cast<size_t>(seg)]
                     [off * static_cast<size_t>(num_attrs_) +
                      static_cast<size_t>(attr)];
  }
  int label(RowId row) const {
    const int seg = SegmentOf(row);
    return label_segs_[static_cast<size_t>(seg)]
                      [static_cast<size_t>(row) - SegmentStart(seg)];
  }

  /// Appends one row and returns its id. Codes must respect the store's
  /// cardinalities; label must be 0/1. Single writer only; concurrent
  /// readers of already-published rows stay valid (see header comment).
  RowId Append(const std::vector<int32_t>& codes, int label);

  /// Reassembles a store from deserialized parts (forest/serialize.cc).
  /// `codes` is row-major with cards.size() columns.
  static std::shared_ptr<TrainingStore> FromParts(
      std::vector<int32_t> cards, std::vector<int32_t> codes,
      std::vector<uint8_t> labels);

 private:
  // Segment 0 holds kBaseRows rows; segment s holds kBaseRows << s. With
  // RowId an int32, 21 doubling segments cover every addressable row, so
  // the pointer table never grows (and never relocates) either.
  static constexpr int kSegmentShift = 11;  // 2048 rows in segment 0
  static constexpr int64_t kBaseRows = int64_t{1} << kSegmentShift;
  static constexpr int kMaxSegments = 21;

  static int SegmentOf(RowId row) {
    return std::bit_width((static_cast<uint64_t>(row) >> kSegmentShift) + 1) -
           1;
  }
  static size_t SegmentStart(int seg) {
    return static_cast<size_t>((kBaseRows << seg) - kBaseRows);
  }
  static size_t SegmentRows(int seg) {
    return static_cast<size_t>(kBaseRows) << seg;
  }

  void AppendRowUnchecked(const int32_t* codes, uint8_t label);

  std::atomic<int64_t> num_rows_{0};
  int num_attrs_ = 0;
  std::vector<int32_t> cards_;
  std::array<std::unique_ptr<int32_t[]>, kMaxSegments> code_segs_;
  std::array<std::unique_ptr<uint8_t[]>, kMaxSegments> label_segs_;
};

}  // namespace fume

#endif  // FUME_FOREST_TRAINING_STORE_H_
