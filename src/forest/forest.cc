#include "forest/forest.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {

void TrainingStore::AppendRowUnchecked(const int32_t* codes, uint8_t label) {
  const int64_t row = num_rows_.load(std::memory_order_relaxed);
  const int seg = SegmentOf(static_cast<RowId>(row));
  auto& code_seg = code_segs_[static_cast<size_t>(seg)];
  auto& label_seg = label_segs_[static_cast<size_t>(seg)];
  if (code_seg == nullptr) {
    code_seg = std::make_unique<int32_t[]>(SegmentRows(seg) *
                                           static_cast<size_t>(num_attrs_));
    label_seg = std::make_unique<uint8_t[]>(SegmentRows(seg));
  }
  const size_t off = static_cast<size_t>(row) - SegmentStart(seg);
  std::copy(codes, codes + num_attrs_,
            code_seg.get() + off * static_cast<size_t>(num_attrs_));
  label_seg[off] = label;
  // Release so a reader that acquires the new count also sees the row bytes.
  num_rows_.store(row + 1, std::memory_order_release);
}

std::shared_ptr<TrainingStore> TrainingStore::Make(const Dataset& data) {
  FUME_CHECK(data.schema().AllCategorical());
  auto store = std::make_shared<TrainingStore>();
  store->num_attrs_ = data.num_attributes();
  store->cards_.resize(static_cast<size_t>(store->num_attrs_));
  for (int j = 0; j < store->num_attrs_; ++j) {
    store->cards_[static_cast<size_t>(j)] =
        data.schema().attribute(j).cardinality();
  }
  std::vector<int32_t> row_codes(static_cast<size_t>(store->num_attrs_));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int j = 0; j < store->num_attrs_; ++j) {
      row_codes[static_cast<size_t>(j)] = data.Code(r, j);
    }
    store->AppendRowUnchecked(row_codes.data(),
                              static_cast<uint8_t>(data.Label(r)));
  }
  return store;
}

std::shared_ptr<TrainingStore> TrainingStore::FromParts(
    std::vector<int32_t> cards, std::vector<int32_t> codes,
    std::vector<uint8_t> labels) {
  auto store = std::make_shared<TrainingStore>();
  store->num_attrs_ = static_cast<int>(cards.size());
  FUME_CHECK(store->num_attrs_ > 0);
  FUME_CHECK_EQ(codes.size() % cards.size(), 0u);
  FUME_CHECK_EQ(codes.size(),
                labels.size() * static_cast<size_t>(store->num_attrs_));
  store->cards_ = std::move(cards);
  for (size_t r = 0; r < labels.size(); ++r) {
    store->AppendRowUnchecked(
        codes.data() + r * static_cast<size_t>(store->num_attrs_), labels[r]);
  }
  return store;
}

RowId TrainingStore::Append(const std::vector<int32_t>& codes, int label) {
  FUME_CHECK_EQ(static_cast<int>(codes.size()), num_attrs_);
  FUME_CHECK(label == 0 || label == 1);
  for (int j = 0; j < num_attrs_; ++j) {
    FUME_CHECK(codes[static_cast<size_t>(j)] >= 0 &&
               codes[static_cast<size_t>(j)] < cards_[static_cast<size_t>(j)]);
  }
  const auto id = static_cast<RowId>(num_rows());
  AppendRowUnchecked(codes.data(), static_cast<uint8_t>(label));
  return id;
}

Result<DareForest> DareForest::Train(const Dataset& train,
                                     const ForestConfig& config) {
  if (!train.schema().AllCategorical()) {
    return Status::Invalid(
        "DareForest requires an all-categorical dataset; discretize numeric "
        "attributes first");
  }
  if (train.num_rows() == 0) {
    return Status::Invalid("cannot train on an empty dataset");
  }
  if (config.num_trees < 1 || config.max_depth < 1) {
    return Status::Invalid("num_trees and max_depth must be positive");
  }
  if (config.random_depth < 0 || config.random_depth > config.max_depth) {
    return Status::Invalid("random_depth must lie in [0, max_depth]");
  }
  if (config.lazy_unlearn && !config.batched_unlearn_kernel) {
    return Status::Invalid(
        "lazy_unlearn requires batched_unlearn_kernel (the flush rebuilds "
        "run through BuildNodeKernel)");
  }
  if (config.lazy_unlearn &&
      (config.max_lazy_rows < 1 || config.max_lazy_nodes < 1)) {
    return Status::Invalid("lazy staleness budgets must be positive");
  }
  obs::TraceSpan span("forest.train", {{"rows", train.num_rows()},
                                       {"trees", config.num_trees}});
  static obs::Counter* trains = obs::GetCounter("forest.train.calls");
  trains->Inc();
  DareForest forest;
  forest.config_ = config;
  forest.store_ = TrainingStore::Make(train);
  std::vector<RowId> all_rows(static_cast<size_t>(train.num_rows()));
  for (int64_t r = 0; r < train.num_rows(); ++r) {
    all_rows[static_cast<size_t>(r)] = static_cast<RowId>(r);
  }
  forest.trees_.reserve(static_cast<size_t>(config.num_trees));
  for (int t = 0; t < config.num_trees; ++t) {
    forest.trees_.push_back(DareTree::Build(forest.store_, all_rows, t,
                                            config));
  }
  return forest;
}

Status DareForest::DeleteRows(const std::vector<RowId>& rows,
                              std::vector<DeletionStats>* per_tree,
                              DeletionScratch* scratch) {
  if (per_tree != nullptr) {
    per_tree->assign(trees_.size(), DeletionStats{});
  }
  if (rows.empty()) return Status::OK();
  obs::TraceSpan span("forest.delete",
                      {{"rows", static_cast<int64_t>(rows.size())},
                       {"trees", static_cast<int>(trees_.size())}});
  static obs::Counter* deletes = obs::GetCounter("forest.unlearn.batches");
  static obs::Counter* deleted_rows =
      obs::GetCounter("forest.unlearn.rows_deleted");
  static obs::Histogram* batch_rows =
      obs::GetHistogram("forest.unlearn.batch_rows");
  static obs::Counter* scratch_reuse =
      obs::GetCounter("forest.unlearn.scratch_reuse");
  deletes->Inc();
  deleted_rows->Inc(static_cast<int64_t>(rows.size()));
  batch_rows->Record(static_cast<int64_t>(rows.size()));
  DeletionScratch local_scratch;
  if (config_.batched_unlearn_kernel) {
    // Duplicate/range validation doubles as the one batch-wide doomed-row
    // marking pass every tree then shares — no per-batch unordered_set.
    if (scratch == nullptr) scratch = &local_scratch;
    if (scratch->BeginBatch(store_->num_rows())) scratch_reuse->Inc();
    for (RowId r : rows) {
      if (r < 0 || r >= store_->num_rows()) {
        return Status::IndexError("row id " + std::to_string(r) +
                                  " out of range");
      }
      if (!scratch->MarkDoomed(r)) {
        return Status::Invalid("duplicate row id " + std::to_string(r) +
                               " in deletion batch");
      }
    }
  } else {
    std::unordered_set<RowId> seen;
    for (RowId r : rows) {
      if (r < 0 || r >= store_->num_rows()) {
        return Status::IndexError("row id " + std::to_string(r) +
                                  " out of range");
      }
      if (!seen.insert(r).second) {
        return Status::Invalid("duplicate row id " + std::to_string(r) +
                               " in deletion batch");
      }
    }
  }
  for (size_t t = 0; t < trees_.size(); ++t) {
    DeletionStats local;
    if (config_.batched_unlearn_kernel) {
      trees_[t].DeleteRows(rows, &local, scratch);
    } else {
      trees_[t].DeleteRows(rows, &local);
    }
    deletion_stats_.Add(local);
    if (per_tree != nullptr) (*per_tree)[t] = local;
  }
  if (config_.lazy_unlearn && (lazy_rows() > config_.max_lazy_rows ||
                               lazy_nodes() > config_.max_lazy_nodes)) {
    // Staleness budget exceeded: retire the deferred work now rather than
    // letting an unbounded burst pile up retrain debt. The flush retrains
    // land in per_tree so callers see the trees whose nodes moved.
    static obs::Counter* budget_flushes =
        obs::GetCounter("forest.lazy.budget_flushes");
    budget_flushes->Inc();
    FlushAll(per_tree, scratch);
  }
  return Status::OK();
}

void DareForest::FlushAll(std::vector<DeletionStats>* per_tree,
                          DeletionScratch* scratch) {
  if (!HasLazyTags()) return;
  obs::TraceSpan span("forest.lazy_flush",
                      {{"rows", lazy_rows()}, {"tags", lazy_nodes()}});
  DeletionScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  if (per_tree != nullptr && per_tree->empty()) {
    per_tree->assign(trees_.size(), DeletionStats{});
  }
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (!trees_[t].has_lazy_tags()) continue;
    DeletionStats local;
    trees_[t].FlushLazy(&local, scratch);
    deletion_stats_.Add(local);
    if (per_tree != nullptr) (*per_tree)[t].Add(local);
  }
}

bool DareForest::HasLazyTags() const {
  for (const auto& tree : trees_) {
    if (tree.has_lazy_tags()) return true;
  }
  return false;
}

int64_t DareForest::lazy_rows() const {
  int64_t total = 0;
  for (const auto& tree : trees_) total += tree.lazy_rows();
  return total;
}

int64_t DareForest::lazy_nodes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) total += tree.lazy_nodes();
  return total;
}

void DareForest::EnsureFlushed() const {
  if (!config_.lazy_unlearn || !HasLazyTags()) return;
  // Logically const (see forest.h): a tagged forest is thread-confined, so
  // this cannot race with another reader.
  const_cast<DareForest*>(this)->FlushAll();
}

void DareForest::SetLazyUnlearn(bool on) {
  if (!on) FlushAll();
  config_.lazy_unlearn = on;
  for (auto& tree : trees_) tree.SetLazyUnlearn(on);
}

Result<std::vector<RowId>> DareForest::AddData(
    const Dataset& rows, std::vector<DeletionStats>* per_tree,
    DeletionScratch* scratch) {
  if (per_tree != nullptr) {
    per_tree->assign(trees_.size(), DeletionStats{});
  }
  obs::TraceSpan span("forest.add", {{"rows", rows.num_rows()}});
  static obs::Counter* adds = obs::GetCounter("forest.add.batches");
  static obs::Counter* added_rows = obs::GetCounter("forest.add.rows_added");
  adds->Inc();
  added_rows->Inc(rows.num_rows());
  FUME_RETURN_NOT_OK(CheckCompatible(rows));
  for (int j = 0; j < rows.num_attributes(); ++j) {
    if (rows.schema().attribute(j).cardinality() >
        store_->cardinality(j)) {
      return Status::Invalid("attribute '" + rows.schema().attribute(j).name +
                             "' has categories unseen at training time");
    }
  }
  std::vector<RowId> new_ids;
  new_ids.reserve(static_cast<size_t>(rows.num_rows()));
  std::vector<int32_t> codes(static_cast<size_t>(rows.num_attributes()));
  for (int64_t r = 0; r < rows.num_rows(); ++r) {
    for (int j = 0; j < rows.num_attributes(); ++j) {
      codes[static_cast<size_t>(j)] = rows.Code(r, j);
    }
    new_ids.push_back(store_->Append(codes, rows.Label(r)));
  }
  DeletionScratch local_scratch;
  if (config_.batched_unlearn_kernel && scratch == nullptr) {
    scratch = &local_scratch;
  }
  // Additions route through every level of every tree, so pending lazy tags
  // (stale split decisions below them) must be rebuilt first. The flush
  // work lands in per_tree alongside the add work.
  if (config_.lazy_unlearn) FlushAll(per_tree, scratch);
  for (size_t t = 0; t < trees_.size(); ++t) {
    DeletionStats local;
    if (config_.batched_unlearn_kernel) {
      trees_[t].AddRows(new_ids, &local, scratch);
    } else {
      trees_[t].AddRows(new_ids, &local);
    }
    deletion_stats_.Add(local);
    // Add (not assign): the entry may already carry this call's lazy-flush
    // work from the FlushAll above.
    if (per_tree != nullptr) (*per_tree)[t].Add(local);
  }
  return new_ids;
}

Status DareForest::CheckCompatible(const Dataset& data) const {
  if (!data.schema().AllCategorical()) {
    return Status::Invalid("prediction data must be all-categorical");
  }
  if (data.num_attributes() != store_->num_attrs()) {
    return Status::Invalid("prediction data has wrong attribute count");
  }
  return Status::OK();
}

double DareForest::PredictProb(const Dataset& data, int64_t row) const {
  FUME_DCHECK(CheckCompatible(data).ok());
  EnsureFlushed();  // first query descent retires any deferred retrains
  double sum = 0.0;
  for (const auto& tree : trees_) {
    sum += tree.PredictProb([&](int attr) { return data.Code(row, attr); });
  }
  return sum / static_cast<double>(trees_.size());
}

int DareForest::Predict(const Dataset& data, int64_t row) const {
  return PredictProb(data, row) >= 0.5 ? 1 : 0;
}

std::vector<double> DareForest::PredictProbAllPointer(
    const Dataset& data) const {
  FUME_CHECK(CheckCompatible(data).ok());
  std::vector<double> out(static_cast<size_t>(data.num_rows()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    out[static_cast<size_t>(r)] = PredictProb(data, r);
  }
  return out;
}

std::vector<int> DareForest::PredictAllPointer(const Dataset& data) const {
  std::vector<double> probs = PredictProbAllPointer(data);
  std::vector<int> out(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) out[i] = probs[i] >= 0.5 ? 1 : 0;
  return out;
}

std::vector<double> DareForest::PredictProbAll(const Dataset& data) const {
  if (!config_.arena_traversal || trees_.empty()) {
    return PredictProbAllPointer(data);
  }
  FUME_CHECK(CheckCompatible(data).ok());
  EnsureFlushed();  // arenas must never be compiled from a tagged tree
  const std::shared_ptr<const PackedCodes> packed = data.packed_codes();
  const int64_t n_rows = data.num_rows();
  std::vector<double> sums(static_cast<size_t>(n_rows), 0.0);
  for (const auto& tree : trees_) {
    const std::shared_ptr<const TreeArena> arena = tree.arena();
    if (arena == nullptr) return PredictProbAllPointer(data);
    // Tree-outer accumulation adds per-row leaf probabilities in tree
    // order — the same summation PredictProb performs per row, so the
    // means below are byte-identical to the pointer walk.
    arena->AccumulateProbs(packed->codes.data(), packed->num_attrs, n_rows,
                           sums.data());
  }
  const double tree_count = static_cast<double>(trees_.size());
  for (double& s : sums) s /= tree_count;
#ifdef FUME_ARENA_VERIFY
  FUME_CHECK(sums == PredictProbAllPointer(data));
#endif
  return sums;
}

std::vector<int> DareForest::PredictAll(const Dataset& data) const {
  std::vector<double> probs = PredictProbAll(data);
  std::vector<int> out(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) out[i] = probs[i] >= 0.5 ? 1 : 0;
  return out;
}

double DareForest::Accuracy(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  const std::vector<int> preds = PredictAll(data);
  int64_t correct = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == data.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

DareForest::~DareForest() {
#ifndef NDEBUG
  for (const auto& tree : trees_) tree.DebugCheckCowConsistency();
#endif
}

DareForest DareForest::Clone() const {
  DareForest out;
  out.store_ = store_;
  out.config_ = config_;
  // deletion_stats_ intentionally not copied: the counters describe work
  // performed on this instance.
  out.trees_.reserve(trees_.size());
  for (const auto& tree : trees_) out.trees_.push_back(tree.Clone());
  return out;
}

DareForest DareForest::DeepClone() const {
  DareForest out;
  out.store_ = store_;
  out.config_ = config_;
  out.trees_.reserve(trees_.size());
  for (const auto& tree : trees_) out.trees_.push_back(tree.DeepClone());
  return out;
}

bool DareForest::StructurallyEquals(const DareForest& other) const {
  if (trees_.size() != other.trees_.size()) return false;
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (!trees_[i].StructurallyEquals(other.trees_[i])) return false;
  }
  return true;
}

bool DareForest::ValidateStats() const {
  for (const auto& tree : trees_) {
    if (!tree.ValidateStats()) return false;
  }
  return true;
}

DareForest DareForest::FromParts(std::shared_ptr<TrainingStore> store,
                                 const ForestConfig& config,
                                 std::vector<DareTree> trees,
                                 const DeletionStats& stats) {
  DareForest forest;
  forest.store_ = std::move(store);
  forest.config_ = config;
  forest.trees_ = std::move(trees);
  forest.deletion_stats_ = stats;
  return forest;
}

int64_t DareForest::num_nodes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) total += tree.num_nodes();
  return total;
}

int64_t DareForest::ApproxHeapBytes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) total += tree.ApproxHeapBytes();
  return total;
}

int64_t DareForest::num_training_rows() const {
  return trees_.empty() ? 0 : trees_.front().num_training_rows();
}

}  // namespace fume
