#include "forest/sharded_forest.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <sstream>
#include <utility>

#include "forest/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace fume {
namespace {

constexpr char kShardMagic[8] = {'F', 'U', 'M', 'E', 'S', 'H', 'R', 'D'};
constexpr uint32_t kShardVersion = 1;
constexpr uint64_t kMaxVec = 1ull << 30;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
Status ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  if (!in.good()) return Status::IOError("truncated sharded forest stream");
  return Status::OK();
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
Status ReadVec(std::istream& in, std::vector<T>* v) {
  uint64_t count = 0;
  FUME_RETURN_NOT_OK(ReadPod(in, &count));
  if (count > kMaxVec) return Status::IOError("implausible vector length");
  v->resize(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!in.good()) return Status::IOError("truncated sharded forest stream");
  }
  return Status::OK();
}

Status ValidateShardConfig(const ShardConfig& sc) {
  if (sc.num_shards < 1 || sc.num_shards > 64) {
    return Status::Invalid("num_shards must be in [1, 64]");
  }
  if (sc.placement == ShardConfig::Placement::kSlice) {
    if (sc.slice_attr < 0) {
      return Status::Invalid("slice placement requires slice_attr >= 0");
    }
    if (sc.num_shards < 2) {
      return Status::Invalid("slice placement requires at least 2 shards");
    }
    if (sc.hot_shards < 1 || sc.hot_shards >= sc.num_shards) {
      return Status::Invalid("hot_shards must be in [1, num_shards)");
    }
  }
  return Status::OK();
}

/// Runs fn(s) once per shard in `touched`, fanning out on `pool` when it
/// has parked workers and there is more than one shard of work. Outputs
/// are per-shard (per-index), so results never depend on thread count.
void ForShards(const std::vector<int>& touched, util::ThreadPool* pool,
               const std::function<void(int)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || touched.size() <= 1) {
    for (int s : touched) fn(s);
    return;
  }
  pool->ParallelFor(touched.size(),
                    [&](int /*worker*/, size_t i) { fn(touched[i]); });
}

int PlaceRowImpl(const ShardConfig& sc, RowId global, int32_t slice_code) {
  const uint64_t h = ShardedForest::HashGlobalId(global);
  if (sc.placement == ShardConfig::Placement::kSlice) {
    const int cold = sc.num_shards - sc.hot_shards;
    if (slice_code == sc.slice_value) {
      return cold + static_cast<int>(h % static_cast<uint64_t>(sc.hot_shards));
    }
    return static_cast<int>(h % static_cast<uint64_t>(cold));
  }
  return static_cast<int>(h % static_cast<uint64_t>(sc.num_shards));
}

}  // namespace

Result<ShardConfig::Placement> ParsePlacement(const std::string& name) {
  if (name == "hash") return ShardConfig::Placement::kHash;
  if (name == "slice") return ShardConfig::Placement::kSlice;
  return Status::Invalid("unknown placement '" + name +
                         "' (expected hash|slice)");
}

const char* PlacementName(ShardConfig::Placement placement) {
  return placement == ShardConfig::Placement::kSlice ? "slice" : "hash";
}

uint64_t ShardedForest::HashGlobalId(RowId global) {
  return SplitMix64(static_cast<uint64_t>(static_cast<uint32_t>(global)));
}

int ShardedForest::PlaceRow(RowId global, int32_t slice_code) const {
  return PlaceRowImpl(shard_config_, global, slice_code);
}

Result<ShardedForest> ShardedForest::Train(const Dataset& train,
                                           const ForestConfig& config,
                                           const ShardConfig& shard,
                                           util::ThreadPool* pool) {
  FUME_RETURN_NOT_OK(ValidateShardConfig(shard));
  if (shard.placement == ShardConfig::Placement::kSlice &&
      shard.slice_attr >= train.num_attributes()) {
    return Status::Invalid("slice_attr out of range");
  }
  obs::TraceSpan span("shard.train", {{"shards", shard.num_shards},
                                      {"rows", train.num_rows()}});
  const int n = shard.num_shards;
  ShardedForest out;
  out.shard_config_ = shard;
  const int64_t rows = train.num_rows();
  auto shard_of = std::make_shared<std::vector<uint8_t>>();
  auto local_of = std::make_shared<std::vector<RowId>>();
  shard_of->resize(static_cast<size_t>(rows));
  local_of->resize(static_cast<size_t>(rows));
  std::vector<std::vector<int64_t>> members(static_cast<size_t>(n));
  for (int64_t r = 0; r < rows; ++r) {
    const int32_t code =
        shard.slice_attr >= 0 ? train.Code(r, shard.slice_attr) : 0;
    const int s = PlaceRowImpl(shard, static_cast<RowId>(r), code);
    auto& m = members[static_cast<size_t>(s)];
    (*shard_of)[static_cast<size_t>(r)] = static_cast<uint8_t>(s);
    (*local_of)[static_cast<size_t>(r)] = static_cast<RowId>(m.size());
    m.push_back(r);
  }
  for (int s = 0; s < n; ++s) {
    if (members[static_cast<size_t>(s)].empty()) {
      return Status::Invalid("shard " + std::to_string(s) +
                             " received no training rows; use fewer shards "
                             "or more data");
    }
  }
  out.shard_of_ = std::move(shard_of);
  out.local_of_ = std::move(local_of);
  out.shards_.resize(static_cast<size_t>(n));
  std::vector<Status> statuses(static_cast<size_t>(n));
  std::vector<int> all(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) all[static_cast<size_t>(s)] = s;
  ForShards(all, pool, [&](int s) {
    ForestConfig cfg = config;
    cfg.seed = config.seed + kShardSeedStride * static_cast<uint64_t>(s);
    const Dataset part = train.Select(members[static_cast<size_t>(s)]);
    auto trained = DareForest::Train(part, cfg);
    if (!trained.ok()) {
      statuses[static_cast<size_t>(s)] = trained.status();
      return;
    }
    out.shards_[static_cast<size_t>(s)] = std::move(trained).ValueOrDie();
  });
  for (int s = 0; s < n; ++s) {
    FUME_RETURN_NOT_OK(statuses[static_cast<size_t>(s)]);
  }
  return out;
}

Status ShardedForest::ValidateGlobalRows(
    const std::vector<RowId>& global_rows) const {
  const int64_t limit = num_global_ids();
  for (RowId g : global_rows) {
    if (g < 0 || static_cast<int64_t>(g) >= limit) {
      return Status::IndexError("global row id " + std::to_string(g) +
                                " out of range");
    }
  }
  return Status::OK();
}

Status ShardedForest::DeleteRows(
    const std::vector<RowId>& global_rows,
    std::vector<std::vector<DeletionStats>>* per_shard_tree,
    util::ThreadPool* pool, std::vector<DeletionScratch>* scratch) {
  const int n = num_shards();
  if (per_shard_tree != nullptr) {
    per_shard_tree->assign(static_cast<size_t>(n), {});
  }
  if (scratch != nullptr && static_cast<int>(scratch->size()) < n) {
    scratch->resize(static_cast<size_t>(n));
  }
  FUME_RETURN_NOT_OK(ValidateGlobalRows(global_rows));
  obs::TraceSpan span("shard.delete",
                      {{"rows", static_cast<int64_t>(global_rows.size())}});
  static obs::Counter* batches = obs::GetCounter("shard.delete.batches");
  static obs::Counter* routed = obs::GetCounter("shard.delete.rows_routed");
  static obs::Histogram* touched_hist =
      obs::GetHistogram("shard.delete.shards_touched");
  batches->Inc();
  routed->Inc(static_cast<int64_t>(global_rows.size()));
  std::vector<std::vector<RowId>> local(static_cast<size_t>(n));
  for (RowId g : global_rows) {
    local[(*shard_of_)[static_cast<size_t>(g)]].push_back(
        (*local_of_)[static_cast<size_t>(g)]);
  }
  std::vector<int> touched;
  for (int s = 0; s < n; ++s) {
    if (!local[static_cast<size_t>(s)].empty()) touched.push_back(s);
  }
  touched_hist->Record(static_cast<double>(touched.size()));
  std::vector<Status> statuses(static_cast<size_t>(n));
  // On a non-OK status some shards may already have unlearned their slice
  // of the batch (no cross-shard rollback); callers treat a failed delete
  // as fatal, matching the monolithic engine's contract.
  ForShards(touched, pool, [&](int s) {
    statuses[static_cast<size_t>(s)] = shards_[static_cast<size_t>(s)]
        .DeleteRows(local[static_cast<size_t>(s)],
                    per_shard_tree != nullptr
                        ? &(*per_shard_tree)[static_cast<size_t>(s)]
                        : nullptr,
                    scratch != nullptr ? &(*scratch)[static_cast<size_t>(s)]
                                       : nullptr);
  });
  for (int s = 0; s < n; ++s) {
    FUME_RETURN_NOT_OK(statuses[static_cast<size_t>(s)]);
  }
  return Status::OK();
}

Result<std::vector<RowId>> ShardedForest::AddData(
    const Dataset& rows, std::vector<std::vector<DeletionStats>>* per_shard_tree,
    util::ThreadPool* pool, std::vector<DeletionScratch>* scratch) {
  const int n = num_shards();
  if (per_shard_tree != nullptr) {
    per_shard_tree->assign(static_cast<size_t>(n), {});
  }
  if (scratch != nullptr && static_cast<int>(scratch->size()) < n) {
    scratch->resize(static_cast<size_t>(n));
  }
  if (shard_config_.slice_attr >= rows.num_attributes() &&
      shard_config_.placement == ShardConfig::Placement::kSlice) {
    return Status::Invalid("slice_attr out of range for inserted rows");
  }
  obs::TraceSpan span("shard.add", {{"rows", rows.num_rows()}});
  static obs::Counter* batches = obs::GetCounter("shard.add.batches");
  static obs::Counter* routed = obs::GetCounter("shard.add.rows_routed");
  batches->Inc();
  routed->Inc(rows.num_rows());
  const int64_t count = rows.num_rows();
  const RowId next = static_cast<RowId>(num_global_ids());
  std::vector<RowId> global_ids(static_cast<size_t>(count));
  std::vector<int> placed(static_cast<size_t>(count));
  std::vector<std::vector<int64_t>> sub(static_cast<size_t>(n));
  for (int64_t i = 0; i < count; ++i) {
    const RowId g = next + static_cast<RowId>(i);
    const int32_t code = shard_config_.slice_attr >= 0
                             ? rows.Code(i, shard_config_.slice_attr)
                             : 0;
    const int s = PlaceRowImpl(shard_config_, g, code);
    global_ids[static_cast<size_t>(i)] = g;
    placed[static_cast<size_t>(i)] = s;
    sub[static_cast<size_t>(s)].push_back(i);
  }
  // An insert is an ensemble-wide flush boundary: shards receiving rows
  // flush inside their own AddData; shards with pending tags but no new
  // row flush here so no tag survives the op (their retrains land in the
  // same per-shard report).
  std::vector<int> tasks;
  for (int s = 0; s < n; ++s) {
    if (!sub[static_cast<size_t>(s)].empty() ||
        shards_[static_cast<size_t>(s)].HasLazyTags()) {
      tasks.push_back(s);
    }
  }
  std::vector<Status> statuses(static_cast<size_t>(n));
  std::vector<std::vector<RowId>> new_local(static_cast<size_t>(n));
  ForShards(tasks, pool, [&](int s) {
    auto* report = per_shard_tree != nullptr
                       ? &(*per_shard_tree)[static_cast<size_t>(s)]
                       : nullptr;
    auto* sc = scratch != nullptr ? &(*scratch)[static_cast<size_t>(s)]
                                  : nullptr;
    auto& dst = shards_[static_cast<size_t>(s)];
    if (sub[static_cast<size_t>(s)].empty()) {
      dst.FlushAll(report, sc);
      return;
    }
    const Dataset part = rows.Select(sub[static_cast<size_t>(s)]);
    auto added = dst.AddData(part, report, sc);
    if (!added.ok()) {
      statuses[static_cast<size_t>(s)] = added.status();
      return;
    }
    new_local[static_cast<size_t>(s)] = std::move(added).ValueOrDie();
  });
  for (int s = 0; s < n; ++s) {
    FUME_RETURN_NOT_OK(statuses[static_cast<size_t>(s)]);
  }
  // All shards accepted their slice: extend the placement maps (private
  // copies first if a clone/snapshot still shares them).
  if (shard_of_.use_count() > 1) {
    shard_of_ = std::make_shared<std::vector<uint8_t>>(*shard_of_);
  }
  if (local_of_.use_count() > 1) {
    local_of_ = std::make_shared<std::vector<RowId>>(*local_of_);
  }
  std::vector<size_t> consumed(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < count; ++i) {
    const int s = placed[static_cast<size_t>(i)];
    shard_of_->push_back(static_cast<uint8_t>(s));
    local_of_->push_back(
        new_local[static_cast<size_t>(s)][consumed[static_cast<size_t>(s)]++]);
  }
  return global_ids;
}

void ShardedForest::FlushAll(
    std::vector<std::vector<DeletionStats>>* per_shard_tree,
    util::ThreadPool* pool, std::vector<DeletionScratch>* scratch) {
  const int n = num_shards();
  if (per_shard_tree != nullptr) {
    per_shard_tree->assign(static_cast<size_t>(n), {});
  }
  if (scratch != nullptr && static_cast<int>(scratch->size()) < n) {
    scratch->resize(static_cast<size_t>(n));
  }
  std::vector<int> touched;
  for (int s = 0; s < n; ++s) {
    if (shards_[static_cast<size_t>(s)].HasLazyTags()) touched.push_back(s);
  }
  if (touched.empty()) return;
  static obs::Counter* flushed =
      obs::GetCounter("shard.flush.shards_flushed");
  flushed->Inc(static_cast<int64_t>(touched.size()));
  ForShards(touched, pool, [&](int s) {
    shards_[static_cast<size_t>(s)].FlushAll(
        per_shard_tree != nullptr ? &(*per_shard_tree)[static_cast<size_t>(s)]
                                  : nullptr,
        scratch != nullptr ? &(*scratch)[static_cast<size_t>(s)] : nullptr);
  });
}

bool ShardedForest::HasLazyTags() const {
  for (const auto& s : shards_) {
    if (s.HasLazyTags()) return true;
  }
  return false;
}

int64_t ShardedForest::lazy_rows() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s.lazy_rows();
  return total;
}

int64_t ShardedForest::lazy_nodes() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s.lazy_nodes();
  return total;
}

void ShardedForest::SetLazyUnlearn(bool on) {
  for (auto& s : shards_) s.SetLazyUnlearn(on);
}

void ShardedForest::EnsureFlushed() const {
  for (const auto& s : shards_) s.EnsureFlushed();
}

void ShardedForest::ResetDeletionStats() {
  for (auto& s : shards_) s.ResetDeletionStats();
}

void ShardedForest::Predict(const Dataset& data, std::vector<double>* probs,
                            std::vector<int>* preds) const {
  std::vector<std::vector<double>> shard_probs(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_probs[s] = shards_[s].PredictProbAll(data);
  }
  std::vector<const std::vector<double>*> ptrs(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) ptrs[s] = &shard_probs[s];
  VoteFromShardProbs(ptrs, shard_config_.vote, probs, preds);
}

std::vector<double> ShardedForest::PredictProbAll(const Dataset& data) const {
  std::vector<double> probs;
  Predict(data, &probs, nullptr);
  return probs;
}

std::vector<int> ShardedForest::PredictAll(const Dataset& data) const {
  std::vector<double> probs;
  std::vector<int> preds;
  Predict(data, &probs, &preds);
  return preds;
}

double ShardedForest::Accuracy(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  const std::vector<int> preds = PredictAll(data);
  int64_t correct = 0;
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    if (preds[static_cast<size_t>(r)] == data.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_rows());
}

ShardedForest ShardedForest::Clone() const {
  ShardedForest out;
  out.shard_config_ = shard_config_;
  out.shards_.reserve(shards_.size());
  for (const auto& s : shards_) out.shards_.push_back(s.Clone());
  out.shard_of_ = shard_of_;  // shared: placement never mutates in a clone
  out.local_of_ = local_of_;
  return out;
}

bool ShardedForest::StructurallyEquals(const ShardedForest& other) const {
  if (num_shards() != other.num_shards()) return false;
  if (shard_config_.placement != other.shard_config_.placement ||
      shard_config_.vote != other.shard_config_.vote ||
      shard_config_.slice_attr != other.shard_config_.slice_attr ||
      shard_config_.slice_value != other.shard_config_.slice_value ||
      shard_config_.hot_shards != other.shard_config_.hot_shards) {
    return false;
  }
  if (*shard_of_ != *other.shard_of_ || *local_of_ != *other.local_of_) {
    return false;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s].StructurallyEquals(other.shards_[s])) return false;
  }
  return true;
}

bool ShardedForest::ValidateStats() const {
  for (const auto& s : shards_) {
    if (!s.ValidateStats()) return false;
  }
  return true;
}

int32_t ShardedForest::Code(RowId global, int attr) const {
  const int s = (*shard_of_)[static_cast<size_t>(global)];
  return shards_[static_cast<size_t>(s)].store().code(
      (*local_of_)[static_cast<size_t>(global)], attr);
}

int ShardedForest::Label(RowId global) const {
  const int s = (*shard_of_)[static_cast<size_t>(global)];
  return shards_[static_cast<size_t>(s)].store().label(
      (*local_of_)[static_cast<size_t>(global)]);
}

int64_t ShardedForest::num_training_rows() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s.num_training_rows();
  return total;
}

int64_t ShardedForest::num_nodes() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s.num_nodes();
  return total;
}

int64_t ShardedForest::ApproxHeapBytes() const {
  int64_t total = static_cast<int64_t>(
      shard_of_ == nullptr ? 0
                           : shard_of_->capacity() * sizeof(uint8_t) +
                                 local_of_->capacity() * sizeof(RowId));
  for (const auto& s : shards_) total += s.ApproxHeapBytes();
  return total;
}

DeletionStats ShardedForest::deletion_stats() const {
  DeletionStats total;
  for (const auto& s : shards_) total.Add(s.deletion_stats());
  return total;
}

Status ShardedForest::Save(std::ostream& out) const {
  std::vector<std::string> blobs;
  return SaveWithCache(out, &blobs, {});
}

Status ShardedForest::SaveWithCache(std::ostream& out,
                                    std::vector<std::string>* blobs,
                                    const std::vector<bool>& dirty) const {
  static obs::Counter* serialized =
      obs::GetCounter("shard.checkpoint.shards_serialized");
  static obs::Counter* reused =
      obs::GetCounter("shard.checkpoint.shards_reused");
  const int n = num_shards();
  blobs->resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    std::string& blob = (*blobs)[static_cast<size_t>(s)];
    const bool must_serialize = blob.empty() ||
                                static_cast<size_t>(s) >= dirty.size() ||
                                dirty[static_cast<size_t>(s)];
    if (!must_serialize) {
      reused->Inc();
      continue;
    }
    std::ostringstream os(std::ios::binary);
    FUME_RETURN_NOT_OK(SaveForest(shards_[static_cast<size_t>(s)], os));
    blob = std::move(os).str();
    serialized->Inc();
  }
  out.write(kShardMagic, sizeof(kShardMagic));
  WritePod(out, kShardVersion);
  WritePod(out, static_cast<uint32_t>(n));
  WritePod(out, static_cast<uint8_t>(shard_config_.placement));
  WritePod(out, static_cast<uint8_t>(shard_config_.vote));
  WritePod(out, static_cast<int32_t>(shard_config_.slice_attr));
  WritePod(out, shard_config_.slice_value);
  WritePod(out, static_cast<int32_t>(shard_config_.hot_shards));
  WriteVec(out, *shard_of_);
  WriteVec(out, *local_of_);
  for (int s = 0; s < n; ++s) {
    const std::string& blob = (*blobs)[static_cast<size_t>(s)];
    WritePod(out, static_cast<uint64_t>(blob.size()));
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  if (!out.good()) return Status::IOError("sharded forest write failed");
  return Status::OK();
}

Result<ShardedForest> ShardedForest::Load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kShardMagic, sizeof(magic)) != 0) {
    return Status::IOError("not a FUME sharded forest (bad magic)");
  }
  uint32_t version = 0;
  FUME_RETURN_NOT_OK(ReadPod(in, &version));
  if (version != kShardVersion) {
    return Status::IOError("unsupported sharded forest version " +
                           std::to_string(version));
  }
  uint32_t num_shards = 0;
  uint8_t placement = 0;
  uint8_t vote = 0;
  int32_t slice_attr = 0;
  int32_t slice_value = 0;
  int32_t hot_shards = 0;
  FUME_RETURN_NOT_OK(ReadPod(in, &num_shards));
  FUME_RETURN_NOT_OK(ReadPod(in, &placement));
  FUME_RETURN_NOT_OK(ReadPod(in, &vote));
  FUME_RETURN_NOT_OK(ReadPod(in, &slice_attr));
  FUME_RETURN_NOT_OK(ReadPod(in, &slice_value));
  FUME_RETURN_NOT_OK(ReadPod(in, &hot_shards));
  if (placement > 1 || vote > 1) {
    return Status::IOError("corrupt sharded forest header");
  }
  ShardedForest out;
  out.shard_config_.num_shards = static_cast<int>(num_shards);
  out.shard_config_.placement = static_cast<ShardConfig::Placement>(placement);
  out.shard_config_.vote = static_cast<ShardConfig::Vote>(vote);
  out.shard_config_.slice_attr = slice_attr;
  out.shard_config_.slice_value = slice_value;
  out.shard_config_.hot_shards = hot_shards;
  FUME_RETURN_NOT_OK(ValidateShardConfig(out.shard_config_));
  auto shard_of = std::make_shared<std::vector<uint8_t>>();
  auto local_of = std::make_shared<std::vector<RowId>>();
  FUME_RETURN_NOT_OK(ReadVec(in, shard_of.get()));
  FUME_RETURN_NOT_OK(ReadVec(in, local_of.get()));
  if (shard_of->size() != local_of->size()) {
    return Status::IOError("sharded forest placement maps disagree");
  }
  out.shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    uint64_t len = 0;
    FUME_RETURN_NOT_OK(ReadPod(in, &len));
    if (len > kMaxVec) return Status::IOError("implausible shard blob size");
    std::string blob(len, '\0');
    in.read(blob.data(), static_cast<std::streamsize>(len));
    if (!in.good()) return Status::IOError("truncated shard blob");
    std::istringstream is(blob, std::ios::binary);
    FUME_ASSIGN_OR_RETURN(DareForest shard, LoadForest(is));
    out.shards_.push_back(std::move(shard));
  }
  // Cross-validate the maps against the shard stores: every global id must
  // point at an existing store row, and each store must be exactly covered.
  std::vector<int64_t> counted(num_shards, 0);
  for (size_t g = 0; g < shard_of->size(); ++g) {
    const uint8_t s = (*shard_of)[g];
    if (s >= num_shards) {
      return Status::IOError("global id routed to nonexistent shard");
    }
    const RowId local = (*local_of)[g];
    if (local < 0 ||
        local >= out.shards_[s].store().num_rows()) {
      return Status::IOError("local row id out of range for its shard");
    }
    ++counted[s];
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (counted[s] != out.shards_[s].store().num_rows()) {
      return Status::IOError("placement map does not cover shard store");
    }
  }
  out.shard_of_ = std::move(shard_of);
  out.local_of_ = std::move(local_of);
  return out;
}

void VoteFromShardProbs(
    const std::vector<const std::vector<double>*>& shard_probs,
    ShardConfig::Vote vote, std::vector<double>* mean,
    std::vector<int>* preds) {
  const size_t num_shards = shard_probs.size();
  FUME_CHECK(num_shards > 0);
  const size_t n = shard_probs[0]->size();
  mean->assign(n, 0.0);
  // Shard order, sum-then-divide: the exact arithmetic shape of
  // DareForest::PredictProb over trees, so one shard is bit-identical to
  // the monolithic forest and results never depend on scheduling.
  for (size_t s = 0; s < num_shards; ++s) {
    const std::vector<double>& p = *shard_probs[s];
    for (size_t r = 0; r < n; ++r) (*mean)[r] += p[r];
  }
  const double count = static_cast<double>(num_shards);
  for (size_t r = 0; r < n; ++r) (*mean)[r] /= count;
  if (preds == nullptr) return;
  preds->resize(n);
  if (vote == ShardConfig::Vote::kSoft) {
    for (size_t r = 0; r < n; ++r) {
      (*preds)[r] = (*mean)[r] >= 0.5 ? 1 : 0;
    }
    return;
  }
  for (size_t r = 0; r < n; ++r) {
    int votes = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      if ((*shard_probs[s])[r] >= 0.5) ++votes;
    }
    const int twice = 2 * votes;
    (*preds)[r] = twice > static_cast<int>(num_shards) ? 1
                  : twice < static_cast<int>(num_shards)
                      ? 0
                      : ((*mean)[r] >= 0.5 ? 1 : 0);
  }
}

void ShardedPredictionCache::Rebuild(const ShardedForest& forest,
                                     const Dataset& test) {
  vote_ = forest.shard_config().vote;
  caches_.assign(static_cast<size_t>(forest.num_shards()),
                 TestPredictionCache{});
  for (int s = 0; s < forest.num_shards(); ++s) {
    caches_[static_cast<size_t>(s)].Rebuild(forest.shard(s), test);
  }
  FinalizeVote();
}

void ShardedPredictionCache::Update(
    const ShardedForest& forest, const Dataset& test,
    const std::vector<std::vector<bool>>& shard_tree_dirty) {
  FUME_CHECK_EQ(caches_.size(), static_cast<size_t>(forest.num_shards()));
  FUME_CHECK_EQ(shard_tree_dirty.size(), caches_.size());
  for (size_t s = 0; s < caches_.size(); ++s) {
    if (shard_tree_dirty[s].empty()) continue;  // shard untouched by the op
    caches_[s].Update(forest.shard(static_cast<int>(s)), test,
                      shard_tree_dirty[s]);
  }
  FinalizeVote();
}

void ShardedPredictionCache::FinalizeVote() {
  std::vector<const std::vector<double>*> ptrs(caches_.size());
  for (size_t s = 0; s < caches_.size(); ++s) ptrs[s] = &caches_[s].probs();
  VoteFromShardProbs(ptrs, vote_, &mean_prob_, &pred_);
}

void ShardedPredictionCache::ScoreWhatIf(const ShardedForest& base,
                                         const ShardedForest& what_if,
                                         const Dataset& test,
                                         WhatIfScratch* scratch,
                                         bool arena_full_rescore) const {
  const size_t n = caches_.size();
  FUME_CHECK_EQ(n, static_cast<size_t>(base.num_shards()));
  FUME_CHECK_EQ(n, static_cast<size_t>(what_if.num_shards()));
  scratch->shard_scratch.resize(n);
  scratch->rows_rescored = 0;
  scratch->trees_changed = 0;
  scratch->shards_changed = 0;
  std::vector<const std::vector<double>*> ptrs(n);
  for (size_t s = 0; s < n; ++s) {
    const DareForest& b = base.shard(static_cast<int>(s));
    const DareForest& w = what_if.shard(static_cast<int>(s));
    bool changed = false;
    for (int t = 0; t < b.num_trees(); ++t) {
      if (b.tree(t).root() != w.tree(t).root()) {
        changed = true;
        break;
      }
    }
    if (!changed) {
      // Every tree root still shared: the clone's shard predicts exactly
      // like the base shard, whose probabilities we already hold.
      ptrs[s] = &caches_[s].probs();
      continue;
    }
    ++scratch->shards_changed;
    TestPredictionCache::WhatIfScratch& ss = scratch->shard_scratch[s];
    ss.want_probs = true;
    caches_[s].ScoreWhatIf(b, w, test, &ss, arena_full_rescore);
    scratch->rows_rescored += ss.rows_rescored;
    scratch->trees_changed += ss.trees_changed;
    ptrs[s] = &ss.probs;
  }
  VoteFromShardProbs(ptrs, vote_, &scratch->sum, &scratch->preds);
}

}  // namespace fume
