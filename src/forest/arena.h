// TreeArena: compact struct-of-arrays snapshot of one DareTree, compiled on
// demand from the copy-on-write node graph and traversed row-outer /
// node-inner with branch-light index arithmetic instead of pointer chasing.
//
// Layout (all arrays indexed by arena node id, root = 0, children allocated
// as adjacent pairs in depth-first order):
//
//   attr_[i]       split attribute            (0 for leaves)
//   threshold_[i]  split threshold            (INT32_MAX for leaves)
//   child_[i]      left-child id; right = child_[i] + 1; a leaf points at
//                  itself (child_[i] == i), making the descent step
//                  unconditional: idx = child_[idx] + (code > threshold)
//                  parks leaves in place because code > INT32_MAX is false.
//   prob_[i]       leaf positive fraction     (unused for internal nodes)
//   node_[i]       source TreeNode*           (prediction-cache leaf identity)
//
// An arena is an immutable value: mutation goes through the CoW pointer
// graph, which bumps the owning tree's generation stamp; DareTree::arena()
// recompiles lazily when the cached arena's generation no longer matches
// (see docs/performance.md "Flat arena layout" and DESIGN.md).
//
// Exactness: traversal reproduces DareTree::PredictProb byte for byte —
// same routing comparison (code <= threshold goes left), same leaf
// probability arithmetic, same null/empty-root 0.5 sentinel.

#ifndef FUME_FOREST_ARENA_H_
#define FUME_FOREST_ARENA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace fume {

struct TreeNode;

class TreeArena {
 public:
  ~TreeArena();
  TreeArena(const TreeArena&) = delete;
  TreeArena& operator=(const TreeArena&) = delete;

  /// Compiles the node graph rooted at `root` (nullable). `generation` is
  /// the owning tree's mutation stamp at compile time; `reserve_hint` (a
  /// previous arena's node count) pre-sizes the arrays.
  static std::shared_ptr<const TreeArena> Compile(const TreeNode* root,
                                                  uint64_t generation,
                                                  int64_t reserve_hint = 0);

  /// sums[r] += P(label=1 | row r) for every row of the packed row-major
  /// code matrix (row r at codes + r * num_attrs). Callers accumulate in
  /// tree order so forest means match PredictProb's summation bytes.
  void AccumulateProbs(const int32_t* codes, int num_attrs, int64_t n_rows,
                       double* sums) const;

  /// out[r] = P(label=1 | row r).
  void PredictProbs(const int32_t* codes, int num_attrs, int64_t n_rows,
                    double* out) const;

  /// leaves[r] = the source TreeNode each row lands in (nullptr for a
  /// null-root sentinel), probs[r] = its positive fraction — exactly what
  /// TestPredictionCache's pointer walk stores per row.
  void WalkLeaves(const int32_t* codes, int num_attrs, int64_t n_rows,
                  const TreeNode** leaves, double* probs) const;

  uint64_t generation() const { return generation_; }
  /// Root of the node graph this arena was compiled from (debug identity).
  const TreeNode* source_root() const { return source_root_; }
  int64_t num_nodes() const { return static_cast<int64_t>(child_.size()); }
  int depth() const { return depth_; }
  /// Heap footprint of the arrays; mirrored by the forest.arena.bytes gauge.
  int64_t bytes() const { return bytes_; }

 private:
  TreeArena() = default;
  int32_t AddSlot();
  void CompileNode(const TreeNode* n, int32_t slot, int depth);
  template <typename Emit>
  void Walk(const int32_t* codes, int num_attrs, int64_t n_rows,
            Emit&& emit) const;

  std::vector<int32_t> attr_;
  std::vector<int32_t> threshold_;
  std::vector<int32_t> child_;
  std::vector<double> prob_;
  std::vector<const TreeNode*> node_;
  int depth_ = 0;
  uint64_t generation_ = 0;
  const TreeNode* source_root_ = nullptr;
  int64_t bytes_ = 0;
};

namespace arena_internal {

/// Draws the next tree-generation stamp from one process-wide monotonic
/// counter, so stamps of trees that diverged (a mutation after a Clone)
/// can never collide: equal generations imply identical node graphs.
uint64_t NextGeneration();

/// Total bytes held by live arenas (the forest.arena.bytes gauge's source).
int64_t LiveArenaBytes();

/// Per-tree cache cell for the compiled arena. The atomic pointer serves
/// lock-free readers; the mutex serializes compile-on-first-use so
/// concurrent predictions build one arena, not one each.
struct ArenaSlot {
  std::mutex mu;
  std::atomic<std::shared_ptr<const TreeArena>> arena{nullptr};
  /// Node count of the last arena stored here. Survives eager invalidation
  /// (which nulls `arena`), so the recompile after every what-if mutation
  /// still reserves its arrays in one shot instead of growing by doubling.
  std::atomic<int64_t> size_hint{0};
};

}  // namespace arena_internal

}  // namespace fume

#endif  // FUME_FOREST_ARENA_H_
